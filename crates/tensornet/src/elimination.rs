//! Elimination orderings and tree decompositions of the line graph.
//!
//! Following Markov & Shi (and the paper's §IV-C), a good contraction
//! order for a tensor network is derived from a tree decomposition of its
//! *line graph*: the graph whose vertices are the network's indices, with
//! an edge between two indices whenever they co-occur in a tensor. A
//! vertex-elimination ordering of that graph yields both a tree
//! decomposition (bags = eliminated vertex + its current neighbourhood)
//! and an index-elimination contraction order whose cost is exponential
//! only in the decomposition width.

use crate::index::IndexId;
use std::collections::{BTreeMap, BTreeSet};

/// An undirected graph over tensor indices (the line graph of a network).
#[derive(Clone, Debug, Default)]
pub struct LineGraph {
    adj: BTreeMap<IndexId, BTreeSet<IndexId>>,
}

impl LineGraph {
    /// Builds the line graph from one clique per tensor (the tensor's
    /// index set).
    pub fn from_cliques<I, C>(cliques: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: AsRef<[IndexId]>,
    {
        let mut g = LineGraph::default();
        for clique in cliques {
            let clique = clique.as_ref();
            for &v in clique {
                g.adj.entry(v).or_default();
            }
            for (i, &a) in clique.iter().enumerate() {
                for &b in &clique[i + 1..] {
                    if a != b {
                        g.adj.entry(a).or_default().insert(b);
                        g.adj.entry(b).or_default().insert(a);
                    }
                }
            }
        }
        g
    }

    /// The vertices in ascending id order.
    pub fn vertices(&self) -> impl Iterator<Item = IndexId> + '_ {
        self.adj.keys().copied()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// The neighbourhood of `v` (empty if absent).
    pub fn neighbors(&self, v: IndexId) -> BTreeSet<IndexId> {
        self.adj.get(&v).cloned().unwrap_or_default()
    }

    /// Whether `a` and `b` are adjacent.
    pub fn has_edge(&self, a: IndexId, b: IndexId) -> bool {
        self.adj.get(&a).is_some_and(|n| n.contains(&b))
    }
}

/// Which greedy vertex-elimination heuristic to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Heuristic {
    /// Eliminate the vertex of minimum current degree.
    MinDegree,
    /// Eliminate the vertex introducing the fewest fill-in edges.
    MinFill,
}

/// A tree decomposition induced by a vertex elimination ordering.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// The elimination ordering that produced this decomposition.
    pub order: Vec<IndexId>,
    /// `bags[i]` = eliminated vertex `order[i]` plus its neighbourhood at
    /// elimination time.
    pub bags: Vec<BTreeSet<IndexId>>,
    /// Parent bag index of each bag (`None` for roots).
    pub parent: Vec<Option<usize>>,
}

impl TreeDecomposition {
    /// The decomposition width (largest bag size minus one).
    pub fn width(&self) -> usize {
        self.bags.iter().map(BTreeSet::len).max().unwrap_or(1) - 1
    }

    /// Validates the decomposition against the original graph:
    /// every edge is covered by some bag, and for every vertex the bags
    /// containing it form a connected subtree (running intersection).
    pub fn is_valid_for(&self, graph: &LineGraph) -> bool {
        // Edge coverage.
        for v in graph.vertices() {
            for w in graph.neighbors(v) {
                if v < w
                    && !self
                        .bags
                        .iter()
                        .any(|bag| bag.contains(&v) && bag.contains(&w))
                {
                    return false;
                }
            }
        }
        // Vertex coverage + running intersection: for each vertex, the bags
        // containing it must form a connected subgraph of the tree.
        for v in graph.vertices() {
            let holders: Vec<usize> = (0..self.bags.len())
                .filter(|&i| self.bags[i].contains(&v))
                .collect();
            if holders.is_empty() {
                return false;
            }
            // BFS within holders over parent/child edges.
            let holder_set: BTreeSet<usize> = holders.iter().copied().collect();
            let mut seen = BTreeSet::new();
            let mut stack = vec![holders[0]];
            while let Some(i) = stack.pop() {
                if !seen.insert(i) {
                    continue;
                }
                if let Some(p) = self.parent[i] {
                    if holder_set.contains(&p) && !seen.contains(&p) {
                        stack.push(p);
                    }
                }
                for (j, &pj) in self.parent.iter().enumerate() {
                    if pj == Some(i) && holder_set.contains(&j) && !seen.contains(&j) {
                        stack.push(j);
                    }
                }
            }
            if seen.len() != holder_set.len() {
                return false;
            }
        }
        true
    }
}

/// Computes a greedy elimination ordering of `graph` and the induced tree
/// decomposition.
///
/// Ties are broken by ascending index id, so the result is deterministic.
/// Scores are maintained *incrementally*: eliminating `v` only changes
/// the degree of `N(v)` and the fill count of vertices adjacent to at
/// least two members of `N(v)`, so only that dirty set is rescored —
/// keeping min-fill practical on the multi-thousand-vertex line graphs of
/// the larger Table I circuits.
pub fn eliminate(graph: &LineGraph, heuristic: Heuristic) -> TreeDecomposition {
    use std::collections::HashMap;
    let mut adj: HashMap<IndexId, BTreeSet<IndexId>> =
        graph.vertices().map(|v| (v, graph.neighbors(v))).collect();

    let score_of = |adj: &HashMap<IndexId, BTreeSet<IndexId>>, v: IndexId| -> usize {
        let n = &adj[&v];
        match heuristic {
            Heuristic::MinDegree => n.len(),
            Heuristic::MinFill => {
                let nbrs: Vec<IndexId> = n.iter().copied().collect();
                let mut fill = 0usize;
                for (i, &a) in nbrs.iter().enumerate() {
                    for &b in &nbrs[i + 1..] {
                        if !adj[&a].contains(&b) {
                            fill += 1;
                        }
                    }
                }
                fill
            }
        }
    };

    // Priority queue over (score, id) with a side table for the current
    // score (deterministic: ties break on ascending id).
    let mut scores: HashMap<IndexId, usize> = HashMap::new();
    let mut queue: BTreeSet<(usize, IndexId)> = BTreeSet::new();
    for v in graph.vertices() {
        let s = score_of(&adj, v);
        scores.insert(v, s);
        queue.insert((s, v));
    }

    let mut order = Vec::with_capacity(adj.len());
    let mut bags = Vec::with_capacity(adj.len());

    while let Some(&(score, v)) = queue.iter().next() {
        queue.remove(&(score, v));
        scores.remove(&v);
        let neighbors = adj.remove(&v).expect("queued vertex is live");
        let mut bag = neighbors.clone();
        bag.insert(v);

        // Fill: connect all neighbours; track which vertices need rescoring.
        let nbrs: Vec<IndexId> = neighbors.iter().copied().collect();
        let mut dirty: BTreeSet<IndexId> = neighbors.clone();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                let inserted = adj.get_mut(&a).expect("live").insert(b);
                adj.get_mut(&b).expect("live").insert(a);
                if inserted && heuristic == Heuristic::MinFill {
                    // A new edge (a,b) changes the fill count of any
                    // vertex adjacent to both ends.
                    let (small, large) = if adj[&a].len() <= adj[&b].len() {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    for &u in &adj[&small].clone() {
                        if u != a && u != b && adj[&large].contains(&u) {
                            dirty.insert(u);
                        }
                    }
                }
            }
        }
        for &n in &nbrs {
            adj.get_mut(&n).expect("live").remove(&v);
        }
        for u in dirty {
            if let Some(&old) = scores.get(&u) {
                let new = score_of(&adj, u);
                if new != old {
                    queue.remove(&(old, u));
                    queue.insert((new, u));
                    scores.insert(u, new);
                }
            }
        }
        order.push(v);
        bags.push(bag);
    }

    // Tree structure: parent of bag i is the bag of the earliest-eliminated
    // vertex among bag_i \ {order[i]}.
    let position: BTreeMap<IndexId, usize> =
        order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let parent: Vec<Option<usize>> = bags
        .iter()
        .enumerate()
        .map(|(i, bag)| {
            bag.iter()
                .filter(|&&v| v != order[i])
                .map(|v| position[v])
                .filter(|&p| p > i)
                .min()
        })
        .collect();

    TreeDecomposition {
        order,
        bags,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<IndexId> {
        v.iter().map(|&i| IndexId(i)).collect()
    }

    /// A 4-cycle: treewidth 2.
    fn cycle4() -> LineGraph {
        LineGraph::from_cliques([ids(&[0, 1]), ids(&[1, 2]), ids(&[2, 3]), ids(&[3, 0])])
    }

    /// A path: treewidth 1.
    fn path(n: u32) -> LineGraph {
        LineGraph::from_cliques((0..n - 1).map(|i| ids(&[i, i + 1])).collect::<Vec<_>>())
    }

    #[test]
    fn line_graph_structure() {
        let g = LineGraph::from_cliques([ids(&[0, 1, 2])]);
        assert!(g.has_edge(IndexId(0), IndexId(1)));
        assert!(g.has_edge(IndexId(1), IndexId(2)));
        assert!(g.has_edge(IndexId(0), IndexId(2)));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn path_has_width_one() {
        for h in [Heuristic::MinDegree, Heuristic::MinFill] {
            let g = path(8);
            let td = eliminate(&g, h);
            assert_eq!(td.width(), 1, "{h:?}");
            assert!(td.is_valid_for(&g), "{h:?}");
            assert_eq!(td.order.len(), 8);
        }
    }

    #[test]
    fn cycle_has_width_two() {
        for h in [Heuristic::MinDegree, Heuristic::MinFill] {
            let g = cycle4();
            let td = eliminate(&g, h);
            assert_eq!(td.width(), 2, "{h:?}");
            assert!(td.is_valid_for(&g), "{h:?}");
        }
    }

    #[test]
    fn clique_has_width_n_minus_one() {
        let g = LineGraph::from_cliques([ids(&[0, 1, 2, 3, 4])]);
        let td = eliminate(&g, Heuristic::MinFill);
        assert_eq!(td.width(), 4);
        assert!(td.is_valid_for(&g));
    }

    #[test]
    fn disconnected_graph_is_handled() {
        let g = LineGraph::from_cliques([ids(&[0, 1]), ids(&[5, 6])]);
        let td = eliminate(&g, Heuristic::MinDegree);
        assert_eq!(td.order.len(), 4);
        assert!(td.is_valid_for(&g));
        // Two components → at least two roots.
        assert!(td.parent.iter().filter(|p| p.is_none()).count() >= 2);
    }

    #[test]
    fn min_fill_beats_min_degree_on_known_bad_case() {
        // A graph where min-degree can do worse: two hub vertices sharing
        // leaves. Both should still produce *valid* decompositions.
        let cliques: Vec<Vec<IndexId>> = (0..6)
            .map(|i| ids(&[i, 6]))
            .chain((0..6).map(|i| ids(&[i, 7])))
            .collect();
        let g = LineGraph::from_cliques(cliques);
        for h in [Heuristic::MinDegree, Heuristic::MinFill] {
            let td = eliminate(&g, h);
            assert!(td.is_valid_for(&g), "{h:?}");
            assert!(td.width() <= 3, "{h:?} width {}", td.width());
        }
    }

    #[test]
    fn empty_graph() {
        let g = LineGraph::default();
        let td = eliminate(&g, Heuristic::MinDegree);
        assert!(td.order.is_empty());
        assert!(td.is_valid_for(&g));
    }

    #[test]
    fn determinism() {
        let g = cycle4();
        let a = eliminate(&g, Heuristic::MinFill);
        let b = eliminate(&g, Heuristic::MinFill);
        assert_eq!(a.order, b.order);
    }
}
