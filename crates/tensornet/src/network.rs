//! The tensor-network container and the dense contraction executor.

use crate::index::IndexId;
use crate::plan::{ContractionPlan, PlanStep, Strategy};
use crate::tensor::Tensor;
use qaec_math::C64;
use std::collections::BTreeSet;

/// A tensor network: a list of tensors plus bookkeeping about which
/// indices are *open* (must survive contraction) and which closed indices
/// exist even if no tensor touches them (bare wire loops, each worth a
/// factor 2 in a trace network).
///
/// # Example
///
/// ```
/// use qaec_math::{C64, Matrix};
/// use qaec_tensornet::{IndexId, Tensor, TensorNetwork, Strategy};
///
/// // tr(H·H) = 2.
/// let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
/// let h = Matrix::from_rows(&[vec![s, s], vec![s, -s]]);
/// let mut net = TensorNetwork::new();
/// net.add(Tensor::from_matrix(&h, &[IndexId(1)], &[IndexId(0)]));
/// net.add(Tensor::from_matrix(&h, &[IndexId(0)], &[IndexId(1)]));
/// let plan = net.plan(Strategy::MinFill);
/// let out = net.contract_dense(&plan);
/// assert!((out.as_scalar().unwrap().re - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TensorNetwork {
    tensors: Vec<Tensor>,
    open: BTreeSet<IndexId>,
    closed_extra: BTreeSet<IndexId>,
}

impl TensorNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a tensor, returning its slot id.
    pub fn add(&mut self, tensor: Tensor) -> usize {
        self.tensors.push(tensor);
        self.tensors.len() - 1
    }

    /// Marks an index as open: it survives contraction into the result.
    pub fn mark_open(&mut self, idx: IndexId) {
        self.open.insert(idx);
    }

    /// Registers a closed index that may touch no tensor at all (a bare
    /// traced wire); each such loop multiplies a trace value by 2.
    pub fn close_index(&mut self, idx: IndexId) {
        self.closed_extra.insert(idx);
    }

    /// Whether `idx` is open.
    pub fn is_open(&self, idx: IndexId) -> bool {
        self.open.contains(&idx)
    }

    /// The open indices.
    pub fn open_indices(&self) -> &BTreeSet<IndexId> {
        &self.open
    }

    /// Closed indices registered via [`TensorNetwork::close_index`].
    pub fn closed_indices(&self) -> &BTreeSet<IndexId> {
        &self.closed_extra
    }

    /// The tensors.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the network has no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// All distinct indices appearing in tensors.
    pub fn all_indices(&self) -> BTreeSet<IndexId> {
        let mut out = BTreeSet::new();
        for t in &self.tensors {
            out.extend(t.indices().iter().copied());
        }
        out
    }

    /// Builds a contraction plan (see [`Strategy`]).
    pub fn plan(&self, strategy: Strategy) -> ContractionPlan {
        ContractionPlan::build(self, strategy)
    }

    /// Builds a contraction plan with component-level parallel
    /// construction (see [`ContractionPlan::build_parallel`]): plans for
    /// disconnected components are built concurrently on up to `workers`
    /// threads and stitched. The resulting plan depends only on the
    /// network and strategy — `workers` never changes the emitted steps.
    pub fn plan_parallel(&self, strategy: Strategy, workers: usize) -> ContractionPlan {
        ContractionPlan::build_parallel(self, strategy, workers)
    }

    /// Executes a plan with the dense backend, returning the final tensor
    /// (rank 0 for a fully closed network). Bare wire loops contribute
    /// their powers of two to the result.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match this network (wrong slot ids).
    pub fn contract_dense(&self, plan: &ContractionPlan) -> Tensor {
        let mut slots: Vec<Option<Tensor>> = self.tensors.iter().cloned().map(Some).collect();
        slots.resize(plan.n_slots.max(slots.len()), None);
        for step in &plan.steps {
            match step {
                PlanStep::Contract {
                    a,
                    b,
                    eliminate,
                    result,
                } => {
                    let ta = slots[*a].take().expect("operand a live");
                    let tb = slots[*b].take().expect("operand b live");
                    slots[*result] = Some(ta.contract(&tb, eliminate));
                }
                PlanStep::SumOut {
                    t,
                    eliminate,
                    result,
                } => {
                    let tt = slots[*t].take().expect("operand live");
                    slots[*result] = Some(tt.contract(&Tensor::scalar(C64::ONE), eliminate));
                }
            }
        }
        let mut out = (0..slots.len())
            .rev()
            .find_map(|i| slots[i].take())
            .unwrap_or_else(|| Tensor::scalar(C64::ONE));
        if plan.free_loops > 0 {
            out = out.scale(C64::real((plan.free_loops as f64).exp2()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_math::Matrix;

    #[test]
    fn empty_network_contracts_to_one() {
        let net = TensorNetwork::new();
        let plan = net.plan(Strategy::Sequential);
        assert_eq!(net.contract_dense(&plan).as_scalar().unwrap(), C64::ONE);
    }

    #[test]
    fn bare_loops_multiply() {
        let mut net = TensorNetwork::new();
        net.close_index(IndexId(0));
        net.close_index(IndexId(1));
        let plan = net.plan(Strategy::Sequential);
        // Two untouched traced wires: tr(I⊗I) = 4.
        assert_eq!(
            net.contract_dense(&plan).as_scalar().unwrap(),
            C64::real(4.0)
        );
    }

    #[test]
    fn all_indices_collects() {
        let mut net = TensorNetwork::new();
        net.add(Tensor::delta(IndexId(3), IndexId(8)));
        net.add(Tensor::delta(IndexId(8), IndexId(5)));
        let all = net.all_indices();
        assert_eq!(
            all.into_iter().collect::<Vec<_>>(),
            vec![IndexId(3), IndexId(5), IndexId(8)]
        );
    }

    #[test]
    fn identity_chain_traces_to_dimension() {
        // tr(I) over a 3-tensor identity chain = 2.
        let mut net = TensorNetwork::new();
        net.add(Tensor::delta(IndexId(1), IndexId(0)));
        net.add(Tensor::delta(IndexId(2), IndexId(1)));
        net.add(Tensor::delta(IndexId(0), IndexId(2)));
        for strategy in [
            Strategy::Sequential,
            Strategy::GreedySize,
            Strategy::MinDegree,
            Strategy::MinFill,
        ] {
            let plan = net.plan(strategy);
            let out = net.contract_dense(&plan);
            assert_eq!(out.as_scalar().unwrap(), C64::real(2.0), "{strategy:?}");
        }
    }

    #[test]
    fn two_qubit_gate_trace() {
        // tr(SWAP) = 2: SWAP[o0,o1,i0,i1] with o=i.
        let swap = {
            let (o, z) = (C64::ONE, C64::ZERO);
            Matrix::from_rows(&[
                vec![o, z, z, z],
                vec![z, z, o, z],
                vec![z, o, z, z],
                vec![z, z, z, o],
            ])
        };
        // Duplicate indices within one tensor are rejected by design, so
        // the trace closure goes through explicit delta tensors, exactly
        // as the miter builder does.
        let mut net = TensorNetwork::new();
        net.add(Tensor::from_matrix(
            &swap,
            &[IndexId(2), IndexId(3)],
            &[IndexId(0), IndexId(1)],
        ));
        net.add(Tensor::delta(IndexId(2), IndexId(0)));
        net.add(Tensor::delta(IndexId(3), IndexId(1)));
        let plan = net.plan(Strategy::MinFill);
        let out = net.contract_dense(&plan);
        assert_eq!(out.as_scalar().unwrap(), C64::real(2.0));
    }
}
