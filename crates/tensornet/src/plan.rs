//! Contraction planning.
//!
//! A [`ContractionPlan`] is a deterministic sequence of pairwise
//! contractions (plus a final sum-out) that reduces a network to a single
//! tensor over its open indices. Plans are computed once and can then be
//! executed by either backend — dense ([`crate::TensorNetwork::contract_dense`])
//! or decision diagrams (`qaec-tdd`).

use crate::elimination::{eliminate, Heuristic, LineGraph};
use crate::index::IndexId;
use crate::network::TensorNetwork;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of top-level plan constructions
/// ([`ContractionPlan::build`] / [`ContractionPlan::build_parallel`] —
/// a stitched multi-component build counts once, not per component).
///
/// This is the observable behind the compile-once session API's
/// "plan built exactly once per `compile()`" guarantee: the bench
/// harness snapshots [`build_count`] around an N-point sweep and asserts
/// the delta is 1, not N.
static PLAN_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total number of contraction plans built by this process so far.
/// Monotone; take a snapshot before and after an operation to count the
/// plans it constructed.
pub fn build_count() -> u64 {
    // ordering: Relaxed — monotone statistics counter; callers snapshot
    // before/after an operation they themselves sequence.
    PLAN_BUILDS.load(Ordering::Relaxed)
}

/// How to choose the contraction order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Fold tensors left-to-right in insertion (circuit) order.
    Sequential,
    /// Greedily contract the adjacent pair minimizing the resulting rank.
    GreedySize,
    /// Index-elimination order from a min-degree tree decomposition of the
    /// line graph.
    MinDegree,
    /// Index-elimination order from a min-fill tree decomposition (the
    /// paper's tree-decomposition optimisation).
    MinFill,
}

/// One step of a plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanStep {
    /// Contract slots `a` and `b`, eliminating `eliminate`, producing slot
    /// `result`.
    Contract {
        /// Left operand slot.
        a: usize,
        /// Right operand slot.
        b: usize,
        /// Indices summed out in this step (sorted).
        eliminate: Vec<IndexId>,
        /// Slot id of the result.
        result: usize,
    },
    /// Sum the listed indices out of slot `t`, producing slot `result`
    /// (used to close single-tensor networks).
    SumOut {
        /// Operand slot.
        t: usize,
        /// Indices summed out.
        eliminate: Vec<IndexId>,
        /// Slot id of the result.
        result: usize,
    },
}

impl PlanStep {
    /// The slot the step writes.
    pub fn result(&self) -> usize {
        match *self {
            PlanStep::Contract { result, .. } | PlanStep::SumOut { result, .. } => result,
        }
    }
}

/// A complete contraction schedule for one network.
#[derive(Clone, Debug, Default)]
pub struct ContractionPlan {
    /// The steps, in execution order. Slot ids `0..n_tensors` are the
    /// network's tensors; results occupy fresh slots.
    pub steps: Vec<PlanStep>,
    /// Total number of slots (inputs + results).
    pub n_slots: usize,
    /// Scalar power-of-two factor from closed indices touching no tensor.
    pub free_loops: u32,
}

/// Static cost estimates for a plan (used by reports and the planner
/// ablation bench).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanCost {
    /// Largest intermediate tensor rank.
    pub max_rank: usize,
    /// `Σ 2^{union rank}` over steps — dense flop estimate.
    pub dense_ops: f64,
}

/// The step-level dependency DAG of a [`ContractionPlan`], extracted for
/// parallel (out-of-order) execution.
///
/// Steps form a tree through their slot indices: a step depends on the
/// steps producing its operand slots (operand slots below the tensor
/// count are network inputs and impose no dependency). Any topological
/// execution order computes the same result, so a scheduler is free to
/// run steps whose dependencies have resolved concurrently.
#[derive(Clone, Debug, Default)]
pub struct PlanGraph {
    /// Per step, the indices of the steps producing its operand slots
    /// (0, 1 or 2 entries).
    pub operands: Vec<Vec<usize>>,
    /// Per step, the indices of the steps consuming its result slot.
    pub dependents: Vec<Vec<usize>>,
    /// Per step, the number of producing steps it waits on
    /// (`operands[i].len()`).
    pub indegree: Vec<usize>,
    /// Per step, a critical-path-first priority: the estimated dense
    /// cost of the step plus the heaviest chain of dependent steps above
    /// it. Schedulers that prefer high-priority ready steps shorten the
    /// makespan by keeping the critical path busy.
    pub priority: Vec<f64>,
    /// The slot holding the final result: the highest-numbered slot
    /// (input or step result) no step consumes. `None` for an empty
    /// network.
    pub root_slot: Option<usize>,
    /// Input slots (`< n_tensors`) that no step consumes — at most the
    /// root for well-formed plans, but tracked so an executor can
    /// account for every converted input.
    pub unconsumed_inputs: Vec<usize>,
}

impl PlanGraph {
    /// Steps that are immediately runnable (no step dependencies), in
    /// step order.
    pub fn initial_ready(&self) -> Vec<usize> {
        (0..self.indegree.len())
            .filter(|&i| self.indegree[i] == 0)
            .collect()
    }
}

impl ContractionPlan {
    /// Builds a plan for `network` with the given strategy.
    ///
    /// This is usually called through [`TensorNetwork::plan`].
    pub fn build(network: &TensorNetwork, strategy: Strategy) -> ContractionPlan {
        // ordering: Relaxed — statistics counter (see `build_count`).
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
        Self::build_inner(network, strategy)
    }

    fn build_inner(network: &TensorNetwork, strategy: Strategy) -> ContractionPlan {
        let merges = match strategy {
            Strategy::Sequential => sequential_merges(network),
            Strategy::GreedySize => greedy_merges(network),
            Strategy::MinDegree => elimination_merges(network, Heuristic::MinDegree),
            Strategy::MinFill => elimination_merges(network, Heuristic::MinFill),
        };
        from_merges(network, &merges)
    }

    /// [`ContractionPlan::build`] with component-level parallel
    /// construction: when the network splits into disconnected
    /// components (no shared indices), each component is planned
    /// independently — concurrently on up to `workers` threads — and
    /// the per-component plans are stitched into one plan whose tail
    /// folds the component results together.
    ///
    /// The stitched plan is a **pure function of the network and
    /// strategy**: `workers` only bounds construction concurrency, never
    /// the emitted steps, so callers may pass their thread count freely
    /// without perturbing downstream node statistics. Connected networks
    /// fall back to the plain single-component build.
    ///
    /// This is usually called through [`TensorNetwork::plan_parallel`].
    pub fn build_parallel(
        network: &TensorNetwork,
        strategy: Strategy,
        workers: usize,
    ) -> ContractionPlan {
        let components = connected_components(network);
        if components.len() <= 1 {
            return Self::build(network, strategy);
        }
        // ordering: Relaxed — statistics counter (see `build_count`).
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);

        // Per-component sub-networks: the component's tensors (in global
        // slot order) with the global open marks restricted to them.
        // Closed-but-untouched indices stay a global concern (free
        // loops, counted below).
        let sub_networks: Vec<TensorNetwork> = components
            .iter()
            .map(|slots| {
                let mut sub = TensorNetwork::new();
                for &slot in slots {
                    let tensor = network.tensors()[slot].clone();
                    for &idx in tensor.indices() {
                        if network.is_open(idx) {
                            sub.mark_open(idx);
                        }
                    }
                    sub.add(tensor);
                }
                sub
            })
            .collect();

        // Plan every component; concurrently when it pays. Results land
        // in component order, so the stitched plan is scheduling-free.
        let workers = workers.max(1).min(sub_networks.len());
        let sub_plans: Vec<ContractionPlan> = if workers <= 1 {
            sub_networks
                .iter()
                .map(|sub| Self::build_inner(sub, strategy))
                .collect()
        } else {
            // Work-stealing off a shared cursor; each worker returns its
            // `(component, plan)` haul and the hauls are re-assembled in
            // component order.
            let next = AtomicU64::new(0);
            let mut plans: Vec<Option<ContractionPlan>> = vec![None; sub_networks.len()];
            let hauls: Vec<Vec<(usize, ContractionPlan)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut haul = Vec::new();
                            loop {
                                // ordering: Relaxed — the RMW's atomicity
                                // alone partitions the component range;
                                // result publication happens through
                                // scope join, not through this cursor.
                                let k = next.fetch_add(1, Ordering::Relaxed) as usize;
                                let Some(sub) = sub_networks.get(k) else {
                                    break;
                                };
                                haul.push((k, Self::build_inner(sub, strategy)));
                            }
                            haul
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("planner worker panicked"))
                    .collect()
            });
            for (k, plan) in hauls.into_iter().flatten() {
                plans[k] = Some(plan);
            }
            plans
                .into_iter()
                .map(|p| p.expect("every component planned"))
                .collect()
        };

        stitch_component_plans(network, &components, sub_plans)
    }

    /// Cost estimates given the index sets of the original tensors.
    pub fn cost(&self, network: &TensorNetwork) -> PlanCost {
        let mut sets: Vec<Option<BTreeSet<IndexId>>> = network
            .tensors()
            .iter()
            .map(|t| Some(t.indices().iter().copied().collect()))
            .collect();
        sets.resize(self.n_slots, None);
        let mut cost = PlanCost::default();
        for step in &self.steps {
            match step {
                PlanStep::Contract {
                    a,
                    b,
                    eliminate,
                    result,
                } => {
                    let sa = sets[*a].take().expect("operand a live");
                    let sb = sets[*b].take().expect("operand b live");
                    let union: BTreeSet<IndexId> = sa.union(&sb).copied().collect();
                    cost.dense_ops += (union.len() as f64).exp2();
                    let out: BTreeSet<IndexId> = union
                        .into_iter()
                        .filter(|i| !eliminate.contains(i))
                        .collect();
                    cost.max_rank = cost.max_rank.max(out.len());
                    sets[*result] = Some(out);
                }
                PlanStep::SumOut {
                    t,
                    eliminate,
                    result,
                } => {
                    let st = sets[*t].take().expect("operand live");
                    cost.dense_ops += (st.len() as f64).exp2();
                    let out: BTreeSet<IndexId> =
                        st.into_iter().filter(|i| !eliminate.contains(i)).collect();
                    sets[*result] = Some(out);
                }
            }
        }
        cost
    }

    /// Extracts the step dependency DAG (see [`PlanGraph`]).
    ///
    /// `network` must be the network the plan was built for; its tensor
    /// index sets seed the per-step cost estimates behind the
    /// critical-path priorities.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match the network (an operand slot is
    /// consumed twice or never produced).
    pub fn graph(&self, network: &TensorNetwork) -> PlanGraph {
        let n_inputs = network.tensors().len();
        let n_steps = self.steps.len();
        // producer[slot] = step writing that slot (inputs have none).
        let mut producer: Vec<Option<usize>> = vec![None; self.n_slots.max(n_inputs)];
        let mut consumed: Vec<bool> = vec![false; self.n_slots.max(n_inputs)];
        for (i, step) in self.steps.iter().enumerate() {
            assert!(
                producer[step.result()].is_none(),
                "slot {} produced twice",
                step.result()
            );
            producer[step.result()] = Some(i);
        }
        let mut operands: Vec<Vec<usize>> = vec![Vec::new(); n_steps];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_steps];
        for (i, step) in self.steps.iter().enumerate() {
            let slots: &[usize] = match step {
                PlanStep::Contract { a, b, .. } => &[*a, *b],
                PlanStep::SumOut { t, .. } => &[*t],
            };
            for &slot in slots {
                assert!(!consumed[slot], "slot {slot} consumed twice");
                consumed[slot] = true;
                if let Some(p) = producer[slot] {
                    operands[i].push(p);
                    dependents[p].push(i);
                }
            }
        }
        let indegree: Vec<usize> = operands.iter().map(Vec::len).collect();

        // Per-step dense cost estimate (2^{union rank}), replayed like
        // `cost` but kept per step for the priorities.
        let mut sets: Vec<Option<BTreeSet<IndexId>>> = network
            .tensors()
            .iter()
            .map(|t| Some(t.indices().iter().copied().collect()))
            .collect();
        sets.resize(self.n_slots.max(n_inputs), None);
        let mut step_cost = vec![0.0f64; n_steps];
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                PlanStep::Contract {
                    a,
                    b,
                    eliminate,
                    result,
                } => {
                    let sa = sets[*a].take().expect("operand a live");
                    let sb = sets[*b].take().expect("operand b live");
                    let union: BTreeSet<IndexId> = sa.union(&sb).copied().collect();
                    step_cost[i] = (union.len() as f64).exp2();
                    sets[*result] = Some(
                        union
                            .into_iter()
                            .filter(|x| !eliminate.contains(x))
                            .collect(),
                    );
                }
                PlanStep::SumOut {
                    t,
                    eliminate,
                    result,
                } => {
                    let st = sets[*t].take().expect("operand live");
                    step_cost[i] = (st.len() as f64).exp2();
                    sets[*result] =
                        Some(st.into_iter().filter(|x| !eliminate.contains(x)).collect());
                }
            }
        }

        // Critical-path priority: own cost plus the heaviest dependent
        // chain. Steps are stored in topological order (results occupy
        // fresh, increasing slots), so one reverse pass suffices.
        let mut priority = step_cost;
        for i in (0..n_steps).rev() {
            let above = dependents[i]
                .iter()
                .map(|&d| priority[d])
                .fold(0.0f64, f64::max);
            priority[i] += above;
        }

        let root_slot = (0..self.n_slots.max(n_inputs))
            .rev()
            .find(|&s| !consumed[s] && (producer[s].is_some() || s < n_inputs));
        let unconsumed_inputs: Vec<usize> = (0..n_inputs).filter(|&s| !consumed[s]).collect();

        PlanGraph {
            operands,
            dependents,
            indegree,
            priority,
            root_slot,
            unconsumed_inputs,
        }
    }
}

/// Groups tensor slots into connected components (tensors sharing an
/// index are connected), each sorted ascending, components ordered by
/// their smallest slot — a deterministic decomposition.
fn connected_components(network: &TensorNetwork) -> Vec<Vec<usize>> {
    let n = network.tensors().len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut holder: BTreeMap<IndexId, usize> = BTreeMap::new();
    for (slot, tensor) in network.tensors().iter().enumerate() {
        for &idx in tensor.indices() {
            match holder.get(&idx) {
                Some(&first) => {
                    let (a, b) = (find(&mut parent, first), find(&mut parent, slot));
                    if a != b {
                        // Union toward the smaller root so representatives
                        // stay the component's first slot.
                        let (lo, hi) = (a.min(b), a.max(b));
                        parent[hi] = lo;
                    }
                }
                None => {
                    holder.insert(idx, slot);
                }
            }
        }
    }
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for slot in 0..n {
        let root = find(&mut parent, slot);
        by_root.entry(root).or_default().push(slot);
    }
    by_root.into_values().collect()
}

/// Stitches independently-built component plans into one plan over the
/// full network: remaps each sub-plan's slots (inputs to the component's
/// global tensor slots, results to fresh global slots in emission
/// order), then folds the component results pairwise. Components share
/// no indices, so the folds eliminate nothing — for closed networks they
/// multiply the component scalars.
fn stitch_component_plans(
    network: &TensorNetwork,
    components: &[Vec<usize>],
    sub_plans: Vec<ContractionPlan>,
) -> ContractionPlan {
    let n_inputs = network.tensors().len();
    let mut steps: Vec<PlanStep> = Vec::new();
    let mut next_slot = n_inputs;
    let mut roots: Vec<usize> = Vec::with_capacity(components.len());
    for (slots, sub) in components.iter().zip(sub_plans) {
        // `from_merges` numbers sub-results densely from the sub input
        // count, one per step, so the remap is a fixed offset.
        let base = next_slot;
        let map = |s: usize| {
            if s < slots.len() {
                slots[s]
            } else {
                base + (s - slots.len())
            }
        };
        for step in &sub.steps {
            steps.push(match step {
                PlanStep::Contract {
                    a,
                    b,
                    eliminate,
                    result,
                } => PlanStep::Contract {
                    a: map(*a),
                    b: map(*b),
                    eliminate: eliminate.clone(),
                    result: map(*result),
                },
                PlanStep::SumOut {
                    t,
                    eliminate,
                    result,
                } => PlanStep::SumOut {
                    t: map(*t),
                    eliminate: eliminate.clone(),
                    result: map(*result),
                },
            });
        }
        next_slot += sub.steps.len();
        roots.push(match sub.steps.last() {
            Some(last) => base + (last.result() - slots.len()),
            // A stepless component is a single tensor whose indices all
            // survive (open): its root is the input itself.
            None => slots[0],
        });
    }

    // Fold the component results left to right.
    let mut acc = roots[0];
    for &root in &roots[1..] {
        steps.push(PlanStep::Contract {
            a: acc,
            b: root,
            eliminate: Vec::new(),
            result: next_slot,
        });
        acc = next_slot;
        next_slot += 1;
    }

    // Free loops are a whole-network property: closed indices no tensor
    // touches (the sub-plans saw none of them).
    let touched: BTreeSet<IndexId> = network.all_indices();
    let free_loops = network
        .closed_indices()
        .iter()
        .filter(|i| !touched.contains(i))
        .count() as u32;

    ContractionPlan {
        steps,
        n_slots: next_slot,
        free_loops,
    }
}

/// Reference-counted merge lowering: turns a sequence of slot merges into
/// concrete steps with per-step eliminations.
fn from_merges(network: &TensorNetwork, merges: &[(usize, usize)]) -> ContractionPlan {
    let n = network.tensors().len();
    let mut sets: Vec<Option<BTreeSet<IndexId>>> = network
        .tensors()
        .iter()
        .map(|t| Some(t.indices().iter().copied().collect()))
        .collect();
    // occurrence count per index over live slots
    let mut occ: BTreeMap<IndexId, usize> = BTreeMap::new();
    for set in sets.iter().flatten() {
        for &i in set {
            *occ.entry(i).or_default() += 1;
        }
    }
    // Closed indices that no tensor touches: each contributes a factor 2
    // (a bare wire loop). They are the network's closed indices minus all
    // tensor indices.
    let free_loops = network
        .closed_indices()
        .iter()
        .filter(|i| !occ.contains_key(i))
        .count() as u32;

    let mut steps = Vec::with_capacity(merges.len() + 1);
    let mut next_slot = n;
    for &(a, b) in merges {
        let sa = sets[a]
            .take()
            .unwrap_or_else(|| panic!("slot {a} not live"));
        let sb = sets[b]
            .take()
            .unwrap_or_else(|| panic!("slot {b} not live"));
        let union: BTreeSet<IndexId> = sa.union(&sb).copied().collect();
        let mut eliminate = Vec::new();
        let mut out = BTreeSet::new();
        for &i in &union {
            let mut count = occ[&i];
            count -= usize::from(sa.contains(&i));
            count -= usize::from(sb.contains(&i));
            if count == 0 && !network.is_open(i) {
                eliminate.push(i);
                occ.remove(&i);
            } else {
                out.insert(i);
                occ.insert(i, count + 1);
            }
        }
        let result = next_slot;
        next_slot += 1;
        sets.push(Some(out));
        steps.push(PlanStep::Contract {
            a,
            b,
            eliminate,
            result,
        });
    }

    // Close the final tensor: sum out any remaining non-open indices.
    if let Some(last) = (0..sets.len()).rev().find(|&i| sets[i].is_some()) {
        let remaining: Vec<IndexId> = sets[last]
            .as_ref()
            .expect("live")
            .iter()
            .copied()
            .filter(|&i| !network.is_open(i))
            .collect();
        if !remaining.is_empty() {
            steps.push(PlanStep::SumOut {
                t: last,
                eliminate: remaining,
                result: next_slot,
            });
            next_slot += 1;
        }
    }

    ContractionPlan {
        steps,
        n_slots: next_slot,
        free_loops,
    }
}

/// Left-to-right fold, then fold in any disconnected leftovers (there are
/// none for a fold, but keep the shape general).
fn sequential_merges(network: &TensorNetwork) -> Vec<(usize, usize)> {
    let n = network.tensors().len();
    if n <= 1 {
        return Vec::new();
    }
    let mut merges = Vec::with_capacity(n - 1);
    let mut acc = 0usize;
    for (k, t) in (1..n).enumerate() {
        merges.push((acc, t));
        acc = n + k;
    }
    merges
}

/// Greedy: repeatedly contract the pair of live, index-sharing slots whose
/// result has minimal rank; falls back to the two smallest slots when the
/// network is disconnected.
fn greedy_merges(network: &TensorNetwork) -> Vec<(usize, usize)> {
    let n = network.tensors().len();
    if n <= 1 {
        return Vec::new();
    }
    let mut sets: Vec<Option<BTreeSet<IndexId>>> = network
        .tensors()
        .iter()
        .map(|t| Some(t.indices().iter().copied().collect()))
        .collect();
    let mut occ: BTreeMap<IndexId, usize> = BTreeMap::new();
    for set in sets.iter().flatten() {
        for &i in set {
            *occ.entry(i).or_default() += 1;
        }
    }
    let mut merges = Vec::with_capacity(n - 1);
    let mut live: BTreeSet<usize> = (0..n).collect();
    while live.len() > 1 {
        // Candidate pairs: slots sharing an index.
        let mut best: Option<(usize, usize, usize)> = None; // (rank, a, b)
        let mut index_holders: BTreeMap<IndexId, Vec<usize>> = BTreeMap::new();
        for &s in &live {
            for &i in sets[s].as_ref().expect("live") {
                index_holders.entry(i).or_default().push(s);
            }
        }
        for holders in index_holders.values() {
            for (x, &a) in holders.iter().enumerate() {
                for &b in &holders[x + 1..] {
                    let sa = sets[a].as_ref().expect("live");
                    let sb = sets[b].as_ref().expect("live");
                    let union: BTreeSet<IndexId> = sa.union(sb).copied().collect();
                    let out_rank = union
                        .iter()
                        .filter(|&&i| {
                            let residual = occ[&i]
                                - usize::from(sa.contains(&i))
                                - usize::from(sb.contains(&i));
                            residual > 0 || network.is_open(i)
                        })
                        .count();
                    if best.is_none_or(|(r, ba, bb)| (out_rank, a, b) < (r, ba, bb)) {
                        best = Some((out_rank, a, b));
                    }
                }
            }
        }
        let (a, b) = match best {
            Some((_, a, b)) => (a, b),
            None => {
                // Disconnected: merge the two smallest-rank slots.
                let mut by_rank: Vec<usize> = live.iter().copied().collect();
                by_rank.sort_by_key(|&s| sets[s].as_ref().expect("live").len());
                (by_rank[0], by_rank[1])
            }
        };
        let sa = sets[a].take().expect("live");
        let sb = sets[b].take().expect("live");
        live.remove(&a);
        live.remove(&b);
        let mut out = BTreeSet::new();
        for &i in sa.union(&sb) {
            let count = occ[&i] - usize::from(sa.contains(&i)) - usize::from(sb.contains(&i));
            if count == 0 && !network.is_open(i) {
                occ.remove(&i);
            } else {
                out.insert(i);
                occ.insert(i, count + 1);
            }
        }
        let result = sets.len();
        sets.push(Some(out));
        live.insert(result);
        merges.push((a, b));
    }
    merges
}

/// Index-elimination order from a tree decomposition of the line graph:
/// eliminating index `v` merges all live slots containing `v`.
fn elimination_merges(network: &TensorNetwork, heuristic: Heuristic) -> Vec<(usize, usize)> {
    let n = network.tensors().len();
    if n <= 1 {
        return Vec::new();
    }
    let graph = LineGraph::from_cliques(
        network
            .tensors()
            .iter()
            .map(|t| t.indices().to_vec())
            .collect::<Vec<_>>(),
    );
    let td = eliminate(&graph, heuristic);

    let mut sets: Vec<Option<BTreeSet<IndexId>>> = network
        .tensors()
        .iter()
        .map(|t| Some(t.indices().iter().copied().collect()))
        .collect();
    let mut merges = Vec::new();
    for &v in &td.order {
        if network.is_open(v) {
            continue; // open indices are never eliminated
        }
        let holders: Vec<usize> = (0..sets.len())
            .filter(|&s| sets[s].as_ref().is_some_and(|set| set.contains(&v)))
            .collect();
        if holders.len() < 2 {
            continue;
        }
        let mut acc = holders[0];
        for &next in &holders[1..] {
            let sa = sets[acc].take().expect("live");
            let sb = sets[next].take().expect("live");
            let union: BTreeSet<IndexId> = sa.union(&sb).copied().collect();
            merges.push((acc, next));
            acc = sets.len();
            sets.push(Some(union));
        }
    }
    // Fold any remaining live slots (disconnected pieces / leftovers).
    let mut live: Vec<usize> = (0..sets.len()).filter(|&s| sets[s].is_some()).collect();
    while live.len() > 1 {
        let a = live[0];
        let b = live[1];
        let sa = sets[a].take().expect("live");
        let sb = sets[b].take().expect("live");
        merges.push((a, b));
        sets.push(Some(sa.union(&sb).copied().collect()));
        live = (0..sets.len()).filter(|&s| sets[s].is_some()).collect();
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use qaec_math::{Matrix, C64};

    fn wire_chain(n: usize) -> TensorNetwork {
        // H_0 · H_1 · ... · H_{n-1} as a chain, traced: index i connects
        // tensor i-1 out to tensor i in; index n-1 wraps to 0.
        let h = {
            let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
            Matrix::from_rows(&[vec![s, s], vec![s, -s]])
        };
        let mut net = TensorNetwork::new();
        for k in 0..n {
            let input = IndexId(k as u32);
            let output = IndexId(((k + 1) % n) as u32);
            net.add(Tensor::from_matrix(&h, &[output], &[input]));
        }
        net
    }

    #[test]
    fn all_strategies_agree_on_trace_of_h_chain() {
        // tr(H^4) = tr(I⊗... for 2x2: H² = I so tr(H⁴) = tr(I) = 2.
        for strategy in [
            Strategy::Sequential,
            Strategy::GreedySize,
            Strategy::MinDegree,
            Strategy::MinFill,
        ] {
            let net = wire_chain(4);
            let plan = net.plan(strategy);
            let out = net.contract_dense(&plan);
            let v = out.as_scalar().expect("scalar");
            assert!((v - C64::real(2.0)).abs() < 1e-12, "{strategy:?} gave {v}");
        }
    }

    #[test]
    fn odd_chain_traces_h() {
        // tr(H³) = tr(H) = 0... H³ = H. tr(H) = 0? H trace = 1/√2 − 1/√2 = 0.
        let net = wire_chain(3);
        let plan = net.plan(Strategy::MinFill);
        let out = net.contract_dense(&plan);
        assert!(out.as_scalar().unwrap().abs() < 1e-12);
    }

    #[test]
    fn single_tensor_network_sums_out() {
        // One identity tensor with both indices closed: tr(I) = 2.
        let mut net = TensorNetwork::new();
        net.add(Tensor::delta(IndexId(0), IndexId(1)));
        let plan = net.plan(Strategy::Sequential);
        assert_eq!(plan.steps.len(), 1);
        assert!(matches!(plan.steps[0], PlanStep::SumOut { .. }));
        let out = net.contract_dense(&plan);
        assert_eq!(out.as_scalar().unwrap(), C64::real(2.0));
    }

    #[test]
    fn open_indices_survive() {
        let h = {
            let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
            Matrix::from_rows(&[vec![s, s], vec![s, -s]])
        };
        let mut net = TensorNetwork::new();
        net.add(Tensor::from_matrix(&h, &[IndexId(1)], &[IndexId(0)]));
        net.add(Tensor::from_matrix(&h, &[IndexId(2)], &[IndexId(1)]));
        net.mark_open(IndexId(0));
        net.mark_open(IndexId(2));
        let plan = net.plan(Strategy::GreedySize);
        let out = net.contract_dense(&plan);
        // H·H = I with open ends.
        assert_eq!(out.rank(), 2);
        let expected = Tensor::from_matrix(&Matrix::identity(2), &[IndexId(2)], &[IndexId(0)]);
        let expected = expected.permute_to(out.indices());
        assert!(out.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn free_loops_counted() {
        let mut net = TensorNetwork::new();
        net.add(Tensor::delta(IndexId(0), IndexId(1)));
        net.close_index(IndexId(7)); // a bare wire loop touching nothing
        let plan = net.plan(Strategy::Sequential);
        assert_eq!(plan.free_loops, 1);
    }

    #[test]
    fn cost_tracks_max_rank() {
        let net = wire_chain(6);
        let plan = net.plan(Strategy::MinFill);
        let cost = plan.cost(&net);
        assert!(cost.max_rank <= 2, "chain should stay rank ≤ 2");
        assert!(cost.dense_ops > 0.0);
        // Sequential on a closed chain keeps the wrap-around index open
        // until the very end → same bound here.
        let seq = net.plan(Strategy::Sequential).cost(&net);
        assert!(seq.max_rank <= 2);
    }

    #[test]
    fn empty_network_plan() {
        let net = TensorNetwork::new();
        let plan = net.plan(Strategy::MinDegree);
        assert!(plan.steps.is_empty());
        let graph = plan.graph(&net);
        assert_eq!(graph.root_slot, None);
        assert!(graph.initial_ready().is_empty());
    }

    #[test]
    fn graph_is_a_consistent_dag() {
        for strategy in [
            Strategy::Sequential,
            Strategy::GreedySize,
            Strategy::MinDegree,
            Strategy::MinFill,
        ] {
            let net = wire_chain(6);
            let plan = net.plan(strategy);
            let graph = plan.graph(&net);
            assert_eq!(graph.operands.len(), plan.steps.len());
            assert_eq!(graph.indegree.len(), plan.steps.len());
            // Dependencies only point backwards; dependents forwards.
            for (i, deps) in graph.operands.iter().enumerate() {
                for &d in deps {
                    assert!(d < i, "{strategy:?}: dep {d} not before step {i}");
                    assert!(graph.dependents[d].contains(&i));
                }
            }
            // Executing in ready order covers every step exactly once.
            let mut indegree = graph.indegree.clone();
            let mut ready: Vec<usize> = graph.initial_ready();
            assert!(!ready.is_empty(), "{strategy:?}: no runnable step");
            let mut done = 0usize;
            while let Some(step) = ready.pop() {
                done += 1;
                for &d in &graph.dependents[step] {
                    indegree[d] -= 1;
                    if indegree[d] == 0 {
                        ready.push(d);
                    }
                }
            }
            assert_eq!(done, plan.steps.len(), "{strategy:?}: DAG not covered");
            // The root slot is the one the sequential executor would
            // pick: highest live slot after all steps ran.
            let root = graph.root_slot.expect("non-empty network has a root");
            assert_eq!(root, plan.steps.last().expect("steps").result());
            assert!(graph.unconsumed_inputs.is_empty());
        }
    }

    #[test]
    fn graph_priorities_are_critical_path_monotone() {
        let net = wire_chain(8);
        let plan = net.plan(Strategy::MinFill);
        let graph = plan.graph(&net);
        // A step's priority strictly exceeds every dependent's: it must
        // run earlier on the critical path.
        for (i, deps) in graph.dependents.iter().enumerate() {
            for &d in deps {
                assert!(
                    graph.priority[i] > graph.priority[d],
                    "step {i} priority {} not above dependent {d} ({})",
                    graph.priority[i],
                    graph.priority[d]
                );
            }
        }
    }

    /// `k` disjoint traced H-chains of length `len`: value = 2^k for
    /// even `len` (H² = I), with indices offset so chains share nothing.
    fn disconnected_chains(k: usize, len: usize) -> TensorNetwork {
        let h = {
            let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
            Matrix::from_rows(&[vec![s, s], vec![s, -s]])
        };
        let mut net = TensorNetwork::new();
        for chain in 0..k {
            let offset = (chain * len) as u32;
            for t in 0..len {
                let input = IndexId(offset + t as u32);
                let output = IndexId(offset + ((t + 1) % len) as u32);
                net.add(Tensor::from_matrix(&h, &[output], &[input]));
            }
        }
        net
    }

    #[test]
    fn components_are_detected_deterministically() {
        let net = disconnected_chains(3, 4);
        let components = connected_components(&net);
        assert_eq!(components.len(), 3);
        assert_eq!(components[0], vec![0, 1, 2, 3]);
        assert_eq!(components[2], vec![8, 9, 10, 11]);
        // A connected chain is one component.
        let connected = wire_chain(5);
        assert_eq!(connected_components(&connected).len(), 1);
        // The empty network has none.
        assert!(connected_components(&TensorNetwork::new()).is_empty());
    }

    #[test]
    fn stitched_plan_is_worker_independent_and_correct() {
        for strategy in [Strategy::MinFill, Strategy::GreedySize] {
            let net = disconnected_chains(4, 4);
            let reference = net.plan_parallel(strategy, 1);
            for workers in [2usize, 4, 8] {
                let plan = net.plan_parallel(strategy, workers);
                assert_eq!(
                    plan.steps, reference.steps,
                    "{strategy:?} workers={workers}: plan must not depend on workers"
                );
                assert_eq!(plan.n_slots, reference.n_slots);
            }
            // tr over 4 chains of H⁴ = I: 2⁴ = 16.
            let out = net.contract_dense(&reference);
            assert!(
                (out.as_scalar().unwrap() - C64::real(16.0)).abs() < 1e-12,
                "{strategy:?}"
            );
            // The stitched plan is a valid DAG with one root.
            let graph = reference.graph(&net);
            assert!(graph.root_slot.is_some());
            assert!(graph.unconsumed_inputs.is_empty());
        }
    }

    #[test]
    fn stitched_plan_handles_stepless_and_free_loop_components() {
        // One fully-open tensor (stepless component), one closed delta
        // pair, plus a bare closed loop (free_loops).
        let mut net = TensorNetwork::new();
        net.add(Tensor::delta(IndexId(0), IndexId(1)));
        net.mark_open(IndexId(0));
        net.mark_open(IndexId(1));
        net.add(Tensor::delta(IndexId(2), IndexId(3)));
        net.add(Tensor::delta(IndexId(3), IndexId(2)));
        net.close_index(IndexId(9));
        let plan = net.plan_parallel(Strategy::MinFill, 4);
        assert_eq!(plan.free_loops, 1);
        let out = net.contract_dense(&plan);
        // Open identity ⊗ tr(I)=2 × loop 2 → rank-2 tensor scaled by 4.
        assert_eq!(out.rank(), 2);
        let expected = Tensor::delta(IndexId(0), IndexId(1)).scale(C64::real(4.0));
        assert!(out.approx_eq(&expected.permute_to(out.indices()), 1e-12));
    }

    #[test]
    fn connected_networks_fall_back_to_the_plain_plan() {
        let net = wire_chain(6);
        let plain = net.plan(Strategy::MinFill);
        let parallel = net.plan_parallel(Strategy::MinFill, 4);
        assert_eq!(plain.steps, parallel.steps);
    }

    #[test]
    fn build_count_counts_top_level_builds_once() {
        let net = disconnected_chains(3, 4);
        let before = build_count();
        let _ = net.plan_parallel(Strategy::MinFill, 4);
        let mid = build_count();
        let _ = net.plan(Strategy::MinFill);
        let after = build_count();
        // Other tests build plans concurrently in this process, so the
        // deltas are lower bounds — but a *stitched* build incrementing
        // once per component would show up here as a jump of 3+.
        assert!(mid > before);
        assert!(after > mid);
    }

    #[test]
    fn graph_tracks_unconsumed_single_input() {
        // A single-tensor network whose only step is a SumOut consumes
        // the input; a no-step plan leaves it unconsumed as the root.
        let mut net = TensorNetwork::new();
        net.add(Tensor::delta(IndexId(0), IndexId(1)));
        net.mark_open(IndexId(0));
        net.mark_open(IndexId(1));
        let plan = net.plan(Strategy::Sequential);
        assert!(plan.steps.is_empty(), "fully open tensor needs no step");
        let graph = plan.graph(&net);
        assert_eq!(graph.root_slot, Some(0));
        assert_eq!(graph.unconsumed_inputs, vec![0]);
    }
}
