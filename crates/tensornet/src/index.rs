//! Global tensor-index identities and variable orders.

use std::collections::HashMap;
use std::fmt;

/// The identity of a binary tensor index (a qubit-wire segment).
///
/// Index ids are allocated by whoever builds the network (e.g. the miter
/// builder in `qaec`) and are globally meaningful within one network: two
/// tensors sharing an `IndexId` are connected along that index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexId(pub u32);

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A total order over index variables.
///
/// The decision-diagram engine requires every tensor's indices to be
/// ordered consistently by a single global order; contraction plans and
/// dense tensors use it for canonical index sorting as well. Levels are
/// dense `0..len`, level 0 being the *top* (root-most) variable.
///
/// # Example
///
/// ```
/// use qaec_tensornet::{IndexId, VarOrder};
///
/// let order = VarOrder::from_sequence([IndexId(7), IndexId(3)]);
/// assert_eq!(order.level(IndexId(7)), 0);
/// assert_eq!(order.level(IndexId(3)), 1);
/// assert!(order.contains(IndexId(3)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarOrder {
    level_of: HashMap<IndexId, u32>,
    by_level: Vec<IndexId>,
}

impl VarOrder {
    /// An empty order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an order from a sequence of indices, top variable first.
    ///
    /// # Panics
    ///
    /// Panics if an index appears twice.
    pub fn from_sequence(indices: impl IntoIterator<Item = IndexId>) -> Self {
        let mut order = VarOrder::new();
        for idx in indices {
            order.push(idx);
        }
        order
    }

    /// Appends an index at the bottom of the order.
    ///
    /// # Panics
    ///
    /// Panics if the index is already present.
    pub fn push(&mut self, idx: IndexId) {
        let level = self.by_level.len() as u32;
        let prev = self.level_of.insert(idx, level);
        assert!(prev.is_none(), "index {idx} already in the order");
        self.by_level.push(idx);
    }

    /// The level of `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not in the order.
    pub fn level(&self, idx: IndexId) -> u32 {
        *self
            .level_of
            .get(&idx)
            .unwrap_or_else(|| panic!("index {idx} not in variable order"))
    }

    /// The level of `idx`, if present.
    pub fn try_level(&self, idx: IndexId) -> Option<u32> {
        self.level_of.get(&idx).copied()
    }

    /// Whether `idx` is in the order.
    pub fn contains(&self, idx: IndexId) -> bool {
        self.level_of.contains_key(&idx)
    }

    /// The index at `level`.
    pub fn at_level(&self, level: u32) -> IndexId {
        self.by_level[level as usize]
    }

    /// Number of ordered indices.
    pub fn len(&self) -> usize {
        self.by_level.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.by_level.is_empty()
    }

    /// Sorts a slice of indices by level, top first.
    ///
    /// # Panics
    ///
    /// Panics if any index is missing from the order.
    pub fn sort(&self, indices: &mut [IndexId]) {
        indices.sort_by_key(|&i| self.level(i));
    }

    /// Iterates over indices from top (level 0) to bottom.
    pub fn iter(&self) -> impl Iterator<Item = IndexId> + '_ {
        self.by_level.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_follow_insertion() {
        let mut order = VarOrder::new();
        order.push(IndexId(10));
        order.push(IndexId(2));
        order.push(IndexId(5));
        assert_eq!(order.level(IndexId(10)), 0);
        assert_eq!(order.level(IndexId(5)), 2);
        assert_eq!(order.at_level(1), IndexId(2));
        assert_eq!(order.len(), 3);
        assert!(!order.is_empty());
    }

    #[test]
    fn sorting_respects_order_not_id() {
        let order = VarOrder::from_sequence([IndexId(9), IndexId(1), IndexId(4)]);
        let mut v = vec![IndexId(4), IndexId(9), IndexId(1)];
        order.sort(&mut v);
        assert_eq!(v, vec![IndexId(9), IndexId(1), IndexId(4)]);
    }

    #[test]
    fn try_level_and_contains() {
        let order = VarOrder::from_sequence([IndexId(0)]);
        assert_eq!(order.try_level(IndexId(0)), Some(0));
        assert_eq!(order.try_level(IndexId(1)), None);
        assert!(order.contains(IndexId(0)));
        assert!(!order.contains(IndexId(1)));
    }

    #[test]
    #[should_panic(expected = "already in the order")]
    fn duplicate_push_panics() {
        let mut order = VarOrder::new();
        order.push(IndexId(1));
        order.push(IndexId(1));
    }

    #[test]
    fn iter_is_top_down() {
        let order = VarOrder::from_sequence([IndexId(3), IndexId(1)]);
        let v: Vec<_> = order.iter().collect();
        assert_eq!(v, vec![IndexId(3), IndexId(1)]);
    }
}
