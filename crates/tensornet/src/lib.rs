//! Tensor networks over binary (qubit-wire) indices.
//!
//! A quantum circuit viewed as a tensor network — one tensor per gate,
//! with indices for the wire segments between gates — is the computational
//! object both checking algorithms of the paper contract. This crate
//! provides:
//!
//! * [`IndexId`] / [`VarOrder`] — global index identities and total orders
//!   over them (the decision-diagram engine requires a fixed variable
//!   order);
//! * [`Tensor`] — a dense complex tensor over binary indices, used as the
//!   reference contraction backend and for converting gate matrices;
//! * [`TensorNetwork`] — a bag of tensors plus the set of open indices;
//! * [`plan`] — contraction planning: sequential, greedy-size, and
//!   elimination-ordering-based plans derived from tree decompositions of
//!   the network's line graph (the paper's §IV-C, after Markov & Shi);
//! * [`elimination`] — min-degree / min-fill elimination orderings and
//!   tree decompositions with validity checking.
//!
//! # Example
//!
//! ```
//! use qaec_math::C64;
//! use qaec_tensornet::{IndexId, Tensor, TensorNetwork, plan::Strategy};
//!
//! // tr(X · X) = 2, as a two-tensor network: X[a,b] · X[b,a].
//! let a = IndexId(0);
//! let b = IndexId(1);
//! let x = |i, j| Tensor::from_flat(vec![i, j],
//!     vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]);
//! let mut net = TensorNetwork::new();
//! net.add(x(a, b));
//! net.add(x(b, a));
//! let plan = net.plan(Strategy::Sequential);
//! let result = net.contract_dense(&plan);
//! assert!((result.as_scalar().unwrap().re - 2.0).abs() < 1e-12);
//! ```

pub mod elimination;
pub mod index;
pub mod network;
pub mod plan;
pub mod tensor;

pub use index::{IndexId, VarOrder};
pub use network::TensorNetwork;
pub use plan::{ContractionPlan, PlanGraph, PlanStep, Strategy};
pub use tensor::Tensor;
