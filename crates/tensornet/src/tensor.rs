//! Dense complex tensors over binary indices.

use crate::index::{IndexId, VarOrder};
use qaec_math::{Matrix, C64};
use std::fmt;

/// A dense tensor whose indices are all of dimension 2.
///
/// Storage is row-major with `indices()[0]` as the most significant bit of
/// the flat position: the entry for assignment `(b₀, b₁, …, b_{r−1})` lives
/// at `b₀·2^{r−1} + … + b_{r−1}`.
///
/// This is the reference backend: contraction is a direct sum over the
/// union of the operands' index sets, exponential in the number of distinct
/// indices. The decision-diagram engine (`qaec-tdd`) implements the same
/// semantics compactly; tests cross-validate the two.
///
/// # Example
///
/// ```
/// use qaec_math::{C64, Matrix};
/// use qaec_tensornet::{IndexId, Tensor};
///
/// // An X gate as a tensor X[out, in], then tr(X·X) by contraction.
/// let x = Matrix::from_rows(&[
///     vec![C64::ZERO, C64::ONE],
///     vec![C64::ONE, C64::ZERO],
/// ]);
/// let (a, b) = (IndexId(0), IndexId(1));
/// let t1 = Tensor::from_matrix(&x, &[a], &[b]);
/// let t2 = Tensor::from_matrix(&x, &[b], &[a]);
/// let tr = t1.contract(&t2, &[a, b]);
/// assert!((tr.as_scalar().unwrap().re - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    indices: Vec<IndexId>,
    data: Vec<C64>,
}

impl Tensor {
    /// A rank-0 tensor holding one scalar.
    pub fn scalar(value: C64) -> Self {
        Tensor {
            indices: Vec::new(),
            data: vec![value],
        }
    }

    /// Builds a tensor from indices (most significant first) and a flat
    /// row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 2^indices.len()` or an index repeats.
    pub fn from_flat(indices: Vec<IndexId>, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            1usize << indices.len(),
            "buffer length must be 2^rank"
        );
        for (i, idx) in indices.iter().enumerate() {
            assert!(
                !indices[..i].contains(idx),
                "duplicate index {idx} in tensor"
            );
        }
        Tensor { indices, data }
    }

    /// Interprets a `2^m × 2^k` matrix as a tensor
    /// `T[outs…, ins…] = M[row(outs), col(ins)]`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the index counts, or if
    /// any index repeats across `outs ++ ins`.
    pub fn from_matrix(m: &Matrix, outs: &[IndexId], ins: &[IndexId]) -> Self {
        assert_eq!(m.rows(), 1usize << outs.len(), "row count vs out indices");
        assert_eq!(m.cols(), 1usize << ins.len(), "col count vs in indices");
        let mut indices = Vec::with_capacity(outs.len() + ins.len());
        indices.extend_from_slice(outs);
        indices.extend_from_slice(ins);
        let mut data = Vec::with_capacity(m.rows() * m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                data.push(m[(r, c)]);
            }
        }
        Tensor::from_flat(indices, data)
    }

    /// The 2×2 identity ("wire") tensor `δ[a,b]`.
    pub fn delta(a: IndexId, b: IndexId) -> Self {
        Tensor::from_matrix(&Matrix::identity(2), &[a], &[b])
    }

    /// The number of indices.
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// The index list, most significant first.
    pub fn indices(&self) -> &[IndexId] {
        &self.indices
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[C64] {
        &self.data
    }

    /// The scalar value of a rank-0 tensor, or `None`.
    pub fn as_scalar(&self) -> Option<C64> {
        if self.indices.is_empty() {
            Some(self.data[0])
        } else {
            None
        }
    }

    /// Entry at a flat position (bit `rank−1−k` of `pos` is the value of
    /// index `k`).
    pub fn get(&self, pos: usize) -> C64 {
        self.data[pos]
    }

    /// Whether the tensor contains `idx`.
    pub fn has_index(&self, idx: IndexId) -> bool {
        self.indices.contains(&idx)
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Tensor {
        Tensor {
            indices: self.indices.clone(),
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, c: C64) -> Tensor {
        Tensor {
            indices: self.indices.clone(),
            data: self.data.iter().map(|&z| z * c).collect(),
        }
    }

    /// Reorders the indices to `new_order` (a permutation of the current
    /// index set), permuting storage accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `new_order` is not a permutation of `self.indices()`.
    pub fn permute_to(&self, new_order: &[IndexId]) -> Tensor {
        assert_eq!(new_order.len(), self.indices.len(), "rank mismatch");
        let rank = self.rank();
        // position of each new index in the old layout
        let old_pos: Vec<usize> = new_order
            .iter()
            .map(|idx| {
                self.indices
                    .iter()
                    .position(|i| i == idx)
                    .unwrap_or_else(|| panic!("index {idx} not in tensor"))
            })
            .collect();
        let mut data = vec![C64::ZERO; self.data.len()];
        for (new_flat, slot) in data.iter_mut().enumerate() {
            let mut old_flat = 0usize;
            for (new_axis, &old_axis) in old_pos.iter().enumerate() {
                let bit = (new_flat >> (rank - 1 - new_axis)) & 1;
                old_flat |= bit << (rank - 1 - old_axis);
            }
            *slot = self.data[old_flat];
        }
        Tensor {
            indices: new_order.to_vec(),
            data,
        }
    }

    /// Reorders the indices to be sorted by a variable order (top first).
    ///
    /// # Panics
    ///
    /// Panics if an index is missing from `order`.
    pub fn sorted_by(&self, order: &VarOrder) -> Tensor {
        let mut idxs = self.indices.clone();
        order.sort(&mut idxs);
        self.permute_to(&idxs)
    }

    /// Contracts two tensors: multiplies them (matching entries along
    /// shared indices) and sums out every index in `eliminate`.
    ///
    /// The result's indices are `(self ∪ other) \ eliminate`, sorted by
    /// raw id for determinism. Runs in `O(2^|self ∪ other|)`.
    ///
    /// # Panics
    ///
    /// Panics if an `eliminate` index does not occur in either operand.
    pub fn contract(&self, other: &Tensor, eliminate: &[IndexId]) -> Tensor {
        // Union of indices, deterministic order.
        let mut union: Vec<IndexId> = self.indices.clone();
        for idx in &other.indices {
            if !union.contains(idx) {
                union.push(*idx);
            }
        }
        union.sort();
        for e in eliminate {
            assert!(
                union.contains(e),
                "eliminated index {e} not present in either operand"
            );
        }
        let out: Vec<IndexId> = union
            .iter()
            .copied()
            .filter(|i| !eliminate.contains(i))
            .collect();

        let u = union.len();
        let bit_of = |indices: &[IndexId], target: &mut Vec<(usize, usize)>| {
            // (union axis → operand axis) pairs
            for (op_axis, idx) in indices.iter().enumerate() {
                let union_axis = union.iter().position(|i| i == idx).expect("in union");
                target.push((union_axis, op_axis));
            }
        };
        let mut map_a = Vec::new();
        let mut map_b = Vec::new();
        let mut map_out = Vec::new();
        bit_of(&self.indices, &mut map_a);
        bit_of(&other.indices, &mut map_b);
        bit_of(&out, &mut map_out);

        let gather = |flat: usize, map: &[(usize, usize)], rank: usize| -> usize {
            let mut pos = 0usize;
            for &(union_axis, op_axis) in map {
                let bit = (flat >> (u - 1 - union_axis)) & 1;
                pos |= bit << (rank - 1 - op_axis);
            }
            pos
        };

        let mut data = vec![C64::ZERO; 1usize << out.len()];
        for flat in 0..(1usize << u) {
            let va = self.data[gather(flat, &map_a, self.rank().max(1))];
            if va.is_zero() {
                continue;
            }
            let vb = other.data[gather(flat, &map_b, other.rank().max(1))];
            if vb.is_zero() {
                continue;
            }
            let po = gather(flat, &map_out, out.len().max(1));
            data[po] += va * vb;
        }
        Tensor { indices: out, data }
    }

    /// Renames index `from` to `to`, leaving storage untouched.
    ///
    /// # Panics
    ///
    /// Panics if `from` is absent or `to` is already present (which would
    /// create a duplicate index — callers insert a [`Tensor::delta`]
    /// instead in that case).
    pub fn rename_index(&mut self, from: IndexId, to: IndexId) {
        assert!(
            !self.indices.contains(&to),
            "renaming would duplicate index {to}"
        );
        let slot = self
            .indices
            .iter()
            .position(|&i| i == from)
            .unwrap_or_else(|| panic!("index {from} not in tensor"));
        self.indices[slot] = to;
    }

    /// Sums out indices `a` and `b` along their diagonal (`a = b`),
    /// implemented as contraction with [`Tensor::delta`].
    pub fn self_trace(&self, a: IndexId, b: IndexId) -> Tensor {
        self.contract(&Tensor::delta(a, b), &[a, b])
    }

    /// The largest entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Whether every entry matches `other` within `tol` (requires the same
    /// index layout; permute first if needed).
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        if self.indices != other.indices {
            return false;
        }
        self.data
            .iter()
            .zip(&other.data)
            .all(|(&x, &y)| (x - y).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[")?;
        for (i, idx) in self.indices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{idx}")?;
        }
        write!(f, "] = {:?}", &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_matrix() -> Matrix {
        Matrix::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]])
    }

    fn h_matrix() -> Matrix {
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        Matrix::from_rows(&[vec![s, s], vec![s, -s]])
    }

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(C64::new(2.0, -1.0));
        assert_eq!(t.rank(), 0);
        assert_eq!(t.as_scalar(), Some(C64::new(2.0, -1.0)));
    }

    #[test]
    fn from_matrix_layout() {
        let t = Tensor::from_matrix(&x_matrix(), &[IndexId(0)], &[IndexId(1)]);
        // X[out=0, in=1] = 1 → flat position 0b01 = 1.
        assert_eq!(t.get(0b01), C64::ONE);
        assert_eq!(t.get(0b10), C64::ONE);
        assert_eq!(t.get(0b00), C64::ZERO);
    }

    #[test]
    fn matrix_product_via_contraction() {
        // (H·X)[a,c] = Σ_b H[a,b]·X[b,c]
        let (a, b, c) = (IndexId(0), IndexId(1), IndexId(2));
        let h = Tensor::from_matrix(&h_matrix(), &[a], &[b]);
        let x = Tensor::from_matrix(&x_matrix(), &[b], &[c]);
        let hx = h.contract(&x, &[b]);
        let expected = Tensor::from_matrix(&h_matrix().mul(&x_matrix()), &[a], &[c]);
        assert!(hx.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn trace_via_contraction() {
        let (a, b) = (IndexId(0), IndexId(1));
        let h1 = Tensor::from_matrix(&h_matrix(), &[a], &[b]);
        let h2 = Tensor::from_matrix(&h_matrix(), &[b], &[a]);
        let tr = h1.contract(&h2, &[a, b]);
        // tr(H·H) = tr(I) = 2.
        assert!((tr.as_scalar().unwrap() - C64::real(2.0)).abs() < 1e-12);
    }

    #[test]
    fn outer_product_when_disjoint() {
        let t1 = Tensor::from_flat(vec![IndexId(0)], vec![C64::ONE, C64::real(2.0)]);
        let t2 = Tensor::from_flat(vec![IndexId(1)], vec![C64::real(3.0), C64::real(4.0)]);
        let prod = t1.contract(&t2, &[]);
        assert_eq!(prod.rank(), 2);
        assert_eq!(prod.get(0b11), C64::real(8.0));
        assert_eq!(prod.get(0b01), C64::real(4.0));
    }

    #[test]
    fn shared_index_without_elimination_is_pointwise() {
        // C[a] = A[a] · B[a] (a shared, not summed).
        let t1 = Tensor::from_flat(vec![IndexId(0)], vec![C64::real(2.0), C64::real(3.0)]);
        let t2 = Tensor::from_flat(vec![IndexId(0)], vec![C64::real(5.0), C64::real(7.0)]);
        let prod = t1.contract(&t2, &[]);
        assert_eq!(prod.rank(), 1);
        assert_eq!(prod.get(0), C64::real(10.0));
        assert_eq!(prod.get(1), C64::real(21.0));
    }

    #[test]
    fn permute_round_trips() {
        let t = Tensor::from_matrix(&x_matrix(), &[IndexId(2)], &[IndexId(5)]);
        let p = t.permute_to(&[IndexId(5), IndexId(2)]);
        assert_eq!(p.indices(), &[IndexId(5), IndexId(2)]);
        assert_eq!(p.get(0b01), C64::ONE); // X[in=0, out=1] = X[1,0] = 1
        let back = p.permute_to(&[IndexId(2), IndexId(5)]);
        assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn sorted_by_var_order() {
        let order = VarOrder::from_sequence([IndexId(5), IndexId(2)]);
        let t = Tensor::from_matrix(&h_matrix(), &[IndexId(2)], &[IndexId(5)]);
        let sorted = t.sorted_by(&order);
        assert_eq!(sorted.indices(), &[IndexId(5), IndexId(2)]);
    }

    #[test]
    fn self_trace_of_identity_is_two() {
        let t = Tensor::from_matrix(&Matrix::identity(2), &[IndexId(0)], &[IndexId(1)]);
        let tr = t.self_trace(IndexId(0), IndexId(1));
        assert_eq!(tr.as_scalar().unwrap(), C64::real(2.0));
    }

    #[test]
    fn conj_and_scale() {
        let t = Tensor::scalar(C64::new(1.0, 2.0));
        assert_eq!(t.conj().as_scalar().unwrap(), C64::new(1.0, -2.0));
        assert_eq!(
            t.scale(C64::real(2.0)).as_scalar().unwrap(),
            C64::new(2.0, 4.0)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn duplicate_index_rejected() {
        Tensor::from_flat(vec![IndexId(1), IndexId(1)], vec![C64::ZERO; 4]);
    }

    #[test]
    #[should_panic(expected = "not present in either operand")]
    fn eliminating_phantom_index_panics() {
        let t = Tensor::scalar(C64::ONE);
        t.contract(&Tensor::scalar(C64::ONE), &[IndexId(9)]);
    }

    #[test]
    fn rename_index_replaces_identity() {
        let mut t = Tensor::from_matrix(&x_matrix(), &[IndexId(0)], &[IndexId(1)]);
        t.rename_index(IndexId(1), IndexId(9));
        assert_eq!(t.indices(), &[IndexId(0), IndexId(9)]);
        assert_eq!(t.get(0b01), C64::ONE);
    }

    #[test]
    #[should_panic(expected = "would duplicate index")]
    fn rename_to_existing_index_panics() {
        let mut t = Tensor::from_matrix(&x_matrix(), &[IndexId(0)], &[IndexId(1)]);
        t.rename_index(IndexId(1), IndexId(0));
    }

    #[test]
    fn contraction_is_commutative() {
        let (a, b, c) = (IndexId(0), IndexId(1), IndexId(2));
        let t1 = Tensor::from_matrix(&h_matrix(), &[a], &[b]);
        let t2 = Tensor::from_matrix(&x_matrix(), &[b], &[c]);
        let ab = t1.contract(&t2, &[b]);
        let ba = t2.contract(&t1, &[b]);
        assert!(ab.approx_eq(&ba, 1e-12));
    }
}
