//! Dev probe: compile-once sweep vs cold re-checks on the qft5 smoke
//! workload (calibrates the bench_smoke speedup gate).

use qaec::{check_equivalence, CheckOptions, Checker};
use qaec_bench::NOISE_SEED;
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;
use std::time::Instant;

fn main() {
    let qft5 = qft(5, QftStyle::DecomposedNoSwaps);
    let seed = NOISE_SEED ^ "qft5".len() as u64;
    let noisy = insert_random_noise(&qft5, &NoiseChannel::Depolarizing { p: 0.999 }, 3, seed);
    let strengths = [0.999, 0.998, 0.997, 0.996, 0.995, 0.99, 0.98, 0.97];
    let opts = CheckOptions::default();

    for round in 0..3 {
        let b0 = qaec_tensornet::plan::build_count();
        let start = Instant::now();
        let compiled = Checker::new(&qft5, &noisy)
            .options(opts.clone())
            .compile()
            .unwrap();
        let compile_t = start.elapsed();
        let points = compiled.sweep_noise(1e-3, &strengths).unwrap();
        let sweep_t = start.elapsed();
        let sweep_builds = qaec_tensornet::plan::build_count() - b0;

        let b1 = qaec_tensornet::plan::build_count();
        let cold_start = Instant::now();
        let mut cold = Vec::new();
        for &p in &strengths {
            let cn = insert_random_noise(&qft5, &NoiseChannel::Depolarizing { p }, 3, seed);
            cold.push(check_equivalence(&qft5, &cn, 1e-3, &opts).unwrap());
        }
        let cold_t = cold_start.elapsed();
        let cold_builds = qaec_tensornet::plan::build_count() - b1;

        for (point, report) in points.iter().zip(&cold) {
            assert_eq!(point.fidelity.to_bits(), report.fidelity_bounds.0.to_bits());
            assert_eq!(point.verdict, report.verdict);
        }
        println!(
            "round {round}: compile {compile_t:?}, sweep total {sweep_t:?} ({sweep_builds} builds), cold {cold_t:?} ({cold_builds} builds), speedup {:.2}x",
            cold_t.as_secs_f64() / sweep_t.as_secs_f64()
        );
    }
}
