//! One-off profiling harness for the `seed_cont_cache` default
//! (ISSUE 4): wall time and seeding traffic, on vs off, on the smoke
//! preset's shared-store Algorithm I scenarios.
use qaec::{fidelity_alg1, CheckOptions, SharedTableMode, TermOrder};
use qaec_bench::NOISE_SEED;
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;
use std::time::Instant;

fn main() {
    for (n, k) in [(3usize, 4usize), (4, 3), (4, 5)] {
        let ideal = qft(n, QftStyle::DecomposedNoSwaps);
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: 0.999 },
            k,
            NOISE_SEED + k as u64,
        );
        for seed in [false, true] {
            let opts = CheckOptions {
                threads: 4,
                shared_table: SharedTableMode::On,
                term_order: TermOrder::Lexicographic,
                seed_cont_cache: seed,
                ..CheckOptions::default()
            };
            let mut best = f64::INFINITY;
            let mut stats = qaec::TddStats::default();
            for _ in 0..5 {
                let t0 = Instant::now();
                let r = fidelity_alg1(&ideal, &noisy, None, &opts).expect("alg1");
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                stats = r.stats;
            }
            println!(
                "qft{n}_k{k} seed={seed:5}: {best:7.1}ms  cont {} ({} hits, {} seeded-hits, {} imports)",
                stats.cont_calls, stats.cont_hits, stats.seed_hits, stats.seed_imports
            );
        }
    }
}
