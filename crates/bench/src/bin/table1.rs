//! Regenerates the paper's **Table I**: baseline vs Algorithm II vs
//! Algorithm I over the 21 benchmark circuits.
//!
//! ```text
//! cargo run -p qaec-bench --release --bin table1 [--timeout SECS] [--only rb,qft2] [--skip-baseline] [--json PATH]
//! ```
//!
//! Differences from the paper's setup (documented in EXPERIMENTS.md): the
//! default per-run timeout is 120 s instead of 3600 s (pass `--timeout
//! 3600` for the faithful bound), the baseline is our dense superoperator
//! substitute for Qiskit under the same 8 GB accounting, and absolute
//! times are Rust-vs-Python incomparable — the qualitative pattern (who
//! finishes, who TOs, who MOs, node counts) is what reproduces.

use qaec_bench::{run_alg1, run_alg2, run_baseline, table1_suite, HarnessArgs, RunRecord};

fn main() {
    let args = HarnessArgs::parse();
    let mut records: Vec<RunRecord> = Vec::new();
    println!(
        "# Table I — baseline vs Alg. II vs Alg. I (timeout {}s, memory bound 8 GB)\n",
        args.timeout.as_secs()
    );
    println!(
        "| {:<9} | {:>2} | {:>4} | {:>2} | {:>10} | {:>10} | {:>8} | {:>10} | {:>8} | {:>12} |",
        "Circuit", "n", "|G|", "k", "Qiskit(s)", "AlgII(s)", "nodes", "AlgI(s)", "nodes", "F_J"
    );
    println!("|{}|", "-".repeat(108));

    for case in table1_suite() {
        if let Some(only) = &args.only {
            if !only.iter().any(|n| n == case.name) {
                continue;
            }
        }
        let noisy = case.noisy();
        let baseline = if args.skip_baseline {
            None
        } else {
            Some(run_baseline(&case.ideal, &noisy, args.timeout))
        };
        let alg2 = run_alg2(&case.ideal, &noisy, args.timeout);
        let alg1 = run_alg1(&case.ideal, &noisy, args.timeout);
        if let Some(b) = &baseline {
            records.extend(RunRecord::from_outcome(
                format!("{}_baseline", case.name),
                b,
            ));
        }
        records.extend(RunRecord::from_outcome(
            format!("{}_alg2", case.name),
            &alg2,
        ));
        records.extend(RunRecord::from_outcome(
            format!("{}_alg1", case.name),
            &alg1,
        ));

        let fidelity = alg2
            .fidelity()
            .or_else(|| alg1.fidelity())
            .map_or("-".to_string(), |f| format!("{f:.8}"));
        println!(
            "| {:<9} | {:>2} | {:>4} | {:>2} | {:>10} | {:>10} | {:>8} | {:>10} | {:>8} | {:>12} |",
            case.name,
            case.ideal.n_qubits(),
            case.ideal.gate_count(),
            case.noises,
            baseline.as_ref().map_or("-".into(), |b| b.time_cell()),
            alg2.time_cell(),
            alg2.nodes_cell(),
            alg1.time_cell(),
            alg1.nodes_cell(),
            fidelity,
        );
        // Cross-check agreement whenever multiple methods finished.
        if let (Some(b), Some(f2)) = (
            baseline.as_ref().and_then(|b| b.fidelity()),
            alg2.fidelity(),
        ) {
            assert!(
                (b - f2).abs() < 1e-6,
                "{}: baseline {b} vs alg2 {f2}",
                case.name
            );
        }
        if let (Some(f1), Some(f2)) = (alg1.fidelity(), alg2.fidelity()) {
            assert!(
                (f1 - f2).abs() < 1e-6,
                "{}: alg1 {f1} vs alg2 {f2}",
                case.name
            );
        }
    }
    println!("\nLegend: TO = timed out, MO = exceeded the 8 GB bound, - = skipped/not applicable.");
    args.emit_json(&records);
}
