//! The benchmark-gated CI entry point: runs the reduced "smoke" preset
//! of the paper-table scenarios, writes the per-run JSON artifact, and
//! (optionally) fails when wall time regresses against a committed
//! baseline.
//!
//! ```text
//! # produce the PR artifact and gate against the committed baseline:
//! cargo run -p qaec-bench --release --bin bench_smoke -- \
//!     --out BENCH_PR.json --baseline BENCH_BASELINE.json --max-ratio 2.0
//!
//! # refresh the baseline on a quiet machine:
//! cargo run -p qaec-bench --release --bin bench_smoke -- --out BENCH_BASELINE.json
//! ```
//!
//! Exit codes: 0 = ok, 1 = wall-time regression, 2 = usage/I/O error.
//! Scenario invariants (parallel ε verdict equals sequential, early exit
//! beats exact mode, algorithms agree on fidelity) are asserted inside
//! the suite itself, so a semantics regression panics the process.

use qaec_bench::{detected_cores, read_records, regressions, run_smoke_suite, write_artifact};
use std::time::Duration;

struct SmokeArgs {
    out: String,
    baseline: Option<String>,
    max_ratio: f64,
    timeout: Duration,
}

fn parse_smoke_args() -> SmokeArgs {
    let mut args = SmokeArgs {
        out: "BENCH_PR.json".into(),
        baseline: None,
        max_ratio: 2.0,
        timeout: Duration::from_secs(120),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => args.out = it.next().unwrap_or(args.out),
            "--baseline" => args.baseline = it.next(),
            "--max-ratio" => {
                if let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) {
                    args.max_ratio = v;
                }
            }
            "--timeout" => {
                if let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) {
                    args.timeout = Duration::from_secs(v);
                }
            }
            other => eprintln!("ignoring unknown flag `{other}`"),
        }
    }
    args
}

fn main() {
    let args = parse_smoke_args();
    let cores = detected_cores();
    let records = run_smoke_suite(args.timeout);

    println!(
        "# bench-smoke — {} scenarios, {cores} visible core(s)\n",
        records.len()
    );
    println!(
        "{:<26} {:>10} {:>12} {:>9} {:>14}",
        "scenario", "wall (ms)", "terms/s", "nodes", "fidelity"
    );
    for r in &records {
        println!(
            "{:<26} {:>10.2} {:>12.1} {:>9} {:>14.9}",
            r.name, r.wall_ms, r.terms_per_sec, r.max_nodes, r.fidelity
        );
    }

    // The artifact records the host core count alongside the rows, so
    // a gate reading (speedups only arm at ≥4 cores) can always be
    // interpreted against the machine that produced it. The reader
    // accepts the legacy bare-array shape too, so old baselines keep
    // gating.
    if let Err(e) = write_artifact(&args.out, cores, &records) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    println!("\nwrote {} (host_cores: {cores})", args.out);

    if let Some(baseline_path) = &args.baseline {
        let baseline = match read_records(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let offending = regressions(&records, &baseline, args.max_ratio);
        if offending.is_empty() {
            println!(
                "no scenario regressed more than {:.1}x against {baseline_path} \
                 (wall time and max_nodes both gated)",
                args.max_ratio
            );
        } else {
            for r in &offending {
                eprintln!(
                    "REGRESSION {} [{}]: {:.2} vs baseline {:.2} (limit {:.1}x)",
                    r.name, r.metric, r.pr, r.baseline, args.max_ratio
                );
            }
            std::process::exit(1);
        }
    }
}
