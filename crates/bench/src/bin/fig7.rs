//! Regenerates the paper's **Fig. 7**: `log10(t1/t2)` — Algorithm I time
//! over Algorithm II time — as the number of noise sites grows, for the
//! Bernstein–Vazirani and QFT families on 3–5 qubits.
//!
//! ```text
//! cargo run -p qaec-bench --release --bin fig7 [--max-noises K] [--timeout SECS] [--json PATH]
//! ```
//!
//! The paper's reading: at one noise site most circuits have
//! `log10(t1/t2) < 0` (Algorithm I wins); each extra site adds ≈
//! `log10(4) ≈ 0.6`, so the polyline rises linearly and Algorithm II
//! dominates beyond the crossover.

use qaec_bench::{run_alg1, run_alg2, HarnessArgs, RunRecord, NOISE_SEED};
use qaec_circuit::generators::{bernstein_vazirani_all_ones, qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};

fn main() {
    let args = HarnessArgs::parse();
    let families: Vec<(String, Circuit)> = vec![
        ("bv3".into(), bernstein_vazirani_all_ones(3)),
        ("bv4".into(), bernstein_vazirani_all_ones(4)),
        ("bv5".into(), bernstein_vazirani_all_ones(5)),
        ("qft3".into(), qft(3, QftStyle::DecomposedNoSwaps)),
        ("qft4".into(), qft(4, QftStyle::DecomposedNoSwaps)),
        ("qft5".into(), qft(5, QftStyle::DecomposedNoSwaps)),
    ];

    println!(
        "# Fig. 7 — log10(t1/t2) vs number of noise sites (timeout {}s)\n",
        args.timeout.as_secs()
    );
    print!("{:<8}", "circuit");
    for k in 1..=args.max_noises {
        print!("{k:>9}");
    }
    println!();

    let mut records: Vec<RunRecord> = Vec::new();
    for (name, ideal) in families {
        print!("{name:<8}");
        for k in 1..=args.max_noises {
            let noisy = insert_random_noise(
                &ideal,
                &NoiseChannel::Depolarizing { p: 0.999 },
                k,
                NOISE_SEED + k as u64,
            );
            let a1 = qaec_bench::measure_best(3, || run_alg1(&ideal, &noisy, args.timeout));
            let a2 = qaec_bench::measure_best(3, || run_alg2(&ideal, &noisy, args.timeout));
            records.extend(RunRecord::from_outcome(format!("{name}_k{k}_alg1"), &a1));
            records.extend(RunRecord::from_outcome(format!("{name}_k{k}_alg2"), &a2));
            match (&a1, &a2) {
                (
                    qaec_bench::Outcome::Done {
                        time: t1,
                        fidelity: f1,
                        ..
                    },
                    qaec_bench::Outcome::Done {
                        time: t2,
                        fidelity: f2,
                        ..
                    },
                ) => {
                    assert!((f1 - f2).abs() < 1e-6, "{name} k={k}: {f1} vs {f2}");
                    let ratio = (t1.as_secs_f64() / t2.as_secs_f64()).log10();
                    print!("{ratio:>9.2}");
                }
                _ => print!("{:>9}", "TO"),
            }
        }
        println!();
    }
    println!(
        "\nPositive values: Algorithm II faster; each +0.6 ≈ one more 4-operator noise\n\
         site's worth of Algorithm I work. The paper's Fig. 7 shows the same linear rise\n\
         from below zero at a single noise site."
    );
    args.emit_json(&records);
}
