//! Extension table (beyond the paper): accuracy and cost of the Monte
//! Carlo fidelity estimator against the exact algorithms.
//!
//! ```text
//! cargo run -p qaec-bench --release --bin mc_accuracy [--timeout SECS]
//! ```
//!
//! For each benchmark/noise-count pair: the exact fidelity (Algorithm
//! II), the MC estimate for growing sample counts, the signed error in
//! units of the reported standard error, and the number of distinct
//! Kraus strings actually contracted (the memo makes light-noise runs
//! nearly free).

use qaec::{fidelity_alg2, fidelity_monte_carlo, CheckOptions};
use qaec_bench::{HarnessArgs, NOISE_SEED};
use qaec_circuit::generators::{bernstein_vazirani_all_ones, qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;
use std::time::Instant;

fn main() {
    let _args = HarnessArgs::parse();
    let opts = CheckOptions::default();
    println!("# Monte Carlo estimator vs exact fidelity (extension)\n");
    println!(
        "{:<8} {:>3} {:>12} {:>8} {:>12} {:>10} {:>8} {:>8} {:>9}",
        "circuit", "k", "exact F", "N", "estimate", "std err", "err/se", "strings", "time"
    );

    let cases = [
        ("bv5", bernstein_vazirani_all_ones(5), 4usize),
        ("bv9", bernstein_vazirani_all_ones(9), 8),
        ("qft4", qft(4, QftStyle::DecomposedNoSwaps), 6),
        ("qft6", qft(6, QftStyle::DecomposedNoSwaps), 10),
    ];
    for (name, ideal, k) in cases {
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: 0.999 },
            k,
            NOISE_SEED + k as u64,
        );
        let exact = fidelity_alg2(&ideal, &noisy, &opts).expect("alg2").fidelity;
        for samples in [200usize, 1000, 5000] {
            let start = Instant::now();
            let mc = fidelity_monte_carlo(&ideal, &noisy, samples, 0xE57, &opts).expect("mc");
            let sigmas = if mc.std_error > 0.0 {
                (mc.estimate - exact) / mc.std_error
            } else {
                0.0
            };
            println!(
                "{name:<8} {k:>3} {exact:>12.8} {samples:>8} {:>12.8} {:>10.2e} {sigmas:>8.2} {:>8} {:>8.1?}",
                mc.estimate,
                mc.std_error,
                mc.distinct_strings,
                start.elapsed()
            );
        }
    }
    println!(
        "\nerr/se should sit within ±3 for an honest estimator; `strings` stays\n\
         nearly flat in N because the memo absorbs repeated light-noise samples."
    );
}
