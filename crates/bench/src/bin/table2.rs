//! Regenerates the paper's **Table II**: the utility of the shared
//! computed table in Algorithm I.
//!
//! ```text
//! cargo run -p qaec-bench --release --bin table2 [--max-noises K] [--timeout SECS] [--json PATH]
//! ```
//!
//! "Opt." keeps one decision-diagram manager (unique + computed tables)
//! across all trace terms; "Ori." rebuilds them per term. The paper
//! reports rates (Opt./Ori.) around 0.25–0.8, improving as the noise
//! count grows — the same trend this binary prints.

use qaec_bench::{run_alg1_with, HarnessArgs, RunRecord, NOISE_SEED};
use qaec_circuit::generators::bernstein_vazirani_all_ones;
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;

fn main() {
    let args = HarnessArgs::parse();
    let circuits = [3usize, 4, 5].map(|n| (format!("bv{n}"), bernstein_vazirani_all_ones(n)));

    println!(
        "# Table II — Alg. I runtime with (Opt.) / without (Ori.) the shared computed table\n"
    );
    print!("{:<7}", "noises");
    for (name, _) in &circuits {
        print!("{:>10} {:>10} {:>7}", format!("{name} Opt"), "Ori", "rate");
    }
    println!();

    let mut records: Vec<RunRecord> = Vec::new();
    let mut sums = vec![(0.0f64, 0.0f64); circuits.len()];
    for k in 1..=args.max_noises {
        print!("{k:<7}");
        for (slot, (name, ideal)) in circuits.iter().enumerate() {
            let noisy = insert_random_noise(
                ideal,
                &NoiseChannel::Depolarizing { p: 0.999 },
                k,
                NOISE_SEED + k as u64,
            );
            let opt =
                qaec_bench::measure_best(3, || run_alg1_with(ideal, &noisy, args.timeout, true));
            let ori =
                qaec_bench::measure_best(3, || run_alg1_with(ideal, &noisy, args.timeout, false));
            records.extend(RunRecord::from_outcome(format!("{name}_k{k}_opt"), &opt));
            records.extend(RunRecord::from_outcome(format!("{name}_k{k}_ori"), &ori));
            match (&opt, &ori) {
                (
                    qaec_bench::Outcome::Done {
                        time: to,
                        fidelity: fo,
                        ..
                    },
                    qaec_bench::Outcome::Done {
                        time: tr,
                        fidelity: fr,
                        ..
                    },
                ) => {
                    assert!((fo - fr).abs() < 1e-7, "{name} k={k}");
                    let (to, tr) = (to.as_secs_f64(), tr.as_secs_f64());
                    sums[slot].0 += to;
                    sums[slot].1 += tr;
                    print!("{to:>10.3} {tr:>10.3} {:>7.2}", to / tr);
                }
                _ => print!("{:>10} {:>10} {:>7}", "TO", "TO", "-"),
            }
        }
        println!();
    }
    print!("{:<7}", "SUM");
    for (opt, ori) in &sums {
        let rate = if *ori > 0.0 { opt / ori } else { f64::NAN };
        print!("{opt:>10.3} {ori:>10.3} {rate:>7.2}");
    }
    println!(
        "\n\nrate = Opt./Ori.; the paper reports average savings of 72%/62%/65%\n\
         (rates ≈ 0.28/0.38/0.35) for bv3/bv4/bv5 — expect the same downward\n\
         trend with growing noise count here."
    );
    args.emit_json(&records);
}
