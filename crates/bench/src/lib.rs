//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§V).
//!
//! Three binaries regenerate the artifacts:
//!
//! * `table1` — Table I: Qiskit-baseline vs Algorithm II vs Algorithm I
//!   across the 21 benchmark circuits (time, TDD node counts, TO/MO);
//! * `fig7` — Fig. 7: `log10(t1/t2)` as the number of noise sites grows;
//! * `table2` — Table II: Algorithm I with a shared computed table
//!   ("Opt.") vs fresh tables per term ("Ori.").
//!
//! Criterion micro-benches live under `benches/`.

use qaec::{fidelity_alg1, fidelity_alg2, CheckOptions, QaecError, TermOrder};
use qaec_circuit::generators::{
    bernstein_vazirani_all_ones, grover_dac21, mod_mul_7x1_mod15, qft, quantum_volume,
    randomized_benchmarking, QftStyle,
};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};
use std::time::{Duration, Instant};

/// Seed namespace for noise placement, fixed so every run of the harness
/// sees the same noisy circuits.
pub const NOISE_SEED: u64 = 0xDAC2021;

/// One row of Table I.
#[derive(Clone)]
pub struct BenchCase {
    /// Row label (the paper's `Circuit` column).
    pub name: &'static str,
    /// The ideal benchmark circuit.
    pub ideal: Circuit,
    /// Number of depolarizing noise sites (the paper's `k` column).
    pub noises: usize,
}

impl BenchCase {
    fn new(name: &'static str, ideal: Circuit, noises: usize) -> Self {
        BenchCase {
            name,
            ideal,
            noises,
        }
    }

    /// The noisy implementation: `noises` depolarizing sites with
    /// `p = 0.999` at seeded-random positions (§V-A).
    pub fn noisy(&self) -> Circuit {
        insert_random_noise(
            &self.ideal,
            &NoiseChannel::Depolarizing { p: 0.999 },
            self.noises,
            NOISE_SEED ^ self.name.len() as u64,
        )
    }
}

/// The 21 rows of Table I, with the paper's qubit/gate/noise counts.
pub fn table1_suite() -> Vec<BenchCase> {
    vec![
        BenchCase::new("rb", randomized_benchmarking(2, 7, NOISE_SEED), 6),
        BenchCase::new("qft2", qft(2, QftStyle::DecomposedNoSwaps), 2),
        BenchCase::new("grover", grover_dac21(), 4),
        BenchCase::new("qft3", qft(3, QftStyle::DecomposedNoSwaps), 7),
        BenchCase::new("qv_n3d5", quantum_volume(3, 5, NOISE_SEED), 2),
        BenchCase::new("bv4", bernstein_vazirani_all_ones(4), 7),
        BenchCase::new("7x1mod15", mod_mul_7x1_mod15(), 3),
        BenchCase::new("bv5", bernstein_vazirani_all_ones(5), 6),
        BenchCase::new("qft5", qft(5, QftStyle::DecomposedNoSwaps), 3),
        BenchCase::new("qv_n5d5", quantum_volume(5, 5, NOISE_SEED), 3),
        BenchCase::new("bv6", bernstein_vazirani_all_ones(6), 14),
        BenchCase::new("qv_n6d5", quantum_volume(6, 5, NOISE_SEED), 1),
        BenchCase::new("qft7", qft(7, QftStyle::DecomposedNoSwaps), 6),
        BenchCase::new("qv_n7d5", quantum_volume(7, 5, NOISE_SEED), 2),
        BenchCase::new("bv9", bernstein_vazirani_all_ones(9), 6),
        BenchCase::new("qv_n9d5", quantum_volume(9, 5, NOISE_SEED), 3),
        BenchCase::new("qft9", qft(9, QftStyle::DecomposedNoSwaps), 2),
        BenchCase::new("qft10", qft(10, QftStyle::DecomposedNoSwaps), 2),
        BenchCase::new("bv13", bernstein_vazirani_all_ones(13), 4),
        BenchCase::new("bv14", bernstein_vazirani_all_ones(14), 4),
        BenchCase::new("bv16", bernstein_vazirani_all_ones(16), 9),
    ]
}

/// The outcome of one measured run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Succeeded with fidelity value, wall time and max TDD nodes
    /// (0 for the dense baseline).
    Done {
        /// Fidelity computed.
        fidelity: f64,
        /// Wall-clock time.
        time: Duration,
        /// Max intermediate TDD nodes (0 for the baseline).
        nodes: usize,
    },
    /// Timed out (the paper's "TO").
    TimedOut,
    /// Out of memory bound (the paper's "MO").
    OutOfMemory,
}

impl Outcome {
    /// Renders the paper's `time (s)` cell.
    pub fn time_cell(&self) -> String {
        match self {
            Outcome::Done { time, .. } => format!("{:.2}", time.as_secs_f64()),
            Outcome::TimedOut => "TO".into(),
            Outcome::OutOfMemory => "MO".into(),
        }
    }

    /// Renders the paper's `nodes` cell.
    pub fn nodes_cell(&self) -> String {
        match self {
            Outcome::Done { nodes, .. } if *nodes > 0 => nodes.to_string(),
            Outcome::Done { .. } => "-".into(),
            Outcome::TimedOut => "TO".into(),
            Outcome::OutOfMemory => "MO".into(),
        }
    }

    /// The fidelity, if the run finished.
    pub fn fidelity(&self) -> Option<f64> {
        match self {
            Outcome::Done { fidelity, .. } => Some(*fidelity),
            _ => None,
        }
    }
}

/// Runs the dense superoperator baseline (the Qiskit
/// `process_fidelity` substitute) under the paper's 8 GB bound, with an
/// in-flight deadline.
pub fn run_baseline(ideal: &Circuit, noisy: &Circuit, timeout: Duration) -> Outcome {
    let start = Instant::now();
    let deadline = Some(start + timeout);
    // The memory estimate rejects before allocation, mirroring Qiskit's MO.
    let operator = match qaec_dmsim::Operator::from_circuit(ideal) {
        Ok(op) => op,
        Err(qaec_dmsim::SimError::MemoryExceeded { .. }) => return Outcome::OutOfMemory,
        Err(_) => return Outcome::OutOfMemory,
    };
    match qaec_dmsim::SuperOp::from_circuit_opts(
        noisy,
        qaec_dmsim::memory::PAPER_MEMORY_BOUND,
        deadline,
    ) {
        Ok(superop) => {
            let fidelity = qaec_dmsim::process_fidelity::process_fidelity(&superop, &operator);
            let time = start.elapsed();
            if time > timeout {
                Outcome::TimedOut
            } else {
                Outcome::Done {
                    fidelity,
                    time,
                    nodes: 0,
                }
            }
        }
        Err(qaec_dmsim::SimError::DeadlineExceeded) => Outcome::TimedOut,
        Err(qaec_dmsim::SimError::MemoryExceeded { .. }) => Outcome::OutOfMemory,
        Err(_) => Outcome::OutOfMemory,
    }
}

/// Runs Algorithm II with a deadline.
pub fn run_alg2(ideal: &Circuit, noisy: &Circuit, timeout: Duration) -> Outcome {
    let opts = CheckOptions {
        deadline: Some(Instant::now() + timeout),
        ..CheckOptions::default()
    };
    let start = Instant::now();
    match fidelity_alg2(ideal, noisy, &opts) {
        Ok(report) => Outcome::Done {
            fidelity: report.fidelity,
            time: start.elapsed(),
            nodes: report.max_nodes,
        },
        Err(QaecError::Timeout) => Outcome::TimedOut,
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Runs Algorithm I exactly (all terms) with a deadline.
pub fn run_alg1(ideal: &Circuit, noisy: &Circuit, timeout: Duration) -> Outcome {
    run_alg1_with(ideal, noisy, timeout, true)
}

/// Runs Algorithm I with the shared computed table on or off — the
/// "Opt." / "Ori." configurations of Table II.
pub fn run_alg1_with(
    ideal: &Circuit,
    noisy: &Circuit,
    timeout: Duration,
    reuse_tables: bool,
) -> Outcome {
    let opts = CheckOptions {
        deadline: Some(Instant::now() + timeout),
        reuse_tables,
        term_order: TermOrder::Lexicographic,
        ..CheckOptions::default()
    };
    let start = Instant::now();
    match fidelity_alg1(ideal, noisy, None, &opts) {
        Ok(report) => Outcome::Done {
            fidelity: report.fidelity_lower,
            time: start.elapsed(),
            nodes: report.max_nodes,
        },
        Err(QaecError::Timeout) => Outcome::TimedOut,
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Re-measures fast cells for stability: runs `f` up to `max_repeats`
/// times (stopping once the accumulated time exceeds one second) and
/// returns the best (minimum-time) successful outcome, or the first
/// non-success. Timing noise on sub-millisecond cells otherwise dominates
/// ratio plots like Fig. 7 / Table II.
pub fn measure_best(max_repeats: usize, mut f: impl FnMut() -> Outcome) -> Outcome {
    let mut best: Option<Outcome> = None;
    let mut spent = Duration::ZERO;
    for _ in 0..max_repeats.max(1) {
        let outcome = f();
        match &outcome {
            Outcome::Done { time, .. } => {
                spent += *time;
                let better = match &best {
                    Some(Outcome::Done { time: bt, .. }) => time < bt,
                    _ => true,
                };
                if better {
                    best = Some(outcome);
                }
                if spent > Duration::from_secs(1) {
                    break;
                }
            }
            other => return other.clone(),
        }
    }
    best.expect("at least one run")
}

/// Parses `--flag value` style arguments shared by the harness binaries.
pub struct HarnessArgs {
    /// Per-run timeout (default 120 s; the paper used 3600 s).
    pub timeout: Duration,
    /// Optional row-name filter (comma separated).
    pub only: Option<Vec<String>>,
    /// Maximum noise count for the sweep binaries.
    pub max_noises: usize,
    /// Skip the dense baseline column.
    pub skip_baseline: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn parse() -> Self {
        let mut args = HarnessArgs {
            timeout: Duration::from_secs(120),
            only: None,
            max_noises: 8,
            skip_baseline: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--timeout" => {
                    if let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) {
                        args.timeout = Duration::from_secs(v);
                    }
                }
                "--only" => {
                    if let Some(v) = it.next() {
                        args.only = Some(v.split(',').map(str::to_string).collect());
                    }
                }
                "--max-noises" => {
                    if let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) {
                        args.max_noises = v;
                    }
                }
                "--skip-baseline" => args.skip_baseline = true,
                other => eprintln!("ignoring unknown flag `{other}`"),
            }
        }
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_inventory() {
        let suite = table1_suite();
        assert_eq!(suite.len(), 21);
        // Spot-check the paper's (n, |G|, k) columns.
        let find = |name: &str| {
            suite
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        for (name, n, g, k) in [
            ("rb", 2, 7, 6),
            ("qft2", 2, 7, 2),
            ("grover", 3, 96, 4),
            ("bv6", 6, 17, 14),
            ("qft10", 10, 235, 2),
            ("bv16", 16, 47, 9),
        ] {
            let case = find(name);
            assert_eq!(case.ideal.n_qubits(), n, "{name} qubits");
            assert_eq!(case.ideal.gate_count(), g, "{name} gates");
            assert_eq!(case.noises, k, "{name} noises");
            assert_eq!(case.noisy().noise_count(), k, "{name} inserted noises");
        }
    }

    #[test]
    fn runners_agree_on_a_small_case() {
        let case = &table1_suite()[1]; // qft2, k = 2
        let noisy = case.noisy();
        let timeout = Duration::from_secs(60);
        let baseline = run_baseline(&case.ideal, &noisy, timeout);
        let alg2 = run_alg2(&case.ideal, &noisy, timeout);
        let alg1 = run_alg1(&case.ideal, &noisy, timeout);
        let (Some(fb), Some(f2), Some(f1)) =
            (baseline.fidelity(), alg2.fidelity(), alg1.fidelity())
        else {
            panic!("small case must not TO/MO");
        };
        assert!((fb - f2).abs() < 1e-7);
        assert!((fb - f1).abs() < 1e-7);
    }

    #[test]
    fn baseline_mo_at_seven_qubits() {
        let case = table1_suite()
            .into_iter()
            .find(|c| c.name == "qft7")
            .expect("qft7");
        let noisy = case.noisy();
        assert!(matches!(
            run_baseline(&case.ideal, &noisy, Duration::from_secs(5)),
            Outcome::OutOfMemory
        ));
    }

    #[test]
    fn expired_timeouts_surface_as_to() {
        let case = &table1_suite()[3]; // qft3, k = 7 → enough terms to trip
        let noisy = case.noisy();
        let zero = Duration::from_secs(0);
        assert!(matches!(
            run_alg1(&case.ideal, &noisy, zero),
            Outcome::TimedOut
        ));
        assert!(matches!(
            run_alg2(&case.ideal, &noisy, zero),
            Outcome::TimedOut
        ));
        assert!(matches!(
            run_baseline(&case.ideal, &noisy, zero),
            Outcome::TimedOut
        ));
    }

    #[test]
    fn outcome_cells() {
        assert_eq!(Outcome::TimedOut.time_cell(), "TO");
        assert_eq!(Outcome::OutOfMemory.nodes_cell(), "MO");
        let done = Outcome::Done {
            fidelity: 0.5,
            time: Duration::from_millis(1500),
            nodes: 7,
        };
        assert_eq!(done.time_cell(), "1.50");
        assert_eq!(done.nodes_cell(), "7");
        assert_eq!(done.fidelity(), Some(0.5));
    }
}
