//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§V).
//!
//! Three binaries regenerate the artifacts:
//!
//! * `table1` — Table I: Qiskit-baseline vs Algorithm II vs Algorithm I
//!   across the 21 benchmark circuits (time, TDD node counts, TO/MO);
//! * `fig7` — Fig. 7: `log10(t1/t2)` as the number of noise sites grows;
//! * `table2` — Table II: Algorithm I with a shared computed table
//!   ("Opt.") vs fresh tables per term ("Ori.").
//!
//! Criterion micro-benches live under `benches/`.

use qaec::{
    check_equivalence, fidelity_alg1, fidelity_alg2, mpo_favored, AlgorithmChoice, AlgorithmUsed,
    CacheOutcome, CheckOptions, Checker, QaecError, Service, ServiceConfig, ServiceQuery,
    ServiceReply, ServiceRequest, SharedTableMode, StoreReclaimMode, SweepPoint, TermOrder,
    Verdict,
};
use qaec_circuit::generators::{
    bernstein_vazirani_all_ones, ghz, grover_dac21, mod_mul_7x1_mod15, qft, quantum_volume,
    randomized_benchmarking, tile, QftStyle,
};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};
use std::time::{Duration, Instant};

/// Seed namespace for noise placement, fixed so every run of the harness
/// sees the same noisy circuits.
pub const NOISE_SEED: u64 = 0xDAC2021;

/// One row of Table I.
#[derive(Clone)]
pub struct BenchCase {
    /// Row label (the paper's `Circuit` column).
    pub name: &'static str,
    /// The ideal benchmark circuit.
    pub ideal: Circuit,
    /// Number of depolarizing noise sites (the paper's `k` column).
    pub noises: usize,
}

impl BenchCase {
    fn new(name: &'static str, ideal: Circuit, noises: usize) -> Self {
        BenchCase {
            name,
            ideal,
            noises,
        }
    }

    /// The noisy implementation: `noises` depolarizing sites with
    /// `p = 0.999` at seeded-random positions (§V-A).
    pub fn noisy(&self) -> Circuit {
        insert_random_noise(
            &self.ideal,
            &NoiseChannel::Depolarizing { p: 0.999 },
            self.noises,
            NOISE_SEED ^ self.name.len() as u64,
        )
    }
}

/// The 21 rows of Table I, with the paper's qubit/gate/noise counts.
pub fn table1_suite() -> Vec<BenchCase> {
    vec![
        BenchCase::new("rb", randomized_benchmarking(2, 7, NOISE_SEED), 6),
        BenchCase::new("qft2", qft(2, QftStyle::DecomposedNoSwaps), 2),
        BenchCase::new("grover", grover_dac21(), 4),
        BenchCase::new("qft3", qft(3, QftStyle::DecomposedNoSwaps), 7),
        BenchCase::new("qv_n3d5", quantum_volume(3, 5, NOISE_SEED), 2),
        BenchCase::new("bv4", bernstein_vazirani_all_ones(4), 7),
        BenchCase::new("7x1mod15", mod_mul_7x1_mod15(), 3),
        BenchCase::new("bv5", bernstein_vazirani_all_ones(5), 6),
        BenchCase::new("qft5", qft(5, QftStyle::DecomposedNoSwaps), 3),
        BenchCase::new("qv_n5d5", quantum_volume(5, 5, NOISE_SEED), 3),
        BenchCase::new("bv6", bernstein_vazirani_all_ones(6), 14),
        BenchCase::new("qv_n6d5", quantum_volume(6, 5, NOISE_SEED), 1),
        BenchCase::new("qft7", qft(7, QftStyle::DecomposedNoSwaps), 6),
        BenchCase::new("qv_n7d5", quantum_volume(7, 5, NOISE_SEED), 2),
        BenchCase::new("bv9", bernstein_vazirani_all_ones(9), 6),
        BenchCase::new("qv_n9d5", quantum_volume(9, 5, NOISE_SEED), 3),
        BenchCase::new("qft9", qft(9, QftStyle::DecomposedNoSwaps), 2),
        BenchCase::new("qft10", qft(10, QftStyle::DecomposedNoSwaps), 2),
        BenchCase::new("bv13", bernstein_vazirani_all_ones(13), 4),
        BenchCase::new("bv14", bernstein_vazirani_all_ones(14), 4),
        BenchCase::new("bv16", bernstein_vazirani_all_ones(16), 9),
    ]
}

/// The outcome of one measured run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Succeeded with fidelity value, wall time and max TDD nodes
    /// (0 for the dense baseline).
    Done {
        /// Fidelity computed.
        fidelity: f64,
        /// Wall-clock time.
        time: Duration,
        /// Max intermediate TDD nodes (0 for the baseline).
        nodes: usize,
        /// Trace terms contracted (1 for Algorithm II, 0 for the
        /// baseline where the notion does not apply).
        terms: usize,
    },
    /// Timed out (the paper's "TO").
    TimedOut,
    /// Out of memory bound (the paper's "MO").
    OutOfMemory,
}

impl Outcome {
    /// Renders the paper's `time (s)` cell.
    pub fn time_cell(&self) -> String {
        match self {
            Outcome::Done { time, .. } => format!("{:.2}", time.as_secs_f64()),
            Outcome::TimedOut => "TO".into(),
            Outcome::OutOfMemory => "MO".into(),
        }
    }

    /// Renders the paper's `nodes` cell.
    pub fn nodes_cell(&self) -> String {
        match self {
            Outcome::Done { nodes, .. } if *nodes > 0 => nodes.to_string(),
            Outcome::Done { .. } => "-".into(),
            Outcome::TimedOut => "TO".into(),
            Outcome::OutOfMemory => "MO".into(),
        }
    }

    /// The fidelity, if the run finished.
    pub fn fidelity(&self) -> Option<f64> {
        match self {
            Outcome::Done { fidelity, .. } => Some(*fidelity),
            _ => None,
        }
    }

    /// The wall time, if the run finished.
    pub fn time(&self) -> Option<Duration> {
        match self {
            Outcome::Done { time, .. } => Some(*time),
            _ => None,
        }
    }
}

/// Runs the dense superoperator baseline (the Qiskit
/// `process_fidelity` substitute) under the paper's 8 GB bound, with an
/// in-flight deadline.
pub fn run_baseline(ideal: &Circuit, noisy: &Circuit, timeout: Duration) -> Outcome {
    let start = Instant::now();
    let deadline = Some(start + timeout);
    // The memory estimate rejects before allocation, mirroring Qiskit's MO.
    let operator = match qaec_dmsim::Operator::from_circuit(ideal) {
        Ok(op) => op,
        Err(qaec_dmsim::SimError::MemoryExceeded { .. }) => return Outcome::OutOfMemory,
        Err(_) => return Outcome::OutOfMemory,
    };
    match qaec_dmsim::SuperOp::from_circuit_opts(
        noisy,
        qaec_dmsim::memory::PAPER_MEMORY_BOUND,
        deadline,
    ) {
        Ok(superop) => {
            let fidelity = qaec_dmsim::process_fidelity::process_fidelity(&superop, &operator);
            let time = start.elapsed();
            if time > timeout {
                Outcome::TimedOut
            } else {
                Outcome::Done {
                    fidelity,
                    time,
                    nodes: 0,
                    terms: 0,
                }
            }
        }
        Err(qaec_dmsim::SimError::DeadlineExceeded) => Outcome::TimedOut,
        Err(qaec_dmsim::SimError::MemoryExceeded { .. }) => Outcome::OutOfMemory,
        Err(_) => Outcome::OutOfMemory,
    }
}

/// Runs Algorithm II with a deadline.
pub fn run_alg2(ideal: &Circuit, noisy: &Circuit, timeout: Duration) -> Outcome {
    run_alg2_with(ideal, noisy, timeout, 1, SharedTableMode::Auto)
}

/// Runs Algorithm II with an explicit worker count and storage backend —
/// the plan-level parallel driver when the shared store is enabled, the
/// private sequential driver under [`SharedTableMode::Off`].
pub fn run_alg2_with(
    ideal: &Circuit,
    noisy: &Circuit,
    timeout: Duration,
    threads: usize,
    shared_table: SharedTableMode,
) -> Outcome {
    run_alg2_with_stats(ideal, noisy, timeout, threads, shared_table).0
}

/// [`run_alg2_with`], also returning the run's decision-diagram
/// statistics — shared-store rows report their `store_bytes` footprint
/// from here (zeroed statistics on TO/MO).
pub fn run_alg2_with_stats(
    ideal: &Circuit,
    noisy: &Circuit,
    timeout: Duration,
    threads: usize,
    shared_table: SharedTableMode,
) -> (Outcome, qaec::TddStats) {
    let opts = CheckOptions {
        deadline: Some(Instant::now() + timeout),
        threads,
        shared_table,
        ..CheckOptions::default()
    };
    let start = Instant::now();
    match fidelity_alg2(ideal, noisy, &opts) {
        Ok(report) => (
            Outcome::Done {
                fidelity: report.fidelity,
                time: start.elapsed(),
                nodes: report.max_nodes,
                terms: 1,
            },
            report.stats,
        ),
        Err(QaecError::Timeout) => (Outcome::TimedOut, qaec::TddStats::default()),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Runs Algorithm I exactly (all terms) with a deadline.
pub fn run_alg1(ideal: &Circuit, noisy: &Circuit, timeout: Duration) -> Outcome {
    run_alg1_with(ideal, noisy, timeout, true)
}

/// Runs Algorithm I with the shared computed table on or off — the
/// "Opt." / "Ori." configurations of Table II.
pub fn run_alg1_with(
    ideal: &Circuit,
    noisy: &Circuit,
    timeout: Duration,
    reuse_tables: bool,
) -> Outcome {
    let opts = CheckOptions {
        deadline: Some(Instant::now() + timeout),
        reuse_tables,
        term_order: TermOrder::Lexicographic,
        ..CheckOptions::default()
    };
    let start = Instant::now();
    match fidelity_alg1(ideal, noisy, None, &opts) {
        Ok(report) => Outcome::Done {
            fidelity: report.fidelity_lower,
            time: start.elapsed(),
            nodes: report.max_nodes,
            terms: report.terms_computed,
        },
        Err(QaecError::Timeout) => Outcome::TimedOut,
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Runs Algorithm I in ε-decision mode on the work-stealing engine with
/// an explicit thread count, returning the outcome and the verdict.
/// Best-first term order, so light-noise checks stop after a handful of
/// heavy terms.
pub fn run_alg1_epsilon(
    ideal: &Circuit,
    noisy: &Circuit,
    epsilon: f64,
    threads: usize,
    timeout: Duration,
) -> (Outcome, Option<Verdict>) {
    let opts = CheckOptions {
        deadline: Some(Instant::now() + timeout),
        threads,
        term_order: TermOrder::BestFirst,
        ..CheckOptions::default()
    };
    let start = Instant::now();
    match fidelity_alg1(ideal, noisy, Some(epsilon), &opts) {
        Ok(report) => (
            Outcome::Done {
                fidelity: report.fidelity_lower,
                time: start.elapsed(),
                nodes: report.max_nodes,
                terms: report.terms_computed,
            },
            report.verdict,
        ),
        Err(QaecError::Timeout) => (Outcome::TimedOut, None),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Re-measures fast cells for stability: runs `f` up to `max_repeats`
/// times (stopping once the accumulated time exceeds one second) and
/// returns the best (minimum-time) successful outcome, or the first
/// non-success. Timing noise on sub-millisecond cells otherwise dominates
/// ratio plots like Fig. 7 / Table II.
/// The host's visible core count (`available_parallelism`, 1 when
/// unknown). Printed into the bench artifact so a gate reading can be
/// interpreted against the machine that produced it — the speedup
/// gates below only arm when at least 4 cores are visible.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub fn measure_best(max_repeats: usize, mut f: impl FnMut() -> Outcome) -> Outcome {
    let mut best: Option<Outcome> = None;
    let mut spent = Duration::ZERO;
    for _ in 0..max_repeats.max(1) {
        let outcome = f();
        match &outcome {
            Outcome::Done { time, .. } => {
                spent += *time;
                let better = match &best {
                    Some(Outcome::Done { time: bt, .. }) => time < bt,
                    _ => true,
                };
                if better {
                    best = Some(outcome);
                }
                if spent > Duration::from_secs(1) {
                    break;
                }
            }
            other => return other.clone(),
        }
    }
    best.expect("at least one run")
}

/// The hand-rolled JSON writer behind the bench artifacts, factored out
/// so other frontends (the CLI's `check --json` / `sweep --json` and the
/// `qaec serve` responses) emit the same shape without a serde
/// dependency: objects of string and number fields, rendered in
/// insertion order, no escapes. Nesting is possible through
/// [`Object::raw`](json::Object::raw) (the serve protocol's `points`
/// arrays); the artifact *reader*
/// ([`records_from_json`]) still only handles the flat shape.
pub mod json {
    /// Replaces characters the minimal parser cannot round-trip
    /// (quotes, backslashes, control characters) with `_`. Values fed
    /// through here are harness- or checker-chosen identifiers, never
    /// user data that must survive verbatim.
    pub fn sanitize(value: &str) -> String {
        value
            .chars()
            .map(|c| {
                if c == '"' || c == '\\' || c.is_control() {
                    '_'
                } else {
                    c
                }
            })
            .collect()
    }

    /// A flat JSON object under construction: fields render in insertion
    /// order.
    #[derive(Clone, Debug, Default)]
    pub struct Object {
        fields: Vec<(String, String)>,
    }

    impl Object {
        /// An empty object.
        pub fn new() -> Object {
            Object::default()
        }

        /// Appends a string field (sanitised, see [`sanitize`]).
        pub fn string(mut self, key: &str, value: &str) -> Object {
            self.fields
                .push((key.to_string(), format!("\"{}\"", sanitize(value))));
            self
        }

        /// Appends a float field with `decimals` fractional digits.
        pub fn number(mut self, key: &str, value: f64, decimals: usize) -> Object {
            self.fields
                .push((key.to_string(), format!("{value:.decimals$}")));
            self
        }

        /// Appends an integer field.
        pub fn int(mut self, key: &str, value: u64) -> Object {
            self.fields.push((key.to_string(), value.to_string()));
            self
        }

        /// Appends a boolean field.
        pub fn boolean(mut self, key: &str, value: bool) -> Object {
            self.fields.push((
                key.to_string(),
                if value { "true" } else { "false" }.to_string(),
            ));
            self
        }

        /// Appends a pre-rendered JSON value verbatim — the escape hatch
        /// for nested arrays/objects (e.g. a `"points"` array of
        /// [`Object::render`]ed rows). The caller owns the value's
        /// well-formedness.
        pub fn raw(mut self, key: &str, value: impl Into<String>) -> Object {
            self.fields.push((key.to_string(), value.into()));
            self
        }

        /// Appends every field of `other`, in order — used to graft a
        /// shared row shape (the CLI's `check --json` object) into a
        /// larger envelope (a serve response) without re-listing fields.
        pub fn extend(mut self, other: Object) -> Object {
            self.fields.extend(other.fields);
            self
        }

        /// Renders the object on one line: `{"k": v, ...}`.
        pub fn render(&self) -> String {
            let body: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect();
            format!("{{{}}}", body.join(", "))
        }
    }

    /// Renders a stable, human-diffable array: one object per line,
    /// two-space indent, trailing newline — the artifact shape
    /// [`super::records_from_json`] parses.
    pub fn array(objects: &[Object]) -> String {
        let mut out = String::from("[\n");
        for (i, object) in objects.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&object.render());
            out.push_str(if i + 1 < objects.len() { ",\n" } else { "\n" });
        }
        out.push_str("]\n");
        out
    }

    /// Renders an array on ONE line: `[{...}, {...}]` — the shape
    /// line-delimited protocols need for nested rows ([`Object::raw`]).
    pub fn array_inline(objects: &[Object]) -> String {
        let body: Vec<String> = objects.iter().map(Object::render).collect();
        format!("[{}]", body.join(", "))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn objects_render_flat_json() {
            let o = Object::new()
                .string("name", "qft\"3\\k4\n")
                .number("wall_ms", 1.5, 3)
                .int("max_nodes", 42);
            assert_eq!(
                o.render(),
                "{\"name\": \"qft_3_k4_\", \"wall_ms\": 1.500, \"max_nodes\": 42}"
            );
            let rendered = array(&[Object::new().int("a", 1), Object::new().int("a", 2)]);
            assert_eq!(rendered, "[\n  {\"a\": 1},\n  {\"a\": 2}\n]\n");
            assert_eq!(array(&[]), "[\n]\n");
        }

        #[test]
        fn nested_and_boolean_rendering() {
            let rows = [Object::new().int("k", 1), Object::new().int("k", 2)];
            assert_eq!(array_inline(&rows), "[{\"k\": 1}, {\"k\": 2}]");
            assert_eq!(array_inline(&[]), "[]");
            let envelope = Object::new()
                .boolean("ok", true)
                .raw("points", array_inline(&rows))
                .extend(Object::new().string("cache", "hit"));
            assert_eq!(
                envelope.render(),
                "{\"ok\": true, \"points\": [{\"k\": 1}, {\"k\": 2}], \"cache\": \"hit\"}"
            );
        }
    }
}

/// One measured run, as serialised into the per-run JSON artifacts
/// (`--json` on the table/figure binaries, `BENCH_PR.json` /
/// `BENCH_BASELINE.json` for the CI smoke gate).
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Scenario label, unique within one artifact.
    pub name: String,
    /// Wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Trace terms contracted per second (0 when terms don't apply).
    pub terms_per_sec: f64,
    /// Largest intermediate decision diagram, in nodes.
    pub max_nodes: usize,
    /// The computed fidelity (or lower bound, for early-stopped runs).
    pub fidelity: f64,
    /// Warm-store bytes held when the run finished
    /// (`SharedTddStore::bytes_used` — the serving scenarios report
    /// their session cache's total, shared-store scenarios their run's
    /// store; 0 where the notion does not apply, e.g. private-store
    /// rows). Absent in older artifacts — parsed tolerantly as 0.
    pub store_bytes: u64,
    /// High-water shared-store footprint across the run
    /// (`SharedTddStore::peak_bytes_used` — survives epoch-based
    /// reclamation swaps, so reclaim-on rows report the true peak, not
    /// the post-reclaim residue; 0 where `store_bytes` would be).
    /// Absent in older artifacts — parsed tolerantly as 0.
    pub peak_store_bytes: u64,
}

impl RunRecord {
    /// Builds a record from a finished [`Outcome`]; `None` for TO/MO.
    pub fn from_outcome(name: impl Into<String>, outcome: &Outcome) -> Option<RunRecord> {
        match outcome {
            Outcome::Done {
                fidelity,
                time,
                nodes,
                terms,
            } => {
                let secs = time.as_secs_f64();
                Some(RunRecord {
                    name: name.into(),
                    wall_ms: secs * 1e3,
                    terms_per_sec: if secs > 0.0 {
                        *terms as f64 / secs
                    } else {
                        0.0
                    },
                    max_nodes: *nodes,
                    fidelity: *fidelity,
                    store_bytes: 0,
                    peak_store_bytes: 0,
                })
            }
            _ => None,
        }
    }
}

/// Serialises records as a stable, human-diffable JSON array (the
/// [`json`] writer; scenario names are sanitised, never escaped — they
/// are harness-chosen identifiers, never data).
pub fn records_to_json(records: &[RunRecord]) -> String {
    let objects: Vec<json::Object> = records
        .iter()
        .map(|r| {
            json::Object::new()
                .string("name", &r.name)
                .number("wall_ms", r.wall_ms, 3)
                .number("terms_per_sec", r.terms_per_sec, 3)
                .int("max_nodes", r.max_nodes as u64)
                .number("fidelity", r.fidelity, 12)
                .int("store_bytes", r.store_bytes)
                .int("peak_store_bytes", r.peak_store_bytes)
        })
        .collect();
    json::array(&objects)
}

/// Parses the JSON produced by [`records_to_json`] (flat objects, no
/// string escapes — exactly the artifact shape, nothing more).
///
/// # Errors
///
/// A human-readable message on malformed input.
pub fn records_from_json(text: &str) -> Result<Vec<RunRecord>, String> {
    fn str_field(object: &str, key: &str) -> Result<String, String> {
        let tagged = format!("\"{key}\":");
        let rest = object
            .split_once(&tagged)
            .ok_or_else(|| format!("missing field `{key}` in `{object}`"))?
            .1
            .trim_start();
        let rest = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("field `{key}` is not a string in `{object}`"))?;
        Ok(rest
            .split_once('"')
            .ok_or_else(|| format!("unterminated string for `{key}`"))?
            .0
            .to_string())
    }
    fn num_field(object: &str, key: &str) -> Result<f64, String> {
        let tagged = format!("\"{key}\":");
        let rest = object
            .split_once(&tagged)
            .ok_or_else(|| format!("missing field `{key}` in `{object}`"))?
            .1
            .trim_start();
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end]
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("bad number for `{key}`: {e}"))
    }

    let mut records = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated object".to_string())?;
        let object = &rest[open..open + close + 1];
        records.push(RunRecord {
            name: str_field(object, "name")?,
            wall_ms: num_field(object, "wall_ms")?,
            terms_per_sec: num_field(object, "terms_per_sec")?,
            max_nodes: num_field(object, "max_nodes")? as usize,
            fidelity: num_field(object, "fidelity")?,
            // Tolerant: baselines written before the serving layer
            // carry no store_bytes column.
            store_bytes: num_field(object, "store_bytes").unwrap_or(0.0) as u64,
            peak_store_bytes: num_field(object, "peak_store_bytes").unwrap_or(0.0) as u64,
        });
        rest = &rest[open + close + 1..];
    }
    Ok(records)
}

/// Serialises a full bench artifact: the detected host core count (the
/// hardware context the speedup gates were measured in) as an envelope
/// around the per-run rows.
pub fn artifact_to_json(host_cores: usize, records: &[RunRecord]) -> String {
    let rows = records_to_json(records);
    format!(
        "{{\"host_cores\": {host_cores}, \"rows\": {}}}\n",
        rows.trim_end()
    )
}

/// Parses either artifact shape: the enveloped `{"host_cores": …,
/// "rows": […]}` written by `bench_smoke`, or the legacy bare array
/// (returned with `None` for the core count) that older baselines and
/// the table/figure harnesses' `--json` output still use.
///
/// # Errors
///
/// A human-readable message on malformed input.
pub fn artifact_from_json(text: &str) -> Result<(Option<usize>, Vec<RunRecord>), String> {
    let trimmed = text.trim_start();
    if !trimmed.starts_with('{') {
        return Ok((None, records_from_json(text)?));
    }
    let (head, rows) = trimmed
        .split_once("\"rows\":")
        .ok_or_else(|| "artifact object has no `rows` array".to_string())?;
    let cores = head.split_once("\"host_cores\":").and_then(|(_, rest)| {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse::<usize>().ok()
    });
    Ok((cores, records_from_json(rows)?))
}

/// Writes records to `path` as a bare JSON array (the legacy artifact
/// shape the table/figure harnesses emit).
///
/// # Errors
///
/// Propagates the I/O error message.
pub fn write_records(path: &str, records: &[RunRecord]) -> Result<(), String> {
    std::fs::write(path, records_to_json(records)).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Writes the enveloped artifact (host core count + rows) to `path` —
/// what `bench_smoke` emits for `BENCH_PR.json` / `BENCH_BASELINE.json`.
///
/// # Errors
///
/// Propagates the I/O error message.
pub fn write_artifact(path: &str, host_cores: usize, records: &[RunRecord]) -> Result<(), String> {
    std::fs::write(path, artifact_to_json(host_cores, records))
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Reads the rows of an artifact written by [`write_records`] or
/// [`write_artifact`] (both shapes accepted).
///
/// # Errors
///
/// Propagates I/O and parse error messages.
pub fn read_records(path: &str) -> Result<Vec<RunRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    artifact_from_json(&text).map(|(_, rows)| rows)
}

/// The reduced "smoke" preset behind the `bench-smoke` CI job: a set of
/// paper-table scenarios small enough to finish in seconds but broad
/// enough to cover both algorithms, the sequential and the work-stealing
/// parallel engine paths, ε early termination, and both storage backends
/// (shared concurrent store vs private per-worker managers).
///
/// Besides measuring, this *asserts* the cross-run invariants the
/// scenarios imply (parallel ε verdict equals the sequential one, early
/// exit computes fewer terms than exact mode, fidelities agree across
/// algorithms, the shared store allocates fewer aggregate nodes than the
/// private-parallel path and records cross-thread unique-table hits), so
/// a semantics regression fails the job even when timings look fine.
///
/// # Panics
///
/// Panics when a scenario times out or an invariant breaks — in CI
/// that's exactly the failure signal.
pub fn run_smoke_suite(timeout: Duration) -> Vec<RunRecord> {
    let mut records = Vec::new();
    fn push(records: &mut Vec<RunRecord>, name: &str, outcome: &Outcome) {
        let record = RunRecord::from_outcome(name, outcome)
            .unwrap_or_else(|| panic!("smoke scenario `{name}` did not finish: {outcome:?}"));
        records.push(record);
    }

    // Fig. 7 QFT workload: qft3 with 4 depolarizing sites (256 terms).
    let qft3 = qft(3, QftStyle::DecomposedNoSwaps);
    let qft3_noisy = insert_random_noise(
        &qft3,
        &NoiseChannel::Depolarizing { p: 0.999 },
        4,
        NOISE_SEED + 4,
    );
    let exact = measure_best(2, || run_alg1(&qft3, &qft3_noisy, timeout));
    push(&mut records, "qft3_k4_alg1_exact", &exact);

    // The same workload through the ε-aware engine, sequential and on 4
    // work-stealing threads: verdicts must agree and early exit must
    // compute fewer terms than exact mode. Both cells run sub-10ms, so
    // `measure_best` smooths thread-spawn/scheduler jitter (the verdict
    // is deterministic per configuration; any repeat's will do).
    let mut verdict_seq = None;
    let eps_seq = measure_best(3, || {
        let (outcome, verdict) = run_alg1_epsilon(&qft3, &qft3_noisy, 1e-4, 1, timeout);
        verdict_seq = verdict;
        outcome
    });
    push(&mut records, "qft3_k4_alg1_eps1e-4_seq", &eps_seq);
    let mut verdict_par = None;
    let eps_par = measure_best(3, || {
        let (outcome, verdict) = run_alg1_epsilon(&qft3, &qft3_noisy, 1e-4, 4, timeout);
        verdict_par = verdict;
        outcome
    });
    push(&mut records, "qft3_k4_alg1_eps1e-4_t4", &eps_par);
    assert_eq!(
        verdict_seq, verdict_par,
        "parallel ε verdict diverged from sequential"
    );
    if let (
        Outcome::Done {
            terms: exact_terms, ..
        },
        Outcome::Done {
            terms: par_terms, ..
        },
    ) = (&exact, &eps_par)
    {
        assert!(
            par_terms < exact_terms,
            "parallel ε run must stop early: {par_terms} vs exact {exact_terms}"
        );
    }

    // Parallel exact mode on a second QFT workload, checked against
    // Algorithm II's collective value.
    let qft4 = qft(4, QftStyle::DecomposedNoSwaps);
    let qft4_noisy = insert_random_noise(
        &qft4,
        &NoiseChannel::Depolarizing { p: 0.999 },
        3,
        NOISE_SEED + 3,
    );
    let par_exact = measure_best(2, || {
        let opts = CheckOptions {
            deadline: Some(Instant::now() + timeout),
            threads: 4,
            term_order: TermOrder::Lexicographic,
            ..CheckOptions::default()
        };
        let start = Instant::now();
        match fidelity_alg1(&qft4, &qft4_noisy, None, &opts) {
            Ok(report) => Outcome::Done {
                fidelity: report.fidelity_lower,
                time: start.elapsed(),
                nodes: report.max_nodes,
                terms: report.terms_computed,
            },
            Err(QaecError::Timeout) => Outcome::TimedOut,
            Err(e) => panic!("unexpected error: {e}"),
        }
    });
    push(&mut records, "qft4_k3_alg1_exact_t4", &par_exact);
    let alg2 = measure_best(2, || run_alg2(&qft4, &qft4_noisy, timeout));
    push(&mut records, "qft4_k3_alg2", &alg2);
    if let (Some(f1), Some(f2)) = (par_exact.fidelity(), alg2.fidelity()) {
        assert!((f1 - f2).abs() < 1e-6, "alg1-parallel {f1} vs alg2 {f2}");
    }

    // The same qft4 workload on both storage backends, 4 workers each:
    // the shared store must beat per-worker rebuilding on aggregate
    // allocations, record cross-thread unique-table hits, and agree
    // with Algorithm II — the Table II "Opt." sharing, recovered in
    // parallel.
    let run_qft4_backend = |shared_table: SharedTableMode| {
        let mut stats = qaec::TddStats::default();
        let outcome = measure_best(2, || {
            let opts = CheckOptions {
                deadline: Some(Instant::now() + timeout),
                threads: 4,
                term_order: TermOrder::Lexicographic,
                shared_table,
                ..CheckOptions::default()
            };
            let start = Instant::now();
            let report =
                fidelity_alg1(&qft4, &qft4_noisy, None, &opts).expect("qft4 backend scenario");
            stats = report.stats;
            Outcome::Done {
                fidelity: report.fidelity_lower,
                time: start.elapsed(),
                nodes: report.max_nodes,
                terms: report.terms_computed,
            }
        });
        (outcome, stats)
    };
    let (shared_outcome, shared_stats) = run_qft4_backend(SharedTableMode::On);
    push(&mut records, "qft4_k3_alg1_t4_shared", &shared_outcome);
    let row = records.last_mut().expect("just pushed");
    row.store_bytes = shared_stats.store_bytes;
    row.peak_store_bytes = shared_stats.peak_store_bytes;
    let (private_outcome, private_stats) = run_qft4_backend(SharedTableMode::Off);
    push(&mut records, "qft4_k3_alg1_t4_private", &private_outcome);
    println!(
        "shared-store payoff (qft4_k3, 4 workers): nodes created {} vs {} private \
         ({} cross-thread unique hits)",
        shared_stats.nodes_created, private_stats.nodes_created, shared_stats.cross_unique_hits,
    );
    assert!(
        shared_stats.cross_unique_hits > 0,
        "shared store must record cross-worker unique-table hits"
    );
    assert!(
        shared_stats.nodes_created < private_stats.nodes_created,
        "shared store must allocate fewer nodes than per-worker rebuilding: {} vs {}",
        shared_stats.nodes_created,
        private_stats.nodes_created
    );

    // Two more Table I rows (benchmark-gate coverage): the Grover row on
    // Algorithm II and the qft5 row on exact Algorithm I.
    let grover = grover_dac21();
    let grover_noisy = insert_random_noise(
        &grover,
        &NoiseChannel::Depolarizing { p: 0.999 },
        4,
        NOISE_SEED ^ "grover".len() as u64,
    );
    let grover_alg2 = measure_best(2, || run_alg2(&grover, &grover_noisy, timeout));
    push(&mut records, "grover_k4_alg2", &grover_alg2);

    let qft5 = qft(5, QftStyle::DecomposedNoSwaps);
    let qft5_noisy = insert_random_noise(
        &qft5,
        &NoiseChannel::Depolarizing { p: 0.999 },
        3,
        NOISE_SEED ^ "qft5".len() as u64,
    );
    let qft5_alg1 = measure_best(2, || run_alg1(&qft5, &qft5_noisy, timeout));
    push(&mut records, "qft5_k3_alg1_exact", &qft5_alg1);

    // Compile-once session sweep (the paper's Table-I-shaped workload):
    // the qft5 row re-checked at 8 noise strengths through ONE
    // `CompiledCheck` — validation, network construction and min-fill
    // planning paid once, Kraus weights re-instantiated per point on the
    // compiled plan over one warm shared store — against 8 cold
    // `check_equivalence` calls on the same re-parameterised pairs.
    // Gated: the sweep must build exactly one contraction plan (the
    // cold path builds 8) and finish ≥2× faster (re-confirmed on the
    // 4-vCPU ubuntu-latest runner; the default options now route this
    // sweep through the width-8 lane engine, which widens the measured
    // margin further), with every per-point fidelity and verdict
    // bit-identical to the cold path, at 1 and 4 threads.
    let sweep_eps = 1e-3;
    let sweep_strengths = [0.999, 0.998, 0.997, 0.996, 0.995, 0.99, 0.98, 0.97];
    let qft5_seed = NOISE_SEED ^ "qft5".len() as u64;
    let session_opts = |threads: usize| CheckOptions {
        deadline: Some(Instant::now() + timeout),
        threads,
        ..CheckOptions::default()
    };
    let run_sweep = |threads: usize| -> (Duration, Vec<SweepPoint>, u64) {
        let builds_before = qaec_tensornet::plan::build_count();
        let start = Instant::now();
        let compiled = Checker::new(&qft5, &qft5_noisy)
            .options(session_opts(threads))
            .compile()
            .expect("qft5 session compiles");
        let points = compiled
            .sweep_noise(sweep_eps, &sweep_strengths)
            .expect("qft5 noise sweep");
        let elapsed = start.elapsed();
        let builds = qaec_tensornet::plan::build_count() - builds_before;
        (elapsed, points, builds)
    };
    // Best-of-3 on both sides: the ≥2× gate compares their ratio, and
    // the ~tens-of-ms cells on shared CI runners need the minimum on
    // each side to shake preemption noise out (the measured margin is
    // ~2.4–2.8×, so only a systematic slowdown should trip it).
    let (mut sweep_time, mut sweep_points, sweep_builds) = run_sweep(1);
    for _ in 0..2 {
        let (t, points, builds) = run_sweep(1);
        assert_eq!(builds, sweep_builds);
        if t < sweep_time {
            (sweep_time, sweep_points) = (t, points);
        }
    }
    assert_eq!(
        sweep_builds, 1,
        "a compile-once sweep must build exactly one contraction plan"
    );

    let run_cold = || -> (Duration, Vec<qaec::EquivalenceReport>, u64) {
        let builds_before = qaec_tensornet::plan::build_count();
        let start = Instant::now();
        let reports: Vec<qaec::EquivalenceReport> = sweep_strengths
            .iter()
            .map(|&p| {
                // The same noise positions (same seed) at strength `p` —
                // exactly the pair the session's sweep point checks.
                let cold_noisy =
                    insert_random_noise(&qft5, &NoiseChannel::Depolarizing { p }, 3, qft5_seed);
                check_equivalence(&qft5, &cold_noisy, sweep_eps, &session_opts(1))
                    .expect("cold qft5 check")
            })
            .collect();
        let elapsed = start.elapsed();
        let builds = qaec_tensornet::plan::build_count() - builds_before;
        (elapsed, reports, builds)
    };
    let (mut cold_time, cold_reports, cold_builds) = run_cold();
    for _ in 0..2 {
        let (t, _, _) = run_cold();
        cold_time = cold_time.min(t);
    }
    assert_eq!(
        cold_builds,
        sweep_strengths.len() as u64,
        "the cold path replans every point"
    );
    for (k, (point, report)) in sweep_points.iter().zip(&cold_reports).enumerate() {
        assert_eq!(
            point.fidelity.to_bits(),
            report.fidelity_bounds.0.to_bits(),
            "sweep point {k}: fidelity must be bit-identical to the cold path"
        );
        assert_eq!(point.verdict, report.verdict, "sweep point {k}");
    }
    // Thread count must not change what a sweep reports (Algorithm II
    // resolves the shared canonical store at every count).
    let (_, sweep_t4, _) = run_sweep(4);
    for (k, (p1, p4)) in sweep_points.iter().zip(&sweep_t4).enumerate() {
        assert_eq!(
            p1.fidelity.to_bits(),
            p4.fidelity.to_bits(),
            "sweep point {k}: t1 vs t4 fidelity drifted"
        );
        assert_eq!(p1.max_nodes, p4.max_nodes, "sweep point {k}: max_nodes");
    }
    let speedup = cold_time.as_secs_f64() / sweep_time.as_secs_f64();
    println!(
        "compile-once sweep (qft5_k3 ×{} points): {:.1}ms vs {:.1}ms cold — {speedup:.2}x",
        sweep_strengths.len(),
        sweep_time.as_secs_f64() * 1e3,
        cold_time.as_secs_f64() * 1e3,
    );
    assert!(
        speedup >= 2.0,
        "a compiled sweep must beat cold re-checking ≥2x: {speedup:.2}x"
    );
    let sweep_max_nodes = sweep_points.iter().map(|p| p.max_nodes).max().unwrap_or(0);
    let last_fidelity = sweep_points.last().map_or(0.0, |p| p.fidelity);
    push(
        &mut records,
        "qft5_k3_sweep8_session",
        &Outcome::Done {
            fidelity: last_fidelity,
            time: sweep_time,
            nodes: sweep_max_nodes,
            terms: sweep_strengths.len(),
        },
    );
    push(
        &mut records,
        "qft5_k3_sweep8_cold",
        &Outcome::Done {
            fidelity: cold_reports.last().map_or(0.0, |r| r.fidelity_bounds.0),
            time: cold_time,
            nodes: cold_reports.iter().map(|r| r.max_nodes).max().unwrap_or(0),
            terms: sweep_strengths.len(),
        },
    );

    // Vectorised lane sweep (the multi-lane weight engine end to end):
    // the same compiled qft5 sweep with its 8 points batched into ONE
    // width-8 lane contraction, against the same session forced onto the
    // scalar per-point replay (`sweep_lanes: 1`). The per-point results
    // must be bit-identical — the lane engine's whole contract — and
    // every point of the batch must carry the batch's shared
    // single-traversal statistics, so a silent scalar fallback (a lane
    // divergence on this preset) fails the job instead of just running
    // slower.
    let lane_opts = |lanes: usize| CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmII,
        deadline: Some(Instant::now() + timeout),
        threads: 1,
        sweep_lanes: lanes,
        ..CheckOptions::default()
    };
    let run_lane_sweep = |lanes: usize| -> (Duration, Vec<SweepPoint>) {
        let compiled = Checker::new(&qft5, &qft5_noisy)
            .options(lane_opts(lanes))
            .compile()
            .expect("qft5 lane session compiles");
        let start = Instant::now();
        let points = compiled
            .sweep_noise(sweep_eps, &sweep_strengths)
            .expect("qft5 lane sweep");
        (start.elapsed(), points)
    };
    // Best-of-3 per side: the gate below compares their ratio.
    let (mut lane_time, lane_points) = run_lane_sweep(8);
    for _ in 0..2 {
        lane_time = lane_time.min(run_lane_sweep(8).0);
    }
    let (mut replay_time, replay_points) = run_lane_sweep(1);
    for _ in 0..2 {
        replay_time = replay_time.min(run_lane_sweep(1).0);
    }
    for (k, (lane, replay)) in lane_points.iter().zip(&replay_points).enumerate() {
        assert_eq!(
            lane.fidelity.to_bits(),
            replay.fidelity.to_bits(),
            "lane point {k}: fidelity must be bit-identical to the scalar replay"
        );
        assert_eq!(lane.verdict, replay.verdict, "lane point {k}: verdict");
    }
    let head = &lane_points[0];
    for (k, point) in lane_points.iter().enumerate() {
        assert_eq!(
            point.stats, head.stats,
            "lane point {k} must report the width-8 batch's single traversal"
        );
    }
    assert!(head.stats.cont_calls > 0, "the lane batch did real work");
    let lane_speedup = replay_time.as_secs_f64() / lane_time.as_secs_f64();
    println!(
        "lane sweep (qft5_k3 ×{} points, width 8): {:.1}ms vs {:.1}ms scalar replay — \
         {lane_speedup:.2}x",
        sweep_strengths.len(),
        lane_time.as_secs_f64() * 1e3,
        replay_time.as_secs_f64() * 1e3,
    );
    // ≥1.5× from 4-vCPU runner measurements (~2× there — one traversal
    // amortises eight passes of hashing and cache probing). Both sides
    // are single-threaded, but 1-core containers time-share the harness
    // itself, so the gate only arms where CI actually runs it.
    let cores = detected_cores();
    if cores >= 4 {
        assert!(
            lane_speedup >= 1.5,
            "the lane engine must beat per-point replay ≥1.5x: {lane_speedup:.2}x"
        );
    } else {
        println!("lane-sweep speedup gate skipped: only {cores} core(s) visible");
    }
    push(
        &mut records,
        "qft5_k3_sweep8_lanes8",
        &Outcome::Done {
            fidelity: lane_points.last().map_or(0.0, |p| p.fidelity),
            time: lane_time,
            nodes: lane_points.iter().map(|p| p.max_nodes).max().unwrap_or(0),
            terms: sweep_strengths.len(),
        },
    );
    push(
        &mut records,
        "qft5_k3_sweep8_replay1",
        &Outcome::Done {
            fidelity: replay_points.last().map_or(0.0, |p| p.fidelity),
            time: replay_time,
            nodes: replay_points.iter().map(|p| p.max_nodes).max().unwrap_or(0),
            terms: sweep_strengths.len(),
        },
    );

    // One wide-noise Algorithm II row from Table I territory.
    let bv5 = bernstein_vazirani_all_ones(5);
    let bv5_noisy = insert_random_noise(
        &bv5,
        &NoiseChannel::Depolarizing { p: 0.999 },
        6,
        NOISE_SEED + 6,
    );
    let bv5_alg2 = measure_best(2, || run_alg2(&bv5, &bv5_noisy, timeout));
    push(&mut records, "bv5_k6_alg2", &bv5_alg2);

    // Plan-level parallel Algorithm II on a simultaneous (tiled)
    // workload: four disjoint 6-qubit QV blocks, whose doubled network
    // decomposes into four independent contraction branches. The shared
    // canonical store makes `--threads` a pure performance knob, so t1
    // and t4 must report bit-identical fidelity and `max_nodes`; the
    // private sequential driver (`--shared-table off`) must agree to
    // the interning tolerance.
    let sim = tile(&quantum_volume(6, 5, NOISE_SEED), 4);
    let sim_noisy = insert_random_noise(
        &sim,
        &NoiseChannel::Depolarizing { p: 0.999 },
        8,
        NOISE_SEED + 8,
    );
    // Best-of-5 on the two speedup cells: the ≥1.3× gate below compares
    // their ratio, and ~400ms cells on shared CI runners need the extra
    // repeats to shake scheduler noise out of the minimum.
    let mut alg2_t1_stats = qaec::TddStats::default();
    let alg2_t1 = measure_best(5, || {
        let (outcome, stats) =
            run_alg2_with_stats(&sim, &sim_noisy, timeout, 1, SharedTableMode::On);
        alg2_t1_stats = stats;
        outcome
    });
    push(&mut records, "qv6x4_k8_alg2_t1_shared", &alg2_t1);
    let row = records.last_mut().expect("just pushed");
    row.store_bytes = alg2_t1_stats.store_bytes;
    row.peak_store_bytes = alg2_t1_stats.peak_store_bytes;
    let mut alg2_t4_stats = qaec::TddStats::default();
    let alg2_t4 = measure_best(5, || {
        let (outcome, stats) =
            run_alg2_with_stats(&sim, &sim_noisy, timeout, 4, SharedTableMode::On);
        alg2_t4_stats = stats;
        outcome
    });
    push(&mut records, "qv6x4_k8_alg2_t4_shared", &alg2_t4);
    let row = records.last_mut().expect("just pushed");
    row.store_bytes = alg2_t4_stats.store_bytes;
    row.peak_store_bytes = alg2_t4_stats.peak_store_bytes;
    let alg2_private = measure_best(3, || {
        run_alg2_with(&sim, &sim_noisy, timeout, 1, SharedTableMode::Off)
    });
    push(&mut records, "qv6x4_k8_alg2_private", &alg2_private);
    if let (
        Outcome::Done {
            fidelity: f1,
            time: t1,
            nodes: n1,
            ..
        },
        Outcome::Done {
            fidelity: f4,
            time: t4,
            nodes: n4,
            ..
        },
    ) = (&alg2_t1, &alg2_t4)
    {
        assert_eq!(
            f1.to_bits(),
            f4.to_bits(),
            "parallel alg2 fidelity must be bit-identical to sequential"
        );
        assert_eq!(n1, n4, "parallel alg2 max_nodes must match sequential");
        // The wall-time payoff is only measurable with real cores under
        // the pool; single-core runners (and CI under heavy contention)
        // time-share the workers and cannot show a speedup.
        let cores = detected_cores();
        if cores >= 4 {
            let speedup = t1.as_secs_f64() / t4.as_secs_f64();
            println!("parallel-alg2 speedup (qv6x4_k8, 4 workers, {cores} cores): {speedup:.2}x");
            // ≥1.3× re-confirmed on the 4-vCPU ubuntu-latest runner
            // (measured ~1.6–1.9× there; the margin absorbs noisy
            // neighbours without letting a real scheduling regression
            // through).
            assert!(
                speedup >= 1.3,
                "plan-level parallelism must pay off on the tiled workload: {speedup:.2}x < 1.3x"
            );
        } else {
            println!(
                "parallel-alg2 speedup gate skipped: only {cores} core(s) visible \
                 (t1 {:.1}ms vs t4 {:.1}ms)",
                t1.as_secs_f64() * 1e3,
                t4.as_secs_f64() * 1e3,
            );
        }
    }
    if let (Some(fs), Some(fp)) = (alg2_t1.fidelity(), alg2_private.fidelity()) {
        assert!(
            (fs - fp).abs() < 1e-9,
            "shared and private alg2 drivers must agree: {fs} vs {fp}"
        );
    }
    // The shared store's sequential overhead gate: with scope-local
    // interning glue keeping wdiv's id fast paths hot, the shared t1
    // driver must stay within 1.5× of the private sequential driver on
    // the same workload (it was ~2.26× before the read-mostly fast
    // path; measured ~1.4–1.5×). Both cells are sequential minimums of
    // repeated runs, so no core guard — only a floor against
    // sub-millisecond jitter, which this ~200ms workload clears by
    // orders of magnitude.
    if let (Some(ts), Some(tp)) = (alg2_t1.time(), alg2_private.time()) {
        let gap = ts.as_secs_f64() / tp.as_secs_f64();
        println!(
            "shared-store sequential gap (qv6x4_k8): {:.1}ms shared vs {:.1}ms private — {gap:.2}x",
            ts.as_secs_f64() * 1e3,
            tp.as_secs_f64() * 1e3,
        );
        if tp.as_secs_f64() >= 0.02 {
            assert!(
                gap <= 1.5,
                "the shared sequential driver must stay within 1.5x of private: {gap:.2}x"
            );
        }
    }

    // Epoch-based store reclamation on the tiled qv6x4 workload, scalar
    // per-point path (lanes: 1, so every point is its own traversal and
    // its own quiescent boundary). Reclaim-off accumulates all 8
    // points' arenas in one append-only store; reclaim-on retires them
    // at each point boundary. Gated: every fidelity and verdict
    // bit-identical between the two modes, and the reclaim-off peak
    // footprint at least 1.5× the reclaim-on peak (measured ~3–5× —
    // the margin only guards against reclamation silently not
    // happening).
    let reclaim_opts = |reclaim: StoreReclaimMode| CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmII,
        deadline: Some(Instant::now() + timeout),
        threads: 1,
        sweep_lanes: 1,
        store_reclaim: reclaim,
        ..CheckOptions::default()
    };
    let run_reclaim_sweep = |reclaim: StoreReclaimMode| -> (Duration, Vec<SweepPoint>, u64, u64) {
        let compiled = Checker::new(&sim, &sim_noisy)
            .options(reclaim_opts(reclaim))
            .compile()
            .expect("qv6x4 reclaim session compiles");
        let start = Instant::now();
        let points = compiled
            .sweep_noise(sweep_eps, &sweep_strengths)
            .expect("qv6x4 reclaim sweep");
        let elapsed = start.elapsed();
        (
            elapsed,
            points,
            compiled.warm_store_bytes() as u64,
            compiled.warm_store_peak_bytes() as u64,
        )
    };
    let (off_time, off_points, off_bytes, off_peak) = run_reclaim_sweep(StoreReclaimMode::Off);
    let (on_time, on_points, on_bytes, on_peak) = run_reclaim_sweep(StoreReclaimMode::On);
    for (k, (a, b)) in off_points.iter().zip(&on_points).enumerate() {
        assert_eq!(
            a.fidelity.to_bits(),
            b.fidelity.to_bits(),
            "sweep point {k}: reclamation must not move a fidelity bit"
        );
        assert_eq!(a.verdict, b.verdict, "sweep point {k}: verdict");
    }
    let peak_reduction = off_peak as f64 / on_peak.max(1) as f64;
    println!(
        "store reclamation (qv6x4_k8 ×{} points, scalar): peak {off_peak} B off vs {on_peak} B on \
         — {peak_reduction:.2}x reduction",
        sweep_strengths.len(),
    );
    assert!(
        peak_reduction >= 1.5,
        "reclaim-on must cut the multi-point peak ≥1.5x: {peak_reduction:.2}x \
         ({off_peak} B vs {on_peak} B)"
    );
    let reclaim_row = |name: &str, time: Duration, points: &[SweepPoint]| -> RunRecord {
        RunRecord::from_outcome(
            name,
            &Outcome::Done {
                fidelity: points.last().map_or(0.0, |p| p.fidelity),
                time,
                nodes: points.iter().map(|p| p.max_nodes).max().unwrap_or(0),
                terms: sweep_strengths.len(),
            },
        )
        .expect("reclaim record")
    };
    let mut off_record = reclaim_row("qv6x4_k8_sweep8_reclaim_off", off_time, &off_points);
    off_record.store_bytes = off_bytes;
    off_record.peak_store_bytes = off_peak;
    records.push(off_record);
    let mut on_record = reclaim_row("qv6x4_k8_sweep8_reclaim_on", on_time, &on_points);
    on_record.store_bytes = on_bytes;
    on_record.peak_store_bytes = on_peak;
    records.push(on_record);

    // Serving layer: the repeated-pair request stream a long-lived
    // `qaec serve` answers — 9 check requests over 3 distinct qft3
    // pairs through one `Service`, Algorithm II sessions (so every
    // session holds a warm store the cache can account). Gated: the
    // service builds exactly one contraction plan per DISTINCT pair
    // (3, not 9 — the session cache absorbs the repeats), the repeats
    // are hits, and every cached answer is bit-identical to a cold
    // one-shot check of the same pair.
    let service_eps = 1e-3;
    let service_opts = CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmII,
        deadline: Some(Instant::now() + timeout),
        ..CheckOptions::default()
    };
    let service_pairs: Vec<Circuit> = (0..3)
        .map(|k| {
            insert_random_noise(
                &qft3,
                &NoiseChannel::Depolarizing { p: 0.999 },
                2,
                NOISE_SEED + 10 + k as u64,
            )
        })
        .collect();
    let service_requests: Vec<ServiceRequest> = (0..9)
        .map(|k| ServiceRequest {
            ideal: qft3.clone(),
            noisy: service_pairs[k % 3].clone(),
            query: ServiceQuery::Check {
                epsilon: service_eps,
            },
            algorithm: None,
        })
        .collect();
    let run_service = || {
        let service = Service::new(ServiceConfig {
            options: service_opts.clone(),
            cache_bytes: None,
        });
        let builds_before = qaec_tensornet::plan::build_count();
        let start = Instant::now();
        let responses = service.handle_batch(&service_requests);
        let elapsed = start.elapsed();
        let builds = qaec_tensornet::plan::build_count() - builds_before;
        (elapsed, builds, service.stats(), responses)
    };
    let (mut service_time, service_builds, service_stats, service_responses) = run_service();
    {
        // Best-of-2 on the timing; the structural gates must hold on
        // every run.
        let (t, builds, _, _) = run_service();
        assert_eq!(builds, service_builds);
        service_time = service_time.min(t);
    }
    assert_eq!(
        service_builds, 3,
        "the session cache must compile one plan per distinct pair, not per request"
    );
    assert_eq!(
        (
            service_stats.misses,
            service_stats.hits,
            service_stats.compiles
        ),
        (3, 6, 3),
        "9 requests over 3 pairs: 3 misses, 6 hits, 3 compiles"
    );
    assert!(
        service_stats.store_bytes > 0,
        "Algorithm II sessions hold a warm store the cache can account"
    );
    let service_reports: Vec<&qaec::EquivalenceReport> = service_responses
        .iter()
        .map(|response| {
            match response
                .result
                .as_ref()
                .expect("service check scenario succeeds")
            {
                ServiceReply::Check(report) => report,
                _ => panic!("check requests yield check replies"),
            }
        })
        .collect();
    for (k, response) in service_responses.iter().enumerate() {
        let expected = if k < 3 {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Hit
        };
        assert_eq!(response.cache, expected, "request {k}");
        assert_eq!(
            service_reports[k].fidelity_bounds.0.to_bits(),
            service_reports[k % 3].fidelity_bounds.0.to_bits(),
            "request {k}: repeats of a pair must answer bit-identically"
        );
    }
    for (k, noisy) in service_pairs.iter().enumerate() {
        let cold = check_equivalence(&qft3, noisy, service_eps, &service_opts)
            .expect("cold service comparator");
        assert_eq!(
            service_reports[k].fidelity_bounds.0.to_bits(),
            cold.fidelity_bounds.0.to_bits(),
            "pair {k}: cached answer must be bit-identical to a cold one-shot check"
        );
        assert_eq!(service_reports[k].verdict, cold.verdict, "pair {k}");
    }
    println!(
        "service stream (9 req / 3 pairs): {:.1}ms, {} — plans built: {service_builds}",
        service_time.as_secs_f64() * 1e3,
        service_stats,
    );
    let mut service_record = RunRecord::from_outcome(
        "service_9req_3pairs_alg2",
        &Outcome::Done {
            fidelity: service_reports[8].fidelity_bounds.0,
            time: service_time,
            nodes: service_reports
                .iter()
                .map(|r| r.max_nodes)
                .max()
                .unwrap_or(0),
            terms: service_requests.len(),
        },
    )
    .expect("service record");
    service_record.store_bytes = service_stats.store_bytes;
    service_record.peak_store_bytes = service_stats.peak_store_bytes;
    records.push(service_record);

    // Algorithm III (MPO) on the portfolio's wide, weakly-coupled
    // workload: eight noisy 3-qubit QFT blocks tiled to 24 qubits —
    // past the width heuristic's floor, disjoint enough that the
    // superoperator MPO stays near identity on tiny bonds while the
    // exact backend pays for the full doubled network. Gated: the
    // certified interval decides at the bench ε with the exact
    // backend's verdict, and the MPO check runs ≥2× faster than the
    // exact Algorithm II check on the same pair.
    let wide_block = qft(3, QftStyle::DecomposedNoSwaps);
    let wide_noisy_block = insert_random_noise(
        &wide_block,
        &NoiseChannel::Depolarizing { p: 0.998 },
        1,
        NOISE_SEED + 24,
    );
    let wide = tile(&wide_block, 8);
    let wide_noisy = tile(&wide_noisy_block, 8);
    assert!(
        mpo_favored(&wide_noisy),
        "the tiled 24-qubit pair must be portfolio-favored"
    );
    let mpo_eps = 0.2;
    let run_wide_mpo = || -> (Duration, qaec::EquivalenceReport) {
        let start = Instant::now();
        let mut compiled = Checker::new(&wide, &wide_noisy)
            .options(CheckOptions {
                algorithm: AlgorithmChoice::Mpo,
                deadline: Some(Instant::now() + timeout),
                ..CheckOptions::default()
            })
            .compile()
            .expect("wide mpo session compiles");
        let report = compiled.check(mpo_eps).expect("wide mpo check");
        (start.elapsed(), report)
    };
    let run_wide_exact = || -> (Duration, qaec::EquivalenceReport) {
        let start = Instant::now();
        let report = check_equivalence(
            &wide,
            &wide_noisy,
            mpo_eps,
            &CheckOptions {
                algorithm: AlgorithmChoice::AlgorithmII,
                deadline: Some(Instant::now() + timeout),
                ..CheckOptions::default()
            },
        )
        .expect("wide exact check");
        (start.elapsed(), report)
    };
    // Best-of-3 per side: the ≥2× gate compares their ratio.
    let (mut mpo_time, mpo_report) = run_wide_mpo();
    for _ in 0..2 {
        mpo_time = mpo_time.min(run_wide_mpo().0);
    }
    let (mut wide_exact_time, wide_exact_report) = run_wide_exact();
    for _ in 0..2 {
        wide_exact_time = wide_exact_time.min(run_wide_exact().0);
    }
    assert_eq!(mpo_report.algorithm, AlgorithmUsed::Mpo);
    assert_ne!(
        mpo_report.verdict,
        Verdict::Inconclusive,
        "the certified interval must decide the bench ε"
    );
    assert_eq!(
        mpo_report.verdict, wide_exact_report.verdict,
        "MPO and exact verdicts must agree on the wide workload"
    );
    let (lo, hi) = mpo_report.fidelity_bounds;
    let wide_exact_f = wide_exact_report.fidelity_bounds.0;
    assert!(
        lo - 1e-12 <= wide_exact_f && wide_exact_f <= hi + 1e-12,
        "certified interval [{lo}, {hi}] must contain the exact fidelity {wide_exact_f}"
    );
    let mpo_speedup = wide_exact_time.as_secs_f64() / mpo_time.as_secs_f64();
    println!(
        "mpo wide/shallow (qft3×8, 24 qubits): {:.1}ms vs {:.1}ms exact — {mpo_speedup:.2}x, \
         bond {} trunc {:.1e}",
        mpo_time.as_secs_f64() * 1e3,
        wide_exact_time.as_secs_f64() * 1e3,
        mpo_report.bond_max.unwrap_or(0),
        mpo_report.trunc_error.unwrap_or(0.0),
    );
    assert!(
        mpo_speedup >= 2.0,
        "the MPO backend must beat exact Algorithm II ≥2x on the wide workload: {mpo_speedup:.2}x"
    );
    push(
        &mut records,
        "qft3x8_wide24_mpo",
        &Outcome::Done {
            fidelity: (lo + hi) / 2.0,
            time: mpo_time,
            nodes: mpo_report.max_nodes,
            terms: 1,
        },
    );
    push(
        &mut records,
        "qft3x8_wide24_alg2",
        &Outcome::Done {
            fidelity: wide_exact_f,
            time: wide_exact_time,
            nodes: wide_exact_report.max_nodes,
            terms: 1,
        },
    );

    // The portfolio's routing, end to end: `Auto` must answer the wide
    // tiled pair from the MPO pass and an entangling-heavy pair (a GHZ
    // chain coupling every qubit into one component) from an exact
    // backend — `method_used` asserted on both rows.
    let run_auto = |ideal: &Circuit, noisy: &Circuit| -> (Duration, qaec::EquivalenceReport) {
        let start = Instant::now();
        let mut compiled = Checker::new(ideal, noisy)
            .options(CheckOptions {
                deadline: Some(Instant::now() + timeout),
                ..CheckOptions::default()
            })
            .compile()
            .expect("auto session compiles");
        let report = compiled.check(mpo_eps).expect("auto check");
        (start.elapsed(), report)
    };
    let (auto_wide_time, auto_wide_report) = run_auto(&wide, &wide_noisy);
    assert_eq!(
        auto_wide_report.algorithm,
        AlgorithmUsed::Mpo,
        "Auto must route the wide, weakly-coupled pair to the MPO pass"
    );
    assert_eq!(
        auto_wide_report.verdict, wide_exact_report.verdict,
        "the portfolio's verdict must agree with the exact backend"
    );
    let heavy = ghz(8);
    let heavy_noisy = insert_random_noise(
        &heavy,
        &NoiseChannel::Depolarizing { p: 0.999 },
        2,
        NOISE_SEED + 25,
    );
    assert!(
        !mpo_favored(&heavy_noisy),
        "a fully-coupled GHZ chain must not be portfolio-favored"
    );
    let (auto_heavy_time, auto_heavy_report) = run_auto(&heavy, &heavy_noisy);
    assert_ne!(
        auto_heavy_report.algorithm,
        AlgorithmUsed::Mpo,
        "Auto must route the entangling-heavy pair to an exact backend"
    );
    println!(
        "auto portfolio: wide24 via {} ({:.1}ms), ghz8 via {} ({:.1}ms)",
        auto_wide_report.algorithm,
        auto_wide_time.as_secs_f64() * 1e3,
        auto_heavy_report.algorithm,
        auto_heavy_time.as_secs_f64() * 1e3,
    );
    push(
        &mut records,
        "auto_portfolio_wide24",
        &Outcome::Done {
            fidelity: (auto_wide_report.fidelity_bounds.0 + auto_wide_report.fidelity_bounds.1)
                / 2.0,
            time: auto_wide_time,
            nodes: auto_wide_report.max_nodes,
            terms: 1,
        },
    );
    push(
        &mut records,
        "auto_portfolio_ghz8",
        &Outcome::Done {
            fidelity: auto_heavy_report.fidelity_bounds.0,
            time: auto_heavy_time,
            nodes: auto_heavy_report.max_nodes,
            terms: auto_heavy_report.terms_computed,
        },
    );

    // Every shared-store row must account its real warm-store footprint
    // — `store_bytes` silently reading 0 on non-service rows was
    // exactly the reporting bug this gate pins down.
    for record in &records {
        if record.name.ends_with("_shared") {
            assert!(
                record.store_bytes > 0,
                "shared-store row `{}` must report its store footprint",
                record.name
            );
        }
        // The high-water mark can never read below the bytes still
        // held — a row violating that has its columns crossed.
        if record.store_bytes > 0 {
            assert!(
                record.peak_store_bytes >= record.store_bytes,
                "row `{}`: peak {} B below current {} B",
                record.name,
                record.peak_store_bytes,
                record.store_bytes
            );
        }
    }

    records
}

/// One gated metric that regressed against the committed baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Scenario name.
    pub name: String,
    /// Which gate tripped: `"wall_ms"` or `"max_nodes"`.
    pub metric: &'static str,
    /// The PR's measured value.
    pub pr: f64,
    /// The committed baseline value.
    pub baseline: f64,
}

/// Compares a PR artifact against the committed baseline: every scenario
/// present in both must not exceed `max_ratio ×` the baseline on either
/// gated metric — wall time *or* `max_nodes`, the paper's Table I memory
/// proxy (decision-diagram blow-ups are regressions even when the wall
/// clock hides them). Returns the offending rows.
pub fn regressions(pr: &[RunRecord], baseline: &[RunRecord], max_ratio: f64) -> Vec<Regression> {
    let mut offending = Vec::new();
    for b in baseline {
        if let Some(p) = pr.iter().find(|p| p.name == b.name) {
            // Few-millisecond baselines are mostly timer/scheduler noise
            // on shared CI runners; hold those to an absolute floor
            // instead of a ratio.
            let allowed = (b.wall_ms * max_ratio).max(5.0);
            if p.wall_ms > allowed {
                offending.push(Regression {
                    name: b.name.clone(),
                    metric: "wall_ms",
                    pr: p.wall_ms,
                    baseline: b.wall_ms,
                });
            }
            // Node counts are deterministic (no timer noise), but tiny
            // diagrams get an absolute floor so a 10→25-node wobble on a
            // toy scenario doesn't gate the build.
            let allowed_nodes = ((b.max_nodes as f64) * max_ratio).max(64.0);
            if p.max_nodes as f64 > allowed_nodes {
                offending.push(Regression {
                    name: b.name.clone(),
                    metric: "max_nodes",
                    pr: p.max_nodes as f64,
                    baseline: b.max_nodes as f64,
                });
            }
        }
    }
    offending
}

/// Parses `--flag value` style arguments shared by the harness binaries.
pub struct HarnessArgs {
    /// Per-run timeout (default 120 s; the paper used 3600 s).
    pub timeout: Duration,
    /// Optional row-name filter (comma separated).
    pub only: Option<Vec<String>>,
    /// Maximum noise count for the sweep binaries.
    pub max_noises: usize,
    /// Skip the dense baseline column.
    pub skip_baseline: bool,
    /// Write per-run JSON records here (`--json PATH`).
    pub json: Option<String>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn parse() -> Self {
        let mut args = HarnessArgs {
            timeout: Duration::from_secs(120),
            only: None,
            max_noises: 8,
            skip_baseline: false,
            json: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--timeout" => {
                    if let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) {
                        args.timeout = Duration::from_secs(v);
                    }
                }
                "--only" => {
                    if let Some(v) = it.next() {
                        args.only = Some(v.split(',').map(str::to_string).collect());
                    }
                }
                "--max-noises" => {
                    if let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) {
                        args.max_noises = v;
                    }
                }
                "--skip-baseline" => args.skip_baseline = true,
                "--json" => args.json = it.next(),
                other => eprintln!("ignoring unknown flag `{other}`"),
            }
        }
        args
    }

    /// Writes collected records to `--json` if requested, reporting on
    /// stderr so table output stays clean.
    pub fn emit_json(&self, records: &[RunRecord]) {
        if let Some(path) = &self.json {
            match write_records(path, records) {
                Ok(()) => eprintln!("wrote {} run records to {path}", records.len()),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_inventory() {
        let suite = table1_suite();
        assert_eq!(suite.len(), 21);
        // Spot-check the paper's (n, |G|, k) columns.
        let find = |name: &str| {
            suite
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        for (name, n, g, k) in [
            ("rb", 2, 7, 6),
            ("qft2", 2, 7, 2),
            ("grover", 3, 96, 4),
            ("bv6", 6, 17, 14),
            ("qft10", 10, 235, 2),
            ("bv16", 16, 47, 9),
        ] {
            let case = find(name);
            assert_eq!(case.ideal.n_qubits(), n, "{name} qubits");
            assert_eq!(case.ideal.gate_count(), g, "{name} gates");
            assert_eq!(case.noises, k, "{name} noises");
            assert_eq!(case.noisy().noise_count(), k, "{name} inserted noises");
        }
    }

    #[test]
    fn runners_agree_on_a_small_case() {
        let case = &table1_suite()[1]; // qft2, k = 2
        let noisy = case.noisy();
        let timeout = Duration::from_secs(60);
        let baseline = run_baseline(&case.ideal, &noisy, timeout);
        let alg2 = run_alg2(&case.ideal, &noisy, timeout);
        let alg1 = run_alg1(&case.ideal, &noisy, timeout);
        let (Some(fb), Some(f2), Some(f1)) =
            (baseline.fidelity(), alg2.fidelity(), alg1.fidelity())
        else {
            panic!("small case must not TO/MO");
        };
        assert!((fb - f2).abs() < 1e-7);
        assert!((fb - f1).abs() < 1e-7);
    }

    #[test]
    fn baseline_mo_at_seven_qubits() {
        let case = table1_suite()
            .into_iter()
            .find(|c| c.name == "qft7")
            .expect("qft7");
        let noisy = case.noisy();
        assert!(matches!(
            run_baseline(&case.ideal, &noisy, Duration::from_secs(5)),
            Outcome::OutOfMemory
        ));
    }

    #[test]
    fn expired_timeouts_surface_as_to() {
        let case = &table1_suite()[3]; // qft3, k = 7 → enough terms to trip
        let noisy = case.noisy();
        let zero = Duration::from_secs(0);
        assert!(matches!(
            run_alg1(&case.ideal, &noisy, zero),
            Outcome::TimedOut
        ));
        assert!(matches!(
            run_alg2(&case.ideal, &noisy, zero),
            Outcome::TimedOut
        ));
        assert!(matches!(
            run_baseline(&case.ideal, &noisy, zero),
            Outcome::TimedOut
        ));
    }

    #[test]
    fn artifact_envelope_round_trips_and_reads_legacy_arrays() {
        let records = vec![RunRecord {
            name: "qft5_k3_sweep8_lanes8".into(),
            wall_ms: 3.25,
            terms_per_sec: 2461.5,
            max_nodes: 310,
            fidelity: 0.991234567890,
            store_bytes: 0,
            peak_store_bytes: 0,
        }];
        let text = artifact_to_json(4, &records);
        assert!(
            text.starts_with("{\"host_cores\": 4, \"rows\": ["),
            "{text}"
        );
        let (cores, rows) = artifact_from_json(&text).expect("envelope parses");
        assert_eq!(cores, Some(4));
        assert_eq!(rows, records);
        // Legacy bare arrays still parse, with no recorded core count.
        let legacy = records_to_json(&records);
        let (cores, rows) = artifact_from_json(&legacy).expect("legacy parses");
        assert_eq!(cores, None);
        assert_eq!(rows, records);
    }

    #[test]
    fn json_records_round_trip() {
        let records = vec![
            RunRecord {
                name: "qft3_k4_alg1_exact".into(),
                wall_ms: 12.345,
                terms_per_sec: 20736.5,
                max_nodes: 87,
                fidelity: 0.996005996001,
                store_bytes: 4096,
                peak_store_bytes: 8192,
            },
            RunRecord {
                name: "bv5_k6_alg2".into(),
                wall_ms: 0.75,
                terms_per_sec: 0.0,
                max_nodes: 1024,
                fidelity: 0.994014980015,
                store_bytes: 0,
                peak_store_bytes: 0,
            },
        ];
        let text = records_to_json(&records);
        let parsed = records_from_json(&text).expect("parse");
        assert_eq!(parsed.len(), 2);
        for (a, b) in records.iter().zip(&parsed) {
            assert_eq!(a.name, b.name);
            assert!((a.wall_ms - b.wall_ms).abs() < 1e-3);
            assert!((a.terms_per_sec - b.terms_per_sec).abs() < 1e-3);
            assert_eq!(a.max_nodes, b.max_nodes);
            assert!((a.fidelity - b.fidelity).abs() < 1e-9);
            assert_eq!(a.store_bytes, b.store_bytes);
            assert_eq!(a.peak_store_bytes, b.peak_store_bytes);
        }
        assert!(records_from_json("[]").expect("empty").is_empty());
        assert!(records_from_json("[{\"name\": \"x\"}]").is_err());

        // Artifacts written before the serving layer carry no
        // store_bytes column — they must still parse, as 0.
        let legacy = "[\n  {\"name\": \"old\", \"wall_ms\": 1.0, \"terms_per_sec\": 2.0, \
                      \"max_nodes\": 3, \"fidelity\": 0.5}\n]\n";
        let parsed = records_from_json(legacy).expect("legacy parses");
        assert_eq!(parsed[0].store_bytes, 0);
        assert_eq!(parsed[0].peak_store_bytes, 0);

        // Hostile characters in names are sanitised, never emitted raw.
        let hostile = vec![RunRecord {
            name: "qft\"3\\k4\n".into(),
            wall_ms: 1.0,
            terms_per_sec: 2.0,
            max_nodes: 3,
            fidelity: 0.5,
            store_bytes: 0,
            peak_store_bytes: 0,
        }];
        let parsed = records_from_json(&records_to_json(&hostile)).expect("parse");
        assert_eq!(parsed[0].name, "qft_3_k4_");
    }

    #[test]
    fn record_from_outcome_computes_rates() {
        let done = Outcome::Done {
            fidelity: 0.5,
            time: Duration::from_millis(500),
            nodes: 7,
            terms: 100,
        };
        let r = RunRecord::from_outcome("x", &done).expect("record");
        assert!((r.wall_ms - 500.0).abs() < 1e-9);
        assert!((r.terms_per_sec - 200.0).abs() < 1e-9);
        assert!(RunRecord::from_outcome("to", &Outcome::TimedOut).is_none());
    }

    #[test]
    fn regression_gate_flags_only_true_slowdowns() {
        let record = |name: &str, wall_ms: f64| RunRecord {
            name: name.into(),
            wall_ms,
            terms_per_sec: 0.0,
            max_nodes: 0,
            fidelity: 1.0,
            store_bytes: 0,
            peak_store_bytes: 0,
        };
        let baseline = vec![
            record("fast", 10.0),
            record("slow", 100.0),
            record("tiny", 0.01),
            record("gone", 50.0),
        ];
        let pr = vec![
            record("fast", 19.0),  // < 2× — fine
            record("slow", 201.0), // > 2× — regression
            record("tiny", 4.9),   // 490× but under the 5 ms noise floor
            record("new", 999.0),  // not in baseline — ignored
        ];
        let offending = regressions(&pr, &baseline, 2.0);
        assert_eq!(offending.len(), 1);
        assert_eq!(offending[0].name, "slow");
        assert_eq!(offending[0].metric, "wall_ms");
    }

    #[test]
    fn regression_gate_covers_max_nodes() {
        let record = |name: &str, max_nodes: usize| RunRecord {
            name: name.into(),
            wall_ms: 1.0,
            terms_per_sec: 0.0,
            max_nodes,
            fidelity: 1.0,
            store_bytes: 0,
            peak_store_bytes: 0,
        };
        let baseline = vec![record("big", 1000), record("toy", 10), record("grown", 200)];
        let pr = vec![
            record("big", 2500),  // > 2× — memory regression
            record("toy", 60),    // 6× but under the 64-node floor
            record("grown", 399), // < 2× — fine
        ];
        let offending = regressions(&pr, &baseline, 2.0);
        assert_eq!(offending.len(), 1);
        assert_eq!(offending[0].name, "big");
        assert_eq!(offending[0].metric, "max_nodes");
        assert_eq!(offending[0].pr, 2500.0);
    }

    #[test]
    fn outcome_cells() {
        assert_eq!(Outcome::TimedOut.time_cell(), "TO");
        assert_eq!(Outcome::OutOfMemory.nodes_cell(), "MO");
        let done = Outcome::Done {
            fidelity: 0.5,
            time: Duration::from_millis(1500),
            nodes: 7,
            terms: 3,
        };
        assert_eq!(done.time_cell(), "1.50");
        assert_eq!(done.nodes_cell(), "7");
        assert_eq!(done.fidelity(), Some(0.5));
    }
}
