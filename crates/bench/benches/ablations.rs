//! Ablation benches for the design choices called out in DESIGN.md:
//! contraction-order strategy, variable order, the shared computed table,
//! and the §IV-C local optimisations (which the paper's own evaluation
//! excluded and left as future work).

use criterion::{criterion_group, criterion_main, Criterion};
use qaec::{fidelity_alg1, fidelity_alg2, CheckOptions, TermOrder, VarOrderStyle};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;
use qaec_tensornet::Strategy;

fn bench_planner_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/planner");
    group.sample_size(10);
    let ideal = qft(5, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 3, 11);
    for (name, strategy) in [
        ("sequential", Strategy::Sequential),
        ("greedy_size", Strategy::GreedySize),
        ("min_degree", Strategy::MinDegree),
        ("min_fill", Strategy::MinFill),
    ] {
        let opts = CheckOptions {
            strategy,
            ..CheckOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(fidelity_alg2(&ideal, &noisy, &opts).expect("alg2")));
        });
    }
    group.finish();
}

fn bench_var_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/var_order");
    group.sample_size(10);
    let ideal = qft(5, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 3, 11);
    for (name, var_order) in [
        ("qubit_major", VarOrderStyle::QubitMajor),
        ("time_major", VarOrderStyle::TimeMajor),
    ] {
        let opts = CheckOptions {
            var_order,
            ..CheckOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(fidelity_alg2(&ideal, &noisy, &opts).expect("alg2")));
        });
    }
    group.finish();
}

fn bench_computed_table_reuse(c: &mut Criterion) {
    // The Table II effect as a micro-bench.
    let mut group = c.benchmark_group("ablation/computed_table");
    group.sample_size(10);
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 4, 11);
    for (name, reuse) in [("shared(Opt)", true), ("fresh(Ori)", false)] {
        let opts = CheckOptions {
            reuse_tables: reuse,
            term_order: TermOrder::Lexicographic,
            ..CheckOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(fidelity_alg1(&ideal, &noisy, None, &opts).expect("alg1"))
            });
        });
    }
    group.finish();
}

fn bench_local_optimisations(c: &mut Criterion) {
    // §IV-C: cancellation + SWAP elimination pay off most when the noisy
    // circuit shares almost all gates with the ideal one — exactly the
    // miter structure. QFT with textbook swaps stresses both passes.
    let mut group = c.benchmark_group("ablation/local_opt");
    group.sample_size(10);
    let ideal = qft(5, QftStyle::Textbook);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 2, 13);
    for (name, local, swap) in [
        ("off", false, false),
        ("cancel_only", true, false),
        ("swap_only", false, true),
        ("both", true, true),
    ] {
        let opts = CheckOptions {
            local_optimization: local,
            swap_elimination: swap,
            ..CheckOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(fidelity_alg1(&ideal, &noisy, None, &opts).expect("alg1"))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_planner_strategies,
    bench_var_orders,
    bench_computed_table_reuse,
    bench_local_optimisations
);
criterion_main!(benches);
