//! Criterion benches of the two checking algorithms: per-family
//! contraction cost and the Algorithm I/II scaling in the noise count
//! (the continuous version of Fig. 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaec::{fidelity_alg1, fidelity_alg2, CheckOptions};
use qaec_circuit::generators::{bernstein_vazirani_all_ones, qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;

fn bench_alg2_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2/family");
    group.sample_size(10);
    let cases = vec![
        ("bv5", bernstein_vazirani_all_ones(5)),
        ("bv9", bernstein_vazirani_all_ones(9)),
        ("qft4", qft(4, QftStyle::DecomposedNoSwaps)),
        ("qft6", qft(6, QftStyle::DecomposedNoSwaps)),
    ];
    for (name, ideal) in cases {
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 3, 1);
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(
                    fidelity_alg2(&ideal, &noisy, &CheckOptions::default()).expect("alg2"),
                )
            });
        });
    }
    group.finish();
}

fn bench_alg1_vs_noise_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/noise_count");
    group.sample_size(10);
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    for k in [1usize, 2, 3, 4] {
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, k, 7);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default()).expect("alg1"),
                )
            });
        });
    }
    group.finish();
}

fn bench_alg2_vs_noise_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2/noise_count");
    group.sample_size(10);
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    for k in [1usize, 2, 3, 4] {
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, k, 7);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    fidelity_alg2(&ideal, &noisy, &CheckOptions::default()).expect("alg2"),
                )
            });
        });
    }
    group.finish();
}

fn bench_early_termination(c: &mut Criterion) {
    // ε-decision with best-first ordering vs exhaustive enumeration.
    let mut group = c.benchmark_group("alg1/early_termination");
    group.sample_size(10);
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9995 }, 5, 3);
    group.bench_function("decide_eps_0.05", |b| {
        b.iter(|| {
            std::hint::black_box(
                qaec::check_equivalence(&ideal, &noisy, 0.05, &CheckOptions::default())
                    .expect("check"),
            )
        });
    });
    group.bench_function("exact_all_terms", |b| {
        b.iter(|| {
            std::hint::black_box(
                fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default()).expect("alg1"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alg2_families,
    bench_alg1_vs_noise_count,
    bench_alg2_vs_noise_count,
    bench_early_termination
);
criterion_main!(benches);
