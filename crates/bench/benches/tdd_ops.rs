//! Criterion micro-benchmarks of the decision-diagram engine: tensor
//! conversion, addition and contraction on random dense tensors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaec_math::C64;
use qaec_tdd::{convert, ops, TddManager};
use qaec_tensornet::{IndexId, Tensor, VarOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(rank: usize, rng: &mut StdRng) -> Tensor {
    let data: Vec<C64> = (0..1usize << rank)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    Tensor::from_flat((0..rank as u32).map(IndexId).collect(), data)
}

fn bench_from_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdd/from_tensor");
    group.sample_size(20);
    for rank in [4usize, 8, 10] {
        let mut rng = StdRng::seed_from_u64(1);
        let t = random_tensor(rank, &mut rng);
        let order = VarOrder::from_sequence((0..rank as u32).map(IndexId));
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| {
                let mut m = TddManager::new();
                std::hint::black_box(convert::from_tensor(&mut m, &t, &order));
            });
        });
    }
    group.finish();
}

fn bench_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdd/add");
    group.sample_size(20);
    for rank in [6usize, 10] {
        let mut rng = StdRng::seed_from_u64(2);
        let ta = random_tensor(rank, &mut rng);
        let tb = random_tensor(rank, &mut rng);
        let order = VarOrder::from_sequence((0..rank as u32).map(IndexId));
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| {
                let mut m = TddManager::new();
                let ea = convert::from_tensor(&mut m, &ta, &order);
                let eb = convert::from_tensor(&mut m, &tb, &order);
                std::hint::black_box(ops::add(&mut m, ea, eb));
            });
        });
    }
    group.finish();
}

fn bench_cont(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdd/cont");
    group.sample_size(20);
    // Matrix-product shaped contraction: A[0..h, h..r] · B[h..r, r..]
    for half in [3usize, 5] {
        let mut rng = StdRng::seed_from_u64(3);
        let a_idx: Vec<IndexId> = (0..2 * half as u32).map(IndexId).collect();
        let b_idx: Vec<IndexId> = (half as u32..3 * half as u32).map(IndexId).collect();
        let ta = Tensor::from_flat(
            a_idx.clone(),
            (0..1usize << (2 * half))
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect(),
        );
        let tb = Tensor::from_flat(
            b_idx.clone(),
            (0..1usize << (2 * half))
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect(),
        );
        let order = VarOrder::from_sequence((0..3 * half as u32).map(IndexId));
        let shared: Vec<u32> = (half as u32..2 * half as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(half * 2), &half, |b, _| {
            b.iter(|| {
                let mut m = TddManager::new();
                let ea = convert::from_tensor(&mut m, &ta, &order);
                let eb = convert::from_tensor(&mut m, &tb, &order);
                let set = m.intern_elim_set(shared.clone());
                std::hint::black_box(ops::cont(&mut m, ea, eb, set));
            });
        });
    }
    group.finish();
}

fn bench_structured_vs_random(c: &mut Criterion) {
    // Structure exploitation: a CX-layer tensor (sparse, repetitive) must
    // convert much faster than a dense random tensor of equal rank.
    let mut group = c.benchmark_group("tdd/structure");
    group.sample_size(20);
    let order = VarOrder::from_sequence((0..12u32).map(IndexId));
    let idx: Vec<IndexId> = (0..12u32).map(IndexId).collect();
    // δ-chain tensor: product of deltas — maximal structure.
    let mut structured = Tensor::delta(IndexId(0), IndexId(1));
    for k in 1..6u32 {
        structured = structured.contract(&Tensor::delta(IndexId(2 * k), IndexId(2 * k + 1)), &[]);
    }
    group.bench_function("structured_delta_chain", |b| {
        b.iter(|| {
            let mut m = TddManager::new();
            std::hint::black_box(convert::from_tensor(&mut m, &structured, &order));
        });
    });
    let mut rng = StdRng::seed_from_u64(4);
    let random = Tensor::from_flat(
        idx,
        (0..1usize << 12)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect(),
    );
    group.bench_function("dense_random", |b| {
        b.iter(|| {
            let mut m = TddManager::new();
            std::hint::black_box(convert::from_tensor(&mut m, &random, &order));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_from_tensor,
    bench_add,
    bench_cont,
    bench_structured_vs_random
);
criterion_main!(benches);
