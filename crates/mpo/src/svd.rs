//! Complex singular value decomposition for MPO bond truncation.
//!
//! Two engines share one interface:
//!
//! * [`svd`] — a full decomposition via the Hermitian eigensolver
//!   ([`qaec_math::eigen::eigh`]) applied to the smaller Gram matrix
//!   `A·A†` or `A†·A`. Exact (to roundoff), used whenever the matrix is
//!   small enough that cubic Jacobi cost does not matter.
//! * [`svd_lowrank`] — a deterministic subspace iteration that captures
//!   the dominant `block` singular triples of a large matrix. Crucially
//!   for the checker's soundness story, its *error accounting does not
//!   depend on convergence*: the mass the subspace missed is measured
//!   exactly as `‖A‖²_F − ‖Q†A‖²_F` and reported alongside the triples,
//!   so an under-converged iteration only widens the fidelity interval,
//!   it can never understate the truncation error.
//!
//! [`truncation_spec`] turns a singular spectrum plus a total-mass
//! figure into a keep count and a rigorously discarded Frobenius mass.

use qaec_math::eigen::eigh;
use qaec_math::{Matrix, C64};

/// Singular values below `σ_max · RANK_FLOOR` are treated as numerical
/// zeros: they are always discardable (their mass still lands in the
/// error bound, so dropping them is sound, merely pessimistic by an
/// ulp-scale amount).
pub(crate) const RANK_FLOOR: f64 = 1e-14;

/// A (possibly partial) singular value decomposition `A ≈ U·diag(σ)·V†`
/// with `σ` in descending order, `U` column-isometric and `V†`
/// row-isometric on the rows with nonzero `σ`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, one column per retained triple.
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors, conjugate-transposed (one row per
    /// retained triple).
    pub vh: Matrix,
    /// `‖A‖²_F` of the *input* — the reference against which truncation
    /// budgets and (for the low-rank engine) the subspace residual are
    /// accounted. For [`svd`] this equals `Σ σ²` to roundoff.
    pub total_sq: f64,
}

fn frobenius_sq(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|z| z.norm_sqr()).sum()
}

/// Forces exact Hermitian symmetry on a Gram matrix before handing it to
/// the eigensolver (products `A·A†` deviate from symmetry by roundoff).
fn symmetrize(g: &mut Matrix) {
    let n = g.rows();
    for r in 0..n {
        for c in (r + 1)..n {
            let avg = (g[(r, c)] + g[(c, r)].conj()) * 0.5;
            g[(r, c)] = avg;
            g[(c, r)] = avg.conj();
        }
        g[(r, r)] = C64::real(g[(r, r)].re);
    }
}

/// Full SVD of a complex matrix through the smaller Gram matrix.
///
/// Returns `min(rows, cols)` triples. Cost is cubic in the smaller
/// dimension (the Jacobi eigensolver dominates); the crate-internal
/// `svd_lowrank` is preferred when only a bounded number of triples
/// can survive truncation anyway.
///
/// # Example
///
/// ```
/// use qaec_math::{C64, Matrix};
/// let a = Matrix::from_rows(&[
///     vec![C64::new(1.0, 0.5), C64::ZERO, C64::real(2.0)],
///     vec![C64::ZERO, C64::new(0.0, -1.0), C64::real(1.0)],
/// ]);
/// let s = qaec_mpo::svd(&a);
/// // Reconstruction: A = U Σ V†.
/// let mut rebuilt = Matrix::zeros(2, 3);
/// for k in 0..s.sigma.len() {
///     for r in 0..2 {
///         for c in 0..3 {
///             rebuilt[(r, c)] += s.u[(r, k)] * s.vh[(k, c)] * s.sigma[k];
///         }
///     }
/// }
/// assert!(rebuilt.approx_eq(&a, 1e-10));
/// ```
pub fn svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    let total_sq = frobenius_sq(a);
    let k = m.min(n);
    if m <= n {
        // Gram on the row side: A·A† = U Σ² U†.
        let mut g = a.mul(&a.adjoint());
        symmetrize(&mut g);
        let e = eigh(&g);
        // eigh returns ascending eigenvalues; singular order is descending.
        let mut sigma = Vec::with_capacity(k);
        let mut u = Matrix::zeros(m, k);
        for (col, src) in (0..m).rev().enumerate() {
            sigma.push(e.values[src].max(0.0).sqrt());
            for r in 0..m {
                u[(r, col)] = e.vectors[(r, src)];
            }
        }
        let uta = u.adjoint().mul(a);
        let mut vh = Matrix::zeros(k, n);
        for (row, &s) in sigma.iter().enumerate() {
            if s > 0.0 {
                let inv = 1.0 / s;
                for c in 0..n {
                    vh[(row, c)] = uta[(row, c)] * inv;
                }
            }
        }
        Svd {
            u,
            sigma,
            vh,
            total_sq,
        }
    } else {
        // Gram on the column side: A†·A = V Σ² V†.
        let mut g = a.adjoint().mul(a);
        symmetrize(&mut g);
        let e = eigh(&g);
        let mut sigma = Vec::with_capacity(k);
        let mut vh = Matrix::zeros(k, n);
        let mut v = Matrix::zeros(n, k);
        for (row, src) in (0..n).rev().enumerate() {
            sigma.push(e.values[src].max(0.0).sqrt());
            for c in 0..n {
                vh[(row, c)] = e.vectors[(c, src)].conj();
                v[(c, row)] = e.vectors[(c, src)];
            }
        }
        let av = a.mul(&v);
        let mut u = Matrix::zeros(m, k);
        for (col, &s) in sigma.iter().enumerate() {
            if s > 0.0 {
                let inv = 1.0 / s;
                for r in 0..m {
                    u[(r, col)] = av[(r, col)] * inv;
                }
            }
        }
        Svd {
            u,
            sigma,
            vh,
            total_sq,
        }
    }
}

/// Number of power iterations for [`svd_lowrank`]. Each squares the
/// singular-value separation; four passes resolve the rapidly decaying
/// spectra the near-identity miter MPO produces, and *under*-resolution
/// is sound by construction (the residual is measured, not assumed).
const POWER_ITERS: usize = 4;

/// Dominant-subspace SVD: captures up to `block` leading triples of `a`
/// by deterministic subspace iteration (started from the largest-norm
/// columns — no randomness, so results are reproducible bit for bit).
///
/// The returned [`Svd::total_sq`] is the full `‖A‖²_F`; since the
/// returned `σ` are exact singular values of the captured part `Q·Q†·A`,
/// the difference `total_sq − Σσ²` is exactly the mass of the missed
/// complement `(I − Q·Q†)·A` — [`truncation_spec`] charges it to the
/// discarded side automatically.
pub fn svd_lowrank(a: &Matrix, block: usize) -> Svd {
    let (m, n) = a.shape();
    let k = block.min(m).min(n).max(1);
    if k >= m.min(n) {
        return svd(a);
    }
    let total_sq = frobenius_sq(a);
    let at = a.adjoint();

    // Start from the `k` largest-norm columns of A (deterministic).
    let mut col_norms: Vec<(usize, f64)> = (0..n)
        .map(|c| ((0..m).map(|r| a[(r, c)].norm_sqr()).sum::<f64>(), c))
        .map(|(nrm, c)| (c, nrm))
        .collect();
    col_norms.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
    let mut q = Matrix::zeros(m, k);
    for (j, &(c, _)) in col_norms.iter().take(k).enumerate() {
        for r in 0..m {
            q[(r, j)] = a[(r, c)];
        }
    }
    orthonormalize_columns(&mut q);

    for _ in 0..POWER_ITERS {
        // Q ← orth(A·(A†·Q)) — one power step of A·A†.
        let z = at.mul(&q);
        q = a.mul(&z);
        orthonormalize_columns(&mut q);
    }

    // Project and finish with an exact small SVD: B = Q†A (k×n).
    let b = q.adjoint().mul(a);
    let small = svd(&b);
    let u = q.mul(&small.u);
    Svd {
        u,
        sigma: small.sigma,
        vh: small.vh,
        total_sq,
    }
}

/// In-place modified Gram–Schmidt with one reorthogonalization pass.
/// Columns whose residual collapses (rank deficiency) are zeroed — the
/// projector `Q·Q†` then simply spans less, which the residual
/// accounting in [`svd_lowrank`] charges as discarded mass.
fn orthonormalize_columns(q: &mut Matrix) {
    let (m, k) = q.shape();
    for j in 0..k {
        for _pass in 0..2 {
            for i in 0..j {
                let dot: C64 = (0..m).map(|r| q[(r, i)].conj() * q[(r, j)]).sum();
                for r in 0..m {
                    let sub = dot * q[(r, i)];
                    q[(r, j)] -= sub;
                }
            }
        }
        let norm: f64 = (0..m).map(|r| q[(r, j)].norm_sqr()).sum::<f64>().sqrt();
        if norm > 1e-150 {
            let inv = 1.0 / norm;
            for r in 0..m {
                q[(r, j)] = q[(r, j)] * inv;
            }
        } else {
            for r in 0..m {
                q[(r, j)] = C64::ZERO;
            }
        }
    }
}

/// A truncation decision: keep the leading `keep` triples, discarding
/// Frobenius mass `discarded` (the square root of everything in
/// `total_sq` not carried by the kept `σ`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Truncation {
    /// Leading triples to retain (always ≥ 1).
    pub keep: usize,
    /// `√(total_sq − Σ_{kept} σ²)` — the rigorous Frobenius mass removed.
    pub discarded: f64,
}

/// Decides how many leading singular values survive: numerical zeros
/// (below [`RANK_FLOOR`] relative to `σ_max`) always go, then the tail
/// is discarded greedily while the accumulated squared mass stays within
/// `threshold² · total_sq`, and finally the `max_bond` cap is enforced
/// unconditionally. At least one triple is always kept.
pub(crate) fn truncation_spec(
    sigma: &[f64],
    total_sq: f64,
    threshold: f64,
    max_bond: usize,
) -> Truncation {
    let smax = sigma.first().copied().unwrap_or(0.0);
    let floor = smax * RANK_FLOOR;
    let carried: f64 = sigma.iter().map(|s| s * s).sum();
    // Mass the spectrum never carried (subspace residual) starts discarded.
    let mut disc_sq = (total_sq - carried).max(0.0);
    let budget_sq = threshold * threshold * total_sq;
    let mut keep = sigma.len();
    while keep > 1 {
        let s = sigma[keep - 1];
        let candidate = disc_sq + s * s;
        if keep > max_bond || s <= floor || candidate <= budget_sq {
            disc_sq = candidate;
            keep -= 1;
        } else {
            break;
        }
    }
    Truncation {
        keep,
        discarded: disc_sq.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rebuild(s: &Svd, keep: usize, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |r, c| {
            (0..keep)
                .map(|k| s.u[(r, k)] * s.vh[(k, c)] * s.sigma[k])
                .sum()
        })
    }

    fn test_matrix(m: usize, n: usize) -> Matrix {
        // Deterministic pseudo-random entries with decaying row scale,
        // so the spectrum has structure to resolve.
        Matrix::from_fn(m, n, |r, c| {
            let t = ((r * 31 + c * 17 + 3) % 97) as f64 / 97.0;
            let u = ((r * 13 + c * 41 + 7) % 89) as f64 / 89.0;
            let scale = 1.0 / (1.0 + r as f64);
            C64::new((t - 0.5) * scale, (u - 0.5) * scale)
        })
    }

    #[test]
    fn full_svd_reconstructs_wide_and_tall() {
        for (m, n) in [(4, 7), (7, 4), (5, 5), (1, 6), (6, 1)] {
            let a = test_matrix(m, n);
            let s = svd(&a);
            assert_eq!(s.sigma.len(), m.min(n));
            for w in s.sigma.windows(2) {
                assert!(w[0] >= w[1], "descending order");
            }
            let rebuilt = rebuild(&s, s.sigma.len(), m, n);
            assert!(rebuilt.approx_eq(&a, 1e-10));
            let carried: f64 = s.sigma.iter().map(|x| x * x).sum();
            assert!((carried - s.total_sq).abs() < 1e-10 * s.total_sq.max(1.0));
        }
    }

    #[test]
    fn full_svd_isometries() {
        let a = test_matrix(5, 8);
        let s = svd(&a);
        assert!(s.u.adjoint().mul(&s.u).is_identity(1e-10));
        assert!(s.vh.mul(&s.vh.adjoint()).is_identity(1e-10));
    }

    #[test]
    fn lowrank_captures_dominant_mass_and_accounts_rest() {
        // A rank-2-dominant matrix with a tiny tail.
        let m = 12;
        let n = 10;
        let mut a = Matrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                let big = C64::real(((r + 1) * (c + 1)) as f64 / (m * n) as f64);
                let tiny = C64::new(
                    1e-9 * ((r * 7 + c * 3) % 11) as f64,
                    1e-9 * ((r * 5 + c) % 13) as f64,
                );
                a[(r, c)] = big + tiny;
            }
        }
        let s = svd_lowrank(&a, 3);
        assert_eq!(s.sigma.len(), 3);
        // Captured mass + residual accounting must cover the total.
        let carried: f64 = s.sigma.iter().map(|x| x * x).sum();
        assert!(carried <= s.total_sq * (1.0 + 1e-12));
        // The dominant value matches the full decomposition.
        let full = svd(&a);
        assert!((s.sigma[0] - full.sigma[0]).abs() < 1e-9 * full.sigma[0]);
        // Reconstruction from the captured part is within the residual.
        let rebuilt = rebuild(&s, 3, m, n);
        let miss2 = frobenius_sq(&rebuilt.sub(&a));
        assert!(miss2.sqrt() <= (s.total_sq - carried).max(0.0).sqrt() + 1e-9);
    }

    #[test]
    fn truncation_spec_respects_budget_floor_and_cap() {
        let sigma = [1.0, 0.5, 1e-3, 1e-8, 1e-16];
        let total: f64 = sigma.iter().map(|s| s * s).sum();
        // Loose threshold eats the small tail, keeps the bulk.
        let t = truncation_spec(&sigma, total, 1e-2, 64);
        assert_eq!(t.keep, 2);
        let expect = (1e-3f64.powi(2) + 1e-8f64.powi(2) + 1e-16f64.powi(2)).sqrt();
        assert!((t.discarded - expect).abs() < 1e-12);
        // Tight threshold still drops the numerical zero.
        let t = truncation_spec(&sigma, total, 0.0, 64);
        assert_eq!(t.keep, 4);
        // The cap wins over the budget.
        let t = truncation_spec(&sigma, total, 0.0, 1);
        assert_eq!(t.keep, 1);
        assert!(t.discarded > 0.5);
        // Residual mass not carried by the spectrum is charged.
        let t = truncation_spec(&sigma, total + 1e-4, 0.0, 64);
        assert!(t.discarded >= 1e-2 * 0.999);
    }
}
