//! Superoperator construction in the MPO's *site-major* index layout.
//!
//! A superoperator on `a` qubits acts on the doubled space
//! `H ⊗ H*`; the natural Kronecker layout (what
//! [`qaec_circuit::NoiseChannel::superop_matrix`] and `U ⊗ Ū` produce)
//! groups all ket bits before all bra bits:
//! `[k₁ … k_a, b₁ … b_a]`. The MPO instead carries one 4-dimensional
//! doubled leg *per site*, pairing each qubit's ket bit with its own
//! bra bit: `[k₁ b₁, k₂ b₂, …]`. [`regroup_sites`] permutes between the
//! two layouts, so Kraus sites from `qaec-circuit` work unchanged.

use qaec_circuit::{Gate, NoiseChannel};
use qaec_math::eigen::eigvalsh;
use qaec_math::Matrix;

/// Reindexes a `4^a × 4^a` superoperator from Kronecker layout
/// (ket multi-index · 2^a + bra multi-index) to the MPO's site-major
/// layout (base-4 digits `2·kᵢ + bᵢ`, most significant site first).
/// For `a = 1` the two layouts coincide and the matrix is returned
/// unchanged (as a copy).
///
/// # Panics
///
/// Panics if the matrix is not `4^a × 4^a`.
pub(crate) fn regroup_sites(s: &Matrix, arity: usize) -> Matrix {
    let dim = 1usize << (2 * arity);
    assert_eq!(
        s.shape(),
        (dim, dim),
        "superoperator of arity {arity} must be {dim}×{dim}"
    );
    let mask = (1usize << arity) - 1;
    let perm: Vec<usize> = (0..dim)
        .map(|idx| {
            let k = idx >> arity;
            let b = idx & mask;
            let mut out = 0usize;
            for i in 0..arity {
                let ki = (k >> (arity - 1 - i)) & 1;
                let bi = (b >> (arity - 1 - i)) & 1;
                out = out * 4 + (2 * ki + bi);
            }
            out
        })
        .collect();
    let mut w = Matrix::zeros(dim, dim);
    for r in 0..dim {
        for c in 0..dim {
            w[(perm[r], perm[c])] = s[(r, c)];
        }
    }
    w
}

/// The unitary superoperator `U ⊗ Ū` of a gate, in site-major layout.
/// Its spectral norm is exactly 1 (it is unitary), so gate applications
/// never amplify accumulated truncation error.
///
/// # Example
///
/// ```
/// use qaec_circuit::Gate;
/// // A unitary superoperator is itself unitary.
/// let w = qaec_mpo::gate_superop(&Gate::Cx);
/// assert!(w.mul(&w.adjoint()).is_identity(1e-12));
/// ```
pub fn gate_superop(gate: &Gate) -> Matrix {
    let m = gate.matrix();
    regroup_sites(&m.kron(&m.conj()), gate.arity())
}

/// The channel superoperator `Σᵢ Kᵢ ⊗ K̄ᵢ` of a noise channel, in
/// site-major layout.
pub fn channel_superop(channel: &NoiseChannel) -> Matrix {
    regroup_sites(&channel.superop_matrix(), channel.arity())
}

/// An upper bound on the spectral norm `‖W‖₂` (largest singular value),
/// used to amplify previously accumulated truncation error when a
/// non-unitary superoperator is applied. Computed from the largest
/// eigenvalue of `W†W` and inflated by a relative ulp margin so
/// eigensolver roundoff cannot make the bound optimistic.
pub fn superop_norm(w: &Matrix) -> f64 {
    let mut g = w.adjoint().mul(w);
    // Exact Hermitian symmetry for the eigensolver.
    let n = g.rows();
    for r in 0..n {
        for c in (r + 1)..n {
            let avg = (g[(r, c)] + g[(c, r)].conj()) * 0.5;
            g[(r, c)] = avg;
            g[(c, r)] = avg.conj();
        }
    }
    let top = eigvalsh(&g).last().copied().unwrap_or(0.0).max(0.0);
    top.sqrt() * (1.0 + 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_math::C64;

    #[test]
    fn arity_one_regroup_is_identity_permutation() {
        let m = Gate::H.matrix();
        let s = m.kron(&m.conj());
        let w = regroup_sites(&s, 1);
        assert!(w.approx_eq(&s, 0.0));
    }

    #[test]
    fn cx_superop_entries_land_on_site_major_indices() {
        // CX maps |10⟩ → |11⟩; in the doubled space the ket pair
        // (k₁k₂)=(10) with bra pair (00) sits at Kronecker row
        // k·4 + b = 2·4+0 = 8, column |10⟩⟨00| = 8 → superop S[12? ..].
        // Site-major: k₁b₁=10→2, k₂b₂=00→0 gives 2·4+0=8 in, and the
        // image k=(11), b=(00): sites (10,10) → 2·4+2=10.
        let w = gate_superop(&Gate::Cx);
        assert_eq!(w[(10, 8)], C64::ONE);
        assert_eq!(w[(8, 8)], C64::ZERO);
    }

    #[test]
    fn channel_superop_is_trace_preserving_in_site_layout() {
        // Trace preservation: Σ_{diag out} S[(p,p),(q,q)] = δ-sum → the
        // site-major diagonal rows {0,3} (k=b) must column-sum to 1 on
        // diagonal columns.
        let ch = NoiseChannel::Depolarizing { p: 0.9 };
        let w = channel_superop(&ch);
        for col in [0usize, 3] {
            let sum: C64 = [0usize, 3].iter().map(|&r| w[(r, col)]).sum();
            assert!((sum - C64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn unitary_superop_norm_is_one() {
        let w = gate_superop(&Gate::Cp(0.7));
        let nu = superop_norm(&w);
        assert!((nu - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_superop_norm_bounds_action() {
        let ch = NoiseChannel::AmplitudeDamping { gamma: 0.3 };
        let w = channel_superop(&ch);
        let nu = superop_norm(&w);
        // Apply to a deterministic vector and compare amplification.
        let x: Vec<C64> = (0..4)
            .map(|i| C64::new(1.0 + i as f64, -(i as f64)))
            .collect();
        let y = w.apply(&x);
        let nx: f64 = x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(ny <= nu * nx * (1.0 + 1e-12));
    }
}
