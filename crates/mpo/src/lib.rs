//! Matrix-product-operator approximate equivalence checking — the
//! workspace's **Algorithm III**.
//!
//! The paper's Algorithms I/II contract the miter (or doubled network)
//! *exactly*; their cost tracks the decision-diagram structure of the
//! circuit pair, which blows up on wide workloads long before the
//! physics does. The approximation-methods follow-up line of work (and
//! mqt-yaqs' identity-MPO checker) shows the same Jamiolkowski-fidelity
//! trace can be computed on a **matrix product operator** with SVD bond
//! truncation: the product `M = S_E · S_U†` of the noisy circuit's
//! superoperator and the adjoint of the ideal one stays close to the
//! identity when the circuits are close, so its MPO form has *small
//! bond dimension* wherever the pair agrees — cost becomes linear in
//! width instead of exponential.
//!
//! The twist that makes the result usable inside an equivalence
//! *checker* is rigour: every singular value this engine discards is
//! **accounted for**. Truncations happen only at the MPO's
//! orthogonality center, where the environment tensors are isometries,
//! so the discarded Frobenius mass is exactly the global error on `M`;
//! summing those masses (amplified by the spectral norm of every later
//! superoperator) bounds the trace error, and the result is a sound
//! fidelity interval `[F_lo, F_hi]` rather than an unaccountable point
//! estimate. The core crate feeds that interval to
//! `Verdict::decide_bounds`, exactly like Algorithm I's early-stop
//! bounds.
//!
//! Entry points:
//!
//! * [`MpoPlan::compile`] — turn a circuit pair into an interleaved
//!   superoperator program (gate superops precomputed, noise channels
//!   kept as re-instantiable holes for noise sweeps);
//! * [`MpoPlan::run`] / [`MpoPlan::run_channels`] — execute the program
//!   on an identity-initialised MPO under [`MpoOptions`] (SVD threshold
//!   and bond cap), yielding an [`MpoOutcome`];
//! * [`Mpo`] — the tensor engine itself, for callers that want to drive
//!   superoperator layers by hand.
//!
//! # Example
//!
//! ```
//! use qaec_circuit::{Circuit, NoiseChannel};
//! use qaec_mpo::{MpoOptions, MpoPlan};
//!
//! let mut noisy = Circuit::new(2);
//! noisy.h(0).cx(0, 1).noise(NoiseChannel::Depolarizing { p: 0.999 }, &[1]);
//! let plan = MpoPlan::compile(&noisy.ideal(), &noisy);
//! let out = plan.run(&MpoOptions::default());
//! // The interval is sound and, at default thresholds on a pair this
//! // small, essentially a point.
//! assert!(out.f_lo <= out.fidelity && out.fidelity <= out.f_hi);
//! assert!((out.fidelity - 0.999).abs() < 1e-6);
//! ```

mod mpo;
mod plan;
mod superop;
mod svd;
#[cfg(test)]
mod testref;

pub use mpo::{Mpo, Side};
pub use plan::{MpoOptions, MpoOutcome, MpoPlan};
pub use superop::{channel_superop, gate_superop, superop_norm};
pub use svd::{svd, Svd};
