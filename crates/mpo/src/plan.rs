//! Compiled MPO programs: a circuit pair lowered to an interleaved
//! sequence of superoperator applications, runnable many times (and at
//! re-instantiated noise strengths) without re-walking the circuits.

use crate::mpo::{Mpo, Side};
use crate::superop::{channel_superop, gate_superop, superop_norm};
use qaec_circuit::{Circuit, NoiseChannel};
use qaec_math::Matrix;
use std::time::{Duration, Instant};

/// Tuning knobs for an MPO run.
///
/// `svd_threshold` is the relative Frobenius mass a single truncation
/// may discard (each discarded mass is added to the rigorous error
/// bound, so a looser threshold widens the reported interval rather
/// than silently degrading the answer). `max_bond` caps every bond
/// dimension unconditionally; overflow past the cap is likewise
/// charged to the bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MpoOptions {
    /// Relative per-truncation singular-value budget. Default `1e-8`.
    pub svd_threshold: f64,
    /// Hard cap on bond dimension. Default `16`.
    pub max_bond: usize,
}

impl Default for MpoOptions {
    fn default() -> Self {
        MpoOptions {
            svd_threshold: 1e-8,
            max_bond: 16,
        }
    }
}

/// One lowered operation of a compiled plan.
enum PlanOp {
    /// A noisy-side gate superoperator, `M ← W·M` (norm exactly 1).
    Left { qubits: Vec<usize>, w: Matrix },
    /// An ideal-side adjoint gate superoperator, `M ← M·W`.
    Right { qubits: Vec<usize>, w: Matrix },
    /// A noise channel kept as a re-instantiable hole: the superop is
    /// built at run time from `channels[index]`, so noise sweeps can
    /// substitute strengths without recompiling.
    Channel { index: usize, qubits: Vec<usize> },
}

/// The result of running a compiled plan: a point estimate plus the
/// rigorous interval `[f_lo, f_hi]` that is guaranteed to contain the
/// exact Jamiolkowski fidelity of the compiled pair.
#[derive(Clone, Copy, Debug)]
pub struct MpoOutcome {
    /// Midpoint estimate of the Jamiolkowski fidelity, clamped to
    /// `[0, 1]`.
    pub fidelity: f64,
    /// Sound lower bound on the exact fidelity.
    pub f_lo: f64,
    /// Sound upper bound on the exact fidelity.
    pub f_hi: f64,
    /// Largest bond dimension reached during the contraction.
    pub bond_max: usize,
    /// Total accumulated truncation-error bound (half the interval
    /// width before clamping).
    pub trunc_error: f64,
    /// Wall-clock time of the contraction.
    pub elapsed: Duration,
}

/// A circuit pair compiled to an MPO program.
///
/// Gate superoperators are precomputed; noise channels stay symbolic
/// so [`MpoPlan::run_channels`] can re-instantiate their strengths —
/// the MPO analogue of the exact backends' compiled-sweep path.
pub struct MpoPlan {
    n: usize,
    ops: Vec<PlanOp>,
    channels: Vec<NoiseChannel>,
}

impl MpoPlan {
    /// Compiles an (ideal, noisy) circuit pair into an interleaved
    /// program building `M = S_E · S_U†`: walking the noisy circuit in
    /// order, each noisy gate is paired with the adjoint of the next
    /// ideal gate (applied on the right), so matching prefixes
    /// telescope and `M` stays near the identity — which is exactly
    /// what keeps MPO bonds small.
    ///
    /// # Panics
    ///
    /// Panics if the circuits act on different qubit counts, if the
    /// qubit count is zero, or if `ideal` contains noise instructions.
    pub fn compile(ideal: &Circuit, noisy: &Circuit) -> MpoPlan {
        assert_eq!(
            ideal.n_qubits(),
            noisy.n_qubits(),
            "circuit pair must act on the same qubits"
        );
        let n = ideal.n_qubits();
        assert!(n >= 1, "cannot compile an empty register");
        assert!(
            ideal.instructions().iter().all(|i| i.is_gate()),
            "the ideal circuit must be noise-free"
        );
        let ideal_gates: Vec<_> = ideal.instructions().iter().collect();
        let mut ops = Vec::new();
        let mut channels = Vec::new();
        let mut next_ideal = 0usize;
        for inst in noisy.instructions() {
            match inst.as_noise() {
                Some(ch) => {
                    ops.push(PlanOp::Channel {
                        index: channels.len(),
                        qubits: inst.qubits.clone(),
                    });
                    channels.push(ch.clone());
                }
                None => {
                    let gate = inst.as_gate().expect("instruction is gate or noise");
                    // Ideal adjoint first, then the noisy gate: the
                    // intermediate stays the telescoped near-identity.
                    if let Some(iinst) = ideal_gates.get(next_ideal) {
                        let ig = iinst.as_gate().expect("validated gate-only");
                        ops.push(PlanOp::Right {
                            qubits: iinst.qubits.clone(),
                            w: gate_superop(&ig.adjoint()),
                        });
                        next_ideal += 1;
                    }
                    ops.push(PlanOp::Left {
                        qubits: inst.qubits.clone(),
                        w: gate_superop(gate),
                    });
                }
            }
        }
        for iinst in &ideal_gates[next_ideal..] {
            let ig = iinst.as_gate().expect("validated gate-only");
            ops.push(PlanOp::Right {
                qubits: iinst.qubits.clone(),
                w: gate_superop(&ig.adjoint()),
            });
        }
        MpoPlan { n, ops, channels }
    }

    /// Number of qubits the compiled pair acts on.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The noise channels of the compiled noisy circuit, in program
    /// order — the slice shape expected by [`MpoPlan::run_channels`].
    pub fn channels(&self) -> &[NoiseChannel] {
        &self.channels
    }

    /// Runs the program with its compiled noise channels.
    pub fn run(&self, options: &MpoOptions) -> MpoOutcome {
        self.run_channels(options, &self.channels)
    }

    /// Runs the program with substituted noise channels (one per
    /// compiled channel, in order) — the noise-sweep entry point.
    ///
    /// # Panics
    ///
    /// Panics if `channels.len()` differs from the compiled channel
    /// count.
    pub fn run_channels(&self, options: &MpoOptions, channels: &[NoiseChannel]) -> MpoOutcome {
        assert_eq!(
            channels.len(),
            self.channels.len(),
            "substituted channel count must match the compiled plan"
        );
        let start = Instant::now();
        let mut mpo = Mpo::identity(self.n, options.svd_threshold, options.max_bond);
        // Channel superops repeat heavily in practice (one template
        // instantiated at many sites); cache by channel equality.
        let mut cache: Vec<(NoiseChannel, Matrix, f64)> = Vec::new();
        for op in &self.ops {
            match op {
                PlanOp::Left { qubits, w } => mpo.apply(qubits, w, Side::Left, 1.0),
                PlanOp::Right { qubits, w } => mpo.apply(qubits, w, Side::Right, 1.0),
                PlanOp::Channel { index, qubits } => {
                    let ch = &channels[*index];
                    let hit = cache.iter().position(|(c, _, _)| c == ch);
                    let at = hit.unwrap_or_else(|| {
                        let w = channel_superop(ch);
                        let nu = superop_norm(&w);
                        cache.push((ch.clone(), w, nu));
                        cache.len() - 1
                    });
                    let (_, w, nu) = &cache[at];
                    mpo.apply(qubits, w, Side::Left, *nu);
                }
            }
        }
        let dim = 4f64.powi(self.n as i32);
        let raw = mpo.trace().re / dim;
        // Rounding slack on top of the rigorous truncation bound: one
        // ulp-scale term per applied operation.
        let ferr = mpo.trunc_error() + 1e-12 * (1.0 + self.ops.len() as f64);
        MpoOutcome {
            fidelity: raw.clamp(0.0, 1.0),
            f_lo: (raw - ferr).clamp(0.0, 1.0),
            f_hi: (raw + ferr).clamp(0.0, 1.0),
            bond_max: mpo.bond_max(),
            trunc_error: ferr,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testref::fidelity_ref;
    use qaec_circuit::{Circuit, Gate, NoiseChannel};

    const TIGHT: MpoOptions = MpoOptions {
        svd_threshold: 1e-12,
        max_bond: 64,
    };

    fn assert_exact(ideal: &Circuit, noisy: &Circuit) {
        let fref = fidelity_ref(ideal, noisy);
        let out = MpoPlan::compile(ideal, noisy).run(&TIGHT);
        assert!(
            (out.fidelity - fref).abs() < 1e-9,
            "mpo {} vs dense {fref}",
            out.fidelity
        );
        assert!(out.f_lo <= fref && fref <= out.f_hi);
        assert!(out.f_hi - out.f_lo < 1e-6);
    }

    #[test]
    fn matches_dense_reference_single_qubit() {
        let mut noisy = Circuit::new(1);
        noisy
            .h(0)
            .noise(NoiseChannel::AmplitudeDamping { gamma: 0.2 }, &[0])
            .gate(Gate::Rz(0.4), &[0]);
        assert_exact(&noisy.ideal(), &noisy);
    }

    #[test]
    fn matches_dense_reference_with_routing_and_ccx() {
        // Nonadjacent cx plus a three-qubit gate: exercises swap
        // routing and the arity-3 merge/split path.
        let mut noisy = Circuit::new(3);
        noisy
            .h(0)
            .cx(0, 2)
            .noise(NoiseChannel::Depolarizing { p: 0.97 }, &[2])
            .ccx(0, 1, 2)
            .noise(NoiseChannel::BitFlip { p: 0.99 }, &[1]);
        assert_exact(&noisy.ideal(), &noisy);
    }

    #[test]
    fn detects_genuinely_different_circuits() {
        let mut ideal = Circuit::new(1);
        ideal.h(0);
        let mut noisy = Circuit::new(1);
        noisy.x(0);
        let fref = fidelity_ref(&ideal, &noisy);
        let out = MpoPlan::compile(&ideal, &noisy).run(&TIGHT);
        assert!((out.fidelity - fref).abs() < 1e-9);
        assert!(out.fidelity < 0.6, "h vs x must not look equivalent");
    }

    #[test]
    fn truncated_interval_still_contains_exact_value() {
        // Entangling pair run at a crude threshold and bond cap 2: the
        // point estimate may drift, but the interval must stay sound.
        let mut noisy = Circuit::new(3);
        noisy.h(0).cx(0, 1).cx(1, 2).cp(0.8, 0, 2);
        noisy.noise(NoiseChannel::Depolarizing { p: 0.9 }, &[0]);
        noisy.noise(NoiseChannel::AmplitudeDamping { gamma: 0.15 }, &[2]);
        let ideal = noisy.ideal();
        let fref = fidelity_ref(&ideal, &noisy);
        let out = MpoPlan::compile(&ideal, &noisy).run(&MpoOptions {
            svd_threshold: 1e-2,
            max_bond: 2,
        });
        assert!(
            out.f_lo <= fref && fref <= out.f_hi,
            "[{}, {}] must contain {fref}",
            out.f_lo,
            out.f_hi
        );
    }

    #[test]
    fn run_channels_reinstantiates_noise_strengths() {
        let mut noisy = Circuit::new(2);
        noisy
            .h(0)
            .cx(0, 1)
            .noise(NoiseChannel::Depolarizing { p: 0.999 }, &[1]);
        let plan = MpoPlan::compile(&noisy.ideal(), &noisy);
        let swapped: Vec<_> = plan
            .channels()
            .iter()
            .map(|c| c.with_strength(0.95).expect("depolarizing has a strength"))
            .collect();
        let out = plan.run_channels(&TIGHT, &swapped);
        let mut reref = Circuit::new(2);
        reref
            .h(0)
            .cx(0, 1)
            .noise(NoiseChannel::Depolarizing { p: 0.95 }, &[1]);
        let fref = fidelity_ref(&reref.ideal(), &reref);
        assert!((out.fidelity - fref).abs() < 1e-9);
    }

    #[test]
    fn leftover_ideal_gates_are_applied() {
        // Noisy circuit shorter than ideal: the trailing ideal adjoints
        // must still be folded in.
        let mut ideal = Circuit::new(2);
        ideal.h(0).cx(0, 1).s(1);
        let mut noisy = Circuit::new(2);
        noisy.h(0).cx(0, 1);
        let fref = fidelity_ref(&ideal, &noisy);
        let out = MpoPlan::compile(&ideal, &noisy).run(&TIGHT);
        assert!((out.fidelity - fref).abs() < 1e-9);
    }
}
