//! The MPO tensor engine: an operator on `n` qubits held as a chain of
//! per-site tensors with bounded bond dimension.
//!
//! Each site tensor has shape `[dl, 4, 4, dr]`: a left bond, a doubled
//! *out* leg, a doubled *in* leg, and a right bond. The represented
//! operator is `scale · (site product)`, with the per-site factors kept
//! at unit Frobenius norm at initialisation (`(1/2)·I₄` per site,
//! `scale = 2^n`), so the accumulated truncation error `err` is
//! measured in units that bound the Jamiolkowski-fidelity error
//! directly: `|ΔF| = |ΔTr|/4^n ≤ 2^n·‖ΔM_full‖_F/4^n = err`.
//!
//! # Canonical form and error accounting
//!
//! The chain is kept in mixed-canonical form around an orthogonality
//! center: every site left of the center is left-canonical (its
//! `[dl·16, dr]` matricization is an isometry), every site right of it
//! is right-canonical. Truncating SVDs happen **only at the center**,
//! where both environments are isometries — so the discarded Frobenius
//! mass equals the exact global error introduced, and summing those
//! masses (amplified by the spectral norm of every later
//! superoperator) is a rigorous bound, not a heuristic. Center moves
//! use exact QR/LQ factorizations and contribute no error.

use crate::svd::{svd, svd_lowrank, truncation_spec};
use qaec_math::{Matrix, C64};

/// Matrices whose smaller side is at most this use the full Jacobi
/// SVD; larger ones go through the subspace-iteration low-rank SVD
/// (whose unresolved residual is measured exactly and charged to the
/// truncation-error bound, so the choice affects tightness only).
const FULL_SVD_MAX_SIDE: usize = 32;

/// Extra subspace columns beyond `max_bond` in the low-rank SVD, so
/// the truncation decision sees a few singular values past the cap.
const OVERSAMPLE: usize = 8;

/// Which side of the accumulated operator a superoperator multiplies.
///
/// The engine builds `M = S_E · S_U†`: superoperators of the noisy
/// circuit are applied on the [`Side::Left`], adjoint superoperators
/// of the ideal circuit on the [`Side::Right`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// `M ← W · M` — acts on the *out* legs.
    Left,
    /// `M ← M · W` — acts on the *in* legs.
    Right,
}

/// One site tensor, shape `[dl, 4(out), 4(in), dr]`, stored row-major
/// with the two physical legs fused: index `(l·16 + po·4 + pi)·dr + r`.
struct Site {
    dl: usize,
    dr: usize,
    data: Vec<C64>,
}

impl Site {
    /// The `[dl·16, dr]` matricization (left bond + physical vs right
    /// bond). Shares the row-major layout, so this is a reshape.
    fn left_mat(&self) -> Matrix {
        Matrix::from_flat(self.dl * 16, self.dr, self.data.clone())
    }

    /// The `[dl, 16·dr]` matricization (left bond vs physical + right
    /// bond). Also a pure reshape of the same buffer.
    fn right_mat(&self) -> Matrix {
        Matrix::from_flat(self.dl, 16 * self.dr, self.data.clone())
    }

    fn from_left_mat(m: Matrix, dl: usize) -> Site {
        let dr = m.cols();
        debug_assert_eq!(m.rows(), dl * 16);
        Site {
            dl,
            dr,
            data: m.as_slice().to_vec(),
        }
    }

    fn from_right_mat(m: Matrix, dr: usize) -> Site {
        let dl = m.rows();
        debug_assert_eq!(m.cols(), 16 * dr);
        Site {
            dl,
            dr,
            data: m.as_slice().to_vec(),
        }
    }
}

/// Modified Gram-Schmidt QR with a reorthogonalization pass:
/// `A = Q·R` with `Q` of shape `[m, min(m, k)]` having orthonormal
/// columns and `R` of shape `[min(m, k), k]`. Numerically vanished
/// columns are replaced by fill-in basis vectors (their `R` entry stays
/// zero, so the product is unchanged and `Q` stays a strict isometry).
fn mgs_qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, k) = a.shape();
    let kq = m.min(k);
    let mut q = a.clone();
    let mut r = Matrix::zeros(kq, k);
    for j in 0..k {
        for _pass in 0..2 {
            for i in 0..j.min(kq) {
                let mut dot = C64::ZERO;
                for t in 0..m {
                    dot += q[(t, i)].conj() * q[(t, j)];
                }
                r[(i, j)] += dot;
                for t in 0..m {
                    let sub = q[(t, i)] * dot;
                    q[(t, j)] -= sub;
                }
            }
        }
        if j < kq {
            let norm = (0..m).map(|t| q[(t, j)].norm_sqr()).sum::<f64>().sqrt();
            if norm > 1e-300 {
                r[(j, j)] = C64::new(norm, 0.0);
                let inv = 1.0 / norm;
                for t in 0..m {
                    q[(t, j)] = q[(t, j)] * inv;
                }
            } else {
                fill_orthonormal(&mut q, j, m);
            }
        }
        // Columns j ≥ kq were orthogonalized against a complete basis of
        // C^m; their residual is zero to rounding and has no Q column.
    }
    if k > kq {
        q = Matrix::from_fn(m, kq, |t, i| q[(t, i)]);
    }
    (q, r)
}

/// Replaces the (numerically zero) column `j` of `q` with a unit vector
/// orthogonal to columns `0..j`: picks the canonical basis vector whose
/// residual against the existing columns is largest, then normalizes.
fn fill_orthonormal(q: &mut Matrix, j: usize, m: usize) {
    let mut best: Option<(f64, Vec<C64>)> = None;
    for t in 0..m {
        let mut v = vec![C64::ZERO; m];
        v[t] = C64::ONE;
        for i in 0..j {
            let mut dot = C64::ZERO;
            for s in 0..m {
                dot += q[(s, i)].conj() * v[s];
            }
            for s in 0..m {
                let sub = q[(s, i)] * dot;
                v[s] -= sub;
            }
        }
        let nsq: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        if best.as_ref().is_none_or(|(b, _)| nsq > *b) {
            best = Some((nsq, v));
        }
    }
    let (nsq, v) = best.expect("m >= 1");
    let inv = 1.0 / nsq.sqrt();
    for (s, val) in v.into_iter().enumerate() {
        q[(s, j)] = val * inv;
    }
}

/// A matrix product operator over `n` qubit sites with rigorous
/// truncation-error accounting. See the module docs for the canonical
/// form and the error-bound argument; [`Mpo::identity`] starts the
/// chain at the `4^n`-dimensional identity and [`Mpo::apply`] drives
/// superoperator layers onto it.
pub struct Mpo {
    sites: Vec<Site>,
    /// Qubit label carried by each site (routing reorders qubits).
    site_q: Vec<usize>,
    /// Inverse of `site_q`: current site of each qubit.
    pos: Vec<usize>,
    center: usize,
    /// Global scalar `2^n`: the represented operator is
    /// `scale · (site product)`.
    scale: f64,
    /// Accumulated truncation error, in units that bound `|ΔF|`.
    err: f64,
    bond_peak: usize,
    threshold: f64,
    max_bond: usize,
}

impl Mpo {
    /// The identity operator on `n` qubits as an MPO: bond dimension 1
    /// everywhere, each site `(1/2)·I₄` with global `scale = 2^n`.
    ///
    /// `svd_threshold` is the per-truncation relative Frobenius budget
    /// (singular values are discarded greedily while the discarded mass
    /// stays below `threshold · ‖block‖_F`); `max_bond` caps every bond
    /// unconditionally, with the overflow charged to the error bound.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_bond == 0`.
    pub fn identity(n: usize, svd_threshold: f64, max_bond: usize) -> Mpo {
        assert!(n >= 1, "MPO needs at least one site");
        assert!(max_bond >= 1, "max_bond must be at least 1");
        let sites = (0..n)
            .map(|_| {
                let mut data = vec![C64::ZERO; 16];
                for p in 0..4 {
                    data[p * 4 + p] = C64::new(0.5, 0.0);
                }
                Site { dl: 1, dr: 1, data }
            })
            .collect();
        Mpo {
            sites,
            site_q: (0..n).collect(),
            pos: (0..n).collect(),
            center: 0,
            scale: (n as f64).exp2(),
            err: 0.0,
            bond_peak: 1,
            threshold: svd_threshold,
            max_bond,
        }
    }

    /// Number of qubit sites.
    pub fn n_qubits(&self) -> usize {
        self.sites.len()
    }

    /// The accumulated truncation-error bound: `|F_exact − F_mpo|` is
    /// at most this (up to floating-point rounding slack, which callers
    /// add separately).
    pub fn trunc_error(&self) -> f64 {
        self.err
    }

    /// Largest bond dimension reached at any point so far.
    pub fn bond_max(&self) -> usize {
        self.bond_peak
    }

    /// `Tr(M)` of the represented operator, including the global scale.
    /// The trace contracts each site's physical legs diagonally
    /// (`out = in`), so it is a single left-to-right bond sweep.
    pub fn trace(&self) -> C64 {
        let mut v = vec![C64::ONE];
        for site in &self.sites {
            let mut nv = vec![C64::ZERO; site.dr];
            for (l, &vl) in v.iter().enumerate().take(site.dl) {
                if vl == C64::ZERO {
                    continue;
                }
                for p in 0..4 {
                    let base = (l * 16 + p * 4 + p) * site.dr;
                    for (r, out) in nv.iter_mut().enumerate() {
                        *out += vl * site.data[base + r];
                    }
                }
            }
            v = nv;
        }
        v[0] * self.scale
    }

    /// Applies a superoperator `w` (site-major layout, `4^a × 4^a` for
    /// `a = qubits.len()`) to the given qubits on the given [`Side`].
    ///
    /// `norm` must be an upper bound on `‖w‖₂` (use
    /// [`crate::superop_norm`], or `1.0` for unitary gate
    /// superoperators): previously accumulated truncation error passes
    /// through `w` and is amplified by it. Non-adjacent qubits are
    /// routed together with truncated swap layers (their error is
    /// accounted like any other truncation), applied, and left in their
    /// new positions.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty, repeats a qubit, references a qubit
    /// out of range, or `w` is not `4^a × 4^a`.
    pub fn apply(&mut self, qubits: &[usize], w: &Matrix, side: Side, norm: f64) {
        let a = qubits.len();
        assert!(a >= 1, "superoperator must act on at least one qubit");
        let d = 1usize << (2 * a);
        assert_eq!(
            w.shape(),
            (d, d),
            "superoperator on {a} qubits must be {d}×{d}"
        );
        for (i, q) in qubits.iter().enumerate() {
            assert!(*q < self.sites.len(), "qubit {q} out of range");
            assert!(!qubits[..i].contains(q), "repeated qubit {q}");
        }
        let s = self.route_adjacent(qubits);
        self.ensure_center_in(s, s + a - 1);
        self.err *= norm;
        let (theta, dl, dr) = self.merge(s, a);
        let out = apply_superop(&theta, dl, dr, a, w, side);
        self.split_theta(s, a, out, dl, dr);
    }

    /// Moves the orthogonality center into `[lo, hi]` with exact QR/LQ
    /// sweeps (no truncation, no error).
    fn ensure_center_in(&mut self, lo: usize, hi: usize) {
        while self.center < lo {
            self.move_center_right();
        }
        while self.center > hi {
            self.move_center_left();
        }
    }

    fn move_center_right(&mut self) {
        let c = self.center;
        let dl = self.sites[c].dl;
        let (q, r) = mgs_qr(&self.sites[c].left_mat());
        self.sites[c] = Site::from_left_mat(q, dl);
        let next_dr = self.sites[c + 1].dr;
        let absorbed = r.mul(&self.sites[c + 1].right_mat());
        self.sites[c + 1] = Site::from_right_mat(absorbed, next_dr);
        self.center = c + 1;
    }

    fn move_center_left(&mut self) {
        let c = self.center;
        let dr = self.sites[c].dr;
        // LQ via QR of the adjoint: A = R†·Q† with Q† row-orthonormal.
        let (q, r) = mgs_qr(&self.sites[c].right_mat().adjoint());
        self.sites[c] = Site::from_right_mat(q.adjoint(), dr);
        let prev_dl = self.sites[c - 1].dl;
        let absorbed = self.sites[c - 1].left_mat().mul(&r.adjoint());
        self.sites[c - 1] = Site::from_left_mat(absorbed, prev_dl);
        self.center = c - 1;
    }

    /// Contracts sites `s..s+a` into a single block tensor
    /// `[dl, 16^a, dr]` (physical composite site-major), returned as a
    /// flat row-major buffer with its bond dimensions.
    fn merge(&self, s: usize, a: usize) -> (Vec<C64>, usize, usize) {
        let dl = self.sites[s].dl;
        let mut tm = self.sites[s].left_mat();
        for j in 1..a {
            // Row-major [(l,P), (p_next, r')] is the same buffer as
            // [(l, P·16 + p_next), r'], so the reshape is free.
            let prod = tm.mul(&self.sites[s + j].right_mat());
            let rows = prod.rows() * 16;
            let cols = prod.cols() / 16;
            tm = Matrix::from_flat(rows, cols, prod.as_slice().to_vec());
        }
        let dr = tm.cols();
        (tm.as_slice().to_vec(), dl, dr)
    }

    /// Splits a block tensor back into `a` sites with a truncating SVD
    /// at each internal cut. The environment is isometric on both sides
    /// (center was inside the block), so each discarded mass is charged
    /// to `err` as an exact global Frobenius error. The center ends on
    /// the block's last site.
    fn split_theta(&mut self, s: usize, a: usize, theta: Vec<C64>, dl: usize, dr: usize) {
        if a == 1 {
            self.sites[s] = Site {
                dl,
                dr,
                data: theta,
            };
            self.center = s;
            return;
        }
        let mut cur = theta;
        let mut dl_cur = dl;
        for j in 0..a - 1 {
            let rest = 16usize.pow((a - 1 - j) as u32) * dr;
            let rows = dl_cur * 16;
            let am = Matrix::from_flat(rows, rest, cur);
            let min_side = rows.min(rest);
            let block = (self.max_bond + OVERSAMPLE).min(min_side);
            let dec = if min_side <= FULL_SVD_MAX_SIDE || block >= min_side {
                svd(&am)
            } else {
                svd_lowrank(&am, block)
            };
            let spec = truncation_spec(&dec.sigma, dec.total_sq, self.threshold, self.max_bond);
            self.err += spec.discarded;
            let keep = spec.keep;
            self.bond_peak = self.bond_peak.max(keep);
            let mut site = vec![C64::ZERO; rows * keep];
            for t in 0..rows {
                for i in 0..keep {
                    site[t * keep + i] = dec.u[(t, i)];
                }
            }
            self.sites[s + j] = Site {
                dl: dl_cur,
                dr: keep,
                data: site,
            };
            let mut carry = vec![C64::ZERO; keep * rest];
            for i in 0..keep {
                let row = i * rest;
                for c in 0..rest {
                    carry[row + c] = dec.vh[(i, c)] * dec.sigma[i];
                }
            }
            cur = carry;
            dl_cur = keep;
        }
        self.sites[s + a - 1] = Site {
            dl: dl_cur,
            dr,
            data: cur,
        };
        self.center = s + a - 1;
    }

    /// Swaps the qubits at sites `s` and `s+1` by merging the pair,
    /// permuting the physical legs, and splitting with truncation.
    fn swap_sites(&mut self, s: usize) {
        self.ensure_center_in(s, s + 1);
        let (theta, dl, dr) = self.merge(s, 2);
        let mut out = vec![C64::ZERO; theta.len()];
        for l in 0..dl {
            for p1 in 0..16 {
                for p2 in 0..16 {
                    let src = (l * 256 + p1 * 16 + p2) * dr;
                    let dst = (l * 256 + p2 * 16 + p1) * dr;
                    out[dst..dst + dr].copy_from_slice(&theta[src..src + dr]);
                }
            }
        }
        self.split_theta(s, 2, out, dl, dr);
        let (qa, qb) = (self.site_q[s], self.site_q[s + 1]);
        self.site_q[s] = qb;
        self.site_q[s + 1] = qa;
        self.pos[qa] = s + 1;
        self.pos[qb] = s;
    }

    /// Bubbles the given qubits into adjacent sites in the listed
    /// order; returns the site now holding `qs[0]`. The target is
    /// recomputed after every swap, so bubbling a qubit through
    /// already-placed block members keeps the block contiguous.
    fn route_adjacent(&mut self, qs: &[usize]) -> usize {
        for i in 1..qs.len() {
            loop {
                let target = self.pos[qs[i - 1]] + 1;
                let p = self.pos[qs[i]];
                if p == target {
                    break;
                }
                if p > target {
                    self.swap_sites(p - 1);
                } else {
                    self.swap_sites(p);
                }
            }
        }
        self.pos[qs[0]]
    }
}

/// Applies `w` to the physical legs of a merged block tensor. `w` uses
/// site-major doubled indices in `[0, 4^a)`; the block's composite
/// physical index interleaves per-site (out, in) pairs, so index
/// tables translate between the two. Iteration runs over the nonzero
/// entries of `w` — gate superoperators are sparse.
fn apply_superop(
    theta: &[C64],
    dl: usize,
    dr: usize,
    a: usize,
    w: &Matrix,
    side: Side,
) -> Vec<C64> {
    let d = 1usize << (2 * a); // 4^a: composite out (or in) leg
    let pdim = d * d; // 16^a: fused physical composite
                      // idx_of[PO·d + PI] = interleaved composite physical index P.
    let mut idx_of = vec![0usize; pdim];
    for p in 0..pdim {
        let mut po = 0usize;
        let mut pi = 0usize;
        let mut rem = p;
        for _ in 0..a {
            let digit = rem / (pdim / 16);
            let (hi, lo) = (digit / 4, digit % 4);
            po = po * 4 + hi;
            pi = pi * 4 + lo;
            rem = (rem % (pdim / 16)) * 16;
        }
        idx_of[po * d + pi] = p;
    }
    let mut nnz = Vec::new();
    for row in 0..d {
        for col in 0..d {
            let v = w[(row, col)];
            if v != C64::ZERO {
                nnz.push((row, col, v));
            }
        }
    }
    let mut out = vec![C64::ZERO; theta.len()];
    for &(row, col, v) in &nnz {
        for other in 0..d {
            let (src_p, dst_p) = match side {
                // M ← W·M: out legs transform, row is the new out index.
                Side::Left => (idx_of[col * d + other], idx_of[row * d + other]),
                // M ← M·W: in legs transform, col is the new in index.
                Side::Right => (idx_of[other * d + row], idx_of[other * d + col]),
            };
            for l in 0..dl {
                let sb = (l * pdim + src_p) * dr;
                let db = (l * pdim + dst_p) * dr;
                for r in 0..dr {
                    out[db + r] += v * theta[sb + r];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superop::gate_superop;
    use qaec_circuit::Gate;

    #[test]
    fn identity_trace_is_4_to_n() {
        for n in 1..=5 {
            let mpo = Mpo::identity(n, 1e-8, 16);
            let t = mpo.trace();
            assert!((t.re - 4f64.powi(n as i32)).abs() < 1e-12);
            assert!(t.im.abs() < 1e-12);
        }
    }

    #[test]
    fn unitary_left_then_adjoint_right_restores_identity() {
        // M = W · I · W† = I for a unitary superoperator, applied on
        // opposite sides; exercises both code paths.
        let mut mpo = Mpo::identity(3, 1e-12, 64);
        let w = gate_superop(&Gate::Cx);
        let wd = gate_superop(&Gate::Cx); // cx is self-adjoint
        mpo.apply(&[0, 1], &w, Side::Left, 1.0);
        mpo.apply(&[0, 1], &wd, Side::Right, 1.0);
        let t = mpo.trace();
        assert!((t.re - 64.0).abs() < 1e-9, "trace {}", t.re);
        // The Gram-SVD residual certifies no tighter than √eps·‖A‖ per
        // truncation, so the bound floors near 1e-8 even when nothing
        // was actually discarded.
        assert!(mpo.trunc_error() < 1e-6);
    }

    #[test]
    fn routing_nonadjacent_qubits_preserves_unitarity() {
        // cx on (0, 2) twice is the identity; the first application
        // routes qubit 2 next to qubit 0 and leaves it there, the
        // second finds them already adjacent.
        let mut mpo = Mpo::identity(4, 1e-12, 64);
        let w = gate_superop(&Gate::Cx);
        mpo.apply(&[0, 2], &w, Side::Left, 1.0);
        mpo.apply(&[0, 2], &w, Side::Left, 1.0);
        let t = mpo.trace();
        assert!((t.re - 256.0).abs() < 1e-8, "trace {}", t.re);
        assert!(mpo.trunc_error() < 1e-6);
    }

    #[test]
    fn reversed_qubit_order_matches_swapped_gate() {
        // cx with control/target reversed equals swap·cx·swap; check
        // via trace against the explicitly-routed application.
        let w = gate_superop(&Gate::Cx);
        let mut a = Mpo::identity(2, 1e-12, 64);
        a.apply(&[1, 0], &w, Side::Left, 1.0);
        let mut b = Mpo::identity(2, 1e-12, 64);
        let sw = gate_superop(&Gate::Swap);
        b.apply(&[0, 1], &sw, Side::Left, 1.0);
        b.apply(&[0, 1], &w, Side::Left, 1.0);
        b.apply(&[0, 1], &sw, Side::Left, 1.0);
        let (ta, tb) = (a.trace(), b.trace());
        assert!((ta - tb).abs() < 1e-9);
    }

    #[test]
    fn max_bond_cap_is_charged_to_error() {
        // A three-qubit entangler at bond cap 1 must truncate, and the
        // engine must admit it in the error bound rather than report a
        // confident wrong trace.
        let mut mpo = Mpo::identity(3, 1e-12, 1);
        for q in 0..3 {
            mpo.apply(&[q], &gate_superop(&Gate::H), Side::Left, 1.0);
        }
        mpo.apply(&[0, 1], &gate_superop(&Gate::Cx), Side::Left, 1.0);
        mpo.apply(&[1, 2], &gate_superop(&Gate::Cx), Side::Left, 1.0);
        assert!(mpo.bond_max() == 1);
        assert!(mpo.trunc_error() > 0.0);
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn repeated_qubits_are_rejected() {
        let mut mpo = Mpo::identity(2, 1e-8, 8);
        let w = gate_superop(&Gate::Cx);
        mpo.apply(&[0, 0], &w, Side::Left, 1.0);
    }
}
