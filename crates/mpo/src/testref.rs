//! Dense superoperator reference for the in-crate tests: builds the
//! full `4^n × 4^n` superoperators of small circuits in Kronecker
//! layout and computes the exact Jamiolkowski fidelity, independently
//! of every MPO code path under test.

use qaec_circuit::{Circuit, Operation};
use qaec_math::{Matrix, C64};

/// Embeds an `a`-qubit operator acting on `qs` into the full `2^n`
/// space, big-endian (`q0` is the most significant bit), matching the
/// gate-matrix convention of `qaec-circuit`.
pub(crate) fn embed(n: usize, qs: &[usize], m: &Matrix) -> Matrix {
    let dim = 1usize << n;
    let mut mask = 0usize;
    for &q in qs {
        mask |= 1 << (n - 1 - q);
    }
    Matrix::from_fn(dim, dim, |r, c| {
        if (r & !mask) != (c & !mask) {
            return C64::ZERO;
        }
        let mut ri = 0usize;
        let mut ci = 0usize;
        for &q in qs {
            ri = (ri << 1) | ((r >> (n - 1 - q)) & 1);
            ci = (ci << 1) | ((c >> (n - 1 - q)) & 1);
        }
        m[(ri, ci)]
    })
}

/// The full superoperator of a circuit in Kronecker layout
/// (ket space ⊗ bra space), instructions composed in temporal order.
pub(crate) fn dense_superop(circuit: &Circuit) -> Matrix {
    let n = circuit.n_qubits();
    let dim = 1usize << n;
    let mut s = Matrix::identity(dim * dim);
    for inst in circuit.instructions() {
        let step = match &inst.op {
            Operation::Gate(g) => {
                let e = embed(n, &inst.qubits, &g.matrix());
                e.kron(&e.conj())
            }
            Operation::Noise(ch) => {
                let mut acc = Matrix::zeros(dim * dim, dim * dim);
                for k in ch.kraus() {
                    let e = embed(n, &inst.qubits, &k);
                    acc = acc.add(&e.kron(&e.conj()));
                }
                acc
            }
        };
        s = step.mul(&s);
    }
    s
}

/// Exact Jamiolkowski fidelity `Tr(S_E · S_U†) / 4^n` of a pair,
/// computed densely.
pub(crate) fn fidelity_ref(ideal: &Circuit, noisy: &Circuit) -> f64 {
    let n = ideal.n_qubits();
    let se = dense_superop(noisy);
    let su = dense_superop(ideal);
    se.mul_trace(&su.adjoint()).re / 4f64.powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::{Circuit, NoiseChannel};

    #[test]
    fn identical_pair_has_unit_fidelity() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert!((fidelity_ref(&c, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_on_matching_pair_gives_channel_trace() {
        // For noise after a matching unitary, F = Tr(D)/4 of the
        // channel alone — an independent analytic anchor.
        let mut noisy = Circuit::new(1);
        noisy
            .h(0)
            .noise(NoiseChannel::Depolarizing { p: 0.9 }, &[0]);
        let single = NoiseChannel::Depolarizing { p: 0.9 }.superop_matrix();
        let expect = single.trace().re / 4.0;
        assert!((fidelity_ref(&noisy.ideal(), &noisy) - expect).abs() < 1e-12);
    }
}
