//! Seeded random noise injection.
//!
//! The paper's noisy implementations are produced by "randomly inserting
//! some depolarisation noises" into the ideal benchmark circuits, with
//! `p = 0.999` "representing the state-of-the-art design technology".
//! [`insert_random_noise`] reproduces that model; [`noise_after_each_gate`]
//! implements the realistic device model the paper motivates ("every gate
//! suffers some degree of noise") used by Algorithm II at scale.

use crate::{Circuit, Instruction, NoiseChannel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inserts `count` copies of a single-qubit `channel` at uniformly random
/// positions (instruction boundaries) and uniformly random qubits.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `channel` is not single-qubit or the circuit has no qubits.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::bernstein_vazirani_all_ones;
/// use qaec_circuit::noise_insertion::insert_random_noise;
/// use qaec_circuit::NoiseChannel;
///
/// let ideal = bernstein_vazirani_all_ones(4);
/// let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 7, 42);
/// assert_eq!(noisy.noise_count(), 7);
/// assert_eq!(noisy.gate_count(), ideal.gate_count());
/// ```
pub fn insert_random_noise(
    circuit: &Circuit,
    channel: &NoiseChannel,
    count: usize,
    seed: u64,
) -> Circuit {
    let arity = channel.arity();
    assert!(
        arity <= circuit.n_qubits(),
        "channel arity {arity} exceeds circuit width"
    );
    assert!(circuit.n_qubits() > 0, "circuit must have qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    // Choose insertion slots in [0, len] (before/between/after
    // instructions) and `arity` distinct qubits per slot.
    let pick_qubits = |rng: &mut StdRng| -> Vec<usize> {
        let mut qs: Vec<usize> = Vec::with_capacity(arity);
        while qs.len() < arity {
            let q = rng.gen_range(0..circuit.n_qubits());
            if !qs.contains(&q) {
                qs.push(q);
            }
        }
        qs
    };
    let mut slots: Vec<(usize, Vec<usize>)> = (0..count)
        .map(|_| {
            let pos = rng.gen_range(0..=circuit.len());
            let qs = pick_qubits(&mut rng);
            (pos, qs)
        })
        .collect();
    slots.sort_by_key(|&(pos, _)| pos);

    let mut out = Circuit::new(circuit.n_qubits());
    let mut slot_iter = slots.into_iter().peekable();
    for (pos, instr) in circuit.iter().enumerate() {
        while slot_iter.peek().is_some_and(|(p, _)| *p <= pos) {
            let (_, qs) = slot_iter.next().expect("peeked");
            out.noise(channel.clone(), &qs);
        }
        push_existing(&mut out, instr.clone());
    }
    for (_, qs) in slot_iter {
        out.noise(channel.clone(), &qs);
    }
    out
}

/// Attaches a copy of `channel` to every qubit touched by every gate,
/// immediately after the gate — the "every gate suffers some noise"
/// device model.
///
/// # Panics
///
/// Panics if `channel` is not single-qubit.
///
/// # Example
///
/// ```
/// use qaec_circuit::{Circuit, NoiseChannel};
/// use qaec_circuit::noise_insertion::noise_after_each_gate;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let noisy = noise_after_each_gate(&bell, &NoiseChannel::Depolarizing { p: 0.999 });
/// // 1 noise after H + 2 after CX.
/// assert_eq!(noisy.noise_count(), 3);
/// ```
pub fn noise_after_each_gate(circuit: &Circuit, channel: &NoiseChannel) -> Circuit {
    assert_eq!(
        channel.arity(),
        1,
        "device model expects a single-qubit channel"
    );
    let mut out = Circuit::new(circuit.n_qubits());
    for instr in circuit.iter() {
        push_existing(&mut out, instr.clone());
        if instr.is_gate() {
            for &q in &instr.qubits {
                out.noise(channel.clone(), &[q]);
            }
        }
    }
    out
}

/// A realistic device model: a single-qubit channel after every
/// single-qubit gate and a (typically stronger) two-qubit channel after
/// every two-qubit gate; gates on three or more qubits receive the
/// single-qubit channel on each wire.
///
/// # Panics
///
/// Panics if `one_q` is not single-qubit or `two_q` is not two-qubit.
///
/// # Example
///
/// ```
/// use qaec_circuit::{Circuit, NoiseChannel};
/// use qaec_circuit::noise_insertion::device_noise_model;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let noisy = device_noise_model(
///     &bell,
///     &NoiseChannel::Depolarizing { p: 0.9999 },
///     &NoiseChannel::TwoQubitDepolarizing { p: 0.999 },
/// );
/// assert_eq!(noisy.noise_count(), 2); // one per gate
/// ```
pub fn device_noise_model(
    circuit: &Circuit,
    one_q: &NoiseChannel,
    two_q: &NoiseChannel,
) -> Circuit {
    assert_eq!(one_q.arity(), 1, "one_q must be a single-qubit channel");
    assert_eq!(two_q.arity(), 2, "two_q must be a two-qubit channel");
    let mut out = Circuit::new(circuit.n_qubits());
    for instr in circuit.iter() {
        push_existing(&mut out, instr.clone());
        if !instr.is_gate() {
            continue;
        }
        match instr.qubits.len() {
            1 => {
                out.noise(one_q.clone(), &instr.qubits);
            }
            2 => {
                out.noise(two_q.clone(), &instr.qubits);
            }
            _ => {
                for &q in &instr.qubits {
                    out.noise(one_q.clone(), &[q]);
                }
            }
        }
    }
    out
}

/// Splices a pre-validated instruction from a same-width circuit.
fn push_existing(out: &mut Circuit, instruction: Instruction) {
    debug_assert!(instruction.qubits.iter().all(|&q| q < out.n_qubits()));
    out.push_unchecked(instruction);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{qft, QftStyle};

    #[test]
    fn insertion_preserves_gate_order() {
        let ideal = qft(3, QftStyle::DecomposedNoSwaps);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 5, 1);
        assert_eq!(noisy.noise_count(), 5);
        let gates_only: Vec<_> = noisy.iter().filter(|i| i.is_gate()).cloned().collect();
        let original: Vec<_> = ideal.iter().cloned().collect();
        assert_eq!(gates_only, original);
    }

    #[test]
    fn insertion_is_deterministic() {
        let ideal = qft(3, QftStyle::DecomposedNoSwaps);
        let ch = NoiseChannel::Depolarizing { p: 0.999 };
        assert_eq!(
            insert_random_noise(&ideal, &ch, 4, 7),
            insert_random_noise(&ideal, &ch, 4, 7)
        );
        assert_ne!(
            insert_random_noise(&ideal, &ch, 4, 7),
            insert_random_noise(&ideal, &ch, 4, 8)
        );
    }

    #[test]
    fn zero_count_is_identity_transform() {
        let ideal = qft(2, QftStyle::Textbook);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.9 }, 0, 3);
        assert_eq!(noisy, ideal);
    }

    #[test]
    fn device_model_counts() {
        let ideal = qft(3, QftStyle::NoSwaps); // 3 H + 3 CP
        let noisy = noise_after_each_gate(&ideal, &NoiseChannel::Depolarizing { p: 0.999 });
        // 3 single-qubit + 3 two-qubit gates → 3 + 6 noise sites.
        assert_eq!(noisy.noise_count(), 9);
        assert_eq!(noisy.ideal(), ideal);
    }

    #[test]
    fn two_qubit_channel_insertion() {
        let ideal = qft(3, QftStyle::Textbook);
        let ch = NoiseChannel::TwoQubitDepolarizing { p: 0.99 };
        let noisy = insert_random_noise(&ideal, &ch, 3, 21);
        assert_eq!(noisy.noise_count(), 3);
        for instr in noisy.iter().filter(|i| i.is_noise()) {
            assert_eq!(instr.qubits.len(), 2);
            assert_ne!(instr.qubits[0], instr.qubits[1]);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds circuit width")]
    fn channel_wider_than_circuit_rejected() {
        let ideal = qft(1, QftStyle::Textbook);
        let ch = NoiseChannel::TwoQubitDepolarizing { p: 0.99 };
        insert_random_noise(&ideal, &ch, 1, 0);
    }

    #[test]
    fn device_model_mixes_channel_arities() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2);
        let noisy = device_noise_model(
            &c,
            &NoiseChannel::Depolarizing { p: 0.9999 },
            &NoiseChannel::TwoQubitDepolarizing { p: 0.999 },
        );
        // H → 1 single, CX → 1 double, CCX → 3 singles.
        assert_eq!(noisy.noise_count(), 5);
        let two_q = noisy
            .iter()
            .filter(|i| i.is_noise() && i.qubits.len() == 2)
            .count();
        assert_eq!(two_q, 1);
    }
}
