//! Test-only helpers shared across the crate's unit tests.

use crate::Circuit;
use qaec_math::Matrix;

/// Brute-force `2^n × 2^n` unitary of an ideal circuit. Test-only: meant
/// for small `n`.
///
/// # Panics
///
/// Panics if the circuit contains noise instructions.
pub(crate) fn unitary_of(c: &Circuit) -> Matrix {
    let d = c.dim();
    let n = c.n_qubits();
    let mut u = Matrix::identity(d);
    for instr in c.iter() {
        let g = instr.gate_matrix().expect("unitary circuit");
        let qs = &instr.qubits;
        let mut full = Matrix::zeros(d, d);
        for col in 0..d {
            // Local column index: the bits of `col` at the gate's qubits.
            let mut col_local = 0usize;
            for (slot, &q) in qs.iter().enumerate() {
                let bit = (col >> (n - 1 - q)) & 1;
                col_local |= bit << (qs.len() - 1 - slot);
            }
            for row_local in 0..g.rows() {
                let amp = g[(row_local, col_local)];
                if amp.is_zero() {
                    continue;
                }
                let mut row = col;
                for (slot, &q) in qs.iter().enumerate() {
                    let bit = (row_local >> (qs.len() - 1 - slot)) & 1;
                    let mask = 1usize << (n - 1 - q);
                    row = (row & !mask) | (bit * mask);
                }
                full[(row, col)] += amp;
            }
        }
        u = full.mul(&u);
    }
    u
}
