//! Noise channels in Kraus operator-sum form.
//!
//! A noise channel is a completely-positive trace-preserving (CPTP)
//! super-operator `E(ρ) = Σᵢ KᵢρKᵢ†` with `Σᵢ Kᵢ†Kᵢ = I`. The built-in
//! channels follow the paper's Example 2 convention: the parameter `p` is
//! the probability that *no* error occurs (e.g. the paper's experiments use
//! depolarizing noise with `p = 0.999`).

use crate::error::CircuitError;
use qaec_math::{Matrix, C64};
use std::fmt;

/// A validated set of Kraus operators for a custom channel.
///
/// Construct through [`KrausSet::new`], which checks shape consistency and
/// the CPTP completeness relation.
#[derive(Clone, Debug, PartialEq)]
pub struct KrausSet {
    label: String,
    arity: usize,
    ops: Vec<Matrix>,
}

impl KrausSet {
    /// Validates and wraps a set of Kraus operators.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::MalformedKrausSet`] if the set is empty, the
    ///   matrices are not square, not all the same size, or not a power of
    ///   two in dimension;
    /// * [`CircuitError::NotTracePreserving`] if `Σ K†K` deviates from the
    ///   identity by more than `1e-8`.
    pub fn new(label: impl Into<String>, ops: Vec<Matrix>) -> Result<Self, CircuitError> {
        if ops.is_empty() {
            return Err(CircuitError::MalformedKrausSet {
                reason: "empty operator list".into(),
            });
        }
        let dim = ops[0].rows();
        if !dim.is_power_of_two() || dim < 2 {
            return Err(CircuitError::MalformedKrausSet {
                reason: format!("dimension {dim} is not a power of two ≥ 2"),
            });
        }
        for k in &ops {
            if k.shape() != (dim, dim) {
                return Err(CircuitError::MalformedKrausSet {
                    reason: "inconsistent operator shapes".into(),
                });
            }
        }
        let mut sum = Matrix::zeros(dim, dim);
        for k in &ops {
            sum = sum.add(&k.adjoint().mul(k));
        }
        let deviation = sum.max_abs_diff(&Matrix::identity(dim));
        if deviation > 1e-8 {
            return Err(CircuitError::NotTracePreserving { deviation });
        }
        Ok(KrausSet {
            label: label.into(),
            arity: dim.trailing_zeros() as usize,
            ops,
        })
    }

    /// The channel's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of qubits the channel acts on.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The Kraus operators.
    pub fn ops(&self) -> &[Matrix] {
        &self.ops
    }
}

/// A noise channel attached to a noisy circuit.
///
/// For the built-in single-qubit channels, `p` is the probability of **no
/// error** (the paper's convention): e.g.
/// `BitFlip{p}: ρ ↦ p·ρ + (1−p)·XρX`.
///
/// # Example
///
/// ```
/// use qaec_circuit::NoiseChannel;
///
/// let dep = NoiseChannel::Depolarizing { p: 0.999 };
/// assert_eq!(dep.kraus().len(), 4);
/// assert!(dep.is_trace_preserving(1e-10));
/// // Kraus probability masses sum to 1 for any CPTP channel.
/// let total: f64 = dep.kraus_masses().iter().sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum NoiseChannel {
    /// `ρ ↦ p·ρ + (1−p)·XρX`.
    BitFlip {
        /// Probability of no error.
        p: f64,
    },
    /// `ρ ↦ p·ρ + (1−p)·ZρZ`.
    PhaseFlip {
        /// Probability of no error.
        p: f64,
    },
    /// `ρ ↦ p·ρ + (1−p)·YρY`.
    BitPhaseFlip {
        /// Probability of no error.
        p: f64,
    },
    /// `ρ ↦ p·ρ + (1−p)/3·(XρX + YρY + ZρZ)`.
    Depolarizing {
        /// Probability of no error.
        p: f64,
    },
    /// Amplitude damping with decay probability `gamma`.
    AmplitudeDamping {
        /// Probability of |1⟩ → |0⟩ decay.
        gamma: f64,
    },
    /// Phase damping with scattering probability `gamma`.
    PhaseDamping {
        /// Probability of phase scattering.
        gamma: f64,
    },
    /// General Pauli channel `ρ ↦ pᵢρ + pₓXρX + p_yYρY + p_zZρZ`.
    Pauli {
        /// Identity probability.
        pi: f64,
        /// X-error probability.
        px: f64,
        /// Y-error probability.
        py: f64,
        /// Z-error probability.
        pz: f64,
    },
    /// Two-qubit depolarizing noise:
    /// `ρ ↦ p·ρ + (1−p)/15 · Σ_{P ≠ I⊗I} PρP` over the 15 non-identity
    /// two-qubit Paulis — the dominant error of entangling gates on real
    /// devices.
    TwoQubitDepolarizing {
        /// Probability of no error.
        p: f64,
    },
    /// An arbitrary validated Kraus set (possibly multi-qubit).
    Custom(KrausSet),
}

impl NoiseChannel {
    /// A custom channel from raw Kraus operators.
    ///
    /// # Errors
    ///
    /// See [`KrausSet::new`].
    pub fn custom(label: impl Into<String>, ops: Vec<Matrix>) -> Result<Self, CircuitError> {
        Ok(NoiseChannel::Custom(KrausSet::new(label, ops)?))
    }

    /// Number of qubits the channel acts on.
    pub fn arity(&self) -> usize {
        match self {
            NoiseChannel::Custom(k) => k.arity(),
            NoiseChannel::TwoQubitDepolarizing { .. } => 2,
            _ => 1,
        }
    }

    /// Validates the channel parameters.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidProbability`] if a probability parameter is
    /// outside `[0, 1]`, or if the Pauli probabilities do not sum to 1.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let check = |value: f64| {
            if (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(CircuitError::InvalidProbability { value })
            }
        };
        match *self {
            NoiseChannel::BitFlip { p }
            | NoiseChannel::PhaseFlip { p }
            | NoiseChannel::BitPhaseFlip { p }
            | NoiseChannel::Depolarizing { p }
            | NoiseChannel::TwoQubitDepolarizing { p } => check(p),
            NoiseChannel::AmplitudeDamping { gamma } | NoiseChannel::PhaseDamping { gamma } => {
                check(gamma)
            }
            NoiseChannel::Pauli { pi, px, py, pz } => {
                check(pi)?;
                check(px)?;
                check(py)?;
                check(pz)?;
                let total = pi + px + py + pz;
                if (total - 1.0).abs() > 1e-9 {
                    return Err(CircuitError::InvalidProbability { value: total });
                }
                Ok(())
            }
            NoiseChannel::Custom(_) => Ok(()), // validated at construction
        }
    }

    /// The Kraus operators `{Kᵢ}` of the channel.
    pub fn kraus(&self) -> Vec<Matrix> {
        use crate::gate::Gate;
        let id = Matrix::identity(2);
        let x = Gate::X.matrix();
        let y = Gate::Y.matrix();
        let z = Gate::Z.matrix();
        let scaled = |m: &Matrix, w: f64| m.scale(C64::real(w.max(0.0).sqrt()));
        match *self {
            NoiseChannel::BitFlip { p } => vec![scaled(&id, p), scaled(&x, 1.0 - p)],
            NoiseChannel::PhaseFlip { p } => vec![scaled(&id, p), scaled(&z, 1.0 - p)],
            NoiseChannel::BitPhaseFlip { p } => vec![scaled(&id, p), scaled(&y, 1.0 - p)],
            NoiseChannel::Depolarizing { p } => {
                let q = (1.0 - p) / 3.0;
                vec![scaled(&id, p), scaled(&x, q), scaled(&y, q), scaled(&z, q)]
            }
            NoiseChannel::AmplitudeDamping { gamma } => {
                let k0 = Matrix::from_diagonal(&[C64::ONE, C64::real((1.0 - gamma).sqrt())]);
                let mut k1 = Matrix::zeros(2, 2);
                k1[(0, 1)] = C64::real(gamma.sqrt());
                vec![k0, k1]
            }
            NoiseChannel::PhaseDamping { gamma } => {
                let k0 = Matrix::from_diagonal(&[C64::ONE, C64::real((1.0 - gamma).sqrt())]);
                let mut k1 = Matrix::zeros(2, 2);
                k1[(1, 1)] = C64::real(gamma.sqrt());
                vec![k0, k1]
            }
            NoiseChannel::Pauli { pi, px, py, pz } => vec![
                scaled(&id, pi),
                scaled(&x, px),
                scaled(&y, py),
                scaled(&z, pz),
            ],
            NoiseChannel::TwoQubitDepolarizing { p } => {
                let singles = [&id, &x, &y, &z];
                let q = (1.0 - p) / 15.0;
                let mut ops = Vec::with_capacity(16);
                for (i, a) in singles.iter().enumerate() {
                    for (j, b) in singles.iter().enumerate() {
                        let weight = if i == 0 && j == 0 { p } else { q };
                        ops.push(scaled(&a.kron(b), weight));
                    }
                }
                ops
            }
            NoiseChannel::Custom(ref k) => k.ops().to_vec(),
        }
    }

    /// The number of Kraus operators.
    pub fn kraus_len(&self) -> usize {
        match self {
            NoiseChannel::BitFlip { .. }
            | NoiseChannel::PhaseFlip { .. }
            | NoiseChannel::BitPhaseFlip { .. }
            | NoiseChannel::AmplitudeDamping { .. }
            | NoiseChannel::PhaseDamping { .. } => 2,
            NoiseChannel::Depolarizing { .. } | NoiseChannel::Pauli { .. } => 4,
            NoiseChannel::TwoQubitDepolarizing { .. } => 16,
            NoiseChannel::Custom(k) => k.ops().len(),
        }
    }

    /// The probability mass `tr(Kᵢ†Kᵢ)/2^ℓ` of each Kraus operator.
    ///
    /// For a CPTP channel these sum to 1; they drive the best-first term
    /// enumeration of Algorithm I and its early-termination bounds.
    pub fn kraus_masses(&self) -> Vec<f64> {
        let d = (1usize << self.arity()) as f64;
        self.kraus()
            .iter()
            .map(|k| k.adjoint().mul(k).trace().re / d)
            .collect()
    }

    /// The superoperator matrix `M_E = Σᵢ Kᵢ ⊗ Kᵢ*` used by Algorithm II.
    ///
    /// For an ℓ-qubit channel the result is `4^ℓ × 4^ℓ`, acting on the
    /// doubled system `(q, q′)`.
    pub fn superop_matrix(&self) -> Matrix {
        let dim = 1usize << self.arity();
        let mut m = Matrix::zeros(dim * dim, dim * dim);
        for k in self.kraus() {
            m = m.add(&k.kron(&k.conj()));
        }
        m
    }

    /// Whether `Σ K†K = I` within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let dim = 1usize << self.arity();
        let mut sum = Matrix::zeros(dim, dim);
        for k in self.kraus() {
            sum = sum.add(&k.adjoint().mul(&k));
        }
        sum.is_identity(tol)
    }

    /// A short channel name for display and QASM noise directives.
    pub fn name(&self) -> &str {
        match self {
            NoiseChannel::BitFlip { .. } => "bit_flip",
            NoiseChannel::PhaseFlip { .. } => "phase_flip",
            NoiseChannel::BitPhaseFlip { .. } => "bit_phase_flip",
            NoiseChannel::Depolarizing { .. } => "depolarizing",
            NoiseChannel::AmplitudeDamping { .. } => "amplitude_damping",
            NoiseChannel::PhaseDamping { .. } => "phase_damping",
            NoiseChannel::Pauli { .. } => "pauli",
            NoiseChannel::TwoQubitDepolarizing { .. } => "two_qubit_depolarizing",
            NoiseChannel::Custom(k) => k.label(),
        }
    }

    /// The channel's scalar parameters, for serialization.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            NoiseChannel::BitFlip { p }
            | NoiseChannel::PhaseFlip { p }
            | NoiseChannel::BitPhaseFlip { p }
            | NoiseChannel::Depolarizing { p } => vec![p],
            NoiseChannel::AmplitudeDamping { gamma } | NoiseChannel::PhaseDamping { gamma } => {
                vec![gamma]
            }
            NoiseChannel::Pauli { pi, px, py, pz } => vec![pi, px, py, pz],
            NoiseChannel::TwoQubitDepolarizing { p } => vec![p],
            NoiseChannel::Custom(_) => Vec::new(),
        }
    }

    /// The channel with its single scalar strength replaced: the same
    /// channel shape (name, arity, Kraus structure) at a new noise
    /// level. `None` for channels without one scalar parameter
    /// ([`NoiseChannel::Pauli`], [`NoiseChannel::Custom`]) — those have
    /// no unambiguous "strength" to sweep.
    ///
    /// The value is **not** range-checked here; validate the result with
    /// [`NoiseChannel::validate`].
    ///
    /// # Example
    ///
    /// ```
    /// use qaec_circuit::NoiseChannel;
    ///
    /// let base = NoiseChannel::Depolarizing { p: 0.999 };
    /// assert_eq!(
    ///     base.with_strength(0.99),
    ///     Some(NoiseChannel::Depolarizing { p: 0.99 })
    /// );
    /// let pauli = NoiseChannel::Pauli { pi: 0.9, px: 0.1, py: 0.0, pz: 0.0 };
    /// assert_eq!(pauli.with_strength(0.5), None);
    /// ```
    pub fn with_strength(&self, value: f64) -> Option<NoiseChannel> {
        match self.params().as_slice() {
            [_] => NoiseChannel::from_name(self.name(), &[value]),
            _ => None,
        }
    }

    /// Constructs a built-in channel from its [`NoiseChannel::name`] and
    /// parameters. Returns `None` for unknown names or arity mismatches.
    pub fn from_name(name: &str, params: &[f64]) -> Option<NoiseChannel> {
        let ch = match (name, params) {
            ("bit_flip", [p]) => NoiseChannel::BitFlip { p: *p },
            ("phase_flip", [p]) => NoiseChannel::PhaseFlip { p: *p },
            ("bit_phase_flip", [p]) => NoiseChannel::BitPhaseFlip { p: *p },
            ("depolarizing", [p]) => NoiseChannel::Depolarizing { p: *p },
            ("amplitude_damping", [g]) => NoiseChannel::AmplitudeDamping { gamma: *g },
            ("phase_damping", [g]) => NoiseChannel::PhaseDamping { gamma: *g },
            ("pauli", [pi, px, py, pz]) => NoiseChannel::Pauli {
                pi: *pi,
                px: *px,
                py: *py,
                pz: *pz,
            },
            ("two_qubit_depolarizing", [p]) => NoiseChannel::TwoQubitDepolarizing { p: *p },
            _ => return None,
        };
        Some(ch)
    }
}

impl fmt::Display for NoiseChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builtin_samples() -> Vec<NoiseChannel> {
        vec![
            NoiseChannel::BitFlip { p: 0.9 },
            NoiseChannel::PhaseFlip { p: 0.95 },
            NoiseChannel::BitPhaseFlip { p: 0.8 },
            NoiseChannel::Depolarizing { p: 0.999 },
            NoiseChannel::AmplitudeDamping { gamma: 0.1 },
            NoiseChannel::PhaseDamping { gamma: 0.05 },
            NoiseChannel::Pauli {
                pi: 0.85,
                px: 0.05,
                py: 0.04,
                pz: 0.06,
            },
            NoiseChannel::TwoQubitDepolarizing { p: 0.99 },
        ]
    }

    #[test]
    fn all_builtin_channels_are_cptp() {
        for ch in builtin_samples() {
            assert!(ch.validate().is_ok(), "{ch} invalid");
            assert!(ch.is_trace_preserving(1e-10), "{ch} not trace preserving");
            assert_eq!(ch.kraus().len(), ch.kraus_len());
        }
    }

    #[test]
    fn kraus_masses_sum_to_one() {
        for ch in builtin_samples() {
            let total: f64 = ch.kraus_masses().iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "{ch} masses sum to {total}");
        }
    }

    #[test]
    fn bit_flip_matches_paper_example() {
        // Example 3: N₁ = √p·I, N₂ = √(1−p)·X.
        let p = 0.95;
        let ks = NoiseChannel::BitFlip { p }.kraus();
        assert!(ks[0].approx_eq(&Matrix::identity(2).scale(C64::real(p.sqrt())), 1e-12));
        let x = crate::gate::Gate::X
            .matrix()
            .scale(C64::real((1.0 - p).sqrt()));
        assert!(ks[1].approx_eq(&x, 1e-12));
    }

    #[test]
    fn superop_matrix_of_bit_flip() {
        // Example 4: M_N = p·I⊗I + (1−p)·X⊗X.
        let p = 0.7;
        let m = NoiseChannel::BitFlip { p }.superop_matrix();
        let expected = Matrix::identity(4).scale(C64::real(p)).add(
            &crate::gate::Gate::X
                .matrix()
                .kron(&crate::gate::Gate::X.matrix())
                .scale(C64::real(1.0 - p)),
        );
        assert!(m.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn superop_preserves_trace_vector() {
        // For any CPTP channel, the superoperator must fix the vectorized
        // identity from the left: Σₖ ⟨⟨I| K⊗K* = ⟨⟨I| (trace preservation).
        for ch in builtin_samples() {
            let m = ch.superop_matrix();
            let dim = 1usize << ch.arity();
            // Row vector v[(i·dim)+j] = δᵢⱼ (vectorized identity).
            let mut acc = vec![C64::ZERO; dim * dim];
            for r in 0..dim * dim {
                let (i, j) = (r / dim, r % dim);
                if i == j {
                    for (c, a) in acc.iter_mut().enumerate() {
                        *a += m[(r, c)];
                    }
                }
            }
            for (c, a) in acc.iter().enumerate() {
                let (i, j) = (c / dim, c % dim);
                let expected = if i == j { C64::ONE } else { C64::ZERO };
                assert!((*a - expected).abs() < 1e-10, "{ch} column {c}");
            }
        }
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(NoiseChannel::BitFlip { p: 1.5 }.validate().is_err());
        assert!(NoiseChannel::Depolarizing { p: -0.1 }.validate().is_err());
        assert!(NoiseChannel::Pauli {
            pi: 0.5,
            px: 0.2,
            py: 0.2,
            pz: 0.2
        }
        .validate()
        .is_err());
    }

    #[test]
    fn custom_kraus_validation() {
        let ok = NoiseChannel::custom("my_channel", NoiseChannel::BitFlip { p: 0.5 }.kraus());
        assert!(ok.is_ok());

        // X alone is not trace preserving at weight 0.5.
        let bad = NoiseChannel::custom(
            "broken",
            vec![crate::gate::Gate::X.matrix().scale(C64::real(0.5))],
        );
        assert!(matches!(bad, Err(CircuitError::NotTracePreserving { .. })));

        let empty = NoiseChannel::custom("empty", vec![]);
        assert!(matches!(empty, Err(CircuitError::MalformedKrausSet { .. })));
    }

    #[test]
    fn two_qubit_custom_channel() {
        // Two-qubit depolarizing-like channel from CX conjugation.
        let cx = crate::gate::Gate::Cx.matrix();
        let id4 = Matrix::identity(4);
        let ch = NoiseChannel::custom(
            "two_qubit_flip",
            vec![
                id4.scale(C64::real(0.9f64.sqrt())),
                cx.scale(C64::real(0.1f64.sqrt())),
            ],
        )
        .unwrap();
        assert_eq!(ch.arity(), 2);
        assert!(ch.is_trace_preserving(1e-10));
        assert_eq!(ch.superop_matrix().rows(), 16);
    }

    #[test]
    fn name_roundtrip() {
        for ch in builtin_samples() {
            let back = NoiseChannel::from_name(ch.name(), &ch.params()).expect("builtin");
            assert_eq!(back, ch);
        }
        assert_eq!(NoiseChannel::from_name("nonsense", &[]), None);
    }

    #[test]
    fn two_qubit_depolarizing_structure() {
        let ch = NoiseChannel::TwoQubitDepolarizing { p: 0.97 };
        assert_eq!(ch.arity(), 2);
        assert_eq!(ch.kraus().len(), 16);
        assert!(ch.is_trace_preserving(1e-10));
        let masses = ch.kraus_masses();
        assert!((masses[0] - 0.97).abs() < 1e-12);
        for m in &masses[1..] {
            assert!((m - 0.03 / 15.0).abs() < 1e-12);
        }
        assert_eq!(ch.superop_matrix().rows(), 16);
    }

    #[test]
    fn depolarizing_masses_match_convention() {
        let m = NoiseChannel::Depolarizing { p: 0.999 }.kraus_masses();
        assert!((m[0] - 0.999).abs() < 1e-12);
        for v in &m[1..] {
            assert!((v - 0.001 / 3.0).abs() < 1e-12);
        }
    }
}
