//! Error types for circuit construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced when building, transforming or parsing circuits.
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitError {
    /// A qubit index was at least the circuit width.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// The circuit width.
        n_qubits: usize,
    },
    /// The same qubit appeared twice in one instruction.
    DuplicateQubit {
        /// The repeated index.
        qubit: usize,
    },
    /// An operation was applied to the wrong number of qubits.
    ArityMismatch {
        /// What the operation expects.
        expected: usize,
        /// What was supplied.
        actual: usize,
    },
    /// Two circuits of different widths were combined.
    WidthMismatch {
        /// Width of the left circuit.
        left: usize,
        /// Width of the right circuit.
        right: usize,
    },
    /// An operation requiring a unitary circuit was applied to a noisy one.
    NotUnitary,
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A custom Kraus set failed the completeness check `Σ K†K = I`.
    NotTracePreserving {
        /// The largest deviation from the identity.
        deviation: f64,
    },
    /// A Kraus set was empty or had inconsistently shaped operators.
    MalformedKrausSet {
        /// Human-readable description.
        reason: String,
    },
    /// OpenQASM parsing failed.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit circuit")
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} appears more than once in one instruction")
            }
            CircuitError::ArityMismatch { expected, actual } => {
                write!(f, "operation expects {expected} qubit(s), got {actual}")
            }
            CircuitError::WidthMismatch { left, right } => {
                write!(f, "circuit widths differ: {left} vs {right}")
            }
            CircuitError::NotUnitary => {
                write!(f, "operation requires a noiseless (unitary) circuit")
            }
            CircuitError::InvalidProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            CircuitError::NotTracePreserving { deviation } => {
                write!(f, "kraus operators violate completeness by {deviation:.3e}")
            }
            CircuitError::MalformedKrausSet { reason } => {
                write!(f, "malformed kraus set: {reason}")
            }
            CircuitError::Parse { line, message } => {
                write!(f, "qasm parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 5,
            n_qubits: 3,
        };
        assert!(e.to_string().contains("qubit 5"));
        let e = CircuitError::Parse {
            line: 7,
            message: "unexpected token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(CircuitError::NotUnitary);
        assert!(!e.to_string().is_empty());
    }
}
