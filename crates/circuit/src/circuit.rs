//! The circuit container.

use crate::{
    error::CircuitError,
    gate::Gate,
    instruction::{Instruction, Operation},
    noise::NoiseChannel,
};
use std::fmt;

/// A (possibly noisy) quantum circuit: a fixed number of qubits and an
/// ordered list of [`Instruction`]s.
///
/// A circuit with no noise instructions represents a unitary; one with
/// noise instructions represents a super-operator whose Kraus decomposition
/// is the product set of the per-site Kraus choices (the paper's §IV-A).
///
/// # Example
///
/// ```
/// use qaec_circuit::{Circuit, Gate};
///
/// // Bell-pair preparation.
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.gate_count(), 2);
/// assert!(bell.is_unitary());
/// let inverse = bell.adjoint().unwrap();
/// assert_eq!(inverse.instructions()[0].as_gate(), Some(&Gate::Cx));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            instructions: Vec::new(),
        }
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The Hilbert-space dimension `d = 2^n`.
    pub fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Total number of instructions (gates + noise).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of unitary-gate instructions (the paper's `|G|`).
    pub fn gate_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_gate()).count()
    }

    /// Number of noise instructions (the paper's `k`).
    pub fn noise_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_noise()).count()
    }

    /// Whether the circuit contains no noise (represents a unitary).
    pub fn is_unitary(&self) -> bool {
        self.noise_count() == 0
    }

    /// The total number of Kraus selections
    /// `Π_k n_k` Algorithm I would enumerate. Saturates at `usize::MAX`.
    pub fn kraus_term_count(&self) -> usize {
        self.instructions
            .iter()
            .filter_map(Instruction::as_noise)
            .fold(1usize, |acc, n| acc.saturating_mul(n.kraus_len()))
    }

    fn check_qubits(&self, qubits: &[usize], arity: usize) -> Result<(), CircuitError> {
        if qubits.len() != arity {
            return Err(CircuitError::ArityMismatch {
                expected: arity,
                actual: qubits.len(),
            });
        }
        for (i, &q) in qubits.iter().enumerate() {
            if q >= self.n_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: self.n_qubits,
                });
            }
            if qubits[..i].contains(&q) {
                return Err(CircuitError::DuplicateQubit { qubit: q });
            }
        }
        Ok(())
    }

    /// Appends a gate, validating qubit indices.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ArityMismatch`], [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::DuplicateQubit`] on invalid arguments.
    pub fn try_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<&mut Self, CircuitError> {
        self.check_qubits(qubits, gate.arity())?;
        self.instructions.push(Instruction::gate(gate, qubits));
        Ok(self)
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, out-of-range or duplicate qubits; use
    /// [`Circuit::try_gate`] for a fallible version.
    pub fn gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.try_gate(gate, qubits)
            .unwrap_or_else(|e| panic!("invalid gate application: {e}"))
    }

    /// Appends a noise channel, validating parameters and qubit indices.
    ///
    /// # Errors
    ///
    /// As [`Circuit::try_gate`], plus
    /// [`CircuitError::InvalidProbability`] for bad channel parameters.
    pub fn try_noise(
        &mut self,
        channel: NoiseChannel,
        qubits: &[usize],
    ) -> Result<&mut Self, CircuitError> {
        channel.validate()?;
        self.check_qubits(qubits, channel.arity())?;
        self.instructions.push(Instruction::noise(channel, qubits));
        Ok(self)
    }

    /// Appends a noise channel.
    ///
    /// # Panics
    ///
    /// Panics on invalid channel parameters or qubit lists; use
    /// [`Circuit::try_noise`] for a fallible version.
    pub fn noise(&mut self, channel: NoiseChannel, qubits: &[usize]) -> &mut Self {
        self.try_noise(channel, qubits)
            .unwrap_or_else(|e| panic!("invalid noise application: {e}"))
    }

    /// Appends a raw instruction (already validated by the caller).
    pub(crate) fn push_unchecked(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    // Convenience builders for common gates. Each panics like
    // [`Circuit::gate`] on invalid qubit indices.

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, &[q])
    }
    /// Pauli X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, &[q])
    }
    /// Pauli Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }
    /// Pauli Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }
    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S, &[q])
    }
    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T, &[q])
    }
    /// `u1(λ)` phase on `q`.
    pub fn u1(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.gate(Gate::Phase(lambda), &[q])
    }
    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.gate(Gate::Cx, &[c, t])
    }
    /// Controlled-Z between `c` and `t`.
    pub fn cz(&mut self, c: usize, t: usize) -> &mut Self {
        self.gate(Gate::Cz, &[c, t])
    }
    /// Controlled-phase `cp(λ)` with control `c` and target `t`.
    pub fn cp(&mut self, lambda: f64, c: usize, t: usize) -> &mut Self {
        self.gate(Gate::Cp(lambda), &[c, t])
    }
    /// SWAP between `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }
    /// Toffoli with controls `c1`, `c2` and target `t`.
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.gate(Gate::Ccx, &[c1, c2, t])
    }

    /// Appends all instructions of `other` to `self`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WidthMismatch`] if the widths differ.
    pub fn append(&mut self, other: &Circuit) -> Result<&mut Self, CircuitError> {
        if self.n_qubits != other.n_qubits {
            return Err(CircuitError::WidthMismatch {
                left: self.n_qubits,
                right: other.n_qubits,
            });
        }
        self.instructions.extend(other.instructions.iter().cloned());
        Ok(self)
    }

    /// The concatenation `other ∘ self` (run `self` first) as a new circuit.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WidthMismatch`] if the widths differ.
    pub fn compose(&self, other: &Circuit) -> Result<Circuit, CircuitError> {
        let mut out = self.clone();
        out.append(other)?;
        Ok(out)
    }

    /// The adjoint circuit `C†`: every gate replaced by its adjoint, in
    /// reverse order.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NotUnitary`] if the circuit contains noise (the
    /// adjoint of a generic channel is not a channel).
    pub fn adjoint(&self) -> Result<Circuit, CircuitError> {
        if !self.is_unitary() {
            return Err(CircuitError::NotUnitary);
        }
        let mut out = Circuit::new(self.n_qubits);
        for instr in self.instructions.iter().rev() {
            let gate = instr.as_gate().expect("unitary circuit");
            out.push_unchecked(Instruction::gate(gate.adjoint(), instr.qubits.clone()));
        }
        Ok(out)
    }

    /// The circuit with qubits relabelled through `map` (qubit `q` of
    /// `self` becomes `map[q]`) on a target register of `new_width`
    /// qubits — the transformation a layout/mapping pass applies.
    ///
    /// # Errors
    ///
    /// [`CircuitError::QubitOutOfRange`] if `map` is shorter than the
    /// circuit width or maps outside `new_width`;
    /// [`CircuitError::DuplicateQubit`] if `map` is not injective on the
    /// used qubits.
    ///
    /// # Example
    ///
    /// ```
    /// use qaec_circuit::Circuit;
    /// let mut bell = Circuit::new(2);
    /// bell.h(0).cx(0, 1);
    /// let moved = bell.remap_qubits(&[2, 0], 3).unwrap();
    /// assert_eq!(moved.instructions()[1].qubits, vec![2, 0]);
    /// ```
    pub fn remap_qubits(&self, map: &[usize], new_width: usize) -> Result<Circuit, CircuitError> {
        if map.len() < self.n_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: map.len(),
                n_qubits: self.n_qubits,
            });
        }
        for (i, &m) in map.iter().enumerate() {
            if m >= new_width {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: m,
                    n_qubits: new_width,
                });
            }
            if map[..i].contains(&m) {
                return Err(CircuitError::DuplicateQubit { qubit: m });
            }
        }
        let mut out = Circuit::new(new_width);
        for instr in &self.instructions {
            let qubits: Vec<usize> = instr.qubits.iter().map(|&q| map[q]).collect();
            out.push_unchecked(Instruction {
                op: instr.op.clone(),
                qubits,
            });
        }
        Ok(out)
    }

    /// The ideal part: the same circuit with all noise removed.
    pub fn ideal(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            instructions: self
                .instructions
                .iter()
                .filter(|i| i.is_gate())
                .cloned()
                .collect(),
        }
    }

    /// Circuit depth: the longest chain of instructions over any qubit,
    /// where instructions on disjoint qubits may run in parallel.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        for instr in &self.instructions {
            let next = instr.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &instr.qubits {
                level[q] = next;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// An ASCII rendering of the circuit, one row per qubit.
    ///
    /// ```
    /// use qaec_circuit::Circuit;
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1);
    /// let art = c.draw();
    /// assert!(art.contains("[h]"));
    /// ```
    pub fn draw(&self) -> String {
        let mut rows: Vec<String> = (0..self.n_qubits).map(|q| format!("q{q}: ")).collect();
        let mut widths: Vec<usize> = rows.iter().map(|r| r.chars().count()).collect();
        let pad_to = |rows: &mut [String], widths: &mut [usize], target: usize, fill: char| {
            for (row, width) in rows.iter_mut().zip(widths.iter_mut()) {
                while *width < target {
                    row.push(fill);
                    *width += 1;
                }
            }
        };
        let base = widths.iter().copied().max().unwrap_or(0);
        pad_to(&mut rows, &mut widths, base, ' ');

        for instr in &self.instructions {
            let labels: Vec<String> = match &instr.op {
                Operation::Gate(Gate::Cx) => vec!["●".into(), "⊕".into()],
                Operation::Gate(Gate::Cz) => vec!["●".into(), "●".into()],
                Operation::Gate(Gate::Cp(l)) => vec!["●".into(), format!("P({l:.2})")],
                Operation::Gate(Gate::Swap) => vec!["x".into(), "x".into()],
                Operation::Gate(Gate::Ccx) => vec!["●".into(), "●".into(), "⊕".into()],
                Operation::Gate(Gate::Cswap) => vec!["●".into(), "x".into(), "x".into()],
                Operation::Gate(g) => instr.qubits.iter().map(|_| format!("[{g}]")).collect(),
                Operation::Noise(n) => instr
                    .qubits
                    .iter()
                    .map(|_| format!("{{{}}}", n.name()))
                    .collect(),
            };
            let column = labels.iter().map(|l| l.chars().count()).max().unwrap_or(1) + 1;
            let base = widths.iter().copied().max().unwrap_or(0);
            pad_to(&mut rows, &mut widths, base, '─');
            for (slot, &q) in instr.qubits.iter().enumerate() {
                rows[q].push_str(&labels[slot]);
                widths[q] += labels[slot].chars().count();
            }
            pad_to(&mut rows, &mut widths, base + column, '─');
        }
        rows.join("\n")
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} qubit(s), {} gate(s), {} noise site(s)",
            self.n_qubits,
            self.gate_count(),
            self.noise_count()
        )?;
        for instr in &self.instructions {
            writeln!(f, "  {instr}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    /// The paper's Fig. 2: noisy 2-qubit QFT.
    fn noisy_qft2(p: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0)
            .noise(NoiseChannel::BitFlip { p }, &[1])
            .cp(FRAC_PI_2, 1, 0)
            .noise(NoiseChannel::PhaseFlip { p }, &[0])
            .h(1)
            .swap(0, 1);
        c
    }

    #[test]
    fn counting() {
        let c = noisy_qft2(0.99);
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.dim(), 4);
        assert_eq!(c.len(), 6);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.noise_count(), 2);
        assert_eq!(c.kraus_term_count(), 4);
        assert!(!c.is_unitary());
        assert!(c.ideal().is_unitary());
        assert_eq!(c.ideal().len(), 4);
    }

    #[test]
    fn validation_errors() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.try_gate(Gate::H, &[5]),
            Err(CircuitError::QubitOutOfRange { qubit: 5, .. })
        ));
        assert!(matches!(
            c.try_gate(Gate::Cx, &[0]),
            Err(CircuitError::ArityMismatch { .. })
        ));
        assert!(matches!(
            c.try_gate(Gate::Cx, &[1, 1]),
            Err(CircuitError::DuplicateQubit { qubit: 1 })
        ));
        assert!(matches!(
            c.try_noise(NoiseChannel::BitFlip { p: 2.0 }, &[0]),
            Err(CircuitError::InvalidProbability { .. })
        ));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid gate application")]
    fn panicking_builder() {
        Circuit::new(1).cx(0, 1);
    }

    #[test]
    fn adjoint_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let adj = c.adjoint().unwrap();
        assert_eq!(adj.len(), 3);
        assert_eq!(adj.instructions()[0].as_gate(), Some(&Gate::Cx));
        assert_eq!(adj.instructions()[1].as_gate(), Some(&Gate::Sdg));
        assert_eq!(adj.instructions()[2].as_gate(), Some(&Gate::H));
    }

    #[test]
    fn adjoint_of_noisy_circuit_fails() {
        let c = noisy_qft2(0.9);
        assert_eq!(c.adjoint(), Err(CircuitError::NotUnitary));
        assert!(c.ideal().adjoint().is_ok());
    }

    #[test]
    fn compose_and_append() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        let ab = a.compose(&b).unwrap();
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.instructions()[1].as_gate(), Some(&Gate::Cx));

        let c3 = Circuit::new(3);
        assert!(matches!(
            a.compose(&c3),
            Err(CircuitError::WidthMismatch { left: 2, right: 3 })
        ));
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // all parallel → depth 1
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // depends on both → depth 2
        assert_eq!(c.depth(), 2);
        c.cx(1, 2); // chains → depth 3
        assert_eq!(c.depth(), 3);
        assert_eq!(Circuit::new(4).depth(), 0);
    }

    #[test]
    fn draw_contains_wires_and_gates() {
        let art = noisy_qft2(0.999).draw();
        assert!(art.contains("q0:"));
        assert!(art.contains("q1:"));
        assert!(art.contains("[h]"));
        assert!(art.contains("{bit_flip}"));
    }

    #[test]
    fn remap_qubits_relabels_and_validates() {
        let mut c = Circuit::new(2);
        c.h(0)
            .cx(0, 1)
            .noise(NoiseChannel::BitFlip { p: 0.9 }, &[1]);
        let moved = c.remap_qubits(&[3, 1], 4).unwrap();
        assert_eq!(moved.n_qubits(), 4);
        assert_eq!(moved.instructions()[0].qubits, vec![3]);
        assert_eq!(moved.instructions()[1].qubits, vec![3, 1]);
        assert_eq!(moved.instructions()[2].qubits, vec![1]);
        assert_eq!(moved.noise_count(), 1);

        assert!(matches!(
            c.remap_qubits(&[0], 2),
            Err(CircuitError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            c.remap_qubits(&[0, 5], 3),
            Err(CircuitError::QubitOutOfRange { qubit: 5, .. })
        ));
        assert!(matches!(
            c.remap_qubits(&[1, 1], 3),
            Err(CircuitError::DuplicateQubit { qubit: 1 })
        ));
    }

    #[test]
    fn kraus_term_count_multiplies() {
        let mut c = Circuit::new(1);
        for _ in 0..3 {
            c.noise(NoiseChannel::Depolarizing { p: 0.999 }, &[0]);
        }
        assert_eq!(c.kraus_term_count(), 64); // 4³
    }

    #[test]
    fn display_lists_instructions() {
        let text = noisy_qft2(0.9).to_string();
        assert!(text.contains("2 qubit(s), 4 gate(s), 2 noise site(s)"));
        assert!(text.contains("cp"));
    }
}
