//! Circuit instructions: an operation applied to specific qubits.

use crate::{gate::Gate, noise::NoiseChannel};
use qaec_math::Matrix;
use std::fmt;

/// The payload of an instruction: either a unitary gate or a noise channel.
#[derive(Clone, Debug, PartialEq)]
pub enum Operation {
    /// A unitary gate.
    Gate(Gate),
    /// A CPTP noise channel.
    Noise(NoiseChannel),
}

impl Operation {
    /// Number of qubits the operation acts on.
    pub fn arity(&self) -> usize {
        match self {
            Operation::Gate(g) => g.arity(),
            Operation::Noise(n) => n.arity(),
        }
    }

    /// Whether this is a unitary gate.
    pub fn is_gate(&self) -> bool {
        matches!(self, Operation::Gate(_))
    }

    /// Whether this is a noise channel.
    pub fn is_noise(&self) -> bool {
        matches!(self, Operation::Noise(_))
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Gate(g) => write!(f, "{g}"),
            Operation::Noise(n) => write!(f, "noise:{n}"),
        }
    }
}

/// One step of a circuit: an [`Operation`] applied to an ordered list of
/// qubits.
///
/// The qubit order matters for non-symmetric gates: for [`Gate::Cx`] the
/// first listed qubit is the control.
#[derive(Clone, Debug, PartialEq)]
pub struct Instruction {
    /// What is applied.
    pub op: Operation,
    /// Which qubits it is applied to, in gate-matrix (big-endian) order.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates a gate instruction.
    pub fn gate(gate: Gate, qubits: impl Into<Vec<usize>>) -> Self {
        Instruction {
            op: Operation::Gate(gate),
            qubits: qubits.into(),
        }
    }

    /// Creates a noise instruction.
    pub fn noise(channel: NoiseChannel, qubits: impl Into<Vec<usize>>) -> Self {
        Instruction {
            op: Operation::Noise(channel),
            qubits: qubits.into(),
        }
    }

    /// Whether this instruction is a unitary gate.
    pub fn is_gate(&self) -> bool {
        self.op.is_gate()
    }

    /// Whether this instruction is a noise channel.
    pub fn is_noise(&self) -> bool {
        self.op.is_noise()
    }

    /// The gate, if this is a gate instruction.
    pub fn as_gate(&self) -> Option<&Gate> {
        match &self.op {
            Operation::Gate(g) => Some(g),
            Operation::Noise(_) => None,
        }
    }

    /// The channel, if this is a noise instruction.
    pub fn as_noise(&self) -> Option<&NoiseChannel> {
        match &self.op {
            Operation::Gate(_) => None,
            Operation::Noise(n) => Some(n),
        }
    }

    /// The unitary matrix, if this is a gate instruction.
    pub fn gate_matrix(&self) -> Option<Matrix> {
        self.as_gate().map(Gate::matrix)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, "{} {}", self.op, qs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let g = Instruction::gate(Gate::H, vec![0]);
        assert!(g.is_gate() && !g.is_noise());
        assert_eq!(g.as_gate(), Some(&Gate::H));
        assert!(g.as_noise().is_none());
        assert!(g.gate_matrix().unwrap().is_unitary(1e-12));

        let n = Instruction::noise(NoiseChannel::BitFlip { p: 0.9 }, vec![1]);
        assert!(n.is_noise() && !n.is_gate());
        assert!(n.as_gate().is_none());
        assert!(n.gate_matrix().is_none());
    }

    #[test]
    fn display() {
        let g = Instruction::gate(Gate::Cx, vec![0, 2]);
        assert_eq!(g.to_string(), "cx q[0], q[2]");
        let n = Instruction::noise(NoiseChannel::Depolarizing { p: 0.999 }, vec![1]);
        assert!(n.to_string().contains("depolarizing"));
    }

    #[test]
    fn arity_passthrough() {
        assert_eq!(Operation::Gate(Gate::Ccx).arity(), 3);
        assert_eq!(
            Operation::Noise(NoiseChannel::PhaseFlip { p: 0.5 }).arity(),
            1
        );
    }
}
