//! OpenQASM 2 emitter.

use crate::{Circuit, Operation};
use std::fmt::Write as _;

/// Serializes a circuit to OpenQASM 2 source.
///
/// Gates become standard statements; noise instructions become
/// `// qaec.noise:` directives that [`super::parse`] understands and other
/// tools ignore. Parameters are printed with full `f64` round-trip
/// precision.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for instr in circuit.iter() {
        let qubits: Vec<String> = instr.qubits.iter().map(|q| format!("q[{q}]")).collect();
        match &instr.op {
            Operation::Gate(g) => {
                let params = g.params();
                if params.is_empty() {
                    let _ = writeln!(out, "{} {};", g.name(), qubits.join(", "));
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format!("{p:?}")).collect();
                    let _ = writeln!(
                        out,
                        "{}({}) {};",
                        g.name(),
                        rendered.join(", "),
                        qubits.join(", ")
                    );
                }
            }
            Operation::Noise(n) => {
                let params = n.params();
                if params.is_empty() {
                    let _ = writeln!(out, "// qaec.noise: {} {};", n.name(), qubits.join(", "));
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format!("{p:?}")).collect();
                    let _ = writeln!(
                        out,
                        "// qaec.noise: {}({}) {};",
                        n.name(),
                        rendered.join(", "),
                        qubits.join(", ")
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;
    use crate::generators::{qft, quantum_volume, QftStyle};
    use crate::noise_insertion::insert_random_noise;
    use crate::NoiseChannel;

    #[test]
    fn roundtrip_ideal() {
        for c in [
            qft(3, QftStyle::Textbook),
            qft(4, QftStyle::DecomposedNoSwaps),
            quantum_volume(4, 2, 17),
        ] {
            let text = write(&c);
            let back = parse(&text).expect("reparse");
            assert_eq!(back.n_qubits(), c.n_qubits());
            assert_eq!(back.len(), c.len());
            // Gates must round-trip with full parameter precision.
            for (a, b) in back.iter().zip(c.iter()) {
                assert_eq!(a.qubits, b.qubits);
                match (a.as_gate(), b.as_gate()) {
                    (Some(x), Some(y)) => assert!(x.approx_eq(y, 0.0), "{x} vs {y}"),
                    _ => panic!("instruction kind changed"),
                }
            }
        }
    }

    #[test]
    fn roundtrip_noisy() {
        let ideal = qft(3, QftStyle::DecomposedNoSwaps);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 4, 11);
        let text = write(&noisy);
        assert!(text.contains("qaec.noise: depolarizing"));
        let back = parse(&text).expect("reparse");
        assert_eq!(back, noisy);
    }

    #[test]
    fn header_present() {
        let c = Circuit::new(2);
        let text = write(&c);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[2];"));
    }
}
