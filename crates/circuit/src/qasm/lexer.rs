//! Tokenizer for the OpenQASM 2 subset.

use crate::error::CircuitError;

/// A lexical token with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword (`qreg`, `h`, `pi`, ...).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (without quotes), e.g. include paths.
    Str(String),
    /// Single-character punctuation: `; , ( ) [ ] + - * / { }`.
    Sym(char),
    /// `->` in measure statements.
    Arrow,
    /// Body of a `// qaec.noise:` directive (raw text, re-lexed by the
    /// parser).
    NoiseDirective(String),
}

/// Splits source text into tokens, turning `// qaec.noise:` comments into
/// [`TokenKind::NoiseDirective`] and dropping all other comments.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, CircuitError> {
    let mut tokens = Vec::new();
    for (line_no, raw_line) in src.lines().enumerate() {
        let line = line_no + 1;
        let mut rest = raw_line;
        // Handle a trailing comment (one per line is enough for QASM 2).
        if let Some(pos) = rest.find("//") {
            let comment = rest[pos + 2..].trim();
            rest = &rest[..pos];
            if let Some(body) = comment.strip_prefix("qaec.noise:") {
                tokens.push(Token {
                    kind: TokenKind::NoiseDirective(body.trim().to_string()),
                    line,
                });
            }
        }
        tokenize_line(rest, line, &mut tokens)?;
    }
    Ok(tokens)
}

fn tokenize_line(text: &str, line: usize, out: &mut Vec<Token>) -> Result<(), CircuitError> {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' | ',' | '(' | ')' | '[' | ']' | '{' | '}' | '+' | '*' | '/' => {
                out.push(Token {
                    kind: TokenKind::Sym(c),
                    line,
                });
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token {
                        kind: TokenKind::Arrow,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Sym('-'),
                        line,
                    });
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(CircuitError::Parse {
                        line,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Str(text[start..j].to_string()),
                    line,
                });
                i = j + 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut j = i;
                let mut seen_exp = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() || d == '.' {
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !seen_exp {
                        seen_exp = true;
                        j += 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let lit = &text[start..j];
                let value = lit.parse::<f64>().map_err(|_| CircuitError::Parse {
                    line,
                    message: format!("bad numeric literal `{lit}`"),
                })?;
                out.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(text[start..j].to_string()),
                    line,
                });
                i = j;
            }
            other => {
                return Err(CircuitError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("h q[0];").unwrap();
        let kinds: Vec<_> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("h".into()),
                TokenKind::Ident("q".into()),
                TokenKind::Sym('['),
                TokenKind::Number(0.0),
                TokenKind::Sym(']'),
                TokenKind::Sym(';'),
            ]
        );
    }

    #[test]
    fn numbers_and_exponents() {
        let toks = tokenize("1.5 2e-3 0.25").unwrap();
        let nums: Vec<f64> = toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Number(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![1.5, 2e-3, 0.25]);
    }

    #[test]
    fn comments_are_dropped_but_directives_kept() {
        let toks =
            tokenize("x q[0]; // plain comment\n// qaec.noise: bit_flip(0.9) q[0];").unwrap();
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::NoiseDirective(s) if s.contains("bit_flip"))));
        // The plain comment produced nothing.
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokenKind::NoiseDirective(_)))
                .count(),
            1
        );
    }

    #[test]
    fn arrow_and_string() {
        let toks = tokenize("measure q[0] -> c[0]; include \"qelib1.inc\";").unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::Arrow));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str("qelib1.inc".into())));
    }

    #[test]
    fn line_numbers_track_source() {
        let toks = tokenize("h q[0];\nx q[1];").unwrap();
        assert_eq!(toks.first().unwrap().line, 1);
        assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn bad_character_reports_line() {
        let err = tokenize("h q[0];\n$").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 2, .. }));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("include \"oops;").is_err());
    }
}
