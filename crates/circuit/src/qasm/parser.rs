//! Recursive-descent parser for the OpenQASM 2 subset.

use super::lexer::{tokenize, Token, TokenKind};
use crate::{error::CircuitError, Circuit, Gate, NoiseChannel};
use std::collections::HashMap;
use std::f64::consts::PI;

/// Parses OpenQASM 2 source into a [`Circuit`].
///
/// Multiple quantum registers are flattened into one qubit index space in
/// declaration order. Classical registers, `measure` and `barrier` are
/// accepted and ignored. `// qaec.noise:` directives become noise
/// instructions (see the [module docs](super)).
///
/// # Errors
///
/// [`CircuitError::Parse`] with a line number on any lexical or syntactic
/// problem, unknown gate, undeclared register or out-of-range index.
pub fn parse(src: &str) -> Result<Circuit, CircuitError> {
    let tokens = tokenize(src)?;
    Parser {
        tokens,
        pos: 0,
        regs: HashMap::new(),
        n_qubits: 0,
        circuit: None,
    }
    .run()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// quantum register name → (offset, size)
    regs: HashMap<String, (usize, usize)>,
    n_qubits: usize,
    circuit: Option<Circuit>,
}

impl Parser {
    fn run(mut self) -> Result<Circuit, CircuitError> {
        // Optional OPENQASM header.
        if self.peek_ident() == Some("OPENQASM") {
            self.next();
            self.expect_number()?;
            self.expect_sym(';')?;
        }
        while self.pos < self.tokens.len() {
            self.statement()?;
        }
        Ok(self.circuit.unwrap_or_else(|| Circuit::new(self.n_qubits)))
    }

    fn error(&self, message: impl Into<String>) -> CircuitError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line);
        CircuitError::Parse {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), CircuitError> {
        match self.next() {
            Some(TokenKind::Sym(s)) if s == c => Ok(()),
            other => Err(self.error(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64, CircuitError> {
        match self.next() {
            Some(TokenKind::Number(v)) => Ok(v),
            other => Err(self.error(format!("expected a number, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, CircuitError> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected an identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<(), CircuitError> {
        if let Some(TokenKind::NoiseDirective(body)) = self.peek() {
            let body = body.clone();
            self.next();
            return self.noise_directive(&body);
        }
        let name = self.expect_ident()?;
        match name.as_str() {
            "include" => {
                match self.next() {
                    Some(TokenKind::Str(_)) => {}
                    other => {
                        return Err(self.error(format!("expected include path, found {other:?}")))
                    }
                }
                self.expect_sym(';')
            }
            "qreg" => {
                let reg = self.expect_ident()?;
                self.expect_sym('[')?;
                let size = self.expect_number()? as usize;
                self.expect_sym(']')?;
                self.expect_sym(';')?;
                if self.circuit.is_some() {
                    return Err(self.error("qreg must precede gate applications"));
                }
                self.regs.insert(reg, (self.n_qubits, size));
                self.n_qubits += size;
                Ok(())
            }
            "creg" => {
                self.expect_ident()?;
                self.expect_sym('[')?;
                self.expect_number()?;
                self.expect_sym(']')?;
                self.expect_sym(';')
            }
            "barrier" => {
                // Skip to the terminating semicolon.
                while !matches!(self.peek(), Some(TokenKind::Sym(';')) | None) {
                    self.next();
                }
                self.expect_sym(';')
            }
            "measure" => {
                self.argument()?; // quantum
                match self.next() {
                    Some(TokenKind::Arrow) => {}
                    other => return Err(self.error(format!("expected `->`, found {other:?}"))),
                }
                // Classical target: ident[idx] — parse loosely.
                self.expect_ident()?;
                if matches!(self.peek(), Some(TokenKind::Sym('['))) {
                    self.next();
                    self.expect_number()?;
                    self.expect_sym(']')?;
                }
                self.expect_sym(';')
            }
            gate_name => self.gate_call(gate_name),
        }
    }

    /// `name [ (params) ] arg {, arg} ;`
    fn gate_call(&mut self, name: &str) -> Result<(), CircuitError> {
        let params = if matches!(self.peek(), Some(TokenKind::Sym('('))) {
            self.next();
            let p = self.expr_list()?;
            self.expect_sym(')')?;
            p
        } else {
            Vec::new()
        };
        let gate = Gate::from_name(name, &params).ok_or_else(|| {
            self.error(format!(
                "unknown gate `{name}` with {} parameter(s)",
                params.len()
            ))
        })?;
        let args = self.argument_list()?;
        self.expect_sym(';')?;
        let circuit = self.circuit_mut()?;

        // Whole-register broadcast for single-qubit gates.
        if gate.arity() == 1 && args.len() == 1 {
            match args[0] {
                Arg::Single(q) => {
                    circuit.try_gate(gate, &[q])?;
                }
                Arg::Register(offset, size) => {
                    for q in offset..offset + size {
                        circuit.try_gate(gate, &[q])?;
                    }
                }
            }
            return Ok(());
        }

        let mut qs = Vec::with_capacity(args.len());
        for a in &args {
            match *a {
                Arg::Single(q) => qs.push(q),
                Arg::Register(..) => {
                    return Err(self.error("register broadcast only supported for 1-qubit gates"))
                }
            }
        }
        if qs.len() != gate.arity() {
            return Err(self.error(format!(
                "gate `{name}` expects {} qubit(s), got {}",
                gate.arity(),
                qs.len()
            )));
        }
        circuit.try_gate(gate, &qs)?;
        Ok(())
    }

    fn circuit_mut(&mut self) -> Result<&mut Circuit, CircuitError> {
        if self.circuit.is_none() {
            if self.n_qubits == 0 {
                return Err(self.error("gate application before any qreg declaration"));
            }
            self.circuit = Some(Circuit::new(self.n_qubits));
        }
        Ok(self.circuit.as_mut().expect("just created"))
    }

    fn argument_list(&mut self) -> Result<Vec<Arg>, CircuitError> {
        let mut args = vec![self.argument()?];
        while matches!(self.peek(), Some(TokenKind::Sym(','))) {
            self.next();
            args.push(self.argument()?);
        }
        Ok(args)
    }

    fn argument(&mut self) -> Result<Arg, CircuitError> {
        let reg = self.expect_ident()?;
        let &(offset, size) = self
            .regs
            .get(&reg)
            .ok_or_else(|| self.error(format!("undeclared register `{reg}`")))?;
        if matches!(self.peek(), Some(TokenKind::Sym('['))) {
            self.next();
            let idx = self.expect_number()? as usize;
            self.expect_sym(']')?;
            if idx >= size {
                return Err(self.error(format!("index {idx} out of range for `{reg}[{size}]`")));
            }
            Ok(Arg::Single(offset + idx))
        } else {
            Ok(Arg::Register(offset, size))
        }
    }

    fn expr_list(&mut self) -> Result<Vec<f64>, CircuitError> {
        let mut out = vec![self.expr()?];
        while matches!(self.peek(), Some(TokenKind::Sym(','))) {
            self.next();
            out.push(self.expr()?);
        }
        Ok(out)
    }

    /// expr := term { (+|-) term }
    fn expr(&mut self) -> Result<f64, CircuitError> {
        let mut value = self.term()?;
        loop {
            match self.peek() {
                Some(TokenKind::Sym('+')) => {
                    self.next();
                    value += self.term()?;
                }
                Some(TokenKind::Sym('-')) => {
                    self.next();
                    value -= self.term()?;
                }
                _ => return Ok(value),
            }
        }
    }

    /// term := factor { (*|/) factor }
    fn term(&mut self) -> Result<f64, CircuitError> {
        let mut value = self.factor()?;
        loop {
            match self.peek() {
                Some(TokenKind::Sym('*')) => {
                    self.next();
                    value *= self.factor()?;
                }
                Some(TokenKind::Sym('/')) => {
                    self.next();
                    value /= self.factor()?;
                }
                _ => return Ok(value),
            }
        }
    }

    /// factor := number | pi | -factor | ( expr )
    fn factor(&mut self) -> Result<f64, CircuitError> {
        match self.next() {
            Some(TokenKind::Number(v)) => Ok(v),
            Some(TokenKind::Ident(s)) if s == "pi" => Ok(PI),
            Some(TokenKind::Sym('-')) => Ok(-self.factor()?),
            Some(TokenKind::Sym('(')) => {
                let v = self.expr()?;
                self.expect_sym(')')?;
                Ok(v)
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    /// `channel(params) q[i];` re-lexed from a directive comment body.
    fn noise_directive(&mut self, body: &str) -> Result<(), CircuitError> {
        let inner_tokens = tokenize(body)?;
        let saved = std::mem::replace(&mut self.tokens, inner_tokens);
        let saved_pos = std::mem::replace(&mut self.pos, 0);

        let result = (|| {
            let name = self.expect_ident()?;
            let params = if matches!(self.peek(), Some(TokenKind::Sym('('))) {
                self.next();
                let p = self.expr_list()?;
                self.expect_sym(')')?;
                p
            } else {
                Vec::new()
            };
            let channel = NoiseChannel::from_name(&name, &params)
                .ok_or_else(|| self.error(format!("unknown noise channel `{name}`")))?;
            let args = self.argument_list()?;
            if matches!(self.peek(), Some(TokenKind::Sym(';'))) {
                self.next();
            }
            let mut qs = Vec::new();
            for a in &args {
                match *a {
                    Arg::Single(q) => qs.push(q),
                    Arg::Register(..) => {
                        return Err(self.error("noise directives need indexed qubits"))
                    }
                }
            }
            Ok((channel, qs))
        })();

        self.tokens = saved;
        self.pos = saved_pos;
        let (channel, qs) = result?;
        let circuit = self.circuit_mut()?;
        circuit
            .try_noise(channel, &qs)
            .map_err(|e| CircuitError::Parse {
                line: 0,
                message: format!("invalid noise directive: {e}"),
            })?;
        Ok(())
    }
}

enum Arg {
    Single(usize),
    Register(usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_program() {
        let c = parse("OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];").unwrap();
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.instructions()[1].as_gate(), Some(&Gate::Cx));
    }

    #[test]
    fn parameter_expressions() {
        let c = parse("qreg q[1]; u1(pi/2) q[0]; rz(-pi) q[0]; u3(pi/4, 0.5*2, (1+1)/4) q[0];")
            .unwrap();
        let g0 = c.instructions()[0].as_gate().unwrap();
        assert!((g0.params()[0] - PI / 2.0).abs() < 1e-12);
        let g1 = c.instructions()[1].as_gate().unwrap();
        assert!((g1.params()[0] + PI).abs() < 1e-12);
        let g2 = c.instructions()[2].as_gate().unwrap();
        assert!((g2.params()[1] - 1.0).abs() < 1e-12);
        assert!((g2.params()[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn register_broadcast() {
        let c = parse("qreg q[3]; h q;").unwrap();
        assert_eq!(c.gate_count(), 3);
        assert!(c.iter().all(|i| i.as_gate() == Some(&Gate::H)));
    }

    #[test]
    fn multiple_registers_flatten() {
        let c = parse("qreg a[2]; qreg b[1]; cx a[1], b[0];").unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.instructions()[0].qubits, vec![1, 2]);
    }

    #[test]
    fn measure_and_barrier_ignored() {
        let c = parse(
            "qreg q[2]; creg c[2]; h q[0]; barrier q[0], q[1]; measure q[0] -> c[0]; measure q[1] -> c[1];",
        )
        .unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn noise_directive_parses() {
        let c = parse("qreg q[2];\nh q[0];\n// qaec.noise: depolarizing(0.999) q[1];\nx q[1];")
            .unwrap();
        assert_eq!(c.noise_count(), 1);
        assert_eq!(
            c.instructions()[1].as_noise(),
            Some(&NoiseChannel::Depolarizing { p: 0.999 })
        );
        // Order preserved: h, noise, x.
        assert!(c.instructions()[2].is_gate());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("qreg q[1];\nbogus q[0];").unwrap_err();
        match err {
            CircuitError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn out_of_range_and_undeclared() {
        assert!(parse("qreg q[1]; h q[3];").is_err());
        assert!(parse("qreg q[1]; h r[0];").is_err());
        assert!(parse("h q[0];").is_err()); // gate before qreg
    }

    #[test]
    fn arity_mismatch_detected() {
        assert!(parse("qreg q[2]; cx q[0];").is_err());
        assert!(parse("qreg q[2]; cx q;").is_err());
    }

    #[test]
    fn bad_noise_directives_rejected() {
        // Unknown channel name.
        assert!(parse("qreg q[1];\n// qaec.noise: gamma_ray(0.5) q[0];").is_err());
        // Register broadcast is not allowed in directives.
        assert!(parse("qreg q[2];\n// qaec.noise: bit_flip(0.9) q;").is_err());
        // Invalid probability is caught by channel validation.
        assert!(parse("qreg q[1];\n// qaec.noise: bit_flip(1.5) q[0];").is_err());
        // Out-of-range qubit.
        assert!(parse("qreg q[1];\n// qaec.noise: bit_flip(0.9) q[4];").is_err());
    }

    #[test]
    fn two_qubit_noise_directive() {
        let c =
            parse("qreg q[2];\nh q[0];\n// qaec.noise: two_qubit_depolarizing(0.99) q[0], q[1];")
                .unwrap();
        assert_eq!(c.noise_count(), 1);
        let instr = &c.instructions()[1];
        assert_eq!(instr.qubits, vec![0, 1]);
    }
}
