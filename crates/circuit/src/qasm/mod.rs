//! OpenQASM 2 subset reader and writer.
//!
//! Supports the statements the benchmark suite needs: `OPENQASM 2.0`,
//! `include`, `qreg`/`creg`, applications of the built-in gate set (with
//! parameter expressions over `pi`, `+ - * /` and parentheses), `barrier`
//! and `measure` (both ignored), and whole-register broadcast of
//! single-qubit gates.
//!
//! Noisy circuits round-trip through a comment directive extension:
//!
//! ```text
//! // qaec.noise: depolarizing(0.999) q[2];
//! ```
//!
//! which standard OpenQASM tools simply ignore.
//!
//! # Example
//!
//! ```
//! use qaec_circuit::qasm;
//!
//! let src = r#"
//! OPENQASM 2.0;
//! include "qelib1.inc";
//! qreg q[2];
//! h q[0];
//! // qaec.noise: bit_flip(0.999) q[1];
//! cp(pi/2) q[1], q[0];
//! "#;
//! let circuit = qasm::parse(src)?;
//! assert_eq!(circuit.gate_count(), 2);
//! assert_eq!(circuit.noise_count(), 1);
//! let text = qasm::write(&circuit);
//! assert_eq!(qasm::parse(&text)?, circuit);
//! # Ok::<(), qaec_circuit::CircuitError>(())
//! ```

mod lexer;
mod parser;
mod writer;

pub use parser::parse;
pub use writer::write;
