//! Tiled ("simultaneous") circuits: independent copies of one block on
//! disjoint qubit ranges.
//!
//! Real devices are characterised by running the same sub-circuit on
//! many qubit blocks at once (simultaneous randomized benchmarking,
//! cross-talk studies), and the resulting verification workload is a
//! tensor product of independent blocks. For the checker this is the
//! natural stress test of *plan-level* parallelism: the doubled trace
//! network decomposes into one independent component per block, so the
//! contraction DAG has `copies` equally-heavy branches for the scheduler
//! to run concurrently.

use crate::circuit::Circuit;

/// `copies` disjoint copies of `block`, stacked on
/// `copies · block.n_qubits()` qubits: copy `c` acts on qubits
/// `c·w .. (c+1)·w` where `w` is the block width. Noise instructions are
/// tiled along with the gates.
///
/// # Panics
///
/// Panics if `copies == 0`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::{qft, tile, QftStyle};
///
/// let block = qft(3, QftStyle::DecomposedNoSwaps);
/// let simultaneous = tile(&block, 4);
/// assert_eq!(simultaneous.n_qubits(), 12);
/// assert_eq!(simultaneous.gate_count(), 4 * block.gate_count());
/// ```
pub fn tile(block: &Circuit, copies: usize) -> Circuit {
    assert!(copies > 0, "tiling needs at least one copy");
    let w = block.n_qubits();
    let width = w * copies;
    let mut out = Circuit::new(width);
    for c in 0..copies {
        let map: Vec<usize> = (0..w).map(|q| q + c * w).collect();
        let shifted = block
            .remap_qubits(&map, width)
            .expect("disjoint tile ranges are always valid");
        out.append(&shifted).expect("tiles share the full width");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{qft, QftStyle};
    use crate::NoiseChannel;

    #[test]
    fn tiles_are_disjoint_and_complete() {
        let mut block = qft(2, QftStyle::DecomposedNoSwaps);
        block.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
        let tiled = tile(&block, 3);
        assert_eq!(tiled.n_qubits(), 6);
        assert_eq!(tiled.gate_count(), 3 * block.gate_count());
        assert_eq!(tiled.noise_count(), 3);
        // Copy c touches only its own 2-qubit range.
        for (i, instruction) in tiled.iter().enumerate() {
            let copy = i / block.len();
            for &q in &instruction.qubits {
                assert_eq!(
                    q / 2,
                    copy,
                    "instruction {i} strays outside tile {copy}: qubit {q}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn zero_copies_rejected() {
        tile(&Circuit::new(1), 0);
    }
}
