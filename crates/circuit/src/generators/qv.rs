//! Quantum-volume style circuits.

use crate::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// A quantum-volume model circuit `qv n{n}d{depth}` (Moll et al. 2018, as
/// used in the paper's benchmark suite).
///
/// Each of the `depth` layers applies a random qubit permutation and a
/// two-qubit block on each adjacent pair of the permuted order. Every
/// block is emitted as 10 gates — `u3 a; u3 b; cx; u3 a; u3 b; cx; u3 a;
/// u3 b; cx; u3 a` — so the total gate count is `depth · ⌊n/2⌋ · 10`,
/// matching the `|G|` column of the paper's Table I (e.g. `qv n5d5` =
/// 100 gates).
///
/// The construction is fully determined by `seed`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::quantum_volume;
/// let c = quantum_volume(5, 5, 42);
/// assert_eq!(c.gate_count(), 100);
/// assert_eq!(c, quantum_volume(5, 5, 42)); // deterministic
/// ```
pub fn quantum_volume(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        // Fisher–Yates permutation of the qubits.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for pair in perm.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            let mut u3 = |c: &mut Circuit, q: usize| {
                let theta = rng.gen_range(0.0..PI);
                let phi = rng.gen_range(0.0..2.0 * PI);
                let lambda = rng.gen_range(0.0..2.0 * PI);
                c.gate(Gate::U3(theta, phi, lambda), &[q]);
            };
            // 3-CX SU(4) template with interleaved single-qubit layers.
            u3(&mut c, a);
            u3(&mut c, b);
            c.cx(a, b);
            u3(&mut c, a);
            u3(&mut c, b);
            c.cx(a, b);
            u3(&mut c, a);
            u3(&mut c, b);
            c.cx(a, b);
            u3(&mut c, a);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_count_formula() {
        for (n, depth) in [(3, 5), (5, 5), (6, 5), (7, 5), (9, 5), (4, 2)] {
            let c = quantum_volume(n, depth, 7);
            assert_eq!(c.gate_count(), depth * (n / 2) * 10, "qv n{n}d{depth}");
            assert_eq!(c.n_qubits(), n);
            assert!(c.is_unitary());
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        assert_eq!(quantum_volume(4, 3, 1), quantum_volume(4, 3, 1));
        assert_ne!(quantum_volume(4, 3, 1), quantum_volume(4, 3, 2));
    }

    #[test]
    fn blocks_touch_distinct_pairs_within_layer() {
        let c = quantum_volume(6, 1, 3);
        // One layer on 6 qubits: 3 blocks covering all 6 qubits exactly once.
        let mut touched = [0usize; 6];
        for instr in c.iter() {
            for &q in &instr.qubits {
                touched[q] += 1;
            }
        }
        // Each block: 7 u3 (one qubit each) + 3 cx (two qubits each)
        // = 13 touches over 2 qubits; with the 4/3-u3 split per qubit the
        // total per qubit is 6 or 7.
        for (q, t) in touched.iter().enumerate() {
            assert!(*t == 6 || *t == 7, "qubit {q} touched {t} times");
        }
    }
}
