//! The `7x1mod15` modular-multiplication benchmark.

use crate::Circuit;

/// The `7x1mod15` circuit of the paper's Table I: a controlled modular
/// multiplier `|c⟩|x⟩ ↦ |c⟩|7·x mod 15⟩` (for `c = 1`) over a 4-bit
/// register, as it appears in Shor's algorithm for factoring 15.
///
/// Layout (5 qubits, 14 gates):
///
/// * qubit 0 — control;
/// * qubits 1–4 — the register, big-endian (`q1` = bit 3 = MSB);
/// * `X q4` prepares the register in `|0001⟩ = |1⟩`;
/// * multiplication by 7 mod 15 as the permutation
///   `swap(3,4)·swap(2,3)·swap(1,2)` (bit rotation = ×2... composed twice
///   with the final complement), each swap controlled on `q0` and emitted
///   as the 3-gate network `cx(b,a)·ccx(c,a,b)·cx(b,a)`;
/// * four `cx(q0, qᵢ)` implementing the controlled complement
///   (×(−1) mod 15).
///
/// Gate count: 1 + 3·3 + 4 = 14, matching the paper.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::mod_mul_7x1_mod15;
/// let c = mod_mul_7x1_mod15();
/// assert_eq!((c.n_qubits(), c.gate_count()), (5, 14));
/// ```
pub fn mod_mul_7x1_mod15() -> Circuit {
    let mut c = Circuit::new(5);
    // |x⟩ = |1⟩.
    c.x(4);
    // Controlled swaps: (q3,q4), (q2,q3), (q1,q2), each as cx·ccx·cx.
    for (a, b) in [(3usize, 4usize), (2, 3), (1, 2)] {
        c.cx(b, a);
        c.ccx(0, a, b);
        c.cx(b, a);
    }
    // Controlled complement of the register.
    for q in 1..=4 {
        c.cx(0, q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::unitary_of;
    use qaec_math::C64;

    #[test]
    fn size() {
        let c = mod_mul_7x1_mod15();
        assert_eq!(c.n_qubits(), 5);
        assert_eq!(c.gate_count(), 14);
        assert!(c.is_unitary());
    }

    /// With the control ON, the circuit must send register value `x` to
    /// `7·x mod 15` for all x in 0..15 (the permutation branch), starting
    /// from the prepared |1⟩ it must produce |7⟩.
    #[test]
    fn maps_one_to_seven_when_controlled() {
        let c = mod_mul_7x1_mod15();
        let u = unitary_of(&c);
        // Input: control=1, register=0 → basis index 0b10000 = 16.
        // The initial X q4 prepares register |0001⟩, then ×7 → |0111⟩.
        let input = 0b1_0000usize;
        let expected = 0b1_0111usize; // control=1, register=7
        assert!(
            (u[(expected, input)].abs() - 1.0).abs() < 1e-10,
            "|c=1,x=0⟩ should map to |c=1, 7⟩"
        );
    }

    /// With the control OFF the register is only prepared, not multiplied.
    #[test]
    fn control_off_only_prepares() {
        let c = mod_mul_7x1_mod15();
        let u = unitary_of(&c);
        let input = 0b0_0000usize;
        let expected = 0b0_0001usize; // register |1⟩ untouched by the multiplier
        assert_eq!(u[(expected, input)], C64::ONE);
    }

    /// The controlled-swap network (gates 1..10, skipping the X prep and
    /// complement) must permute register bits: with control on, x ↦ rot(x).
    #[test]
    fn unitary_is_permutation() {
        let u = unitary_of(&mod_mul_7x1_mod15());
        // Every column must have exactly one unit entry (classical
        // reversible circuit).
        for col in 0..32 {
            let mut count = 0;
            for row in 0..32 {
                let a = u[(row, col)].abs();
                assert!(a < 1e-10 || (a - 1.0).abs() < 1e-10);
                if a > 0.5 {
                    count += 1;
                }
            }
            assert_eq!(count, 1, "column {col} not a permutation column");
        }
    }
}
