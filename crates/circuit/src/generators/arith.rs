//! Arithmetic circuits: the Cuccaro ripple-carry adder.

use crate::Circuit;

/// The Cuccaro–Draper–Kutin–Moulton ripple-carry adder computing
/// `|a⟩|b⟩ ↦ |a⟩|a+b mod 2^w⟩` on `2w + 1` qubits (one borrowed ancilla,
/// qubit 0, returned clean).
///
/// Layout: qubit 0 = ancilla (initial carry), qubits `1..=w` = `a`
/// (big-endian, `1` = MSB), qubits `w+1..=2w` = `b`.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::cuccaro_adder;
/// let c = cuccaro_adder(3);
/// assert_eq!(c.n_qubits(), 7);
/// assert!(c.is_unitary());
/// ```
pub fn cuccaro_adder(width: usize) -> Circuit {
    assert!(width > 0, "adder width must be positive");
    let w = width;
    let mut c = Circuit::new(2 * w + 1);
    // Little-endian wire helpers: bit k of a is qubit a(k), similarly b.
    let a = |k: usize| w - k; // k = 0 → LSB = qubit w
    let b = |k: usize| 2 * w - k;
    let anc = 0usize;

    // MAJ cascade.
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    // UMA (2-CNOT version).
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(&mut c, anc, b(0), a(0));
    for k in 1..w {
        maj(&mut c, a(k - 1), b(k), a(k));
    }
    // (No carry-out qubit: addition is modulo 2^w.)
    for k in (1..w).rev() {
        uma(&mut c, a(k - 1), b(k), a(k));
    }
    uma(&mut c, anc, b(0), a(0));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::unitary_of;

    /// Exhaustively check the adder truth table for small widths.
    #[test]
    fn adds_modulo_2w() {
        for w in 1..=2usize {
            let c = cuccaro_adder(w);
            let u = unitary_of(&c);
            let n = 2 * w + 1;
            for a_val in 0..1usize << w {
                for b_val in 0..1usize << w {
                    // Build the input basis index: anc=0 (qubit 0 = MSB of
                    // the index), then a (qubits 1..=w), then b.
                    let input = (a_val << w) | b_val;
                    let expected_b = (a_val + b_val) % (1 << w);
                    let expected = (a_val << w) | expected_b;
                    let col = input; // anc = 0 occupies the top bit: zero
                    let row = expected;
                    assert!(
                        (u[(row, col)].abs() - 1.0).abs() < 1e-10,
                        "w={w}: {a_val}+{b_val} → expected {expected_b}, matrix ({row},{col}) = {}",
                        u[(row, col)]
                    );
                    let _ = n;
                }
            }
        }
    }

    #[test]
    fn adder_is_a_permutation() {
        let c = cuccaro_adder(2);
        let u = unitary_of(&c);
        let d = 1 << 5;
        for col in 0..d {
            let units = (0..d)
                .filter(|&row| (u[(row, col)].abs() - 1.0).abs() < 1e-10)
                .count();
            assert_eq!(units, 1, "column {col}");
        }
    }

    #[test]
    fn gate_count_scales_linearly() {
        // MAJ and UMA are 3 gates each, 2w blocks total.
        for w in 1..=5 {
            assert_eq!(cuccaro_adder(w).gate_count(), 6 * w);
        }
    }
}
