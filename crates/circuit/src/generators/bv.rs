//! Bernstein–Vazirani circuits.

use crate::Circuit;

/// The Bernstein–Vazirani circuit for a given hidden bit string.
///
/// Uses `hidden.len() + 1` qubits: data qubits `0..m` and one ancilla `m`.
/// Layout: `H` on every data qubit, `X·H` on the ancilla, one `CX(i, anc)`
/// per set bit of `hidden`, then `H` on every data qubit. Measuring the
/// data register of the ideal circuit yields `hidden` with certainty.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::bernstein_vazirani;
/// let c = bernstein_vazirani(&[true, false, true]);
/// assert_eq!(c.n_qubits(), 4);
/// assert_eq!(c.gate_count(), 3 + 2 + 2 + 3);
/// ```
pub fn bernstein_vazirani(hidden: &[bool]) -> Circuit {
    let m = hidden.len();
    let anc = m;
    let mut c = Circuit::new(m + 1);
    for q in 0..m {
        c.h(q);
    }
    c.x(anc).h(anc);
    for (q, &bit) in hidden.iter().enumerate() {
        if bit {
            c.cx(q, anc);
        }
    }
    for q in 0..m {
        c.h(q);
    }
    c
}

/// The paper's `bv_n` benchmark: Bernstein–Vazirani on `n` qubits with the
/// all-ones hidden string (so `n − 1` data qubits), giving `3n − 1` gates —
/// matching the `|G|` column of Table I.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn bernstein_vazirani_all_ones(n: usize) -> Circuit {
    assert!(n >= 2, "bv needs at least one data qubit plus the ancilla");
    bernstein_vazirani(&vec![true; n - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    #[test]
    fn structure() {
        let c = bernstein_vazirani(&[true, true]);
        assert_eq!(c.n_qubits(), 3);
        // H H | X H | CX CX | H H
        assert_eq!(c.gate_count(), 8);
        assert_eq!(
            c.iter().filter(|i| i.as_gate() == Some(&Gate::Cx)).count(),
            2
        );
        assert!(c.is_unitary());
    }

    #[test]
    fn zero_string_has_no_cx() {
        let c = bernstein_vazirani(&[false, false, false]);
        assert_eq!(
            c.iter().filter(|i| i.as_gate() == Some(&Gate::Cx)).count(),
            0
        );
        assert_eq!(c.gate_count(), 8); // 3 + 2 + 0 + 3
    }

    #[test]
    fn gate_count_formula() {
        for n in 2..20 {
            assert_eq!(bernstein_vazirani_all_ones(n).gate_count(), 3 * n - 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one data qubit")]
    fn too_small_panics() {
        bernstein_vazirani_all_ones(1);
    }
}
