//! Grover search circuits.

use crate::{Circuit, Gate};

/// Emits the standard 15-gate Clifford+T decomposition of a Toffoli gate.
fn toffoli_decomposed(c: &mut Circuit, a: usize, b: usize, t: usize) {
    c.h(t)
        .cx(b, t)
        .gate(Gate::Tdg, &[t])
        .cx(a, t)
        .t(t)
        .cx(b, t)
        .gate(Gate::Tdg, &[t])
        .cx(a, t)
        .t(b)
        .t(t)
        .h(t)
        .cx(a, b)
        .t(a)
        .gate(Gate::Tdg, &[b])
        .cx(a, b);
}

/// Applies X to every data qubit whose bit in `marked` is 0, mapping
/// `|marked⟩ ↦ |1…1⟩` (and back, since X is self-inverse).
fn mark_pattern(c: &mut Circuit, n_data: usize, marked: usize) {
    for q in 0..n_data {
        if (marked >> (n_data - 1 - q)) & 1 == 0 {
            c.x(q);
        }
    }
}

/// How Grover sub-circuits are emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroverOptions {
    /// Number of Grover iterations.
    pub iterations: usize,
    /// The marked computational-basis element (`0 ≤ marked < 2^n_data`).
    pub marked: usize,
    /// Decompose Toffoli gates into the 15-gate Clifford+T network.
    pub decompose_toffoli: bool,
    /// Restore the oracle ancilla to |0⟩ at the end (`H`, `X`).
    pub uncompute_ancilla: bool,
}

impl Default for GroverOptions {
    fn default() -> Self {
        GroverOptions {
            iterations: 1,
            marked: 0,
            decompose_toffoli: false,
            uncompute_ancilla: false,
        }
    }
}

/// A Grover search circuit over `n_data` data qubits (currently `n_data ==
/// 2`, the size used by the paper's benchmark) plus one oracle ancilla.
///
/// Structure: `H^⊗n · (X·H) anc`, then per iteration an oracle (phase
/// kickback through the ancilla via a Toffoli conjugated by the marked-
/// element pattern) and the diffusion operator
/// `H^⊗n · X^⊗n · CZ · X^⊗n · H^⊗n`.
///
/// With `iterations = 3`, `marked = 0`, decomposed Toffolis and ancilla
/// uncomputation this yields the 96-gate, 3-qubit `grover` row of the
/// paper's Table I; see [`grover_dac21`].
///
/// # Panics
///
/// Panics if `n_data != 2` or `marked >= 2^n_data`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::grover;
/// let c = grover(2, Default::default());
/// assert_eq!(c.n_qubits(), 3);
/// assert!(c.is_unitary());
/// ```
pub fn grover(n_data: usize, options: GroverOptions) -> Circuit {
    assert_eq!(n_data, 2, "only the 2-data-qubit instance is supported");
    assert!(
        options.marked < (1 << n_data),
        "marked element out of range"
    );
    let anc = n_data;
    let mut c = Circuit::new(n_data + 1);

    // Initialisation: uniform superposition, ancilla in |−⟩.
    for q in 0..n_data {
        c.h(q);
    }
    c.x(anc).h(anc);

    for _ in 0..options.iterations {
        // Oracle: flip phase of |marked⟩ via kickback.
        mark_pattern(&mut c, n_data, options.marked);
        if options.decompose_toffoli {
            toffoli_decomposed(&mut c, 0, 1, anc);
        } else {
            c.ccx(0, 1, anc);
        }
        mark_pattern(&mut c, n_data, options.marked);

        // Diffusion about the mean on the data qubits.
        c.h(0).h(1).x(0).x(1);
        // CZ decomposed as H·CX·H on the target.
        c.h(1).cx(0, 1).h(1);
        c.x(0).x(1).h(0).h(1);
    }

    if options.uncompute_ancilla {
        c.h(anc).x(anc);
    }
    c
}

/// The exact `grover` instance of the paper's Table I: 3 qubits, 96 gates.
pub fn grover_dac21() -> Circuit {
    grover(
        2,
        GroverOptions {
            iterations: 3,
            marked: 0,
            decompose_toffoli: true,
            uncompute_ancilla: true,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::unitary_of;

    #[test]
    fn toffoli_decomposition_is_exact() {
        let mut c = Circuit::new(3);
        toffoli_decomposed(&mut c, 0, 1, 2);
        assert_eq!(c.gate_count(), 15);
        let u = unitary_of(&c);
        assert!(
            u.approx_eq(&Gate::Ccx.matrix(), 1e-10),
            "decomposed toffoli != ccx:\n{u:?}"
        );
    }

    #[test]
    fn dac21_instance_has_96_gates_on_3_qubits() {
        let c = grover_dac21();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gate_count(), 96);
    }

    #[test]
    fn decomposed_matches_native() {
        for marked in 0..4 {
            let native = grover(
                2,
                GroverOptions {
                    iterations: 1,
                    marked,
                    ..Default::default()
                },
            );
            let decomposed = grover(
                2,
                GroverOptions {
                    iterations: 1,
                    marked,
                    decompose_toffoli: true,
                    ..Default::default()
                },
            );
            let a = unitary_of(&native);
            let b = unitary_of(&decomposed);
            assert!(a.approx_eq(&b, 1e-10), "mismatch for marked={marked}");
        }
    }

    #[test]
    fn single_iteration_amplifies_marked_element() {
        // After one iteration on N=4, the marked element has amplitude 1.
        let marked = 2usize;
        let c = grover(
            2,
            GroverOptions {
                iterations: 1,
                marked,
                ..Default::default()
            },
        );
        let u = unitary_of(&c);
        // Input |000⟩ → column 0; ancilla ends in (|0⟩−|1⟩)/√2.
        // Probability of reading `marked` on the data qubits:
        let mut prob = 0.0;
        for anc_bit in 0..2usize {
            let row = (marked << 1) | anc_bit;
            prob += u[(row, 0)].norm_sqr();
        }
        assert!(
            (prob - 1.0).abs() < 1e-10,
            "marked element probability {prob}"
        );
    }

    #[test]
    #[should_panic(expected = "marked element out of range")]
    fn bad_marked_element_panics() {
        grover(
            2,
            GroverOptions {
                marked: 4,
                ..Default::default()
            },
        );
    }
}
