//! Entangled-state preparation circuits: GHZ and W states.

use crate::Circuit;
use std::f64::consts::PI;

/// The `n`-qubit GHZ preparation: `H` on qubit 0 followed by a CX chain,
/// producing `(|0…0⟩ + |1…1⟩)/√2`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::ghz;
/// let c = ghz(4);
/// assert_eq!(c.gate_count(), 4); // H + 3 CX
/// ```
pub fn ghz(n: usize) -> Circuit {
    assert!(n > 0, "ghz needs at least one qubit");
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// The `n`-qubit W-state preparation
/// `(|10…0⟩ + |01…0⟩ + … + |0…01⟩)/√n` using the cascade of
/// `Ry`-rotations + CX construction.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::w_state;
/// let c = w_state(3);
/// assert!(c.gate_count() >= 5);
/// ```
pub fn w_state(n: usize) -> Circuit {
    assert!(n > 0, "w state needs at least one qubit");
    let mut c = Circuit::new(n);
    c.x(0);
    // Distribute the excitation: at step k the amplitude remaining on
    // qubit k is split so that qubit k keeps 1/(n-k) of the probability.
    for k in 0..n - 1 {
        // Controlled-Ry(θ) with control k, target k+1, where
        // cos²(θ/2) = 1/(n−k); decomposed as Ry(θ/2)·CX·Ry(−θ/2)·CX on
        // the target (standard two-CX decomposition, exact for Ry).
        let p = 1.0 / (n - k) as f64;
        let theta = 2.0 * p.sqrt().acos();
        c.gate(crate::Gate::Ry(theta / 2.0), &[k + 1])
            .cx(k, k + 1)
            .gate(crate::Gate::Ry(-theta / 2.0), &[k + 1])
            .cx(k, k + 1);
        // Transfer: excitation moves down iff the split took it.
        c.cx(k + 1, k);
    }
    c
}

/// A QAOA MaxCut ansatz on the ring graph `0−1−…−(n−1)−0`: `p` layers of
/// cost (`ZZ` interactions as `CX·Rz·CX`) and mixer (`Rx`) unitaries with
/// the supplied angles.
///
/// # Panics
///
/// Panics if `n < 3` or `gammas.len() != betas.len()`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::qaoa_ring;
/// let c = qaoa_ring(4, &[0.4], &[0.7]);
/// // H layer + 4 edges × 3 gates + 4 mixers
/// assert_eq!(c.gate_count(), 4 + 12 + 4);
/// ```
pub fn qaoa_ring(n: usize, gammas: &[f64], betas: &[f64]) -> Circuit {
    assert!(n >= 3, "ring graph needs at least 3 vertices");
    assert_eq!(gammas.len(), betas.len(), "layer angle counts must match");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for (&gamma, &beta) in gammas.iter().zip(betas) {
        for q in 0..n {
            let a = q;
            let b = (q + 1) % n;
            // e^{-iγ Z⊗Z/2}: CX · Rz(γ) · CX.
            c.cx(a, b).gate(crate::Gate::Rz(gamma), &[b]).cx(a, b);
        }
        for q in 0..n {
            c.gate(crate::Gate::Rx(2.0 * beta), &[q]);
        }
    }
    c
}

/// A hardware-efficient variational ansatz: `layers` repetitions of
/// per-qubit `Ry`/`Rz` rotations followed by a linear CX entangling
/// chain, with deterministic pseudo-random angles derived from `seed`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn hardware_efficient_ansatz(n: usize, layers: usize, seed: u64) -> Circuit {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(n > 0, "ansatz needs at least one qubit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.gate(crate::Gate::Ry(rng.gen_range(-PI..PI)), &[q]);
            c.gate(crate::Gate::Rz(rng.gen_range(-PI..PI)), &[q]);
        }
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::unitary_of;

    #[test]
    fn ghz_amplitudes() {
        for n in 1..=4usize {
            let u = unitary_of(&ghz(n));
            let s = std::f64::consts::FRAC_1_SQRT_2;
            let d = 1usize << n;
            // Column 0 = state from |0…0⟩.
            if n == 1 {
                assert!((u[(0, 0)].re - s).abs() < 1e-12);
            } else {
                assert!((u[(0, 0)].re - s).abs() < 1e-12, "n={n}");
                assert!((u[(d - 1, 0)].re - s).abs() < 1e-12, "n={n}");
                for row in 1..d - 1 {
                    assert!(u[(row, 0)].abs() < 1e-12, "n={n} row {row}");
                }
            }
        }
    }

    #[test]
    fn w_state_amplitudes() {
        for n in 2..=4usize {
            let u = unitary_of(&w_state(n));
            let expected = 1.0 / (n as f64).sqrt();
            let d = 1usize << n;
            let mut support = 0;
            for row in 0..d {
                let amp = u[(row, 0)];
                if row.count_ones() == 1 {
                    assert!(
                        (amp.abs() - expected).abs() < 1e-10,
                        "n={n} row {row:b}: {amp}"
                    );
                    support += 1;
                } else {
                    assert!(amp.abs() < 1e-10, "n={n} row {row:b}: {amp}");
                }
            }
            assert_eq!(support, n);
        }
    }

    #[test]
    fn qaoa_structure() {
        let c = qaoa_ring(5, &[0.1, 0.2], &[0.3, 0.4]);
        assert_eq!(c.n_qubits(), 5);
        // 5 H + 2 layers × (5 edges × 3 + 5 mixers)
        assert_eq!(c.gate_count(), 5 + 2 * (15 + 5));
        assert!(c.is_unitary());
    }

    #[test]
    fn ansatz_deterministic() {
        assert_eq!(
            hardware_efficient_ansatz(4, 3, 9),
            hardware_efficient_ansatz(4, 3, 9)
        );
        assert_ne!(
            hardware_efficient_ansatz(4, 3, 9),
            hardware_efficient_ansatz(4, 3, 10)
        );
        let c = hardware_efficient_ansatz(4, 3, 9);
        assert_eq!(c.gate_count(), 3 * (8 + 3));
    }
}
