//! Random circuit generation for tests and fuzzing.

use crate::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// A uniformly random circuit: `gates` gates drawn from a mixed pool of
/// single-qubit (Clifford+T and rotations) and two-qubit gates, on random
/// qubits. Deterministic in `seed`.
///
/// Used by property-based tests throughout the workspace to cross-validate
/// the decision-diagram and dense backends.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::random_circuit;
/// let c = random_circuit(4, 30, 123);
/// assert_eq!(c.gate_count(), 30);
/// ```
pub fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    assert!(n > 0, "random circuit needs at least one qubit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let use_two = n >= 2 && rng.gen_bool(0.4);
        if use_two {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            let g = match rng.gen_range(0..4) {
                0 => Gate::Cx,
                1 => Gate::Cz,
                2 => Gate::Swap,
                _ => Gate::Cp(rng.gen_range(-PI..PI)),
            };
            c.gate(g, &[a, b]);
        } else {
            let q = rng.gen_range(0..n);
            let g = match rng.gen_range(0..10) {
                0 => Gate::H,
                1 => Gate::X,
                2 => Gate::Y,
                3 => Gate::Z,
                4 => Gate::S,
                5 => Gate::T,
                6 => Gate::Phase(rng.gen_range(-PI..PI)),
                7 => Gate::Rx(rng.gen_range(-PI..PI)),
                8 => Gate::Ry(rng.gen_range(-PI..PI)),
                _ => Gate::Rz(rng.gen_range(-PI..PI)),
            };
            c.gate(g, &[q]);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_determinism() {
        let c = random_circuit(3, 25, 5);
        assert_eq!(c.gate_count(), 25);
        assert_eq!(c, random_circuit(3, 25, 5));
        assert_ne!(c, random_circuit(3, 25, 6));
    }

    #[test]
    fn single_qubit_circuits_avoid_two_qubit_gates() {
        let c = random_circuit(1, 40, 8);
        assert!(c.iter().all(|i| i.qubits.len() == 1));
    }

    #[test]
    fn all_instructions_valid() {
        // Construction would have panicked on invalid qubits; spot-check
        // qubit ranges anyway.
        let c = random_circuit(5, 100, 99);
        for instr in c.iter() {
            for &q in &instr.qubits {
                assert!(q < 5);
            }
        }
    }
}
