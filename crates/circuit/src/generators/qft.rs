//! Quantum Fourier transform circuits.

use crate::Circuit;
use std::f64::consts::PI;

/// How to emit the QFT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QftStyle {
    /// Textbook form: native controlled-phase gates and final SWAPs
    /// (the paper's Fig. 1 for `n = 2`).
    Textbook,
    /// Native controlled-phase gates, final SWAPs omitted (output in
    /// bit-reversed order).
    NoSwaps,
    /// Controlled-phase gates decomposed into
    /// `u1(λ/2) c; cx; u1(−λ/2) t; cx; u1(λ/2) t` and final SWAPs omitted.
    /// This matches the gate counts of the benchmark suite used in the
    /// paper's Table I (`|qft_n| = n + 5·n(n−1)/2`).
    DecomposedNoSwaps,
}

/// The `n`-qubit quantum Fourier transform.
///
/// Qubit 0 holds the most significant bit. For each qubit `q` (top to
/// bottom): a Hadamard followed by controlled-phase rotations
/// `cp(π/2^{j−q})` with control `j` for `j = q+1 .. n`.
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::{qft, QftStyle};
/// assert_eq!(qft(2, QftStyle::Textbook).gate_count(), 4);   // H, CS, H, SWAP
/// assert_eq!(qft(2, QftStyle::DecomposedNoSwaps).gate_count(), 7);
/// assert_eq!(qft(5, QftStyle::DecomposedNoSwaps).gate_count(), 55);
/// ```
pub fn qft(n: usize, style: QftStyle) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
        for j in (q + 1)..n {
            let lambda = PI / (1u64 << (j - q)) as f64;
            match style {
                QftStyle::Textbook | QftStyle::NoSwaps => {
                    c.cp(lambda, j, q);
                }
                QftStyle::DecomposedNoSwaps => {
                    // cp(λ) c=j, t=q  ≡  u1(λ/2) j; cx j,q; u1(−λ/2) q; cx j,q; u1(λ/2) q
                    c.u1(lambda / 2.0, j)
                        .cx(j, q)
                        .u1(-lambda / 2.0, q)
                        .cx(j, q)
                        .u1(lambda / 2.0, q);
                }
            }
        }
    }
    if style == QftStyle::Textbook {
        for q in 0..n / 2 {
            c.swap(q, n - 1 - q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::unitary_of;
    use qaec_math::{Matrix, C64};

    /// The exact QFT matrix `F[j,k] = ω^{jk}/√d`.
    fn qft_matrix(n: usize) -> Matrix {
        let d = 1usize << n;
        Matrix::from_fn(d, d, |j, k| {
            C64::cis(2.0 * std::f64::consts::PI * (j * k) as f64 / d as f64)
                * (1.0 / (d as f64).sqrt())
        })
    }

    #[test]
    fn textbook_qft_matches_dft_matrix() {
        for n in 1..=4 {
            let u = unitary_of(&qft(n, QftStyle::Textbook));
            assert!(
                u.approx_eq(&qft_matrix(n), 1e-10),
                "qft{n} does not equal the DFT matrix"
            );
        }
    }

    #[test]
    fn decomposed_equals_native_up_to_swaps() {
        for n in 1..=4 {
            let a = unitary_of(&qft(n, QftStyle::NoSwaps));
            let b = unitary_of(&qft(n, QftStyle::DecomposedNoSwaps));
            assert!(a.approx_eq(&b, 1e-10), "qft{n} decomposition mismatch");
        }
    }

    #[test]
    fn gate_count_formula() {
        for n in 1..12 {
            let pairs = n * (n - 1) / 2;
            assert_eq!(
                qft(n, QftStyle::DecomposedNoSwaps).gate_count(),
                n + 5 * pairs
            );
            assert_eq!(qft(n, QftStyle::Textbook).gate_count(), n + pairs + n / 2);
            assert_eq!(qft(n, QftStyle::NoSwaps).gate_count(), n + pairs);
        }
    }

    #[test]
    fn fig1_structure_for_two_qubits() {
        // H on q0, controlled-S (control q1), H on q1, SWAP — the paper's Fig. 1.
        let c = qft(2, QftStyle::Textbook);
        let gates: Vec<_> = c.iter().map(|i| i.as_gate().unwrap().name()).collect();
        assert_eq!(gates, vec!["h", "cp", "h", "swap"]);
        let cp = c.instructions()[1].as_gate().unwrap();
        assert!((cp.params()[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }
}
