//! Randomized-benchmarking style circuits.

use crate::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized-benchmarking style sequence (Knill et al. 2008): `length`
/// uniformly random Clifford gates over `n` qubits, drawn from
/// `{H, S, S†, X, Y, Z}` on single qubits and `{CX, CZ, SWAP}` on pairs.
///
/// The `rb` row of the paper's Table I uses `n = 2`, `length = 7`.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n == 0`, or if `n == 1` and the sequence would need a
/// two-qubit gate (two-qubit gates are only drawn when `n ≥ 2`).
///
/// # Example
///
/// ```
/// use qaec_circuit::generators::randomized_benchmarking;
/// let c = randomized_benchmarking(2, 7, 0xDAC);
/// assert_eq!(c.gate_count(), 7);
/// ```
pub fn randomized_benchmarking(n: usize, length: usize, seed: u64) -> Circuit {
    assert!(n > 0, "rb needs at least one qubit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    const ONE_QUBIT: [Gate; 6] = [Gate::H, Gate::S, Gate::Sdg, Gate::X, Gate::Y, Gate::Z];
    const TWO_QUBIT: [Gate; 3] = [Gate::Cx, Gate::Cz, Gate::Swap];
    for _ in 0..length {
        let two = n >= 2 && rng.gen_bool(0.5);
        if two {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            c.gate(TWO_QUBIT[rng.gen_range(0..TWO_QUBIT.len())], &[a, b]);
        } else {
            let q = rng.gen_range(0..n);
            c.gate(ONE_QUBIT[rng.gen_range(0..ONE_QUBIT.len())], &[q]);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_width() {
        let c = randomized_benchmarking(2, 7, 1);
        assert_eq!(c.gate_count(), 7);
        assert_eq!(c.n_qubits(), 2);
        assert!(c.is_unitary());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            randomized_benchmarking(3, 20, 9),
            randomized_benchmarking(3, 20, 9)
        );
        assert_ne!(
            randomized_benchmarking(3, 20, 9),
            randomized_benchmarking(3, 20, 10)
        );
    }

    #[test]
    fn single_qubit_sequences_use_only_one_qubit_gates() {
        let c = randomized_benchmarking(1, 50, 4);
        assert!(c.iter().all(|i| i.qubits.len() == 1));
    }

    #[test]
    fn two_qubit_gates_use_distinct_qubits() {
        let c = randomized_benchmarking(4, 200, 11);
        for instr in c.iter() {
            if instr.qubits.len() == 2 {
                assert_ne!(instr.qubits[0], instr.qubits[1]);
            }
        }
    }
}
