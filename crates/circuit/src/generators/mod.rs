//! Benchmark circuit families used in the paper's evaluation (Table I,
//! Table II, Fig. 7).
//!
//! All generators are deterministic: the randomized families (`qv`, `rb`,
//! random circuits) take an explicit seed. Gate counts are calibrated to
//! the `|G|` column of the paper's Table I, which uses the benchmark suite
//! of Li et al. (DAC'20):
//!
//! | family | gates |
//! |--------|-------|
//! | `bv_n` | `3n − 1` (hidden string all ones) |
//! | `qft_n` | `n + 5·n(n−1)/2` (controlled-phase decomposed, no final swaps) |
//! | `qv nXd5` | `5 · ⌊X/2⌋ · 10` |
//! | `7x1mod15` | 14 on 5 qubits |

mod arith;
mod bv;
mod entangle;
mod grover;
mod modmul;
mod qft;
mod qv;
mod random;
mod rb;
mod tile;

pub use arith::cuccaro_adder;
pub use bv::{bernstein_vazirani, bernstein_vazirani_all_ones};
pub use entangle::{ghz, hardware_efficient_ansatz, qaoa_ring, w_state};
pub use grover::{grover, grover_dac21, GroverOptions};
pub use modmul::mod_mul_7x1_mod15;
pub use qft::{qft, QftStyle};
pub use qv::quantum_volume;
pub use random::random_circuit;
pub use rb::randomized_benchmarking;
pub use tile::tile;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_gate_counts() {
        // The |G| column of the paper's Table I.
        for (n, expected) in [
            (4, 11),
            (5, 14),
            (6, 17),
            (9, 26),
            (13, 38),
            (14, 41),
            (16, 47),
        ] {
            assert_eq!(
                bernstein_vazirani_all_ones(n).gate_count(),
                expected,
                "bv{n}"
            );
        }
        for (n, expected) in [(2, 7), (3, 18), (5, 55), (7, 112), (9, 189), (10, 235)] {
            assert_eq!(
                qft(n, QftStyle::DecomposedNoSwaps).gate_count(),
                expected,
                "qft{n}"
            );
        }
        for (n, expected) in [(3, 50), (5, 100), (6, 150), (7, 150), (9, 200)] {
            assert_eq!(
                quantum_volume(n, 5, 0xDAC2021).gate_count(),
                expected,
                "qv n{n}d5"
            );
        }
        assert_eq!(mod_mul_7x1_mod15().gate_count(), 14);
        assert_eq!(mod_mul_7x1_mod15().n_qubits(), 5);
        assert_eq!(randomized_benchmarking(2, 7, 1).gate_count(), 7);
    }
}
