//! Stable content hashing of circuits and circuit pairs.
//!
//! The serving layer (`qaec::Service`) keys its session cache on the
//! *content* of a circuit pair — gates, parameters, qubit wiring and
//! noise sites — not on file paths or request text, so the same pair
//! submitted twice (inline, from a file, re-serialized) lands on the
//! same compiled session. Two properties matter:
//!
//! * **Stability.** The hash is a fixed function (FNV-1a over a
//!   canonical byte encoding), independent of process, platform and
//!   `std` hasher randomization, so cache keys mean the same thing
//!   across runs and across machines.
//! * **Order canonicalisation.** Instructions acting on disjoint qubits
//!   commute, and the instruction *list* order between them is an
//!   artifact of serialization. Hashing walks the instructions in a
//!   canonical order — by dependency level (the [`Circuit::depth`]
//!   levelling), then by least qubit — so two listings of the same
//!   circuit that only permute independent instructions hash equal.
//!   Instructions on overlapping qubits never reorder: they sit on
//!   different levels by construction.
//!
//! Floating-point parameters are hashed by their exact bit pattern:
//! `rz(0.5)` and `rz(0.5000001)` are different circuits, as are `0.0`
//! and `-0.0`. No tolerance is applied — the cache must never alias
//! two pairs the checker could answer differently.
//!
//! # Example
//!
//! ```
//! use qaec_circuit::hash::{content_hash, pair_hash};
//! use qaec_circuit::{Circuit, NoiseChannel};
//!
//! // h(0) and h(1) act on disjoint qubits: listing order is not content.
//! let mut a = Circuit::new(2);
//! a.h(0).h(1).cx(0, 1);
//! let mut b = Circuit::new(2);
//! b.h(1).h(0).cx(0, 1);
//! assert_eq!(content_hash(&a), content_hash(&b));
//!
//! // A noise site (and its strength) is content.
//! let mut noisy = a.clone();
//! noisy.noise(NoiseChannel::Depolarizing { p: 0.999 }, &[0]);
//! assert_ne!(content_hash(&a), content_hash(&noisy));
//!
//! // The pair hash is ordered: (ideal, noisy) ≠ (noisy, ideal).
//! assert_ne!(pair_hash(&a, &noisy), pair_hash(&noisy, &a));
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::Operation;
use crate::noise::NoiseChannel;

/// 64-bit FNV-1a. Dependency-free and bit-stable everywhere; speed is
/// irrelevant here (one pass per served pair, not per node).
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    fn write_f64(&mut self, value: f64) {
        // Exact bit pattern: no tolerance, NaN payloads and -0.0 are
        // all distinct (a cache key must never alias distinct inputs).
        self.write_u64(value.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        // Length-prefixed so ("ab", "c") never collides with ("a", "bc").
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }
}

/// The canonical instruction visit order: by dependency level (an
/// instruction's level is 1 + the max level among its qubits, exactly
/// the [`Circuit::depth`] computation), then by least qubit. Within a
/// level all instructions touch disjoint qubits, so the least qubit is
/// unique and the order total; across levels the original dependency
/// order is preserved.
fn canonical_order(circuit: &Circuit) -> Vec<usize> {
    let mut level = vec![0usize; circuit.n_qubits()];
    let mut keys: Vec<(usize, usize, usize)> = Vec::with_capacity(circuit.len());
    for (index, instr) in circuit.instructions().iter().enumerate() {
        let next = instr.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
        for &q in &instr.qubits {
            level[q] = next;
        }
        let least = instr.qubits.iter().copied().min().unwrap_or(0);
        keys.push((next, least, index));
    }
    keys.sort_unstable();
    keys.into_iter().map(|(_, _, index)| index).collect()
}

fn hash_gate(h: &mut Fnv, gate: &Gate) {
    h.write_str(gate.name());
    let params = gate.params();
    h.write_usize(params.len());
    for p in params {
        h.write_f64(p);
    }
}

fn hash_noise(h: &mut Fnv, channel: &NoiseChannel) {
    h.write_str(channel.name());
    let params = channel.params();
    h.write_usize(params.len());
    for p in params {
        h.write_f64(p);
    }
    // Built-in channels are fully determined by (name, params); a custom
    // Kraus set is determined by its operator matrices (the label is
    // cosmetic but kept in the key via name() above).
    if let NoiseChannel::Custom(kraus) = channel {
        h.write_usize(kraus.arity());
        h.write_usize(kraus.ops().len());
        for op in kraus.ops() {
            let (rows, cols) = op.shape();
            h.write_usize(rows);
            h.write_usize(cols);
            for r in 0..rows {
                for c in 0..cols {
                    let v = op[(r, c)];
                    h.write_f64(v.re);
                    h.write_f64(v.im);
                }
            }
        }
    }
}

/// A stable 64-bit content hash of one circuit.
///
/// Covers the qubit count and every instruction (opcode, exact
/// parameter bits, qubit wiring, noise channels including custom Kraus
/// matrices), visited in the canonical order described in the module
/// docs — so permuting independent instructions does not change the
/// hash, while any semantic edit does.
pub fn content_hash(circuit: &Circuit) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(circuit.n_qubits());
    h.write_usize(circuit.len());
    for index in canonical_order(circuit) {
        let instr = &circuit.instructions()[index];
        match &instr.op {
            Operation::Gate(gate) => {
                h.write(b"g");
                hash_gate(&mut h, gate);
            }
            Operation::Noise(channel) => {
                h.write(b"n");
                hash_noise(&mut h, channel);
            }
        }
        h.write_usize(instr.qubits.len());
        for &q in &instr.qubits {
            h.write_usize(q);
        }
    }
    h.0
}

/// A stable 64-bit content hash of an ordered `(ideal, noisy)` pair —
/// the session-cache key of the serving layer.
///
/// The combination is ordered (the roles are not symmetric: the first
/// circuit is the specification, the second the implementation), and
/// domain-separated from [`content_hash`] so a pair never collides with
/// a single circuit by construction.
///
/// # Example
///
/// ```
/// use qaec_circuit::hash::pair_hash;
/// use qaec_circuit::{Circuit, NoiseChannel};
///
/// let mut noisy = Circuit::new(1);
/// noisy.h(0).noise(NoiseChannel::BitFlip { p: 0.99 }, &[0]);
/// let ideal = noisy.ideal();
///
/// // Deterministic across calls (and across processes).
/// assert_eq!(pair_hash(&ideal, &noisy), pair_hash(&ideal, &noisy));
///
/// // Changing only the noise strength changes the key.
/// let mut other = Circuit::new(1);
/// other.h(0).noise(NoiseChannel::BitFlip { p: 0.98 }, &[0]);
/// assert_ne!(pair_hash(&ideal, &noisy), pair_hash(&ideal, &other));
/// ```
pub fn pair_hash(ideal: &Circuit, noisy: &Circuit) -> u64 {
    let mut h = Fnv::new();
    h.write(b"qaec-pair-v1");
    h.write_u64(content_hash(ideal));
    h.write_u64(content_hash(noisy));
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{qft, QftStyle};
    use crate::noise_insertion::insert_random_noise;
    use qaec_math::Matrix;
    use std::f64::consts::FRAC_PI_2;

    fn noisy_qft2(p: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0)
            .noise(NoiseChannel::BitFlip { p }, &[1])
            .cp(FRAC_PI_2, 1, 0)
            .noise(NoiseChannel::PhaseFlip { p }, &[0])
            .h(1)
            .swap(0, 1);
        c
    }

    #[test]
    fn hash_is_deterministic() {
        let c = noisy_qft2(0.999);
        assert_eq!(content_hash(&c), content_hash(&c));
        assert_eq!(content_hash(&c), content_hash(&c.clone()));
    }

    #[test]
    fn independent_instruction_order_is_canonicalised() {
        let mut a = Circuit::new(3);
        a.h(0).h(1).h(2).cx(0, 1);
        let mut b = Circuit::new(3);
        b.h(2).h(0).h(1).cx(0, 1);
        assert_eq!(content_hash(&a), content_hash(&b));

        // Noise sites participate in the same canonicalisation.
        let mut na = Circuit::new(2);
        na.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]).h(1);
        let mut nb = Circuit::new(2);
        nb.h(1).noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
        assert_eq!(content_hash(&na), content_hash(&nb));
    }

    #[test]
    fn dependent_instruction_order_is_content() {
        // h then t ≠ t then h on the same qubit: same multiset, same
        // levels structure, different circuit.
        let mut a = Circuit::new(1);
        a.h(0).t(0);
        let mut b = Circuit::new(1);
        b.t(0).h(0);
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn every_semantic_edit_changes_the_hash() {
        let base = noisy_qft2(0.999);
        let h0 = content_hash(&base);

        // Parameter bits.
        assert_ne!(h0, content_hash(&noisy_qft2(0.998)));

        // Qubit count (same instruction list).
        let widened = base.remap_qubits(&[0, 1], 3).unwrap();
        assert_ne!(h0, content_hash(&widened));

        // Wiring.
        let mut rewired = Circuit::new(2);
        rewired
            .h(0)
            .noise(NoiseChannel::BitFlip { p: 0.999 }, &[0]) // was [1]
            .cp(FRAC_PI_2, 1, 0)
            .noise(NoiseChannel::PhaseFlip { p: 0.999 }, &[0])
            .h(1)
            .swap(0, 1);
        assert_ne!(h0, content_hash(&rewired));

        // Channel kind at the same site with the same parameter.
        let mut swapped_channel = Circuit::new(2);
        swapped_channel
            .h(0)
            .noise(NoiseChannel::PhaseFlip { p: 0.999 }, &[1])
            .cp(FRAC_PI_2, 1, 0)
            .noise(NoiseChannel::PhaseFlip { p: 0.999 }, &[0])
            .h(1)
            .swap(0, 1);
        assert_ne!(h0, content_hash(&swapped_channel));
    }

    #[test]
    fn rotation_parameters_hash_by_bits() {
        let mut a = Circuit::new(1);
        a.gate(Gate::Rz(0.5), &[0]);
        let mut b = Circuit::new(1);
        b.gate(Gate::Rz(0.5 + 1e-12), &[0]);
        assert_ne!(content_hash(&a), content_hash(&b));

        let mut z = Circuit::new(1);
        z.gate(Gate::Rz(0.0), &[0]);
        let mut nz = Circuit::new(1);
        nz.gate(Gate::Rz(-0.0), &[0]);
        assert_ne!(content_hash(&z), content_hash(&nz));
    }

    #[test]
    fn custom_kraus_matrices_are_content() {
        let ops_a = NoiseChannel::BitFlip { p: 0.9 }.kraus();
        let ops_b = NoiseChannel::BitFlip { p: 0.8 }.kraus();
        let mut a = Circuit::new(1);
        a.noise(NoiseChannel::custom("ch", ops_a).unwrap(), &[0]);
        let mut b = Circuit::new(1);
        b.noise(NoiseChannel::custom("ch", ops_b).unwrap(), &[0]);
        assert_ne!(content_hash(&a), content_hash(&b));

        // Identity-shaped sets with different dimensions differ too.
        let id2 = NoiseChannel::custom("id", vec![Matrix::identity(2)]).unwrap();
        let id4 = NoiseChannel::custom("id", vec![Matrix::identity(4)]).unwrap();
        let mut c2 = Circuit::new(2);
        c2.noise(id2, &[0]);
        let mut c4 = Circuit::new(2);
        c4.noise(id4, &[0, 1]);
        assert_ne!(content_hash(&c2), content_hash(&c4));
    }

    #[test]
    fn pair_hash_is_ordered_and_separated() {
        let noisy = noisy_qft2(0.999);
        let ideal = noisy.ideal();
        assert_ne!(pair_hash(&ideal, &noisy), pair_hash(&noisy, &ideal));
        assert_ne!(pair_hash(&ideal, &ideal), content_hash(&ideal));
    }

    #[test]
    fn generated_benchmarks_hash_stably() {
        // Same generator, same seed → same hash; different seed → the
        // noise lands elsewhere and the hash moves.
        let ideal = qft(4, QftStyle::DecomposedNoSwaps);
        let dep = NoiseChannel::Depolarizing { p: 0.999 };
        let a = insert_random_noise(&ideal, &dep, 3, 11);
        let b = insert_random_noise(&ideal, &dep, 3, 11);
        let c = insert_random_noise(&ideal, &dep, 3, 12);
        assert_eq!(pair_hash(&ideal, &a), pair_hash(&ideal, &b));
        assert_ne!(pair_hash(&ideal, &a), pair_hash(&ideal, &c));
    }
}
