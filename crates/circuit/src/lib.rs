//! Quantum circuit intermediate representation for the QAEC workspace.
//!
//! This crate models both *ideal* circuits (sequences of unitary [`Gate`]s)
//! and *noisy* circuits (where [`NoiseChannel`]s — completely-positive
//! trace-preserving maps given in Kraus form — may appear between gates), as
//! required by the DAC'21 paper "Approximate Equivalence Checking of Noisy
//! Quantum Circuits".
//!
//! Contents:
//!
//! * [`Gate`] — the unitary gate set (Paulis, Clifford+T, rotations, `u1`
//!   / `u2` / `u3`, `cx` / `cz` / controlled-phase, `swap`, Toffoli,
//!   Fredkin) with exact matrices and adjoints;
//! * [`NoiseChannel`] — bit flip, phase flip, bit-phase flip, depolarizing
//!   (the paper's Example 2), plus amplitude/phase damping, Pauli channels
//!   and validated custom Kraus sets;
//! * [`Circuit`] — the instruction list with builders, composition,
//!   adjoints and ASCII rendering;
//! * [`generators`] — the benchmark families of the paper's evaluation
//!   (`bv`, `qft`, `grover`, `qv`, `rb`, `7x1mod15`, random circuits);
//! * [`hash`] — stable, order-canonicalised content hashing of circuits
//!   and circuit pairs (the serving layer's session-cache key);
//! * [`noise_insertion`] — seeded random noise injection used to produce
//!   the paper's noisy implementations;
//! * [`qasm`] — an OpenQASM 2 subset reader/writer with a noise directive
//!   extension.
//!
//! # Example
//!
//! ```
//! use qaec_circuit::{Circuit, Gate, NoiseChannel};
//!
//! // The noisy 2-qubit QFT of the paper's Fig. 2.
//! let mut qft = Circuit::new(2);
//! qft.gate(Gate::H, &[0])
//!     .noise(NoiseChannel::BitFlip { p: 0.999 }, &[1])
//!     .gate(Gate::Cp(std::f64::consts::FRAC_PI_2), &[1, 0])
//!     .noise(NoiseChannel::PhaseFlip { p: 0.999 }, &[0])
//!     .gate(Gate::H, &[1])
//!     .gate(Gate::Swap, &[0, 1]);
//! assert_eq!(qft.gate_count(), 4);
//! assert_eq!(qft.noise_count(), 2);
//! ```

pub mod circuit;
pub mod error;
pub mod gate;
pub mod generators;
pub mod hash;
pub mod instruction;
pub mod noise;
pub mod noise_insertion;
pub mod qasm;

#[cfg(test)]
pub(crate) mod test_util;

pub use circuit::Circuit;
pub use error::CircuitError;
pub use gate::Gate;
pub use hash::{content_hash, pair_hash};
pub use instruction::{Instruction, Operation};
pub use noise::{KrausSet, NoiseChannel};
