//! The unitary gate set.

use qaec_math::{Matrix, C64};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_2, FRAC_PI_4};
use std::fmt;

/// A unitary quantum gate.
///
/// The set covers everything the paper's benchmark circuits need: Pauli and
/// Clifford gates, the T gate, the OpenQASM rotation family
/// (`u1`/`u2`/`u3`, `rx`/`ry`/`rz`), and the two- and three-qubit gates
/// `cx`, `cz`, controlled-phase, `swap`, Toffoli and Fredkin.
///
/// # Qubit-ordering convention
///
/// A gate on qubits `[q₀, q₁, …]` uses *big-endian* indexing: `q₀` is the
/// most significant bit of the matrix row/column index. For [`Gate::Cx`] on
/// `[c, t]`, the matrix is `|0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ X`.
///
/// # Example
///
/// ```
/// use qaec_circuit::Gate;
///
/// assert!(Gate::H.matrix().is_unitary(1e-12));
/// // S† · S = I
/// let prod = Gate::Sdg.matrix().mul(&Gate::S.matrix());
/// assert!(prod.is_identity(1e-12));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli X (bit flip).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (phase flip).
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S = √Z = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// `T = diag(1, e^{iπ/4})`.
    T,
    /// `T† = diag(1, e^{-iπ/4})`.
    Tdg,
    /// `√X = ½[[1+i, 1−i], [1−i, 1+i]]` — a native gate on many devices.
    Sx,
    /// `√X†`.
    Sxdg,
    /// `u1(λ) = diag(1, e^{iλ})` — arbitrary phase.
    Phase(f64),
    /// Rotation about X: `Rx(θ) = e^{-iθX/2}`.
    Rx(f64),
    /// Rotation about Y: `Ry(θ) = e^{-iθY/2}`.
    Ry(f64),
    /// Rotation about Z: `Rz(θ) = e^{-iθZ/2}`.
    Rz(f64),
    /// `u2(φ, λ) = u3(π/2, φ, λ)`.
    U2(f64, f64),
    /// The generic single-qubit gate
    /// `u3(θ, φ, λ) = [[cos(θ/2), -e^{iλ}sin(θ/2)],
    ///                 [e^{iφ}sin(θ/2), e^{i(φ+λ)}cos(θ/2)]]`.
    U3(f64, f64, f64),
    /// Controlled-X on `[control, target]`.
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled-phase `diag(1, 1, 1, e^{iλ})` on `[control, target]`.
    Cp(f64),
    /// Ising ZZ interaction `Rzz(θ) = e^{-iθ(Z⊗Z)/2}`.
    Rzz(f64),
    /// Ising XX interaction `Rxx(θ) = e^{-iθ(X⊗X)/2}`.
    Rxx(f64),
    /// Qubit exchange.
    Swap,
    /// Toffoli (CCX) on `[control, control, target]`.
    Ccx,
    /// Fredkin (CSWAP) on `[control, target, target]`.
    Cswap,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        use Gate::*;
        match self {
            I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | Phase(_) | Rx(_) | Ry(_)
            | Rz(_) | U2(..) | U3(..) => 1,
            Cx | Cz | Cp(_) | Rzz(_) | Rxx(_) | Swap => 2,
            Ccx | Cswap => 3,
        }
    }

    /// The `2^arity × 2^arity` unitary matrix of the gate, in the big-endian
    /// qubit ordering described on [`Gate`].
    pub fn matrix(&self) -> Matrix {
        use Gate::*;
        let o = C64::ONE;
        let z = C64::ZERO;
        let i = C64::I;
        match *self {
            I => Matrix::identity(2),
            X => Matrix::from_rows(&[vec![z, o], vec![o, z]]),
            Y => Matrix::from_rows(&[vec![z, -i], vec![i, z]]),
            Z => Matrix::from_diagonal(&[o, -o]),
            H => {
                let s = C64::real(FRAC_1_SQRT_2);
                Matrix::from_rows(&[vec![s, s], vec![s, -s]])
            }
            S => Matrix::from_diagonal(&[o, i]),
            Sdg => Matrix::from_diagonal(&[o, -i]),
            T => Matrix::from_diagonal(&[o, C64::cis(FRAC_PI_4)]),
            Tdg => Matrix::from_diagonal(&[o, C64::cis(-FRAC_PI_4)]),
            Sx => {
                let a = C64::new(0.5, 0.5);
                let b = C64::new(0.5, -0.5);
                Matrix::from_rows(&[vec![a, b], vec![b, a]])
            }
            Sxdg => {
                let a = C64::new(0.5, -0.5);
                let b = C64::new(0.5, 0.5);
                Matrix::from_rows(&[vec![a, b], vec![b, a]])
            }
            Phase(lambda) => Matrix::from_diagonal(&[o, C64::cis(lambda)]),
            Rx(theta) => {
                let c = C64::real((theta / 2.0).cos());
                let s = C64::new(0.0, -(theta / 2.0).sin());
                Matrix::from_rows(&[vec![c, s], vec![s, c]])
            }
            Ry(theta) => {
                let c = C64::real((theta / 2.0).cos());
                let s = C64::real((theta / 2.0).sin());
                Matrix::from_rows(&[vec![c, -s], vec![s, c]])
            }
            Rz(theta) => Matrix::from_diagonal(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)]),
            U2(phi, lambda) => U3(FRAC_PI_2, phi, lambda).matrix(),
            U3(theta, phi, lambda) => {
                let c = C64::real((theta / 2.0).cos());
                let s = C64::real((theta / 2.0).sin());
                Matrix::from_rows(&[
                    vec![c, -(C64::cis(lambda) * s)],
                    vec![C64::cis(phi) * s, C64::cis(phi + lambda) * c],
                ])
            }
            Cx => Matrix::from_rows(&[
                vec![o, z, z, z],
                vec![z, o, z, z],
                vec![z, z, z, o],
                vec![z, z, o, z],
            ]),
            Cz => Matrix::from_diagonal(&[o, o, o, -o]),
            Cp(lambda) => Matrix::from_diagonal(&[o, o, o, C64::cis(lambda)]),
            Rzz(theta) => {
                let m = C64::cis(-theta / 2.0);
                let p = C64::cis(theta / 2.0);
                Matrix::from_diagonal(&[m, p, p, m])
            }
            Rxx(theta) => {
                let c = C64::real((theta / 2.0).cos());
                let s = C64::new(0.0, -(theta / 2.0).sin());
                Matrix::from_rows(&[
                    vec![c, z, z, s],
                    vec![z, c, s, z],
                    vec![z, s, c, z],
                    vec![s, z, z, c],
                ])
            }
            Swap => Matrix::from_rows(&[
                vec![o, z, z, z],
                vec![z, z, o, z],
                vec![z, o, z, z],
                vec![z, z, z, o],
            ]),
            Ccx => {
                let mut m = Matrix::identity(8);
                m[(6, 6)] = z;
                m[(7, 7)] = z;
                m[(6, 7)] = o;
                m[(7, 6)] = o;
                m
            }
            Cswap => {
                let mut m = Matrix::identity(8);
                m[(5, 5)] = z;
                m[(6, 6)] = z;
                m[(5, 6)] = o;
                m[(6, 5)] = o;
                m
            }
        }
    }

    /// The inverse gate, satisfying
    /// `g.adjoint().matrix() == g.matrix().adjoint()`.
    ///
    /// ```
    /// use qaec_circuit::Gate;
    /// let g = Gate::U3(0.3, 1.1, -0.4);
    /// assert!(g.adjoint().matrix().approx_eq(&g.matrix().adjoint(), 1e-12));
    /// ```
    pub fn adjoint(&self) -> Gate {
        use Gate::*;
        match *self {
            I | X | Y | Z | H | Cx | Cz | Swap | Ccx | Cswap => *self,
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Sx => Sxdg,
            Sxdg => Sx,
            Rzz(t) => Rzz(-t),
            Rxx(t) => Rxx(-t),
            Phase(l) => Phase(-l),
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            U2(phi, lambda) => U3(-FRAC_PI_2, -lambda, -phi),
            U3(theta, phi, lambda) => U3(-theta, -lambda, -phi),
            Cp(l) => Cp(-l),
        }
    }

    /// The OpenQASM 2 mnemonic of the gate.
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            I => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            Phase(_) => "u1",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            U2(..) => "u2",
            U3(..) => "u3",
            Cx => "cx",
            Cz => "cz",
            Cp(_) => "cp",
            Rzz(_) => "rzz",
            Rxx(_) => "rxx",
            Swap => "swap",
            Ccx => "ccx",
            Cswap => "cswap",
        }
    }

    /// The gate's real parameters (rotation angles / phases), if any.
    pub fn params(&self) -> Vec<f64> {
        use Gate::*;
        match *self {
            Phase(l) | Rx(l) | Ry(l) | Rz(l) | Cp(l) | Rzz(l) | Rxx(l) => vec![l],
            U2(a, b) => vec![a, b],
            U3(a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        }
    }

    /// Constructs a gate from its OpenQASM mnemonic and parameter list.
    ///
    /// Returns `None` for unknown names or wrong parameter counts.
    /// `cu1` is accepted as an alias for `cp`, and `p` for `u1`.
    pub fn from_name(name: &str, params: &[f64]) -> Option<Gate> {
        use Gate::*;
        let gate = match (name, params) {
            ("id" | "i", []) => I,
            ("x", []) => X,
            ("y", []) => Y,
            ("z", []) => Z,
            ("h", []) => H,
            ("s", []) => S,
            ("sdg", []) => Sdg,
            ("t", []) => T,
            ("tdg", []) => Tdg,
            ("sx", []) => Sx,
            ("sxdg", []) => Sxdg,
            ("u1" | "p" | "phase", [l]) => Phase(*l),
            ("rx", [t]) => Rx(*t),
            ("ry", [t]) => Ry(*t),
            ("rz", [t]) => Rz(*t),
            ("u2", [a, b]) => U2(*a, *b),
            ("u3" | "u", [a, b, c]) => U3(*a, *b, *c),
            ("cx" | "cnot", []) => Cx,
            ("cz", []) => Cz,
            ("cp" | "cu1", [l]) => Cp(*l),
            ("rzz", [t]) => Rzz(*t),
            ("rxx", [t]) => Rxx(*t),
            ("swap", []) => Swap,
            ("ccx" | "toffoli", []) => Ccx,
            ("cswap" | "fredkin", []) => Cswap,
            _ => return None,
        };
        Some(gate)
    }

    /// Whether this gate and `other` have the same kind and parameters
    /// within `tol` (absolute, per parameter).
    pub fn approx_eq(&self, other: &Gate, tol: f64) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
            && self
                .params()
                .iter()
                .zip(other.params())
                .all(|(&a, b)| (a - b).abs() <= tol)
    }

    /// Whether applying `other` directly after `self` (on the same qubits)
    /// yields the identity — the local-cancellation test of the paper's
    /// §IV-C.
    pub fn cancels_with(&self, other: &Gate, tol: f64) -> bool {
        self.adjoint().approx_eq(other, tol)
            || self
                .matrix()
                .mul(&other.matrix())
                .is_identity_up_to_phase(tol)
    }

    /// Whether the gate's matrix is diagonal (useful to contraction
    /// heuristics).
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        matches!(
            self,
            I | Z | S | Sdg | T | Tdg | Phase(_) | Rz(_) | Cz | Cp(_) | Rzz(_)
        )
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_FIXED: &[Gate] = &[
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Cx,
        Gate::Cz,
        Gate::Swap,
        Gate::Ccx,
        Gate::Cswap,
    ];

    fn parameterized_samples() -> Vec<Gate> {
        vec![
            Gate::Sx,
            Gate::Sxdg,
            Gate::Phase(0.37),
            Gate::Rx(1.2),
            Gate::Ry(-0.8),
            Gate::Rz(2.5),
            Gate::U2(0.4, -1.3),
            Gate::U3(0.9, 0.2, -0.6),
            Gate::Cp(1.7),
            Gate::Rzz(0.55),
            Gate::Rxx(-1.2),
        ]
    }

    #[test]
    fn all_gates_are_unitary() {
        for g in ALL_FIXED.iter().copied().chain(parameterized_samples()) {
            assert!(g.matrix().is_unitary(1e-12), "{g} is not unitary");
            assert_eq!(g.matrix().rows(), 1 << g.arity(), "{g} has wrong size");
        }
    }

    #[test]
    fn adjoint_matches_matrix_adjoint() {
        for g in ALL_FIXED.iter().copied().chain(parameterized_samples()) {
            assert!(
                g.adjoint().matrix().approx_eq(&g.matrix().adjoint(), 1e-12),
                "adjoint mismatch for {g}"
            );
        }
    }

    #[test]
    fn adjoint_cancels() {
        for g in ALL_FIXED.iter().copied().chain(parameterized_samples()) {
            let prod = g.matrix().mul(&g.adjoint().matrix());
            assert!(prod.is_identity(1e-12), "{g}·{g}† ≠ I");
            assert!(g.cancels_with(&g.adjoint(), 1e-12));
        }
    }

    #[test]
    fn s_is_sqrt_z_and_t_is_sqrt_s() {
        let s2 = Gate::S.matrix().mul(&Gate::S.matrix());
        assert!(s2.approx_eq(&Gate::Z.matrix(), 1e-12));
        let t2 = Gate::T.matrix().mul(&Gate::T.matrix());
        assert!(t2.approx_eq(&Gate::S.matrix(), 1e-12));
    }

    #[test]
    fn h_equals_x_plus_z_over_sqrt2() {
        let sum = Gate::X
            .matrix()
            .add(&Gate::Z.matrix())
            .scale(C64::real(FRAC_1_SQRT_2));
        assert!(sum.approx_eq(&Gate::H.matrix(), 1e-12));
    }

    #[test]
    fn cx_truth_table() {
        let m = Gate::Cx.matrix();
        // |10⟩ → |11⟩ (control = MSB)
        assert_eq!(m[(3, 2)], C64::ONE);
        assert_eq!(m[(2, 3)], C64::ONE);
        assert_eq!(m[(0, 0)], C64::ONE);
        assert_eq!(m[(1, 1)], C64::ONE);
    }

    #[test]
    fn swap_matches_paper_matrix() {
        let m = Gate::Swap.matrix();
        assert_eq!(m[(1, 2)], C64::ONE);
        assert_eq!(m[(2, 1)], C64::ONE);
        assert_eq!(m[(0, 0)], C64::ONE);
        assert_eq!(m[(3, 3)], C64::ONE);
        assert_eq!(m[(1, 1)], C64::ZERO);
    }

    #[test]
    fn controlled_s_matches_paper() {
        // The paper's Fig. 1 controlled-S matrix: diag(1,1,1,i).
        let m = Gate::Cp(FRAC_PI_2).matrix();
        assert!((m[(3, 3)] - C64::I).abs() < 1e-12);
        assert!(m.is_unitary(1e-12));
    }

    #[test]
    fn u2_equals_u3_half_pi() {
        let a = Gate::U2(0.3, 0.7).matrix();
        let b = Gate::U3(FRAC_PI_2, 0.3, 0.7).matrix();
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn rz_vs_phase_differ_by_global_phase() {
        let theta = 0.93;
        let rz = Gate::Rz(theta).matrix();
        let u1 = Gate::Phase(theta).matrix();
        let ratio = u1.scale(C64::cis(-theta / 2.0));
        assert!(rz.approx_eq(&ratio, 1e-12));
    }

    #[test]
    fn ccx_flips_target_only_when_both_controls_set() {
        let m = Gate::Ccx.matrix();
        for input in 0..8usize {
            let expected = if input >> 1 == 0b11 { input ^ 1 } else { input };
            assert_eq!(m[(expected, input)], C64::ONE, "input {input}");
        }
    }

    #[test]
    fn cswap_swaps_targets_when_control_set() {
        let m = Gate::Cswap.matrix();
        assert_eq!(m[(0b110, 0b101)], C64::ONE);
        assert_eq!(m[(0b101, 0b110)], C64::ONE);
        assert_eq!(m[(0b001, 0b001)], C64::ONE);
    }

    #[test]
    fn name_roundtrip() {
        for g in ALL_FIXED.iter().copied().chain(parameterized_samples()) {
            let back = Gate::from_name(g.name(), &g.params()).expect("known name");
            assert!(back.approx_eq(&g, 0.0), "roundtrip failed for {g}");
        }
        assert_eq!(Gate::from_name("cu1", &[0.5]), Some(Gate::Cp(0.5)));
        assert_eq!(Gate::from_name("nonsense", &[]), None);
        assert_eq!(Gate::from_name("u3", &[0.1]), None);
    }

    #[test]
    fn sx_squares_to_x() {
        let sx2 = Gate::Sx.matrix().mul(&Gate::Sx.matrix());
        assert!(sx2.approx_eq(&Gate::X.matrix(), 1e-12));
        let id = Gate::Sx.matrix().mul(&Gate::Sxdg.matrix());
        assert!(id.is_identity(1e-12));
    }

    #[test]
    fn rzz_matches_cx_rz_cx() {
        // Rzz(θ) = CX · (I ⊗ Rz(θ)) · CX.
        let theta = 0.73;
        let cx = Gate::Cx.matrix();
        let rz = Matrix::identity(2).kron(&Gate::Rz(theta).matrix());
        let expected = cx.mul(&rz).mul(&cx);
        assert!(Gate::Rzz(theta).matrix().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn rxx_is_hadamard_conjugated_rzz() {
        // Rxx(θ) = (H⊗H) · Rzz(θ) · (H⊗H).
        let theta = -0.41;
        let hh = Gate::H.matrix().kron(&Gate::H.matrix());
        let expected = hh.mul(&Gate::Rzz(theta).matrix()).mul(&hh);
        assert!(Gate::Rxx(theta).matrix().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn cancellation_detects_inverse_pairs() {
        assert!(Gate::S.cancels_with(&Gate::Sdg, 1e-12));
        assert!(Gate::H.cancels_with(&Gate::H, 1e-12));
        assert!(!Gate::H.cancels_with(&Gate::X, 1e-12));
        assert!(Gate::Phase(0.4).cancels_with(&Gate::Phase(-0.4), 1e-12));
        // Z·S·S = Z·Z = I up to nothing — S cancels with S·Z? Not a pair.
        assert!(!Gate::S.cancels_with(&Gate::S, 1e-12));
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Cz.is_diagonal());
        assert!(Gate::Phase(0.2).is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::Cx.is_diagonal());
    }
}
