//! Lane-vector complex arithmetic: `L` independent [`C64`] values in
//! structure-of-arrays layout, operated on elementwise.
//!
//! [`LaneC64`] is the numeric substrate of the multi-lane TDD weight
//! type (`qaec-tdd`'s lane engine): one decision-diagram traversal
//! carries `L` noise-sweep points at once, and every weight operation is
//! the *same* scalar operation applied per lane. The layout keeps the
//! real and imaginary parts in separate `[f64; L]` arrays so the
//! elementwise loops are trivially auto-vectorisable; there are no
//! cross-lane operations by design (lanes must never observe each
//! other, or per-lane results would stop being bit-identical to scalar
//! runs).
//!
//! # Example
//!
//! ```
//! use qaec_math::{C64, LaneC64};
//!
//! let a = LaneC64::<4>::splat(C64::new(0.5, 0.0));
//! let b = LaneC64::from_lanes(&[C64::ONE, C64::I, C64::real(2.0), C64::ZERO]);
//! let p = a * b;
//! assert_eq!(p.lane(2), C64::ONE);
//! assert_eq!(p.lane(3), C64::ZERO);
//! ```

use crate::complex::C64;

/// `L` complex values in structure-of-arrays layout, combined strictly
/// elementwise. Lane `i` of any result depends only on lane `i` of the
/// operands — the invariant the TDD lane engine's bit-identity
/// guarantee rests on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaneC64<const L: usize> {
    /// Real parts, one per lane.
    pub re: [f64; L],
    /// Imaginary parts, one per lane.
    pub im: [f64; L],
}

impl<const L: usize> LaneC64<L> {
    /// All lanes zero.
    pub const ZERO: LaneC64<L> = LaneC64 {
        re: [0.0; L],
        im: [0.0; L],
    };

    /// Every lane set to the same value.
    #[inline]
    pub fn splat(z: C64) -> Self {
        LaneC64 {
            re: [z.re; L],
            im: [z.im; L],
        }
    }

    /// One value per lane.
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() != L`.
    pub fn from_lanes(lanes: &[C64]) -> Self {
        assert_eq!(lanes.len(), L, "expected {L} lanes, got {}", lanes.len());
        let mut v = LaneC64::ZERO;
        for (i, z) in lanes.iter().enumerate() {
            v.re[i] = z.re;
            v.im[i] = z.im;
        }
        v
    }

    /// The scalar value in lane `i`.
    #[inline]
    pub fn lane(&self, i: usize) -> C64 {
        C64::new(self.re[i], self.im[i])
    }

    /// All lanes as scalars, in lane order.
    pub fn to_lanes(&self) -> Vec<C64> {
        (0..L).map(|i| self.lane(i)).collect()
    }

    /// Elementwise scaling by one real factor.
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        let mut out = LaneC64::ZERO;
        for i in 0..L {
            out.re[i] = self.re[i] * factor;
            out.im[i] = self.im[i] * factor;
        }
        out
    }

    /// Per-lane modulus (`C64::abs`, i.e. `hypot`).
    #[inline]
    pub fn abs(&self) -> [f64; L] {
        let mut out = [0.0; L];
        for (i, modulus) in out.iter_mut().enumerate() {
            *modulus = self.lane(i).abs();
        }
        out
    }

    /// Whether every lane is finite.
    pub fn is_finite(&self) -> bool {
        (0..L).all(|i| self.re[i].is_finite() && self.im[i].is_finite())
    }
}

/// Elementwise product.
impl<const L: usize> std::ops::Mul for LaneC64<L> {
    type Output = Self;

    #[inline]
    fn mul(self, other: Self) -> Self {
        let mut out = LaneC64::ZERO;
        for i in 0..L {
            out.re[i] = self.re[i] * other.re[i] - self.im[i] * other.im[i];
            out.im[i] = self.re[i] * other.im[i] + self.im[i] * other.re[i];
        }
        out
    }
}

/// Elementwise sum.
impl<const L: usize> std::ops::Add for LaneC64<L> {
    type Output = Self;

    #[inline]
    fn add(self, other: Self) -> Self {
        let mut out = LaneC64::ZERO;
        for i in 0..L {
            out.re[i] = self.re[i] + other.re[i];
            out.im[i] = self.im[i] + other.im[i];
        }
        out
    }
}

/// Elementwise quotient. Each lane must match the scalar `/` bit for
/// bit, so the per-lane computation routes through the scalar operator
/// rather than a rearranged formula.
impl<const L: usize> std::ops::Div for LaneC64<L> {
    type Output = Self;

    #[inline]
    fn div(self, other: Self) -> Self {
        let mut out = LaneC64::ZERO;
        for i in 0..L {
            let q = self.lane(i) / other.lane(i);
            out.re[i] = q.re;
            out.im[i] = q.im;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_round_trip_and_splat() {
        let zs = [C64::new(1.0, -2.0), C64::I, C64::ZERO, C64::real(0.25)];
        let v = LaneC64::<4>::from_lanes(&zs);
        for (i, &z) in zs.iter().enumerate() {
            assert_eq!(v.lane(i), z);
        }
        assert_eq!(v.to_lanes(), zs.to_vec());
        let s = LaneC64::<3>::splat(C64::new(0.5, 0.5));
        assert_eq!(s.lane(0), s.lane(2));
    }

    #[test]
    fn elementwise_ops_match_scalar_ops_bitwise() {
        let a = LaneC64::<4>::from_lanes(&[
            C64::new(0.3, -0.7),
            C64::new(-1.5, 2.25),
            C64::real(1e-3),
            C64::new(0.0, 4.0),
        ]);
        let b = LaneC64::<4>::from_lanes(&[
            C64::new(2.0, 1.0),
            C64::new(0.125, -0.5),
            C64::new(-3.0, 0.25),
            C64::new(1.0, 1.0),
        ]);
        let (m, s, q, c) = (a * b, a + b, a / b, a.scale(0.375));
        for i in 0..4 {
            let (x, y) = (a.lane(i), b.lane(i));
            assert_eq!(m.lane(i), x * y, "mul lane {i}");
            assert_eq!(s.lane(i), x + y, "add lane {i}");
            assert_eq!(q.lane(i), x / y, "div lane {i}");
            assert_eq!(c.lane(i), x * 0.375, "scale lane {i}");
            assert_eq!(a.abs()[i], x.abs(), "abs lane {i}");
        }
    }

    #[test]
    fn finiteness_checks_every_lane() {
        let mut v = LaneC64::<2>::splat(C64::ONE);
        assert!(v.is_finite());
        v.im[1] = f64::NAN;
        assert!(!v.is_finite());
    }

    #[test]
    #[should_panic(expected = "expected 4 lanes")]
    fn from_lanes_rejects_wrong_width() {
        let _ = LaneC64::<4>::from_lanes(&[C64::ONE; 3]);
    }
}
