//! Dense, row-major complex matrices.

use crate::{approx::approx_eq_c64, C64};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense complex matrix stored in row-major order.
///
/// Sized for the quantum-circuit domain: gate matrices are `2^ℓ × 2^ℓ` for
/// small `ℓ`, and the dense baseline simulator builds matrices up to
/// `4^n × 4^n`. All operations are straightforward `O(n³)`/`O(n²)` dense
/// kernels.
///
/// # Example
///
/// ```
/// use qaec_math::{C64, Matrix};
///
/// let x = Matrix::from_rows(&[
///     vec![C64::ZERO, C64::ONE],
///     vec![C64::ONE, C64::ZERO],
/// ]);
/// let xx = x.mul(&x);
/// assert!(xx.is_identity(1e-12));
/// assert_eq!(x.kron(&x).shape(), (4, 4));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<C64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have equal length"
        );
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Creates a matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a square diagonal matrix from its diagonal entries.
    pub fn from_diagonal(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// A view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// A mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Matrix sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Matrix difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in sub");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }

    /// Scalar multiple `c · self`.
    pub fn scale(&self, c: C64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * c).collect(),
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimension mismatch in matrix product"
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a.is_zero() {
                    continue;
                }
                let row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let dst = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (d, &b) in dst.iter_mut().zip(row) {
                    *d = d.mul_add(a, b);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn apply(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch in apply");
        let mut out = vec![C64::ZERO; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = C64::ZERO;
            for (&a, &x) in row.iter().zip(v) {
                acc = acc.mul_add(a, x);
            }
            *o = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// ```
    /// use qaec_math::Matrix;
    /// let i2 = Matrix::identity(2);
    /// assert!(i2.kron(&i2).is_identity(0.0));
    /// ```
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self.data[i1 * self.cols + j1];
                if a.is_zero() {
                    continue;
                }
                for i2 in 0..rhs.rows {
                    for j2 in 0..rhs.cols {
                        let b = rhs.data[i2 * rhs.cols + j2];
                        out[(i1 * rhs.rows + i2, j1 * rhs.cols + j2)] = a * b;
                    }
                }
            }
        }
        out
    }

    /// Transpose `selfᵀ`.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Entry-wise complex conjugate `self*`.
    pub fn conj(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Conjugate transpose (adjoint) `self†`.
    pub fn adjoint(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// The trace `Σᵢ self[i,i]`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `tr(self · rhs)` computed without forming the product:
    /// `Σ_{i,k} self[i,k] · rhs[k,i]`.
    ///
    /// # Panics
    ///
    /// Panics if the product would not be square.
    pub fn mul_trace(&self, rhs: &Matrix) -> C64 {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch in mul_trace");
        assert_eq!(self.rows, rhs.cols, "product must be square in mul_trace");
        let mut acc = C64::ZERO;
        for i in 0..self.rows {
            for k in 0..self.cols {
                acc = acc.mul_add(self.data[i * self.cols + k], rhs.data[k * rhs.cols + i]);
            }
        }
        acc
    }

    /// Frobenius norm `√(Σ |aᵢⱼ|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// The largest entry-wise modulus difference `max |self - rhs|`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether every entry matches `rhs` within `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape() && self.max_abs_diff(rhs) <= tol
    }

    /// Whether the matrix is the identity within `tol`.
    pub fn is_identity(&self, tol: f64) -> bool {
        self.is_square()
            && self.data.iter().enumerate().all(|(idx, &z)| {
                let expected = if idx / self.cols == idx % self.cols {
                    C64::ONE
                } else {
                    C64::ZERO
                };
                approx_eq_c64(z, expected, tol)
            })
    }

    /// Whether the matrix equals `e^{iφ}·I` for some global phase `φ`,
    /// within `tol`.
    pub fn is_identity_up_to_phase(&self, tol: f64) -> bool {
        if !self.is_square() || self.rows == 0 {
            return false;
        }
        let phase = self[(0, 0)];
        if (phase.abs() - 1.0).abs() > tol {
            return false;
        }
        self.scale(phase.recip()).is_identity(tol)
    }

    /// Whether `self† · self = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square() && self.adjoint().mul(self).is_identity(tol)
    }

    /// Whether the matrix equals its own adjoint within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>14}", format!("{}", self[(i, j)]))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]])
    }

    fn pauli_y() -> Matrix {
        Matrix::from_rows(&[vec![C64::ZERO, -C64::I], vec![C64::I, C64::ZERO]])
    }

    fn pauli_z() -> Matrix {
        Matrix::from_diagonal(&[C64::ONE, -C64::ONE])
    }

    fn hadamard() -> Matrix {
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        Matrix::from_rows(&[vec![s, s], vec![s, -s]])
    }

    #[test]
    fn identity_properties() {
        let i4 = Matrix::identity(4);
        assert!(i4.is_identity(0.0));
        assert!(i4.is_unitary(1e-12));
        assert_eq!(i4.trace(), C64::real(4.0));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        assert!(x.mul(&y).approx_eq(&z.scale(C64::I), 1e-12));
        // X² = Y² = Z² = I
        for p in [&x, &y, &z] {
            assert!(p.mul(p).is_identity(1e-12));
            assert!(p.is_unitary(1e-12));
            assert!(p.is_hermitian(1e-12));
        }
        // Paulis are traceless
        assert!(x.trace().abs() < 1e-12);
        assert!(y.trace().abs() < 1e-12);
        assert!(z.trace().abs() < 1e-12);
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let h = hadamard();
        let hxh = h.mul(&pauli_x()).mul(&h);
        assert!(hxh.approx_eq(&pauli_z(), 1e-12));
    }

    #[test]
    fn kron_shapes_and_values() {
        let x = pauli_x();
        let xz = x.kron(&pauli_z());
        assert_eq!(xz.shape(), (4, 4));
        assert_eq!(xz[(0, 2)], C64::ONE);
        assert_eq!(xz[(1, 3)], -C64::ONE);
        assert_eq!(xz[(0, 0)], C64::ZERO);
        // (A⊗B)(C⊗D) = AC ⊗ BD
        let h = hadamard();
        let lhs = x.kron(&h).mul(&h.kron(&x));
        let rhs = x.mul(&h).kron(&h.mul(&x));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn adjoint_transpose_conj_consistency() {
        let y = pauli_y();
        assert!(y.adjoint().approx_eq(&y.transpose().conj(), 1e-15));
        assert!(y.adjoint().approx_eq(&y.conj().transpose(), 1e-15));
    }

    #[test]
    fn mul_trace_matches_explicit_product() {
        let a = Matrix::from_fn(3, 3, |i, j| C64::new(i as f64, j as f64));
        let b = Matrix::from_fn(3, 3, |i, j| C64::new((i * j) as f64, 1.0));
        let expected = a.mul(&b).trace();
        assert!((a.mul_trace(&b) - expected).abs() < 1e-12);
    }

    #[test]
    fn apply_matches_mul() {
        let h = hadamard();
        let v = vec![C64::ONE, C64::ZERO];
        let out = h.apply(&v);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((out[0] - C64::real(s)).abs() < 1e-12);
        assert!((out[1] - C64::real(s)).abs() < 1e-12);
    }

    #[test]
    fn identity_up_to_phase() {
        let phased = Matrix::identity(2).scale(C64::cis(0.7));
        assert!(phased.is_identity_up_to_phase(1e-12));
        assert!(!phased.is_identity(1e-12));
        assert!(!pauli_x().is_identity_up_to_phase(1e-12));
    }

    #[test]
    fn frobenius_and_diff() {
        let x = pauli_x();
        assert!((x.frobenius_norm() - 2f64.sqrt()).abs() < 1e-12);
        assert!((x.max_abs_diff(&pauli_z()) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    fn from_diagonal_and_flat() {
        let d = Matrix::from_diagonal(&[C64::ONE, C64::I]);
        assert_eq!(d[(1, 1)], C64::I);
        assert_eq!(d[(0, 1)], C64::ZERO);
        let f = Matrix::from_flat(1, 2, vec![C64::ONE, C64::I]);
        assert_eq!(f.shape(), (1, 2));
    }
}
