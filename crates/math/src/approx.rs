//! Tolerance-based approximate comparison helpers.
//!
//! Floating-point round-off accumulates through long chains of tensor
//! contractions, so all structural comparisons in the workspace (unitarity
//! checks, decision-diagram canonicalization, test assertions) go through
//! these helpers rather than `==`.

use crate::C64;

/// The default absolute tolerance used throughout the workspace.
///
/// Chosen so that `2^16`-dimensional traces accumulated in `f64` still
/// compare reliably, while genuinely distinct gate-matrix entries (which
/// differ at the `1e-1` scale or, for fine rotation angles, the `1e-6`
/// scale) never collide.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// Whether two `f64` values differ by at most `tol` (absolute).
///
/// ```
/// use qaec_math::approx::approx_eq_f64;
/// assert!(approx_eq_f64(1.0, 1.0 + 1e-13, 1e-12));
/// assert!(!approx_eq_f64(1.0, 1.1, 1e-12));
/// ```
#[inline]
pub fn approx_eq_f64(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Whether two complex values differ by at most `tol` in modulus.
#[inline]
pub fn approx_eq_c64(a: C64, b: C64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Whether a complex value is within `tol` of zero.
#[inline]
pub fn approx_zero(z: C64, tol: f64) -> bool {
    z.abs() <= tol
}

/// Whether every corresponding pair of entries differs by at most `tol`.
pub fn approx_eq_slice(a: &[C64], b: &[C64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| approx_eq_c64(x, y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_comparisons() {
        assert!(approx_eq_f64(0.1 + 0.2, 0.3, 1e-12));
        assert!(!approx_eq_f64(0.1, 0.2, 1e-12));
        assert!(approx_eq_c64(
            C64::new(1.0, 1.0),
            C64::new(1.0 + 1e-12, 1.0 - 1e-12),
            1e-10
        ));
        assert!(approx_zero(C64::new(1e-14, -1e-14), 1e-10));
    }

    #[test]
    fn slice_comparison() {
        let a = [C64::ONE, C64::I];
        let b = [C64::new(1.0, 1e-13), C64::new(-1e-13, 1.0)];
        assert!(approx_eq_slice(&a, &b, 1e-10));
        assert!(!approx_eq_slice(&a, &b[..1], 1e-10));
        let c = [C64::ONE, C64::ONE];
        assert!(!approx_eq_slice(&a, &c, 1e-10));
    }
}
