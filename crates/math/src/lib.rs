//! Complex arithmetic and dense complex linear algebra.
//!
//! This crate is the numerical substrate of the QAEC workspace. It provides
//! a small, self-contained implementation of
//!
//! * [`C64`] — a double-precision complex number with the full set of
//!   arithmetic operators,
//! * [`Matrix`] — a dense, row-major complex matrix with the operations the
//!   quantum-circuit layers need (Kronecker products, adjoints, traces,
//!   unitarity checks, ...), and
//! * tolerance-based approximate comparison helpers in [`approx`].
//!
//! External numeric crates (`num-complex`, `ndarray`) are deliberately not
//! used: the decision-diagram engine upstream needs precise control over
//! tolerance-canonical hashing of complex values, and the matrix workloads
//! here are small and dense.
//!
//! # Example
//!
//! ```
//! use qaec_math::{C64, Matrix};
//!
//! let h = Matrix::from_rows(&[
//!     vec![C64::new(1.0, 0.0), C64::new(1.0, 0.0)],
//!     vec![C64::new(1.0, 0.0), C64::new(-1.0, 0.0)],
//! ]).scale(C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0));
//! assert!(h.is_unitary(1e-12));
//! assert!((h.mul(&h).trace().re - 2.0).abs() < 1e-12);
//! ```

pub mod approx;
pub mod complex;
pub mod eigen;
pub mod lanes;
pub mod matrix;

pub use approx::{approx_eq_c64, approx_eq_f64, DEFAULT_TOLERANCE};
pub use complex::C64;
pub use lanes::LaneC64;
pub use matrix::Matrix;
