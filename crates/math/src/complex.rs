//! Double-precision complex numbers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The type is `Copy` and implements the usual arithmetic operators, both
/// between two `C64` values and between a `C64` and an `f64` scalar.
///
/// # Example
///
/// ```
/// use qaec_math::C64;
///
/// let z = C64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use qaec_math::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - C64::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` — a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns `C64::ZERO` divided components (i.e. NaN/inf components) when
    /// `z == 0`; callers that may divide by zero should check
    /// [`C64::is_zero`] first.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Whether both components are exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// The principal square root.
    ///
    /// ```
    /// use qaec_math::C64;
    /// let z = C64::new(0.0, 2.0).sqrt();
    /// assert!((z * z - C64::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Fused multiply-accumulate: `self + a * b`.
    #[inline]
    pub fn mul_add(self, a: C64, b: C64) -> Self {
        C64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    // Division by reciprocal multiplication is the intended algorithm.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs * self
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |acc, z| acc + z)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.re == 0.0 {
            write!(f, "{}i", self.im)
        } else if self.im < 0.0 {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!(close(a / b * b, a));
    }

    #[test]
    fn identities() {
        assert_eq!(C64::ONE * C64::I, C64::I);
        assert_eq!(C64::I * C64::I, -C64::ONE);
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), C64::real(25.0)));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::new(-1.5, 0.7);
        let back = C64::from_polar(z.abs(), z.arg());
        assert!(close(z, back));
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            assert!((C64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn recip_and_division() {
        let z = C64::new(2.0, -3.0);
        assert!(close(z * z.recip(), C64::ONE));
        assert!(close(z / z, C64::ONE));
    }

    #[test]
    fn sqrt_of_negative_real() {
        let z = C64::real(-4.0).sqrt();
        assert!(close(z, C64::new(0.0, 2.0)));
    }

    #[test]
    fn scalar_ops() {
        let z = C64::new(1.0, 1.0);
        assert_eq!(z * 2.0, C64::new(2.0, 2.0));
        assert_eq!(2.0 * z, C64::new(2.0, 2.0));
        assert_eq!(z / 2.0, C64::new(0.5, 0.5));
    }

    #[test]
    fn sum_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = C64::new(0.5, -0.5);
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.25);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(C64::real(1.5).to_string(), "1.5");
        assert_eq!(C64::new(0.0, -2.0).to_string(), "-2i");
        assert_eq!(C64::new(1.0, 1.0).to_string(), "1+1i");
        assert_eq!(C64::new(1.0, -1.0).to_string(), "1-1i");
    }
}
