//! Hermitian eigendecomposition (complex Jacobi method) and PSD matrix
//! functions.
//!
//! The general Jamiolkowski fidelity between two *noisy* circuits needs
//! `F(ρ, σ) = (tr √(√ρ·σ·√ρ))²`, i.e. matrix square roots of positive
//! semi-definite matrices. The cyclic complex Jacobi iteration below is
//! exact enough (off-diagonal Frobenius norm below `1e-12`) and has no
//! external dependencies; it is meant for the dense small-`n` regime, the
//! same envelope as the rest of the dense baseline.

use crate::{Matrix, C64};

/// Result of a Hermitian eigendecomposition: `a = V · diag(λ) · V†`.
#[derive(Clone, Debug)]
pub struct Eigh {
    /// Eigenvalues in ascending order (real, since the input is
    /// Hermitian).
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: Matrix,
}

/// Eigendecomposition of a Hermitian matrix by the cyclic complex Jacobi
/// method.
///
/// # Panics
///
/// Panics if the matrix is not square or deviates from Hermitian symmetry
/// by more than `1e-8`.
///
/// # Example
///
/// ```
/// use qaec_math::{C64, Matrix};
/// use qaec_math::eigen::eigh;
///
/// // Pauli Y has eigenvalues ±1.
/// let y = Matrix::from_rows(&[
///     vec![C64::ZERO, -C64::I],
///     vec![C64::I, C64::ZERO],
/// ]);
/// let e = eigh(&y);
/// assert!((e.values[0] + 1.0).abs() < 1e-10);
/// assert!((e.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn eigh(a: &Matrix) -> Eigh {
    assert!(a.is_square(), "eigh needs a square matrix");
    assert!(
        a.is_hermitian(1e-8),
        "eigh needs a Hermitian matrix (deviation too large)"
    );
    let n = a.rows();
    let mut work = a.clone();
    let mut vectors = Matrix::identity(n);

    // Cyclic sweeps until convergence.
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += work[(p, q)].norm_sqr();
            }
        }
        if off.sqrt() < 1e-13 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = work[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = work[(p, p)].re;
                let aqq = work[(q, q)].re;
                // Phase to make the pivot real: apq = |apq|·e^{iφ}.
                let phi = apq.arg();
                let abs_apq = apq.abs();
                // Real Jacobi angle for [[app, |apq|], [|apq|, aqq]].
                let theta = if (app - aqq).abs() < 1e-300 {
                    std::f64::consts::FRAC_PI_4
                } else {
                    0.5 * (2.0 * abs_apq / (app - aqq)).atan()
                };
                let c = theta.cos();
                let s = theta.sin();
                // J: identity except J[p,p]=c, J[p,q]=−s·e^{iφ},
                //    J[q,p]=s·e^{−iφ}, J[q,q]=c.
                let e_pos = C64::cis(phi);
                let e_neg = C64::cis(-phi);
                // work ← J† · work · J; vectors ← vectors · J.
                // Column update (right-multiply by J).
                for r in 0..n {
                    let wp = work[(r, p)];
                    let wq = work[(r, q)];
                    work[(r, p)] = wp * c + wq * (e_neg * s);
                    work[(r, q)] = wq * c - wp * (e_pos * s);
                    let vp = vectors[(r, p)];
                    let vq = vectors[(r, q)];
                    vectors[(r, p)] = vp * c + vq * (e_neg * s);
                    vectors[(r, q)] = vq * c - vp * (e_pos * s);
                }
                // Row update (left-multiply by J†).
                for col in 0..n {
                    let wp = work[(p, col)];
                    let wq = work[(q, col)];
                    work[(p, col)] = wp * c + wq * (e_pos * s);
                    work[(q, col)] = wq * c - wp * (e_neg * s);
                }
            }
        }
    }

    // Extract and sort.
    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| work[(i, i)].re).collect();
    order.sort_by(|&i, &j| values_raw[i].total_cmp(&values_raw[j]));
    let values: Vec<f64> = order.iter().map(|&i| values_raw[i]).collect();
    let sorted_vectors = Matrix::from_fn(n, n, |r, c| vectors[(r, order[c])]);
    Eigh {
        values,
        vectors: sorted_vectors,
    }
}

/// The eigenvalues of a Hermitian matrix, ascending.
///
/// # Panics
///
/// As [`eigh`].
pub fn eigvalsh(a: &Matrix) -> Vec<f64> {
    eigh(a).values
}

/// The principal square root of a positive semi-definite Hermitian
/// matrix (small negative eigenvalues from round-off are clamped to 0).
///
/// # Panics
///
/// As [`eigh`], plus if an eigenvalue is more negative than `-1e-8`.
pub fn sqrtm_psd(a: &Matrix) -> Matrix {
    let e = eigh(a);
    for &v in &e.values {
        assert!(v > -1e-8, "matrix is not PSD: eigenvalue {v}");
    }
    let sqrt_diag = Matrix::from_diagonal(
        &e.values
            .iter()
            .map(|&v| C64::real(v.max(0.0).sqrt()))
            .collect::<Vec<_>>(),
    );
    e.vectors.mul(&sqrt_diag).mul(&e.vectors.adjoint())
}

/// Uhlmann fidelity between two density matrices:
/// `F(ρ, σ) = (tr √(√ρ·σ·√ρ))²`.
///
/// # Panics
///
/// Panics on shape mismatch or non-PSD inputs (beyond round-off).
pub fn state_fidelity(rho: &Matrix, sigma: &Matrix) -> f64 {
    assert_eq!(rho.shape(), sigma.shape(), "dimension mismatch");
    let sr = sqrtm_psd(rho);
    let inner = sr.mul(sigma).mul(&sr);
    // inner is PSD; F = (Σ √λᵢ)².
    let values = eigvalsh(&inner);
    let trace_sqrt: f64 = values.iter().map(|&v| v.max(0.0).sqrt()).sum();
    (trace_sqrt * trace_sqrt).min(1.0 + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigh) -> Matrix {
        let diag =
            Matrix::from_diagonal(&e.values.iter().map(|&v| C64::real(v)).collect::<Vec<_>>());
        e.vectors.mul(&diag).mul(&e.vectors.adjoint())
    }

    fn random_hermitian(n: usize, seed: u64) -> Matrix {
        // Deterministic pseudo-random Hermitian via a simple LCG (no rand
        // dependency in this crate).
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let a = Matrix::from_fn(n, n, |_, _| C64::new(next(), next()));
        a.add(&a.adjoint()).scale(C64::real(0.5))
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let d = Matrix::from_diagonal(&[C64::real(3.0), C64::real(-1.0), C64::real(0.5)]);
        let e = eigh(&d);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 0.5).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_unitarity() {
        for n in [2usize, 3, 5, 8] {
            let a = random_hermitian(n, n as u64);
            let e = eigh(&a);
            assert!(e.vectors.is_unitary(1e-9), "n={n} eigenvectors not unitary");
            let back = reconstruct(&e);
            assert!(
                back.approx_eq(&a, 1e-9),
                "n={n} reconstruction error {}",
                back.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn trace_and_determinant_invariants() {
        let a = random_hermitian(4, 9);
        let e = eigh(&a);
        let trace: f64 = e.values.iter().sum();
        assert!((trace - a.trace().re).abs() < 1e-9);
    }

    #[test]
    fn sqrtm_squares_back() {
        // Build a PSD matrix B = A†A.
        let a = random_hermitian(4, 17);
        let b = a.adjoint().mul(&a);
        let s = sqrtm_psd(&b);
        assert!(s.mul(&s).approx_eq(&b, 1e-8));
        assert!(s.is_hermitian(1e-9));
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let a = random_hermitian(4, 23);
        let b = a.adjoint().mul(&a);
        let rho = b.scale(C64::real(1.0 / b.trace().re));
        assert!((state_fidelity(&rho, &rho) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn fidelity_of_orthogonal_pure_states_is_zero() {
        let rho = Matrix::from_diagonal(&[C64::ONE, C64::ZERO]);
        let sigma = Matrix::from_diagonal(&[C64::ZERO, C64::ONE]);
        assert!(state_fidelity(&rho, &sigma).abs() < 1e-10);
    }

    #[test]
    fn fidelity_pure_vs_mixed_matches_formula() {
        // F(|0⟩⟨0|, σ) = ⟨0|σ|0⟩.
        let sigma = Matrix::from_diagonal(&[C64::real(0.7), C64::real(0.3)]);
        let rho = Matrix::from_diagonal(&[C64::ONE, C64::ZERO]);
        assert!((state_fidelity(&rho, &sigma) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn fidelity_is_symmetric() {
        let a = random_hermitian(3, 31);
        let b = random_hermitian(3, 37);
        let rho = {
            let m = a.adjoint().mul(&a);
            m.scale(C64::real(1.0 / m.trace().re))
        };
        let sigma = {
            let m = b.adjoint().mul(&b);
            m.scale(C64::real(1.0 / m.trace().re))
        };
        let f1 = state_fidelity(&rho, &sigma);
        let f2 = state_fidelity(&sigma, &rho);
        assert!((f1 - f2).abs() < 1e-8, "{f1} vs {f2}");
        assert!((0.0..=1.0 + 1e-9).contains(&f1));
    }

    #[test]
    #[should_panic(expected = "not PSD")]
    fn sqrtm_rejects_indefinite() {
        let z = Matrix::from_diagonal(&[C64::ONE, -C64::ONE]);
        sqrtm_psd(&z);
    }
}
