//! Choi-state construction and the definitional Jamiolkowski fidelity.
//!
//! The Jamiolkowski isomorphism maps a channel `E` on `n` qubits to the
//! `2n`-qubit state `ρ_E = (I ⊗ E)(|Ψ⟩⟨Ψ|)` with
//! `|Ψ⟩ = (1/√d)·Σᵢ |ii⟩`. The fidelity with a unitary `U` is then
//! `F_J(E, U) = ⟨Ψ_U| ρ_E |Ψ_U⟩` where `|Ψ_U⟩ = (I ⊗ U)|Ψ⟩` — the
//! textbook definition, used here as an independent oracle against the
//! trace-based algorithms.

use crate::density::DensityMatrix;
use crate::kernel::apply_gate;
use crate::memory;
use crate::SimError;
use qaec_circuit::{Circuit, Operation};
use qaec_math::C64;

/// The maximally entangled state `|Ψ⟩ = (1/√d)·Σᵢ |i⟩_A |i⟩_B` on `2n`
/// qubits (reference system A = qubits `0..n`, system B = qubits `n..2n`).
pub fn maximally_entangled(n: usize) -> Vec<C64> {
    let d = 1usize << n;
    let amp = C64::real(1.0 / (d as f64).sqrt());
    let mut amps = vec![C64::ZERO; d * d];
    for i in 0..d {
        amps[i * d + i] = amp;
    }
    amps
}

/// The Choi state `ρ_E` of a noisy circuit, built by density-matrix
/// evolution on `2n` qubits.
///
/// # Errors
///
/// [`SimError::MemoryExceeded`] if the `16^n`-entry density matrix would
/// exceed the paper's 8 GB bound.
pub fn choi_state(circuit: &Circuit) -> Result<DensityMatrix, SimError> {
    let n = circuit.n_qubits();
    memory::check(memory::superop_peak_bytes(n), memory::PAPER_MEMORY_BOUND)?;
    let mut rho = DensityMatrix::from_pure(&maximally_entangled(n));
    // Apply the circuit on the B half (qubit q → 2n-qubit position q+n).
    for instr in circuit.iter() {
        let shifted: Vec<usize> = instr.qubits.iter().map(|&q| q + n).collect();
        match &instr.op {
            Operation::Gate(g) => rho.apply_gate(g, &shifted),
            Operation::Noise(ch) => rho.apply_channel(ch, &shifted),
        }
    }
    Ok(rho)
}

/// The Jamiolkowski fidelity `F_J(E, U)` by the definition: Choi state of
/// the noisy circuit against the Choi vector of the ideal one.
///
/// # Errors
///
/// [`SimError::NotUnitary`] if `ideal` contains noise, or
/// [`SimError::MemoryExceeded`] for circuits too large for the dense
/// representation.
pub fn choi_fidelity(ideal: &Circuit, noisy: &Circuit) -> Result<f64, SimError> {
    if !ideal.is_unitary() {
        return Err(SimError::NotUnitary);
    }
    let n = ideal.n_qubits();
    let rho = choi_state(noisy)?;
    // |Ψ_U⟩ = (I ⊗ U)|Ψ⟩.
    let mut psi_u = maximally_entangled(n);
    for instr in ideal.iter() {
        let gate = instr.as_gate().expect("unitary circuit");
        let shifted: Vec<usize> = instr.qubits.iter().map(|&q| q + n).collect();
        apply_gate(&mut psi_u, 2 * n, &gate.matrix(), &shifted);
    }
    Ok(rho.fidelity_with_pure(&psi_u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::generators::{qft, random_circuit, QftStyle};
    use qaec_circuit::NoiseChannel;

    #[test]
    fn maximally_entangled_is_normalized() {
        for n in 1..=3 {
            let amps = maximally_entangled(n);
            let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn noiseless_circuit_has_unit_fidelity_with_itself() {
        for seed in 0..3u64 {
            let c = random_circuit(2, 15, seed);
            let f = choi_fidelity(&c, &c).unwrap();
            assert!((f - 1.0).abs() < 1e-9, "seed {seed}: {f}");
        }
    }

    #[test]
    fn paper_example_fidelity_is_p_squared() {
        // Fig. 2 noisy QFT2 vs ideal QFT2: F_J = p².
        let p = 0.95;
        let mut noisy = Circuit::new(2);
        noisy
            .h(0)
            .noise(NoiseChannel::BitFlip { p }, &[1])
            .cp(std::f64::consts::FRAC_PI_2, 1, 0)
            .noise(NoiseChannel::PhaseFlip { p }, &[0])
            .h(1)
            .swap(0, 1);
        let ideal = noisy.ideal();
        let f = choi_fidelity(&ideal, &noisy).unwrap();
        assert!((f - p * p).abs() < 1e-10, "F = {f}, expected {}", p * p);
    }

    #[test]
    fn distinct_unitaries_have_low_fidelity() {
        let mut a = Circuit::new(1);
        a.h(0);
        let mut b = Circuit::new(1);
        b.x(0);
        // F = |tr(H†X)|²/d² = |tr(HX)|²/4 = (√2)²/4 = 1/2.
        let f = choi_fidelity(&a, &b).unwrap();
        assert!((f - 0.5).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_noise_on_qft() {
        let ideal = qft(2, QftStyle::Textbook);
        let mut noisy = ideal.clone();
        noisy.noise(NoiseChannel::Depolarizing { p: 0.999 }, &[0]);
        let f = choi_fidelity(&ideal, &noisy).unwrap();
        // Depolarizing keeps fidelity just below 1: the identity Kraus
        // term contributes p, the X/Y/Z terms are traceless against U†U.
        assert!(f < 1.0 && f > 0.99, "{f}");
    }

    #[test]
    fn memory_bound_applies() {
        let c = Circuit::new(7);
        assert!(matches!(
            choi_state(&c),
            Err(SimError::MemoryExceeded { .. })
        ));
    }
}
