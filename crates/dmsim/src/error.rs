//! Simulator errors.

use std::error::Error;
use std::fmt;

/// Errors from the dense simulation layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An object would exceed the configured memory bound (the paper's
    /// "MO" outcome).
    MemoryExceeded {
        /// Bytes the object would need.
        required: u64,
        /// The configured limit.
        limit: u64,
    },
    /// A unitary-only operation was applied to a noisy circuit.
    NotUnitary,
    /// A configured deadline expired mid-computation (the paper's "TO").
    DeadlineExceeded,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemoryExceeded { required, limit } => write!(
                f,
                "memory bound exceeded: need {required} bytes, limit {limit}"
            ),
            SimError::NotUnitary => write!(f, "operation requires a noiseless circuit"),
            SimError::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::MemoryExceeded {
            required: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(!SimError::NotUnitary.to_string().is_empty());
    }
}
