//! Quantum-trajectory (Monte Carlo wavefunction) simulation of noisy
//! circuits.
//!
//! The stochastic-unraveling substrate of the paper's related work (Li
//! et al., DAC'20): a noisy circuit is simulated as an ensemble of pure
//! states, where each noise channel applies Kraus operator `Kᵢ` with the
//! Born probability `‖Kᵢ|ψ⟩‖²` followed by renormalization. Averaging
//! `|ψ⟩⟨ψ|` over trajectories converges to the density-matrix evolution
//! at `2^n` (not `4^n`) memory per trajectory — the standard trade for
//! sampling workloads.

use crate::density::DensityMatrix;
use crate::kernel::apply_gate;
use crate::statevector::Statevector;
use qaec_circuit::{Circuit, Operation};
use qaec_math::{Matrix, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples one pure-state trajectory of a noisy circuit from `|0…0⟩`.
///
/// Unitary gates apply directly; at each noise site one Kraus operator is
/// drawn with probability `‖K|ψ⟩‖²` and the state renormalized.
/// Deterministic in `seed`.
///
/// # Example
///
/// ```
/// use qaec_circuit::{Circuit, NoiseChannel};
/// use qaec_dmsim::trajectory::sample_trajectory;
///
/// let mut c = Circuit::new(1);
/// c.h(0).noise(NoiseChannel::BitFlip { p: 0.5 }, &[0]);
/// let psi = sample_trajectory(&c, 7);
/// assert!((psi.norm_sqr() - 1.0).abs() < 1e-10);
/// ```
pub fn sample_trajectory(circuit: &Circuit, seed: u64) -> Statevector {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = circuit.n_qubits();
    let mut amps = vec![C64::ZERO; 1usize << n];
    amps[0] = C64::ONE;
    for instr in circuit.iter() {
        match &instr.op {
            Operation::Gate(g) => apply_gate(&mut amps, n, &g.matrix(), &instr.qubits),
            Operation::Noise(ch) => {
                apply_sampled_kraus(&mut amps, n, &ch.kraus(), &instr.qubits, &mut rng)
            }
        }
    }
    Statevector::from_amplitudes(amps)
}

fn apply_sampled_kraus(
    amps: &mut [C64],
    n: usize,
    kraus: &[Matrix],
    qubits: &[usize],
    rng: &mut StdRng,
) {
    // Born probabilities ‖Kᵢ|ψ⟩‖² for each branch.
    let mut branches: Vec<Vec<C64>> = Vec::with_capacity(kraus.len());
    let mut weights: Vec<f64> = Vec::with_capacity(kraus.len());
    for k in kraus {
        let mut branch = amps.to_vec();
        apply_gate(&mut branch, n, k, qubits);
        let w: f64 = branch.iter().map(|a| a.norm_sqr()).sum();
        branches.push(branch);
        weights.push(w);
    }
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    let mut pick = weights.len() - 1;
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            pick = i;
            break;
        }
        u -= w;
    }
    let norm = weights[pick].sqrt();
    for (dst, src) in amps.iter_mut().zip(&branches[pick]) {
        *dst = *src / norm;
    }
}

/// Averages `shots` trajectories into a density matrix
/// `ρ̂ = (1/N) Σ |ψₖ⟩⟨ψₖ|` — an unbiased estimator of the true mixed
/// state. Deterministic in `seed` (trajectory `k` uses `seed + k`).
///
/// # Panics
///
/// Panics if `shots == 0`.
pub fn average_trajectories(circuit: &Circuit, shots: usize, seed: u64) -> DensityMatrix {
    assert!(shots > 0, "need at least one trajectory");
    let d = 1usize << circuit.n_qubits();
    let mut acc = Matrix::zeros(d, d);
    for k in 0..shots {
        let psi = sample_trajectory(circuit, seed.wrapping_add(k as u64));
        let amps = psi.amplitudes();
        for i in 0..d {
            if amps[i].is_zero() {
                continue;
            }
            for j in 0..d {
                acc[(i, j)] += amps[i] * amps[j].conj();
            }
        }
    }
    DensityMatrix::from_matrix(acc.scale(C64::real(1.0 / shots as f64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::generators::random_circuit;
    use qaec_circuit::noise_insertion::insert_random_noise;
    use qaec_circuit::NoiseChannel;

    #[test]
    fn noiseless_trajectory_equals_statevector() {
        let c = random_circuit(3, 15, 2);
        let traj = sample_trajectory(&c, 0);
        let direct = Statevector::from_circuit(&c).unwrap();
        for (a, b) in traj.amplitudes().iter().zip(direct.amplitudes()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn trajectories_stay_normalized() {
        let ideal = random_circuit(2, 10, 3);
        let noisy =
            insert_random_noise(&ideal, &NoiseChannel::AmplitudeDamping { gamma: 0.4 }, 3, 4);
        for seed in 0..20 {
            let psi = sample_trajectory(&noisy, seed);
            assert!((psi.norm_sqr() - 1.0).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ideal = random_circuit(2, 8, 5);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.7 }, 2, 6);
        assert_eq!(
            sample_trajectory(&noisy, 11).amplitudes(),
            sample_trajectory(&noisy, 11).amplitudes()
        );
    }

    #[test]
    fn ensemble_average_converges_to_density_matrix() {
        let ideal = random_circuit(2, 8, 7);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.6 }, 2, 8);
        let exact = DensityMatrix::from_circuit(&noisy).unwrap();
        let estimate = average_trajectories(&noisy, 4000, 9);
        let err = estimate.matrix().max_abs_diff(exact.matrix());
        // Monte Carlo error ~ 1/√N ≈ 0.016; allow generous head-room.
        assert!(err < 0.08, "ensemble error {err}");
        assert!((estimate.trace().re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_branch_probabilities() {
        // From |1⟩, damping picks K₁ (decay to |0⟩) with probability γ.
        let gamma = 0.3;
        let mut c = Circuit::new(1);
        c.x(0).noise(NoiseChannel::AmplitudeDamping { gamma }, &[0]);
        let mut decayed = 0usize;
        let shots = 5000;
        for seed in 0..shots {
            let psi = sample_trajectory(&c, seed as u64);
            if psi.probabilities()[0] > 0.5 {
                decayed += 1;
            }
        }
        let rate = decayed as f64 / shots as f64;
        assert!(
            (rate - gamma).abs() < 0.03,
            "decay rate {rate}, expected {gamma}"
        );
    }
}
