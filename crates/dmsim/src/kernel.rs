//! The gate-application kernel shared by every dense representation.

use qaec_math::{Matrix, C64};

/// Applies an ℓ-qubit gate matrix to an `n`-qubit state vector in place.
///
/// Convention (matching `qaec-circuit`): qubit `q` is bit `n−1−q` of the
/// basis index (qubit 0 = most significant). `qubits[0]` is the gate's
/// most significant qubit.
///
/// # Panics
///
/// Panics if `amps.len() != 2^n`, the gate dimension does not match
/// `qubits.len()`, or a qubit index is out of range / repeated.
pub fn apply_gate(amps: &mut [C64], n: usize, gate: &Matrix, qubits: &[usize]) {
    let l = qubits.len();
    assert_eq!(amps.len(), 1usize << n, "state length must be 2^n");
    assert_eq!(gate.rows(), 1usize << l, "gate dimension mismatch");
    assert!(gate.is_square(), "gate matrix must be square");
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < n, "qubit {q} out of range");
        assert!(!qubits[..i].contains(&q), "repeated qubit {q}");
    }

    // Bit positions of the gate's qubits within a basis index.
    let bits: Vec<usize> = qubits.iter().map(|&q| n - 1 - q).collect();
    let rest_bits: Vec<usize> = (0..n).filter(|b| !bits.contains(b)).collect();
    let dim = 1usize << l;
    let mut gathered = vec![C64::ZERO; dim];
    let mut positions = vec![0usize; dim];

    for k in 0..(1usize << rest_bits.len()) {
        // Expand k into a basis index with all gate bits cleared.
        let mut base = 0usize;
        for (j, &b) in rest_bits.iter().enumerate() {
            if (k >> j) & 1 == 1 {
                base |= 1 << b;
            }
        }
        // Gather the 2^ℓ amplitudes of this block.
        for (local, (g, pos)) in gathered.iter_mut().zip(&mut positions).enumerate() {
            let mut idx = base;
            for (slot, &b) in bits.iter().enumerate() {
                if (local >> (l - 1 - slot)) & 1 == 1 {
                    idx |= 1 << b;
                }
            }
            *pos = idx;
            *g = amps[idx];
        }
        // Apply and scatter.
        for row in 0..dim {
            let mut acc = C64::ZERO;
            for (col, &v) in gathered.iter().enumerate() {
                let a = gate[(row, col)];
                if !a.is_zero() {
                    acc = acc.mul_add(a, v);
                }
            }
            amps[positions[row]] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::Gate;

    fn zero_state(n: usize) -> Vec<C64> {
        let mut v = vec![C64::ZERO; 1 << n];
        v[0] = C64::ONE;
        v
    }

    #[test]
    fn x_flips_qubit_zero() {
        let mut v = zero_state(2);
        apply_gate(&mut v, 2, &Gate::X.matrix(), &[0]);
        // qubit 0 is the MSB: |00⟩ → |10⟩ = index 2.
        assert_eq!(v[2], C64::ONE);
        assert_eq!(v[0], C64::ZERO);
    }

    #[test]
    fn x_flips_qubit_one() {
        let mut v = zero_state(2);
        apply_gate(&mut v, 2, &Gate::X.matrix(), &[1]);
        assert_eq!(v[1], C64::ONE);
    }

    #[test]
    fn bell_state() {
        let mut v = zero_state(2);
        apply_gate(&mut v, 2, &Gate::H.matrix(), &[0]);
        apply_gate(&mut v, 2, &Gate::Cx.matrix(), &[0, 1]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((v[0] - C64::real(s)).abs() < 1e-12);
        assert!((v[3] - C64::real(s)).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12 && v[2].abs() < 1e-12);
    }

    #[test]
    fn cx_with_reversed_qubit_order() {
        // control = qubit 1, target = qubit 0.
        let mut v = zero_state(2);
        apply_gate(&mut v, 2, &Gate::X.matrix(), &[1]); // |01⟩
        apply_gate(&mut v, 2, &Gate::Cx.matrix(), &[1, 0]); // → |11⟩
        assert_eq!(v[3], C64::ONE);
    }

    #[test]
    fn toffoli_on_three_of_four_qubits() {
        let mut v = zero_state(4);
        // Set qubits 1 and 3: index bits (n-1-q): q1 → bit2, q3 → bit0 → idx 0b0101.
        apply_gate(&mut v, 4, &Gate::X.matrix(), &[1]);
        apply_gate(&mut v, 4, &Gate::X.matrix(), &[3]);
        // CCX with controls q1, q3, target q2.
        apply_gate(&mut v, 4, &Gate::Ccx.matrix(), &[1, 3, 2]);
        // Expect q2 flipped: bits q1(bit2) q2(bit1) q3(bit0) → 0b0111 = 7.
        assert_eq!(v[0b0111], C64::ONE);
    }

    #[test]
    fn matches_matrix_multiplication_on_random_states() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 3;
        for gate in [Gate::H, Gate::S, Gate::Cx, Gate::Swap, Gate::Cz] {
            let mut amps: Vec<C64> = (0..1 << n)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let qubits: Vec<usize> = match gate.arity() {
                1 => vec![1],
                2 => vec![2, 0],
                _ => vec![0, 1, 2],
            };
            // Reference: build the full 2^n matrix by embedding.
            let full = embed(&gate.matrix(), &qubits, n);
            let expected = full.apply(&amps);
            apply_gate(&mut amps, n, &gate.matrix(), &qubits);
            for (a, e) in amps.iter().zip(&expected) {
                assert!((*a - *e).abs() < 1e-10, "{gate} mismatch");
            }
        }
    }

    /// Test-only dense embedding of a gate into the full space.
    fn embed(gate: &Matrix, qubits: &[usize], n: usize) -> Matrix {
        let d = 1usize << n;
        let l = qubits.len();
        let mut full = Matrix::zeros(d, d);
        for col in 0..d {
            let mut col_local = 0usize;
            for (slot, &q) in qubits.iter().enumerate() {
                let bit = (col >> (n - 1 - q)) & 1;
                col_local |= bit << (l - 1 - slot);
            }
            for row_local in 0..1usize << l {
                let amp = gate[(row_local, col_local)];
                if amp.is_zero() {
                    continue;
                }
                let mut row = col;
                for (slot, &q) in qubits.iter().enumerate() {
                    let bit = (row_local >> (l - 1 - slot)) & 1;
                    let mask = 1usize << (n - 1 - q);
                    row = (row & !mask) | (bit * mask);
                }
                full[(row, col)] = amp;
            }
        }
        full
    }
}
