//! The fully general Definition 1: ε-equivalence between **two noisy**
//! circuits.
//!
//! The paper's algorithms cover the ideal-vs-noisy case, where
//! `F_J(E, U) = ⟨Ψ_U|ρ_E|Ψ_U⟩` reduces to traces. When *both* circuits
//! are noisy, `F_J(E₁, E₂) = F(ρ_{E₁}, ρ_{E₂})` is a genuine Uhlmann
//! fidelity between two mixed Choi states and needs matrix square roots;
//! this module computes it densely via the Jacobi eigensolver in
//! `qaec-math` — small-`n` territory, same as the rest of the dense
//! baseline.

use crate::choi::choi_state;
use crate::SimError;
use qaec_circuit::Circuit;
use qaec_math::eigen::state_fidelity;

/// The Jamiolkowski fidelity between two arbitrary (noisy or ideal)
/// circuits: `F_J(E₁, E₂) = F(ρ_{E₁}, ρ_{E₂})`.
///
/// # Errors
///
/// [`SimError::MemoryExceeded`] when the `16^n` Choi matrices exceed the
/// 8 GB bound (and note the `O(16^{1.5n})`-ish eigensolver cost bounds
/// practical use well below that).
///
/// # Example
///
/// ```
/// use qaec_circuit::{Circuit, NoiseChannel};
/// use qaec_dmsim::general::jamiolkowski_fidelity_pair;
///
/// // Two differently-noised implementations of the same Bell circuit.
/// let mut a = Circuit::new(2);
/// a.h(0).cx(0, 1).noise(NoiseChannel::BitFlip { p: 0.95 }, &[0]);
/// let mut b = Circuit::new(2);
/// b.h(0).cx(0, 1).noise(NoiseChannel::PhaseFlip { p: 0.95 }, &[1]);
/// let f = jamiolkowski_fidelity_pair(&a, &b)?;
/// assert!(f > 0.8 && f < 1.0);
/// # Ok::<(), qaec_dmsim::SimError>(())
/// ```
pub fn jamiolkowski_fidelity_pair(c1: &Circuit, c2: &Circuit) -> Result<f64, SimError> {
    let rho1 = choi_state(c1)?;
    let rho2 = choi_state(c2)?;
    Ok(state_fidelity(rho1.matrix(), rho2.matrix()))
}

/// Decides the general Definition 1: `C₁ ≈_ε C₂` iff
/// `F_J(E₁, E₂) > 1 − ε`.
///
/// # Errors
///
/// As [`jamiolkowski_fidelity_pair`].
pub fn epsilon_equivalent_pair(c1: &Circuit, c2: &Circuit, epsilon: f64) -> Result<bool, SimError> {
    Ok(jamiolkowski_fidelity_pair(c1, c2)? > 1.0 - epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choi::choi_fidelity;
    use qaec_circuit::generators::random_circuit;
    use qaec_circuit::noise_insertion::insert_random_noise;
    use qaec_circuit::NoiseChannel;

    #[test]
    fn reduces_to_unitary_case_when_one_side_is_ideal() {
        for seed in 0..4u64 {
            let ideal = random_circuit(2, 10, seed);
            let noisy =
                insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.93 }, 2, seed + 5);
            let general = jamiolkowski_fidelity_pair(&ideal, &noisy).unwrap();
            let special = choi_fidelity(&ideal, &noisy).unwrap();
            assert!(
                (general - special).abs() < 1e-7,
                "seed {seed}: {general} vs {special}"
            );
        }
    }

    #[test]
    fn identical_noisy_circuits_have_unit_fidelity() {
        let ideal = random_circuit(2, 8, 3);
        let noisy =
            insert_random_noise(&ideal, &NoiseChannel::AmplitudeDamping { gamma: 0.2 }, 2, 4);
        let f = jamiolkowski_fidelity_pair(&noisy, &noisy).unwrap();
        assert!((f - 1.0).abs() < 1e-7, "{f}");
    }

    #[test]
    fn symmetry() {
        let ideal = random_circuit(2, 8, 7);
        let a = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.9 }, 2, 8);
        let b = insert_random_noise(&ideal, &NoiseChannel::PhaseFlip { p: 0.85 }, 2, 9);
        let fab = jamiolkowski_fidelity_pair(&a, &b).unwrap();
        let fba = jamiolkowski_fidelity_pair(&b, &a).unwrap();
        assert!((fab - fba).abs() < 1e-7);
        assert!((0.0..=1.0 + 1e-9).contains(&fab));
    }

    #[test]
    fn noisy_pair_exceeds_product_bound() {
        // Two noisy variants of the same ideal circuit are closer to each
        // other than the product of their distances to the ideal
        // suggests (sanity ordering, not a theorem — both share U).
        let ideal = random_circuit(2, 8, 11);
        let ch = NoiseChannel::Depolarizing { p: 0.98 };
        let a = insert_random_noise(&ideal, &ch, 1, 12);
        let b = insert_random_noise(&ideal, &ch, 1, 13);
        let f_ab = jamiolkowski_fidelity_pair(&a, &b).unwrap();
        let f_a = choi_fidelity(&ideal, &a).unwrap();
        let f_b = choi_fidelity(&ideal, &b).unwrap();
        assert!(f_ab >= f_a * f_b - 1e-7, "{f_ab} vs {}", f_a * f_b);
    }

    #[test]
    fn epsilon_decision() {
        let ideal = random_circuit(2, 8, 15);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.7 }, 2, 16);
        let f = jamiolkowski_fidelity_pair(&ideal, &noisy).unwrap();
        assert!(epsilon_equivalent_pair(&ideal, &noisy, 1.0 - f + 0.01).unwrap());
        assert!(!epsilon_equivalent_pair(&ideal, &noisy, (1.0 - f - 0.01).max(0.0)).unwrap());
    }

    #[test]
    fn memory_bound() {
        let c = Circuit::new(7);
        assert!(matches!(
            jamiolkowski_fidelity_pair(&c, &c),
            Err(SimError::MemoryExceeded { .. })
        ));
    }
}
