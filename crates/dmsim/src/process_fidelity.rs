//! Process fidelity — the baseline computation the paper benchmarks
//! against (Qiskit's `quantum_info.process_fidelity`).

use crate::operator::Operator;
use crate::superop::SuperOp;
use crate::SimError;
use qaec_circuit::{Circuit, Operation};
use qaec_math::{Matrix, C64};

/// The Jamiolkowski (process) fidelity from the dense superoperator and
/// the dense ideal unitary:
///
/// ```text
/// F_J(E, U) = tr((U† ⊗ Uᵀ) · M_E) / d²
/// ```
///
/// evaluated without materializing `U† ⊗ Uᵀ` (the `A[r,c]` entries are
/// products of two `U` entries, read on the fly). `O(16^n)` time, no extra
/// memory beyond `M_E` itself.
///
/// # Panics
///
/// Panics if the operator and superoperator have different qubit counts.
pub fn process_fidelity(superop: &SuperOp, ideal: &Operator) -> f64 {
    assert_eq!(superop.n_qubits(), ideal.n_qubits(), "qubit count mismatch");
    let n = superop.n_qubits();
    let d = 1usize << n;
    let u = ideal.matrix();
    let m = superop.matrix();
    // tr(A·M) = Σ_{r,c} A[r,c]·M[c,r] with A = U†⊗Uᵀ:
    // A[(r1,r2),(c1,c2)] = conj(U[c1,r1]) · U[c2,r2].
    let mut acc = C64::ZERO;
    for r1 in 0..d {
        for r2 in 0..d {
            let r = r1 * d + r2;
            for c1 in 0..d {
                let left = u[(c1, r1)].conj();
                if left.is_zero() {
                    continue;
                }
                for c2 in 0..d {
                    let a = left * u[(c2, r2)];
                    if a.is_zero() {
                        continue;
                    }
                    acc = acc.mul_add(a, m[(c1 * d + c2, r)]);
                }
            }
        }
    }
    acc.re / (d * d) as f64
}

/// End-to-end baseline: build `Operator` + `SuperOp` densely and compute
/// the fidelity, under the paper's 8 GB bound.
///
/// # Errors
///
/// [`SimError::NotUnitary`] if `ideal` is noisy;
/// [`SimError::MemoryExceeded`] per the dense representations.
pub fn process_fidelity_baseline(ideal: &Circuit, noisy: &Circuit) -> Result<f64, SimError> {
    let u = Operator::from_circuit(ideal)?;
    let m = SuperOp::from_circuit(noisy)?;
    Ok(process_fidelity(&m, &u))
}

/// Reference implementation of Algorithm I's formula with dense algebra:
/// enumerates every Kraus string `E_i`, builds it as a `2^n` matrix, and
/// sums `|tr(U†E_i)|² / d²`. Exponential in the number of noise sites —
/// for tests and small instances only.
///
/// # Errors
///
/// [`SimError::NotUnitary`] if `ideal` is noisy;
/// [`SimError::MemoryExceeded`] for operators over the 8 GB bound.
pub fn jamiolkowski_fidelity_kraus(ideal: &Circuit, noisy: &Circuit) -> Result<f64, SimError> {
    let u = Operator::from_circuit(ideal)?;
    let n = noisy.n_qubits();
    let d = 1usize << n;
    let u_dag = u.matrix().adjoint();

    // Collect the Kraus choices per noise site.
    let noise_sites: Vec<(Vec<Matrix>, Vec<usize>)> = noisy
        .iter()
        .filter(|i| i.is_noise())
        .map(|i| {
            let ch = i.as_noise().expect("noise instruction");
            (ch.kraus(), i.qubits.clone())
        })
        .collect();
    let counts: Vec<usize> = noise_sites.iter().map(|(k, _)| k.len()).collect();
    let total: usize = counts.iter().product();

    let mut fidelity = 0.0;
    let mut choice = vec![0usize; noise_sites.len()];
    for term in 0..total.max(1) {
        // Decode the mixed-radix term index.
        let mut t = term;
        for (slot, &c) in counts.iter().enumerate() {
            choice[slot] = t % c;
            t /= c;
        }
        // Build E_i column by column through the circuit.
        let mut e = Matrix::identity(d);
        let mut site = 0usize;
        let mut columns: Vec<Vec<C64>> = (0..d)
            .map(|j| {
                let mut col = vec![C64::ZERO; d];
                col[j] = C64::ONE;
                col
            })
            .collect();
        for instr in noisy.iter() {
            match &instr.op {
                Operation::Gate(g) => {
                    let m = g.matrix();
                    for col in columns.iter_mut() {
                        crate::kernel::apply_gate(col, n, &m, &instr.qubits);
                    }
                }
                Operation::Noise(_) => {
                    let (kraus, qubits) = &noise_sites[site];
                    let k = &kraus[choice[site]];
                    for col in columns.iter_mut() {
                        crate::kernel::apply_gate(col, n, k, qubits);
                    }
                    site += 1;
                }
            }
        }
        for (j, col) in columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                e[(i, j)] = v;
            }
        }
        let tr = u_dag.mul_trace(&e);
        fidelity += tr.norm_sqr();
    }
    Ok(fidelity / (d * d) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choi::choi_fidelity;
    use qaec_circuit::generators::random_circuit;
    use qaec_circuit::noise_insertion::insert_random_noise;
    use qaec_circuit::NoiseChannel;

    fn paper_noisy_qft2(p: f64) -> (Circuit, Circuit) {
        let mut noisy = Circuit::new(2);
        noisy
            .h(0)
            .noise(NoiseChannel::BitFlip { p }, &[1])
            .cp(std::f64::consts::FRAC_PI_2, 1, 0)
            .noise(NoiseChannel::PhaseFlip { p }, &[0])
            .h(1)
            .swap(0, 1);
        let ideal = noisy.ideal();
        (ideal, noisy)
    }

    #[test]
    fn example_3_trace_terms() {
        // The paper computes tr(U†E₁,₁) = 4p and zero for the other three
        // terms, so F_J = (4p)²/16 = p².
        let p = 0.95;
        let (ideal, noisy) = paper_noisy_qft2(p);
        let f = jamiolkowski_fidelity_kraus(&ideal, &noisy).unwrap();
        assert!((f - p * p).abs() < 1e-10, "{f}");
    }

    #[test]
    fn example_4_collective_form() {
        let p = 0.95;
        let (ideal, noisy) = paper_noisy_qft2(p);
        let f = process_fidelity_baseline(&ideal, &noisy).unwrap();
        assert!((f - p * p).abs() < 1e-10, "{f}");
    }

    #[test]
    fn three_oracles_agree_on_random_noisy_circuits() {
        for seed in 0..6u64 {
            let ideal = random_circuit(3, 18, seed);
            let noisy = insert_random_noise(
                &ideal,
                &NoiseChannel::Depolarizing { p: 0.99 },
                2,
                seed * 7 + 1,
            );
            let f_kraus = jamiolkowski_fidelity_kraus(&ideal, &noisy).unwrap();
            let f_superop = process_fidelity_baseline(&ideal, &noisy).unwrap();
            let f_choi = choi_fidelity(&ideal, &noisy).unwrap();
            assert!(
                (f_kraus - f_superop).abs() < 1e-9,
                "seed {seed}: kraus {f_kraus} vs superop {f_superop}"
            );
            assert!(
                (f_kraus - f_choi).abs() < 1e-9,
                "seed {seed}: kraus {f_kraus} vs choi {f_choi}"
            );
            assert!((0.0..=1.0 + 1e-9).contains(&f_kraus), "seed {seed}");
        }
    }

    #[test]
    fn noiseless_equal_circuits_have_unit_fidelity() {
        let c = random_circuit(2, 10, 3);
        let f = process_fidelity_baseline(&c, &c).unwrap();
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn global_phase_is_ignored() {
        // U vs e^{iφ}U must have fidelity 1 (|tr| is phase-invariant).
        let mut a = Circuit::new(1);
        a.h(0);
        let mut b = Circuit::new(1);
        // H with a global phase: Rz(2π) = −I adds phase π.
        b.h(0)
            .gate(qaec_circuit::Gate::Rz(2.0 * std::f64::consts::PI), &[0]);
        b.gate(qaec_circuit::Gate::Rz(-2.0 * std::f64::consts::PI), &[0]);
        let f = process_fidelity_baseline(&a, &b).unwrap();
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_fidelity_formula() {
        // For amplitude damping on an idle wire vs identity:
        // tr(K₀) = 1 + √(1−γ), tr(K₁) = 0 →
        // F = (1+√(1−γ))²/4.
        let gamma = 0.3;
        let ideal = Circuit::new(1);
        let mut noisy = Circuit::new(1);
        noisy.noise(NoiseChannel::AmplitudeDamping { gamma }, &[0]);
        let f = jamiolkowski_fidelity_kraus(&ideal, &noisy).unwrap();
        let expected = (1.0 + (1.0 - gamma).sqrt()).powi(2) / 4.0;
        assert!((f - expected).abs() < 1e-10);
    }
}
