//! Dense superoperator matrices (the Qiskit `SuperOp` analogue).

use crate::kernel::apply_gate;
use crate::memory;
use crate::SimError;
use qaec_circuit::{Circuit, Operation};
use qaec_math::{Matrix, C64};

/// The dense `4^n × 4^n` superoperator matrix `M_E = Σᵢ Eᵢ ⊗ Eᵢ*` of a
/// noisy circuit.
///
/// Density matrices are vectorized row-major: `|ρ⟩⟩[(r·2^n)+c] = ρ[r,c]`,
/// i.e. the first `n` "qubits" of the doubled space carry the ket index
/// and the last `n` the bra index. A unitary gate `U` acts as `U ⊗ U*`, a
/// channel as `Σ K ⊗ K*` — exactly the doubled-circuit construction of
/// the paper's Algorithm II, here materialized densely.
///
/// Building one stores `16^n` complex entries, which is what makes the
/// Qiskit baseline run out of memory at 7 qubits under the paper's 8 GB
/// bound.
#[derive(Clone, Debug, PartialEq)]
pub struct SuperOp {
    n: usize,
    mat: Matrix,
}

impl SuperOp {
    /// Builds the superoperator of a (possibly noisy) circuit under the
    /// paper's 8 GB bound.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryExceeded`] if `2 · 16^n · 16` bytes exceed the
    /// bound.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimError> {
        Self::from_circuit_bounded(circuit, memory::PAPER_MEMORY_BOUND)
    }

    /// [`SuperOp::from_circuit`] with an explicit memory bound in bytes.
    ///
    /// # Errors
    ///
    /// As [`SuperOp::from_circuit`].
    pub fn from_circuit_bounded(circuit: &Circuit, limit: u64) -> Result<Self, SimError> {
        Self::from_circuit_opts(circuit, limit, None)
    }

    /// [`SuperOp::from_circuit_bounded`] with an optional deadline,
    /// checked between basis columns.
    ///
    /// # Errors
    ///
    /// As [`SuperOp::from_circuit`], plus [`SimError::DeadlineExceeded`].
    pub fn from_circuit_opts(
        circuit: &Circuit,
        limit: u64,
        deadline: Option<std::time::Instant>,
    ) -> Result<Self, SimError> {
        let n = circuit.n_qubits();
        memory::check(memory::superop_peak_bytes(n), limit)?;
        let d2 = 1usize << (2 * n);
        let mut mat = Matrix::zeros(d2, d2);
        // Evolve each basis column |ρ⟩⟩ = e_j through the circuit.
        let mut column = vec![C64::ZERO; d2];
        let mut scratch = vec![C64::ZERO; d2];
        for j in 0..d2 {
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                return Err(SimError::DeadlineExceeded);
            }
            column.fill(C64::ZERO);
            column[j] = C64::ONE;
            for instr in circuit.iter() {
                match &instr.op {
                    Operation::Gate(g) => {
                        let m = g.matrix();
                        let mc = m.conj();
                        // U on the ket half, U* on the bra half.
                        apply_gate(&mut column, 2 * n, &m, &instr.qubits);
                        let bra: Vec<usize> = instr.qubits.iter().map(|&q| q + n).collect();
                        apply_gate(&mut column, 2 * n, &mc, &bra);
                    }
                    Operation::Noise(ch) => {
                        scratch.fill(C64::ZERO);
                        let bra: Vec<usize> = instr.qubits.iter().map(|&q| q + n).collect();
                        for k in ch.kraus() {
                            let mut term = column.clone();
                            let kc = k.conj();
                            apply_gate(&mut term, 2 * n, &k, &instr.qubits);
                            apply_gate(&mut term, 2 * n, &kc, &bra);
                            for (s, t) in scratch.iter_mut().zip(&term) {
                                *s += *t;
                            }
                        }
                        std::mem::swap(&mut column, &mut scratch);
                    }
                }
            }
            for (i, &v) in column.iter().enumerate() {
                mat[(i, j)] = v;
            }
        }
        Ok(SuperOp { n, mat })
    }

    /// Number of (physical) qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The dense `4^n × 4^n` matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.mat
    }

    /// Applies the superoperator to a density matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, rho: &Matrix) -> Matrix {
        let d = 1usize << self.n;
        assert_eq!(rho.shape(), (d, d), "density matrix dimension mismatch");
        // Vectorize, multiply, unvectorize.
        let vec: Vec<C64> = (0..d * d).map(|k| rho[(k / d, k % d)]).collect();
        let out = self.mat.apply(&vec);
        Matrix::from_fn(d, d, |r, c| out[r * d + c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use qaec_circuit::generators::random_circuit;
    use qaec_circuit::noise_insertion::insert_random_noise;
    use qaec_circuit::NoiseChannel;

    #[test]
    fn identity_circuit_gives_identity_superop() {
        let c = Circuit::new(2);
        let s = SuperOp::from_circuit(&c).unwrap();
        assert!(s.matrix().is_identity(1e-12));
    }

    #[test]
    fn unitary_superop_is_u_kron_uconj() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = SuperOp::from_circuit(&c).unwrap();
        let h = qaec_circuit::Gate::H.matrix();
        let expected = h.kron(&h.conj());
        assert!(s.matrix().approx_eq(&expected, 1e-10));
    }

    #[test]
    fn noise_superop_matches_channel_matrix() {
        let ch = NoiseChannel::Depolarizing { p: 0.9 };
        let mut c = Circuit::new(1);
        c.noise(ch.clone(), &[0]);
        let s = SuperOp::from_circuit(&c).unwrap();
        assert!(s.matrix().approx_eq(&ch.superop_matrix(), 1e-10));
    }

    #[test]
    fn application_agrees_with_density_evolution() {
        for seed in 0..4u64 {
            let ideal = random_circuit(2, 12, seed);
            let noisy = insert_random_noise(
                &ideal,
                &NoiseChannel::Depolarizing { p: 0.95 },
                2,
                seed + 100,
            );
            let superop = SuperOp::from_circuit(&noisy).unwrap();
            let direct = DensityMatrix::from_circuit(&noisy).unwrap();
            let via_superop = superop.apply(DensityMatrix::zero(2).matrix());
            assert!(via_superop.approx_eq(direct.matrix(), 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn memory_bound_mirrors_paper() {
        // 7 qubits must MO under the paper's 8 GB bound without running.
        let c = Circuit::new(7);
        assert!(matches!(
            SuperOp::from_circuit(&c),
            Err(SimError::MemoryExceeded { .. })
        ));
        // 4 qubits are fine.
        assert!(SuperOp::from_circuit(&Circuit::new(4)).is_ok());
    }

    #[test]
    fn two_qubit_gate_on_noisy_circuit() {
        let mut c = Circuit::new(2);
        c.h(0)
            .noise(NoiseChannel::BitFlip { p: 0.8 }, &[0])
            .cx(0, 1);
        let superop = SuperOp::from_circuit(&c).unwrap();
        let rho = superop.apply(DensityMatrix::zero(2).matrix());
        let direct = DensityMatrix::from_circuit(&c).unwrap();
        assert!(rho.approx_eq(direct.matrix(), 1e-9));
        // Trace preservation.
        assert!((rho.trace() - C64::ONE).abs() < 1e-10);
    }
}
