//! Dense state-vector / density-matrix / superoperator simulation.
//!
//! This crate is the workspace's substitute for the Qiskit baseline the
//! paper compares against (`Operator`, `SuperOp`,
//! `quantum_info.process_fidelity`): it builds the same dense objects with
//! the same `16^n`-entry superoperator representation, and therefore
//! reproduces the baseline's qualitative scaling — competitive for five or
//! fewer qubits, out-of-memory at seven under the paper's 8 GB bound
//! (see [`memory`]).
//!
//! It also provides two further *independent* implementations of the
//! Jamiolkowski fidelity used to cross-validate the decision-diagram
//! algorithms in tests:
//!
//! * [`choi::choi_fidelity`] — builds the Choi state
//!   `ρ_E = (I ⊗ E)(|Ψ⟩⟨Ψ|)` by density-matrix evolution and evaluates
//!   `⟨Ψ_U| ρ_E |Ψ_U⟩` directly (the definition);
//! * [`process_fidelity::jamiolkowski_fidelity_kraus`] — enumerates Kraus
//!   strings and sums `|tr(U†E_i)|²/d²` with dense operators (the
//!   formula Algorithm I evaluates on diagrams).
//!
//! # Example
//!
//! ```
//! use qaec_circuit::{Circuit, NoiseChannel};
//! use qaec_dmsim::{operator::Operator, superop::SuperOp, process_fidelity};
//!
//! // The paper's Example 3/4: F_J = p² for the noisy QFT2.
//! let p = 0.95;
//! let mut noisy = Circuit::new(2);
//! noisy.h(0)
//!     .noise(NoiseChannel::BitFlip { p }, &[1])
//!     .cp(std::f64::consts::FRAC_PI_2, 1, 0)
//!     .noise(NoiseChannel::PhaseFlip { p }, &[0])
//!     .h(1)
//!     .swap(0, 1);
//! let ideal = noisy.ideal();
//!
//! let u = Operator::from_circuit(&ideal)?;
//! let m = SuperOp::from_circuit(&noisy)?;
//! let f = process_fidelity::process_fidelity(&m, &u);
//! assert!((f - p * p).abs() < 1e-10);
//! # Ok::<(), qaec_dmsim::SimError>(())
//! ```

pub mod choi;
pub mod density;
pub mod error;
pub mod general;
pub mod kernel;
pub mod memory;
pub mod operator;
pub mod process_fidelity;
pub mod statevector;
pub mod superop;
pub mod trajectory;

pub use error::SimError;
pub use operator::Operator;
pub use process_fidelity::process_fidelity as compute_process_fidelity;
pub use statevector::Statevector;
pub use superop::SuperOp;
