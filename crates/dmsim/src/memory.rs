//! Memory accounting for the dense baseline.
//!
//! Qiskit stores an `n`-qubit `SuperOp` as a dense `4^n × 4^n` complex128
//! array and composition allocates a fresh array, so peak usage is about
//! two copies. The paper runs the baseline under an 8 GB bound, which is
//! why its Table I shows "MO" for every 7-qubit-and-larger circuit. This
//! module reproduces that accounting so the harness can report MO without
//! actually exhausting memory.

use crate::SimError;

/// Bytes of one complex128 entry.
pub const COMPLEX_BYTES: u64 = 16;

/// The paper's memory bound: 8 GB.
pub const PAPER_MEMORY_BOUND: u64 = 8 * 1024 * 1024 * 1024;

/// Bytes needed to hold one dense `2^n × 2^n` operator.
pub fn operator_bytes(n_qubits: usize) -> u64 {
    COMPLEX_BYTES.saturating_mul(1u64.checked_shl(2 * n_qubits as u32).unwrap_or(u64::MAX))
}

/// Bytes needed to hold one dense `4^n × 4^n` superoperator.
pub fn superop_bytes(n_qubits: usize) -> u64 {
    COMPLEX_BYTES.saturating_mul(1u64.checked_shl(4 * n_qubits as u32).unwrap_or(u64::MAX))
}

/// Peak bytes for building a superoperator the way Qiskit does: the
/// evolving array, a composition temporary, and the composed result all
/// coexist, so peak ≈ 3 copies. Under the paper's 8 GB bound this puts
/// the out-of-memory threshold at 7 qubits (3 · 4 GiB = 12 GiB), matching
/// Table I.
pub fn superop_peak_bytes(n_qubits: usize) -> u64 {
    superop_bytes(n_qubits).saturating_mul(3)
}

/// Checks an allocation against a limit.
///
/// # Errors
///
/// [`SimError::MemoryExceeded`] when `required > limit`.
pub fn check(required: u64, limit: u64) -> Result<(), SimError> {
    if required > limit {
        Err(SimError::MemoryExceeded { required, limit })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mo_threshold_is_seven_qubits() {
        // The baseline must fit 6 qubits and fail 7 under 8 GB, exactly as
        // in the paper's Table I.
        assert!(check(superop_peak_bytes(6), PAPER_MEMORY_BOUND).is_ok());
        assert!(check(superop_peak_bytes(7), PAPER_MEMORY_BOUND).is_err());
    }

    #[test]
    fn eight_qubit_superop_needs_64_gib_plus() {
        // The paper notes ≥ 64 GB for an 8-qubit superoperator.
        assert_eq!(superop_bytes(8), 64 * 1024 * 1024 * 1024 * 16 / 16);
        assert!(superop_bytes(8) >= 64 * (1 << 30));
    }

    #[test]
    fn operator_is_much_smaller() {
        assert_eq!(operator_bytes(7), 16 * (1u64 << 14)); // 16 B · 4^7
        assert!(operator_bytes(10) < superop_bytes(6));
    }

    #[test]
    fn saturation_does_not_overflow() {
        assert_eq!(superop_bytes(40), u64::MAX);
    }
}
