//! Dense unitary operators of ideal circuits.

use crate::kernel::apply_gate;
use crate::memory;
use crate::SimError;
use qaec_circuit::Circuit;
use qaec_math::{Matrix, C64};

/// The dense `2^n × 2^n` unitary of an ideal circuit (the analogue of
/// Qiskit's `Operator`).
///
/// # Example
///
/// ```
/// use qaec_circuit::Circuit;
/// use qaec_dmsim::Operator;
///
/// let mut c = Circuit::new(1);
/// c.h(0).h(0);
/// let u = Operator::from_circuit(&c)?;
/// assert!(u.matrix().is_identity(1e-12));
/// # Ok::<(), qaec_dmsim::SimError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Operator {
    n: usize,
    matrix: Matrix,
}

impl Operator {
    /// Builds the unitary by applying each gate to every basis column.
    ///
    /// # Errors
    ///
    /// * [`SimError::NotUnitary`] if the circuit contains noise;
    /// * [`SimError::MemoryExceeded`] if two `4^n`-entry matrices exceed
    ///   [`memory::PAPER_MEMORY_BOUND`].
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimError> {
        Self::from_circuit_bounded(circuit, memory::PAPER_MEMORY_BOUND)
    }

    /// [`Operator::from_circuit`] with an explicit memory bound in bytes.
    ///
    /// # Errors
    ///
    /// As [`Operator::from_circuit`].
    pub fn from_circuit_bounded(circuit: &Circuit, limit: u64) -> Result<Self, SimError> {
        if !circuit.is_unitary() {
            return Err(SimError::NotUnitary);
        }
        let n = circuit.n_qubits();
        memory::check(memory::operator_bytes(n).saturating_mul(2), limit)?;
        let d = 1usize << n;
        // Column-major scratch: column j starts as e_j and is evolved
        // through the whole circuit, which is cache-friendlier than
        // row-major strided access per gate.
        let mut matrix = Matrix::zeros(d, d);
        let mut column = vec![C64::ZERO; d];
        for j in 0..d {
            column.fill(C64::ZERO);
            column[j] = C64::ONE;
            for instr in circuit.iter() {
                let gate = instr.as_gate().expect("unitary circuit");
                apply_gate(&mut column, n, &gate.matrix(), &instr.qubits);
            }
            for (i, &v) in column.iter().enumerate() {
                matrix[(i, j)] = v;
            }
        }
        Ok(Operator { n, matrix })
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1usize << self.n
    }

    /// The dense matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Consumes the operator, returning the matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::generators::{qft, QftStyle};
    use qaec_circuit::NoiseChannel;

    #[test]
    fn qft_operator_is_the_dft_matrix() {
        for n in 1..=4usize {
            let u = Operator::from_circuit(&qft(n, QftStyle::Textbook)).unwrap();
            let d = 1usize << n;
            for j in 0..d {
                for k in 0..d {
                    let expected = C64::cis(2.0 * std::f64::consts::PI * (j * k) as f64 / d as f64)
                        * (1.0 / (d as f64).sqrt());
                    assert!(
                        (u.matrix()[(j, k)] - expected).abs() < 1e-10,
                        "qft{n} [{j},{k}]"
                    );
                }
            }
        }
    }

    #[test]
    fn operators_compose() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).h(0);
        let ab = a.compose(&b).unwrap();
        let u_ab = Operator::from_circuit(&ab).unwrap();
        // b ∘ a as matrices: U_b · U_a.
        let u = Operator::from_circuit(&b)
            .unwrap()
            .into_matrix()
            .mul(Operator::from_circuit(&a).unwrap().matrix());
        assert!(u_ab.matrix().approx_eq(&u, 1e-10));
        // And h·cx·cx·h = I.
        assert!(u_ab.matrix().is_identity(1e-10));
    }

    #[test]
    fn unitarity() {
        let u = Operator::from_circuit(&qft(3, QftStyle::DecomposedNoSwaps)).unwrap();
        assert!(u.matrix().is_unitary(1e-10));
    }

    #[test]
    fn noise_rejected() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::PhaseFlip { p: 0.9 }, &[0]);
        assert_eq!(Operator::from_circuit(&c), Err(SimError::NotUnitary));
    }

    #[test]
    fn memory_bound_respected() {
        let c = Circuit::new(20);
        let err = Operator::from_circuit_bounded(&c, 1024).unwrap_err();
        assert!(matches!(err, SimError::MemoryExceeded { .. }));
    }
}
