//! Pure-state simulation of ideal circuits.

use crate::kernel::apply_gate;
use crate::SimError;
use qaec_circuit::Circuit;
use qaec_math::C64;

/// An `n`-qubit pure state.
///
/// Qubit 0 is the most significant bit of the basis index, matching the
/// gate-matrix convention of `qaec-circuit`.
///
/// # Example
///
/// ```
/// use qaec_circuit::Circuit;
/// use qaec_dmsim::Statevector;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let psi = Statevector::from_circuit(&bell)?;
/// let probs = psi.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12);
/// assert!((probs[3] - 0.5).abs() < 1e-12);
/// # Ok::<(), qaec_dmsim::SimError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Statevector {
    n: usize,
    amps: Vec<C64>,
}

impl Statevector {
    /// The all-zeros state `|0…0⟩`.
    pub fn zero(n: usize) -> Self {
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        Statevector { n, amps }
    }

    /// A state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(
            amps.len().is_power_of_two() && !amps.is_empty(),
            "length must be a power of two"
        );
        Statevector {
            n: amps.len().trailing_zeros() as usize,
            amps,
        }
    }

    /// Runs an ideal circuit on `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// [`SimError::NotUnitary`] if the circuit contains noise.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimError> {
        let mut state = Statevector::zero(circuit.n_qubits());
        state.apply_circuit(circuit)?;
        Ok(state)
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies one gate.
    pub fn apply_gate(&mut self, gate: &qaec_circuit::Gate, qubits: &[usize]) {
        apply_gate(&mut self.amps, self.n, &gate.matrix(), qubits);
    }

    /// Applies every gate of an ideal circuit.
    ///
    /// # Errors
    ///
    /// [`SimError::NotUnitary`] if the circuit contains noise (state
    /// partially applied up to the first noise site is rolled back — the
    /// check happens before any application).
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if !circuit.is_unitary() {
            return Err(SimError::NotUnitary);
        }
        for instr in circuit.iter() {
            let gate = instr.as_gate().expect("unitary circuit");
            apply_gate(&mut self.amps, self.n, &gate.matrix(), &instr.qubits);
        }
        Ok(())
    }

    /// Measurement probabilities in the computational basis.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// `⟨self|other⟩`.
    pub fn inner(&self, other: &Statevector) -> C64 {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(&a, &b)| a.conj() * b)
            .sum()
    }

    /// The squared norm (1 for a valid state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::generators::{
        bernstein_vazirani, grover, mod_mul_7x1_mod15, qft, GroverOptions, QftStyle,
    };
    use qaec_circuit::NoiseChannel;

    #[test]
    fn norm_is_preserved_by_circuits() {
        let c = qft(4, QftStyle::DecomposedNoSwaps);
        let psi = Statevector::from_circuit(&c).unwrap();
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bernstein_vazirani_recovers_hidden_string() {
        let hidden = [true, false, true, true];
        let c = bernstein_vazirani(&hidden);
        let psi = Statevector::from_circuit(&c).unwrap();
        let probs = psi.probabilities();
        // Data register must read the hidden string with certainty
        // (ancilla in |−⟩ superposition). Index bits: q0..q3 data, q4 anc.
        let mut data_index = 0usize;
        for (q, &bit) in hidden.iter().enumerate() {
            if bit {
                data_index |= 1 << (4 - q); // qubit q is bit n-1-q with n=5
            }
        }
        let p: f64 = probs
            .iter()
            .enumerate()
            .filter(|(i, _)| i & !1 == data_index)
            .map(|(_, &p)| p)
            .sum();
        assert!((p - 1.0).abs() < 1e-10, "hidden string probability {p}");
    }

    #[test]
    fn grover_first_iteration_is_exact_for_two_qubits() {
        for marked in 0..4usize {
            let c = grover(
                2,
                GroverOptions {
                    iterations: 1,
                    marked,
                    ..Default::default()
                },
            );
            let psi = Statevector::from_circuit(&c).unwrap();
            let probs = psi.probabilities();
            let p: f64 = (0..2).map(|anc| probs[(marked << 1) | anc]).sum();
            assert!((p - 1.0).abs() < 1e-10, "marked {marked}: {p}");
        }
    }

    #[test]
    fn mod_mul_produces_seven() {
        // Control off: register prepared to |1⟩.
        let psi = Statevector::from_circuit(&mod_mul_7x1_mod15()).unwrap();
        assert!((psi.probabilities()[0b0_0001] - 1.0).abs() < 1e-10);
        // Control on: 7·1 mod 15 = 7.
        let mut with_control = qaec_circuit::Circuit::new(5);
        with_control.x(0);
        with_control.append(&mod_mul_7x1_mod15()).unwrap();
        let psi = Statevector::from_circuit(&with_control).unwrap();
        assert!((psi.probabilities()[0b1_0111] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let c = qft(3, QftStyle::Textbook);
        let psi = Statevector::from_circuit(&c).unwrap();
        for p in psi.probabilities() {
            assert!((p - 1.0 / 8.0).abs() < 1e-10);
        }
    }

    #[test]
    fn noisy_circuit_rejected() {
        let mut c = qaec_circuit::Circuit::new(1);
        c.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
        assert_eq!(Statevector::from_circuit(&c), Err(SimError::NotUnitary));
    }

    #[test]
    fn inner_product() {
        let zero = Statevector::zero(1);
        let mut one = qaec_circuit::Circuit::new(1);
        one.x(0);
        let one = Statevector::from_circuit(&one).unwrap();
        assert!(zero.inner(&one).abs() < 1e-12);
        assert!((zero.inner(&zero) - C64::ONE).abs() < 1e-12);
    }
}
