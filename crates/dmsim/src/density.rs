//! Density-matrix evolution of noisy circuits.

use crate::kernel::apply_gate;
use crate::memory;
use crate::SimError;
use qaec_circuit::{Circuit, Operation};
use qaec_math::{Matrix, C64};

/// An `n`-qubit mixed state as a dense `2^n × 2^n` density matrix.
///
/// Gates apply as `ρ ↦ UρU†`, noise channels as `ρ ↦ Σ KρK†`.
///
/// # Example
///
/// ```
/// use qaec_circuit::{Circuit, NoiseChannel};
/// use qaec_dmsim::density::DensityMatrix;
///
/// // Full depolarizing-ish noise damps purity.
/// let mut c = Circuit::new(1);
/// c.h(0).noise(NoiseChannel::Depolarizing { p: 0.5 }, &[0]);
/// let rho = DensityMatrix::from_circuit(&c)?;
/// assert!((rho.trace().re - 1.0).abs() < 1e-12);
/// assert!(rho.purity() < 1.0);
/// # Ok::<(), qaec_dmsim::SimError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    mat: Matrix,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    pub fn zero(n: usize) -> Self {
        let d = 1usize << n;
        let mut mat = Matrix::zeros(d, d);
        mat[(0, 0)] = C64::ONE;
        DensityMatrix { n, mat }
    }

    /// A density matrix from a pure-state amplitude vector `|ψ⟩⟨ψ|`.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_pure(amps: &[C64]) -> Self {
        assert!(amps.len().is_power_of_two() && !amps.is_empty());
        let n = amps.len().trailing_zeros() as usize;
        let d = amps.len();
        let mat = Matrix::from_fn(d, d, |i, j| amps[i] * amps[j].conj());
        DensityMatrix { n, mat }
    }

    /// Builds a density matrix from raw storage.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with power-of-two dimension.
    pub fn from_matrix(mat: Matrix) -> Self {
        assert!(mat.is_square(), "density matrix must be square");
        assert!(mat.rows().is_power_of_two(), "dimension must be 2^n");
        DensityMatrix {
            n: mat.rows().trailing_zeros() as usize,
            mat,
        }
    }

    /// Evolves `|0…0⟩⟨0…0|` through a (possibly noisy) circuit.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryExceeded`] if the density matrix would not fit
    /// the paper's 8 GB bound.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimError> {
        let n = circuit.n_qubits();
        memory::check(
            memory::operator_bytes(n).saturating_mul(2),
            memory::PAPER_MEMORY_BOUND,
        )?;
        let mut rho = DensityMatrix::zero(n);
        rho.apply_circuit(circuit);
        Ok(rho)
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The dense matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.mat
    }

    /// `tr(ρ)` — 1 for a valid state.
    pub fn trace(&self) -> C64 {
        self.mat.trace()
    }

    /// `tr(ρ²)` — 1 for pure states, `< 1` for mixed ones.
    pub fn purity(&self) -> f64 {
        self.mat.mul_trace(&self.mat).re
    }

    /// Applies `ρ ← AρA†` for an arbitrary (not necessarily unitary)
    /// ℓ-qubit operator `A` on `qubits`, *accumulating* nothing — used as
    /// the building block for both gates and Kraus terms.
    fn conjugate_in_place(&mut self, a: &Matrix, qubits: &[usize]) {
        let d = 1usize << self.n;
        // Left multiply: apply A to every column.
        let mut column = vec![C64::ZERO; d];
        for j in 0..d {
            for (i, c) in column.iter_mut().enumerate() {
                *c = self.mat[(i, j)];
            }
            apply_gate(&mut column, self.n, a, qubits);
            for (i, &c) in column.iter().enumerate() {
                self.mat[(i, j)] = c;
            }
        }
        // Right multiply by A†: apply A* to every row.
        let a_conj = a.conj();
        let mut row = vec![C64::ZERO; d];
        for i in 0..d {
            for (j, r) in row.iter_mut().enumerate() {
                *r = self.mat[(i, j)];
            }
            apply_gate(&mut row, self.n, &a_conj, qubits);
            for (j, &r) in row.iter().enumerate() {
                self.mat[(i, j)] = r;
            }
        }
    }

    /// Applies a unitary gate `ρ ← UρU†`.
    pub fn apply_gate(&mut self, gate: &qaec_circuit::Gate, qubits: &[usize]) {
        self.conjugate_in_place(&gate.matrix(), qubits);
    }

    /// Applies a channel `ρ ← Σ KρK†`.
    pub fn apply_channel(&mut self, channel: &qaec_circuit::NoiseChannel, qubits: &[usize]) {
        let d = 1usize << self.n;
        let mut acc = Matrix::zeros(d, d);
        let original = self.mat.clone();
        for k in channel.kraus() {
            self.mat = original.clone();
            self.conjugate_in_place(&k, qubits);
            acc = acc.add(&self.mat);
        }
        self.mat = acc;
    }

    /// Applies every instruction of a circuit.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        for instr in circuit.iter() {
            match &instr.op {
                Operation::Gate(g) => self.apply_gate(g, &instr.qubits),
                Operation::Noise(ch) => self.apply_channel(ch, &instr.qubits),
            }
        }
    }

    /// `⟨ψ|ρ|ψ⟩` — fidelity with a pure state.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn fidelity_with_pure(&self, amps: &[C64]) -> f64 {
        assert_eq!(amps.len(), 1usize << self.n, "dimension mismatch");
        let mut acc = C64::ZERO;
        for i in 0..amps.len() {
            for j in 0..amps.len() {
                acc += amps[i].conj() * self.mat[(i, j)] * amps[j];
            }
        }
        acc.re
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Statevector;
    use qaec_circuit::generators::random_circuit;
    use qaec_circuit::NoiseChannel;

    #[test]
    fn pure_evolution_matches_statevector() {
        for seed in 0..5u64 {
            let c = random_circuit(3, 20, seed);
            let rho = DensityMatrix::from_circuit(&c).unwrap();
            let psi = Statevector::from_circuit(&c).unwrap();
            let expected = DensityMatrix::from_pure(psi.amplitudes());
            assert!(
                rho.matrix().approx_eq(expected.matrix(), 1e-9),
                "seed {seed}"
            );
            assert!((rho.purity() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_preserved_under_noise() {
        let mut c = qaec_circuit::Circuit::new(2);
        c.h(0)
            .cx(0, 1)
            .noise(NoiseChannel::Depolarizing { p: 0.9 }, &[0])
            .noise(NoiseChannel::AmplitudeDamping { gamma: 0.3 }, &[1]);
        let rho = DensityMatrix::from_circuit(&c).unwrap();
        assert!((rho.trace() - C64::ONE).abs() < 1e-10);
        assert!(rho.matrix().is_hermitian(1e-10));
    }

    #[test]
    fn bit_flip_mixes_computational_basis() {
        // X with prob 1-p on |0⟩: ρ = diag(p, 1-p).
        let p = 0.7;
        let mut c = qaec_circuit::Circuit::new(1);
        c.noise(NoiseChannel::BitFlip { p }, &[0]);
        let rho = DensityMatrix::from_circuit(&c).unwrap();
        assert!((rho.matrix()[(0, 0)] - C64::real(p)).abs() < 1e-12);
        assert!((rho.matrix()[(1, 1)] - C64::real(1.0 - p)).abs() < 1e-12);
    }

    #[test]
    fn phase_flip_kills_coherence() {
        // |+⟩ under full phase flip (p = 0.5): off-diagonals vanish.
        let mut c = qaec_circuit::Circuit::new(1);
        c.h(0).noise(NoiseChannel::PhaseFlip { p: 0.5 }, &[0]);
        let rho = DensityMatrix::from_circuit(&c).unwrap();
        assert!(rho.matrix()[(0, 1)].abs() < 1e-12);
        assert!((rho.matrix()[(0, 0)] - C64::real(0.5)).abs() < 1e-12);
    }

    #[test]
    fn fidelity_with_pure_state() {
        let mut bell = qaec_circuit::Circuit::new(2);
        bell.h(0).cx(0, 1);
        let rho = DensityMatrix::from_circuit(&bell).unwrap();
        let psi = Statevector::from_circuit(&bell).unwrap();
        assert!((rho.fidelity_with_pure(psi.amplitudes()) - 1.0).abs() < 1e-10);
        let orthogonal = Statevector::zero(2);
        let f = rho.fidelity_with_pure(orthogonal.amplitudes());
        assert!((f - 0.5).abs() < 1e-10); // |⟨00|Bell⟩|² = 1/2
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let gamma = 0.25;
        let mut c = qaec_circuit::Circuit::new(1);
        c.x(0).noise(NoiseChannel::AmplitudeDamping { gamma }, &[0]);
        let rho = DensityMatrix::from_circuit(&c).unwrap();
        assert!((rho.matrix()[(1, 1)] - C64::real(1.0 - gamma)).abs() < 1e-12);
        assert!((rho.matrix()[(0, 0)] - C64::real(gamma)).abs() < 1e-12);
    }
}
