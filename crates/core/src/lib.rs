//! Approximate equivalence checking of noisy quantum circuits.
//!
//! Rust reproduction of Hong, Ying, Feng, Zhou & Li, *"Approximate
//! Equivalence Checking of Noisy Quantum Circuits"*, DAC 2021
//! (arXiv:2103.11595).
//!
//! An ideal circuit `U` and its noisy implementation `E = {Eᵢ}` are
//! **ε-equivalent** when their Jamiolkowski fidelity
//!
//! ```text
//! F_J(E, U) = (1/d²) · Σᵢ |tr(U† Eᵢ)|²        (d = 2^n)
//! ```
//!
//! exceeds `1 − ε`. This crate computes `F_J` by contracting miter-like
//! tensor networks on Tensor Decision Diagrams, with the paper's two
//! algorithms:
//!
//! * [`fidelity_alg1`] — one small trace network per Kraus selection, with
//!   a shared computed table, best-first term ordering and two-sided early
//!   termination: the right choice when noise sites are few;
//! * [`fidelity_alg2`] — a single doubled network
//!   (`tr((U†⊗Uᵀ)·M_E)`): the right choice when noise is everywhere;
//! * [`check_equivalence`] / [`jamiolkowski_fidelity`] — the one-shot
//!   entry points with automatic algorithm selection (thin wrappers over
//!   a single-query session);
//! * [`Checker`] / [`CompiledCheck`] — the compile-once session API:
//!   validation, algorithm selection, network construction and
//!   contraction planning run once, then ε-queries, ε-sweeps and
//!   noise sweeps reuse the compiled artifacts and one warm store;
//! * [`Service`] — the serving layer: a content-keyed, byte-budgeted
//!   LRU cache of compiled sessions with single-flight compilation,
//!   answering check/sweep request streams (what `qaec serve` runs);
//! * [`fidelity_monte_carlo`] — an importance-sampling estimator with
//!   reported standard errors, for when both exact algorithms are too
//!   expensive (beyond the paper);
//! * [`exact::check_unitary_equivalence`] — the noiseless (QCEC-style)
//!   problem, decided by a single miter trace.
//!
//! Optimisations from the paper's §IV-C — tree-decomposition contraction
//! orders, the shared computed table, cyclic local gate cancellation and
//! SWAP elimination — are all implemented and individually switchable
//! through [`CheckOptions`].
//!
//! # Example
//!
//! ```
//! use qaec::{check_equivalence, CheckOptions, Verdict};
//! use qaec_circuit::generators::{qft, QftStyle};
//! use qaec_circuit::noise_insertion::insert_random_noise;
//! use qaec_circuit::NoiseChannel;
//!
//! // A 3-qubit QFT with two random depolarizing faults (p = 0.999).
//! let ideal = qft(3, QftStyle::DecomposedNoSwaps);
//! let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 2, 7);
//! let report = check_equivalence(&ideal, &noisy, 0.01, &CheckOptions::default())?;
//! assert_eq!(report.verdict, Verdict::Equivalent);
//! # Ok::<(), qaec::QaecError>(())
//! ```

pub mod alg1;
pub mod alg2;
pub mod alg_mc;
pub mod checker;
pub mod engine;
pub mod error;
pub mod exact;
pub mod miter;
pub mod optimize;
pub mod options;
pub mod report;
pub mod service;
pub mod session;

pub use alg1::{fidelity_alg1, Alg1Report};
pub use alg2::{fidelity_alg2, Alg2Report};
pub use alg_mc::{fidelity_monte_carlo, McReport};
pub use checker::{
    auto_choice, check_equivalence, jamiolkowski_fidelity, mpo_favored, AUTO_TERM_THRESHOLD,
    MPO_WIDTH_THRESHOLD,
};
pub use error::QaecError;
pub use options::{
    default_shared_table, default_store_reclaim, default_sweep_lanes, default_threads,
    AlgorithmChoice, CheckOptions, SharedTableMode, StoreReclaimMode, TermOrder, VarOrderStyle,
};
pub use qaec_tdd::{SharedTddStore, StoreEpoch, TddStats};
pub use report::{AlgorithmUsed, EquivalenceReport, Verdict};
pub use service::{
    CacheOutcome, Service, ServiceConfig, ServiceQuery, ServiceReply, ServiceRequest,
    ServiceResponse, ServiceStats,
};
pub use session::{Checker, CompiledCheck, EpsilonPoint, SweepPoint};

use qaec_circuit::Circuit;

/// Shared input validation for both algorithms.
///
/// # Errors
///
/// [`QaecError::WidthMismatch`], [`QaecError::IdealNotUnitary`] or
/// [`QaecError::InvalidEpsilon`].
pub(crate) fn validate(
    ideal: &Circuit,
    noisy: &Circuit,
    epsilon: Option<f64>,
) -> Result<(), QaecError> {
    if ideal.n_qubits() != noisy.n_qubits() {
        return Err(QaecError::WidthMismatch {
            ideal: ideal.n_qubits(),
            noisy: noisy.n_qubits(),
        });
    }
    if !ideal.is_unitary() {
        return Err(QaecError::IdealNotUnitary);
    }
    if let Some(eps) = epsilon {
        validate_epsilon(eps)?;
    }
    Ok(())
}

/// The ε range check alone, for session queries on already-validated
/// circuit pairs (the comparison against the *fidelity* lives in
/// [`Verdict::decide`]; this only polices `ε ∈ [0, 1]`).
pub(crate) fn validate_epsilon(epsilon: f64) -> Result<(), QaecError> {
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(QaecError::InvalidEpsilon { value: epsilon });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::NoiseChannel;

    #[test]
    fn validation_catches_bad_inputs() {
        let a = Circuit::new(2);
        let b = Circuit::new(3);
        assert!(matches!(
            validate(&a, &b, None),
            Err(QaecError::WidthMismatch { ideal: 2, noisy: 3 })
        ));

        let mut noisy_ideal = Circuit::new(2);
        noisy_ideal.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
        assert_eq!(
            validate(&noisy_ideal, &a, None),
            Err(QaecError::IdealNotUnitary)
        );

        assert_eq!(
            validate(&a, &a, Some(1.5)),
            Err(QaecError::InvalidEpsilon { value: 1.5 })
        );
        assert!(validate(&a, &a, Some(0.1)).is_ok());
    }
}
