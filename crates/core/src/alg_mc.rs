//! Monte Carlo fidelity estimation (beyond the paper).
//!
//! The paper's related work (Li et al., DAC'20) simulates noisy circuits
//! by sampling Kraus strings; the same idea yields an *estimator* for the
//! Jamiolkowski fidelity. Writing `F_J = Σᵢ tᵢ` with
//! `tᵢ = |tr(U†Eᵢ)|²/d²` and sampling strings `i` with probability
//! `pᵢ = Π` (per-site Kraus masses), the importance-weighted average
//!
//! ```text
//! F̂ = (1/N) Σ_{i ~ p} tᵢ / pᵢ
//! ```
//!
//! is unbiased with low variance precisely in the regime the paper
//! targets (light noise, where `tᵢ ≈ pᵢ`). Each sampled string costs one
//! miter contraction — and because light-noise sampling hits the same few
//! strings repeatedly, a per-string memo makes the expected cost a
//! handful of contractions regardless of `N`.
//!
//! This gives a third evaluation path between Algorithm I (exact,
//! exponential in noise sites) and Algorithm II (exact, doubled network):
//! approximate, with a reported standard error, at near-constant cost.

use crate::engine::TermEngine;
use crate::error::QaecError;
use crate::miter::{build_trace_network, identity_map, Alg1Template};
use crate::optimize::{cancel_inverse_pairs, eliminate_swaps};
use crate::options::CheckOptions;
use crate::validate;
use qaec_circuit::Circuit;
use qaec_tdd::TddStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Outcome of a Monte Carlo fidelity estimation.
#[derive(Clone, Debug, PartialEq)]
pub struct McReport {
    /// The unbiased estimate `F̂`.
    pub estimate: f64,
    /// Standard error of the mean (0 when every sample hit the memo with
    /// identical ratios).
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
    /// Distinct Kraus strings actually contracted.
    pub distinct_strings: usize,
    /// Largest intermediate diagram, in nodes.
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Decision-diagram statistics, merged across all workers.
    pub stats: TddStats,
}

/// Estimates `F_J(E, U)` by importance-sampled Kraus strings.
///
/// The sample stream is drawn up front (deterministic in `seed` alone,
/// whatever `options.threads` is), the distinct strings are contracted
/// on the shared work-stealing [`crate::engine`], and the estimator is
/// then replayed over the sample sequence in draw order. With the
/// shared TDD store (`options.shared_table`, on by default for
/// `threads > 1`) every string's trace is a pure function of the string
/// — the store's canonical weight interning is scheduling-independent —
/// so the estimate is **bit-reproducible in `(seed, threads)`** and in
/// fact bit-identical across every *shared-store* run (under the `Auto`
/// default, `threads == 1` uses the private store instead; force
/// [`crate::options::SharedTableMode::On`] for a bit-comparable
/// sequential reference). With [`crate::options::SharedTableMode::Off`]
/// each private manager snaps weights along its own interning history
/// (tolerance ≈1e-10) and multi-worker estimates are reproducible only
/// to that tolerance.
/// Shares the miter machinery (and therefore the §IV-C optimisations
/// and contraction options) with Algorithm I.
///
/// # Errors
///
/// As [`crate::fidelity_alg1`]: invalid inputs or an expired deadline.
///
/// # Example
///
/// ```
/// use qaec::alg_mc::fidelity_monte_carlo;
/// use qaec::CheckOptions;
/// use qaec_circuit::generators::{qft, QftStyle};
/// use qaec_circuit::noise_insertion::insert_random_noise;
/// use qaec_circuit::NoiseChannel;
///
/// let ideal = qft(3, QftStyle::DecomposedNoSwaps);
/// let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 4, 1);
/// let report = fidelity_monte_carlo(&ideal, &noisy, 500, 42, &CheckOptions::default())?;
/// assert!((report.estimate - 0.996).abs() < 0.01);
/// # Ok::<(), qaec::QaecError>(())
/// ```
pub fn fidelity_monte_carlo(
    ideal: &Circuit,
    noisy: &Circuit,
    samples: usize,
    seed: u64,
    options: &CheckOptions,
) -> Result<McReport, QaecError> {
    validate(ideal, noisy, None)?;
    let start = Instant::now();

    let mut template = Alg1Template::build(ideal, noisy);
    let n_wires = template.n_wires;
    let final_map = if options.swap_elimination {
        eliminate_swaps(&mut template.elements, n_wires)
    } else {
        identity_map(n_wires)
    };
    if options.local_optimization {
        cancel_inverse_pairs(&mut template.elements, n_wires);
    }

    let d = (1u64 << noisy.n_qubits()) as f64;
    let d2 = d * d;

    // Shared plan/order across instantiations (identical structure).
    let zero_choice = vec![0usize; template.sites.len()];
    let first = {
        let elements = template.instantiate(&zero_choice);
        build_trace_network(&elements, n_wires, &final_map, options.var_order)
    };
    let plan = first
        .network
        .plan_parallel(options.strategy, options.threads.max(1));
    let order = first.order;

    // Per-site cumulative mass tables for sampling.
    let cumulative: Vec<Vec<f64>> = template
        .sites
        .iter()
        .map(|site| {
            let mut acc = 0.0;
            site.masses
                .iter()
                .map(|&m| {
                    acc += m;
                    acc
                })
                .collect()
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let samples = samples.max(1);

    // Draw the whole sample stream first: the RNG sequence (and thus the
    // estimate) is fixed by `seed` alone, independent of thread count.
    let mut drawn: Vec<usize> = Vec::with_capacity(samples); // index into `distinct`
    let mut distinct: Vec<Vec<usize>> = Vec::new();
    let mut probabilities: Vec<f64> = Vec::new();
    let mut memo: HashMap<Vec<usize>, usize> = HashMap::new();
    for _ in 0..samples {
        let mut choice = Vec::with_capacity(template.sites.len());
        let mut probability = 1.0f64;
        for (site, cum) in template.sites.iter().zip(&cumulative) {
            let total = *cum.last().unwrap_or(&1.0);
            let u: f64 = rng.gen_range(0.0..total);
            let idx = cum.partition_point(|&c| c <= u).min(site.masses.len() - 1);
            probability *= site.masses[idx];
            choice.push(idx);
        }
        let slot = *memo.entry(choice.clone()).or_insert_with(|| {
            distinct.push(choice);
            probabilities.push(probability);
            distinct.len() - 1
        });
        drawn.push(slot);
    }

    // Contract each distinct string once, work-stolen across
    // `options.threads` workers.
    let engine = TermEngine {
        template: &template,
        final_map: &final_map,
        plan: &plan,
        order: &order,
        options,
        d2,
        warm_store: None,
    };
    let outcome = engine.run_fixed(&distinct)?;
    let ratios: Vec<f64> = outcome
        .terms
        .iter()
        .zip(&probabilities)
        .map(|(&term, &p)| if p > 0.0 { term / p } else { 0.0 })
        .collect();

    // Welford online mean/variance, replayed in draw order.
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    for (k, &slot) in drawn.iter().enumerate() {
        let ratio = ratios[slot];
        let delta = ratio - mean;
        mean += delta / (k + 1) as f64;
        m2 += delta * (ratio - mean);
    }

    let variance = if samples > 1 {
        m2 / (samples - 1) as f64
    } else {
        0.0
    };
    Ok(McReport {
        estimate: mean,
        std_error: (variance / samples as f64).sqrt(),
        samples,
        distinct_strings: distinct.len().max(1),
        max_nodes: outcome.max_nodes,
        elapsed: start.elapsed(),
        stats: outcome.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity_alg1;
    use qaec_circuit::generators::random_circuit;
    use qaec_circuit::noise_insertion::insert_random_noise;
    use qaec_circuit::NoiseChannel;

    fn opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn unbiased_against_exact_value() {
        for seed in 0..3u64 {
            let ideal = random_circuit(2, 10, seed);
            let noisy =
                insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.95 }, 2, seed + 7);
            let exact = fidelity_alg1(&ideal, &noisy, None, &opts())
                .expect("exact")
                .fidelity_lower;
            let mc = fidelity_monte_carlo(&ideal, &noisy, 4000, seed, &opts()).expect("mc");
            let tolerance = (5.0 * mc.std_error).max(0.01);
            assert!(
                (mc.estimate - exact).abs() < tolerance,
                "seed {seed}: {} vs exact {exact} (se {})",
                mc.estimate,
                mc.std_error
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let ideal = random_circuit(2, 8, 1);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.9 }, 2, 2);
        // One worker: bitwise reproducibility is a single-manager
        // guarantee (work stealing makes the string→manager partition
        // scheduler-dependent, shifting results by the interning
        // tolerance).
        let seq = CheckOptions {
            threads: 1,
            ..opts()
        };
        let a = fidelity_monte_carlo(&ideal, &noisy, 200, 9, &seq).unwrap();
        let b = fidelity_monte_carlo(&ideal, &noisy, 200, 9, &seq).unwrap();
        // All deterministic fields agree (elapsed is wall-clock).
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.std_error, b.std_error);
        assert_eq!(a.distinct_strings, b.distinct_strings);
        let c = fidelity_monte_carlo(&ideal, &noisy, 200, 10, &seq).unwrap();
        assert_ne!(a.estimate, c.estimate);
    }

    #[test]
    fn noiseless_circuit_is_exact_with_one_string() {
        let c = random_circuit(3, 12, 4);
        let mc = fidelity_monte_carlo(&c, &c, 50, 0, &opts()).unwrap();
        assert!((mc.estimate - 1.0).abs() < 1e-9);
        assert_eq!(mc.distinct_strings, 1);
        assert!(mc.std_error < 1e-9);
    }

    #[test]
    fn light_noise_hits_the_memo() {
        // p = 0.999 on 5 sites: nearly every sample is the identity
        // string, so distinct strings ≪ samples.
        let ideal = random_circuit(3, 10, 5);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 5, 6);
        let mc = fidelity_monte_carlo(&ideal, &noisy, 1000, 3, &opts()).unwrap();
        assert!(
            mc.distinct_strings < 30,
            "expected heavy memoization, got {} distinct strings",
            mc.distinct_strings
        );
        assert!(mc.estimate > 0.9);
    }

    #[test]
    fn deadline_respected() {
        let ideal = random_circuit(2, 8, 6);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.9 }, 2, 7);
        let options = CheckOptions {
            deadline: Some(Instant::now() - Duration::from_secs(1)),
            ..CheckOptions::default()
        };
        assert_eq!(
            fidelity_monte_carlo(&ideal, &noisy, 100, 0, &options),
            Err(QaecError::Timeout)
        );
    }
}
