//! The compile-once session API: build a [`Checker`], compile it once,
//! query the resulting [`CompiledCheck`] many times.
//!
//! The paper's whole evaluation is sweep-shaped — Table I re-checks one
//! circuit pair across noise strengths, Fig. 7 across ε — and the
//! north-star workload is the same shape at service scale: the *pair* is
//! the expensive part, the *query* is cheap. The one-shot free functions
//! ([`crate::check_equivalence`], [`crate::jamiolkowski_fidelity`])
//! re-validate, rebuild the miter or doubled network, re-run min-fill
//! planning and allocate a fresh store on every call. A session splits
//! that:
//!
//! * [`Checker::compile`] performs validation, algorithm selection,
//!   §IV-C optimisation, miter/doubled-network construction, variable
//!   ordering and contraction planning **exactly once**;
//! * [`CompiledCheck`] answers queries against those artifacts:
//!   [`CompiledCheck::fidelity`] (cached after the first evaluation),
//!   [`CompiledCheck::verdict`] (free once cached bounds decide the new
//!   ε; Algorithm I re-runs only when they cannot),
//!   [`CompiledCheck::sweep_epsilon`], and
//!   [`CompiledCheck::sweep_noise`] — which re-instantiates the Kraus
//!   weights on the compiled plan instead of replanning, reusing one
//!   warm [`SharedTddStore`] across the whole batch.
//!
//! Warm-store reuse is value-transparent: the shared store's value-pure
//! interning makes every contraction a pure function of its inputs, so a
//! query on a store warmed by earlier queries is **bit-identical** to
//! the same query on a fresh store — the reuse only saves re-interning
//! work. Per-query statistics are epoch-fenced
//! ([`SharedTddStore::reset_between_runs`]) so each report counts its
//! own work, not the session's history.
//!
//! The same quiescent boundaries (between queries, sweep points and
//! lane batches — no diagram edges survive them) drive **epoch-based
//! store reclamation** ([`crate::StoreReclaimMode`], the
//! `store_reclaim` knob): the session swaps the warm store for
//! [`SharedTddStore::successor`] — always (`On`), past a size
//! threshold (`Auto`, the default) or never (`Off`) — bounding a long
//! session's footprint without moving a result bit.
//! [`CompiledCheck::warm_store_bytes`] reports the live footprint,
//! [`CompiledCheck::warm_store_peak_bytes`] the high-water mark across
//! swaps.
//!
//! The free functions remain as thin wrappers over a single-query
//! session, with identical results and error precedence.
//!
//! # Example
//!
//! ```
//! use qaec::{Checker, CheckOptions, Verdict};
//! use qaec_circuit::{Circuit, NoiseChannel};
//!
//! // The paper's Example 3 pair: F_J = p².
//! let p = 0.95;
//! let mut noisy = Circuit::new(2);
//! noisy.h(0)
//!     .noise(NoiseChannel::BitFlip { p }, &[1])
//!     .cp(std::f64::consts::FRAC_PI_2, 1, 0)
//!     .noise(NoiseChannel::PhaseFlip { p }, &[0])
//!     .h(1)
//!     .swap(0, 1);
//! let mut check = Checker::new(&noisy.ideal(), &noisy)
//!     .options(CheckOptions::default())
//!     .compile()?;
//!
//! // Many queries, one compilation.
//! assert!((check.fidelity()? - p * p).abs() < 1e-9);
//! assert_eq!(check.verdict(0.1)?, Verdict::Equivalent);   // 0.9025 > 0.9
//! assert_eq!(check.verdict(0.05)?, Verdict::NotEquivalent);
//!
//! // An ε-sweep over the cached fidelity costs nothing more.
//! let points = check.sweep_epsilon(&[0.2, 0.1, 0.05, 0.01])?;
//! assert_eq!(points.len(), 4);
//! assert_eq!(points[0].verdict, Verdict::Equivalent);
//! # Ok::<(), qaec::QaecError>(())
//! ```

use crate::alg1::Alg1Artifacts;
use crate::alg2::Alg2Artifacts;
use crate::checker::{auto_choice, mpo_favored};
use crate::error::QaecError;
use crate::options::{clamp_lane_width, AlgorithmChoice, CheckOptions};
use crate::report::{AlgorithmUsed, EquivalenceReport, Verdict};
use crate::{validate, validate_epsilon};
use qaec_circuit::{Circuit, NoiseChannel};
use qaec_mpo::{MpoOptions, MpoOutcome, MpoPlan};
use qaec_tdd::{SharedTddStore, TddStats};
use std::fmt;
use std::sync::Arc;

use qaec_tdd::sync::Mutex;
use std::time::Duration;

/// A swappable handle to a session's warm shared store.
///
/// Epoch-based reclamation retires the store for a compact successor
/// ([`SharedTddStore::successor`]) at *quiescent* boundaries — between
/// queries and sweep points, when no contraction holds ids into the
/// arenas. Every holder of the cell (the session, its clones, the
/// service cache's sizing path) observes the swap through this shared
/// handle, so the retired store's arenas free as soon as the last
/// in-flight reference drops.
///
/// Cloning shares the cell — exactly the sharing the session's `Clone`
/// had when it cloned the store `Arc` directly.
#[derive(Clone, Debug)]
pub(crate) struct StoreCell(Arc<Mutex<Arc<SharedTddStore>>>);

impl StoreCell {
    fn new(store: Arc<SharedTddStore>) -> StoreCell {
        StoreCell(Arc::new(Mutex::new(store)))
    }

    /// The current store (an owned handle — safe across a concurrent
    /// swap; the handle keeps the generation it observed alive).
    pub(crate) fn get(&self) -> Arc<SharedTddStore> {
        self.0.lock().expect("store cell poisoned").clone()
    }

    fn swap(&self, next: Arc<SharedTddStore>) {
        *self.0.lock().expect("store cell poisoned") = next;
    }
}

/// Staged builder for a compiled equivalence check: name the circuit
/// pair, optionally set [`CheckOptions`], then [`Checker::compile`].
///
/// # Example
///
/// ```
/// use qaec::{AlgorithmChoice, Checker, CheckOptions};
/// use qaec_circuit::generators::{qft, QftStyle};
/// use qaec_circuit::noise_insertion::insert_random_noise;
/// use qaec_circuit::NoiseChannel;
///
/// let ideal = qft(3, QftStyle::DecomposedNoSwaps);
/// let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 2, 7);
/// let mut check = Checker::new(&ideal, &noisy)
///     .options(CheckOptions {
///         algorithm: AlgorithmChoice::AlgorithmII,
///         ..CheckOptions::default()
///     })
///     .compile()?;
/// assert!(check.fidelity()? > 0.99);
/// # Ok::<(), qaec::QaecError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Checker {
    ideal: Circuit,
    noisy: Circuit,
    options: CheckOptions,
}

impl Checker {
    /// Names the circuit pair to check (nothing is validated or built
    /// until [`Checker::compile`]).
    pub fn new(ideal: &Circuit, noisy: &Circuit) -> Checker {
        Checker {
            ideal: ideal.clone(),
            noisy: noisy.clone(),
            options: CheckOptions::default(),
        }
    }

    /// Sets the checker options (algorithm, strategy, threads, store
    /// mode, …). Defaults to [`CheckOptions::default`].
    pub fn options(mut self, options: CheckOptions) -> Checker {
        self.options = options;
        self
    }

    /// Validates the pair and performs every input-independent stage
    /// exactly once: algorithm selection, §IV-C optimisation,
    /// miter/doubled-network construction, variable ordering and
    /// contraction planning (component-parallel on `options.threads`
    /// workers). The returned [`CompiledCheck`] answers many queries
    /// against these artifacts.
    ///
    /// # Errors
    ///
    /// [`QaecError::WidthMismatch`] or [`QaecError::IdealNotUnitary`] —
    /// the same validation, in the same precedence, as the one-shot
    /// functions.
    pub fn compile(self) -> Result<CompiledCheck, QaecError> {
        validate(&self.ideal, &self.noisy, None)?;
        Ok(CompiledCheck::compile_prevalidated(
            &self.ideal,
            &self.noisy,
            self.options,
        ))
    }
}

/// The per-algorithm compiled artifacts behind a [`CompiledCheck`].
#[derive(Clone, Debug)]
enum Backend {
    Alg1(Alg1Artifacts),
    Alg2(Alg2Artifacts),
    Mpo(MpoBackend),
}

/// The Algorithm III artifacts: a compiled MPO program plus, under the
/// `Auto` portfolio, a lazily-compiled exact session to escalate to
/// when the MPO interval cannot decide a query.
#[derive(Clone)]
struct MpoBackend {
    plan: Arc<MpoPlan>,
    /// `Some` when compiled under [`AlgorithmChoice::Auto`]; `None`
    /// when Algorithm III was forced explicitly (a straddling interval
    /// then surfaces as [`Verdict::Inconclusive`] instead).
    escalation: Option<Arc<Mutex<EscalationState>>>,
}

impl fmt::Debug for MpoBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpoBackend")
            .field("n_qubits", &self.plan.n_qubits())
            .field("channels", &self.plan.channels().len())
            .field("escalation", &self.escalation.is_some())
            .finish()
    }
}

/// The portfolio's exact fallback, compiled on first use so the cheap
/// MPO pass pays nothing for it when the interval decides outright.
enum EscalationState {
    Pending { ideal: Circuit, noisy: Circuit },
    Ready(Box<CompiledCheck>),
}

impl EscalationState {
    /// The compiled exact fallback session, compiling it on first use
    /// with the caller's options forced to the algorithm the exact
    /// [`auto_choice`] picks for the pair — so an escalated `Auto`
    /// query is bit-identical to what `Auto` computed before the
    /// portfolio existed.
    fn ready(&mut self, options: &CheckOptions) -> &mut CompiledCheck {
        if let EscalationState::Pending { ideal, noisy } = self {
            let forced = CheckOptions {
                algorithm: match auto_choice(noisy) {
                    AlgorithmUsed::AlgorithmI => AlgorithmChoice::AlgorithmI,
                    AlgorithmUsed::AlgorithmII | AlgorithmUsed::Mpo => AlgorithmChoice::AlgorithmII,
                },
                ..options.clone()
            };
            let compiled = CompiledCheck::compile_prevalidated(ideal, noisy, forced);
            *self = EscalationState::Ready(Box::new(compiled));
        }
        match self {
            EscalationState::Ready(check) => check,
            EscalationState::Pending { .. } => unreachable!("compiled above"),
        }
    }
}

/// The tightest proven fidelity interval so far, with the evidence of
/// the run that established it (for cache-served reports).
#[derive(Clone, Debug)]
struct Knowledge {
    lower: f64,
    upper: f64,
    /// The MPO midpoint estimate, when Algorithm III established the
    /// interval — what [`CompiledCheck::fidelity`] returns for an
    /// explicitly-forced approximate session.
    estimate: Option<f64>,
    /// The algorithm whose run established the interval (under the
    /// portfolio this can differ from the session's compiled backend).
    algorithm: AlgorithmUsed,
    terms_computed: usize,
    total_terms: usize,
    max_nodes: usize,
    elapsed: Duration,
    stats: TddStats,
    trunc_error: Option<f64>,
    bond_max: Option<usize>,
    cross_check: Option<bool>,
}

impl Knowledge {
    /// Whether the interval is a point (the exact fidelity is known).
    fn exact(&self) -> bool {
        self.upper <= self.lower
    }

    fn width(&self) -> f64 {
        (self.upper - self.lower).max(0.0)
    }

    /// Evidence of an Algorithm III run, interval and estimate alike.
    fn from_mpo(out: &MpoOutcome) -> Knowledge {
        Knowledge {
            lower: out.f_lo,
            upper: out.f_hi,
            estimate: Some(out.fidelity),
            algorithm: AlgorithmUsed::Mpo,
            terms_computed: 1,
            total_terms: 1,
            max_nodes: out.bond_max,
            elapsed: out.elapsed,
            stats: TddStats::default(),
            trunc_error: Some(out.trunc_error),
            bond_max: Some(out.bond_max),
            cross_check: None,
        }
    }

    /// Evidence of the run behind an [`EquivalenceReport`] (exact
    /// backends and escalated portfolio queries).
    fn from_report(report: &EquivalenceReport) -> Knowledge {
        Knowledge {
            lower: report.fidelity_bounds.0,
            upper: report.fidelity_bounds.1,
            estimate: None,
            algorithm: report.algorithm,
            terms_computed: report.terms_computed,
            total_terms: report.total_terms,
            max_nodes: report.max_nodes,
            elapsed: report.elapsed,
            stats: report.stats,
            trunc_error: report.trunc_error,
            bond_max: report.bond_max,
            cross_check: report.cross_check,
        }
    }
}

/// One row of an ε-sweep ([`CompiledCheck::sweep_epsilon`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpsilonPoint {
    /// The threshold queried.
    pub epsilon: f64,
    /// The decision at this ε.
    pub verdict: Verdict,
    /// The proven fidelity interval the decision was taken on (a point
    /// once the exact fidelity is known).
    pub fidelity_bounds: (f64, f64),
}

/// One row of a noise sweep ([`CompiledCheck::sweep_noise`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// The Jamiolkowski fidelity at this noise point (exact — sweeps
    /// evaluate every term so the per-point value matches the one-shot
    /// [`crate::jamiolkowski_fidelity`] bit for bit).
    pub fidelity: f64,
    /// The ε-decision at this point.
    pub verdict: Verdict,
    /// Largest intermediate diagram, in nodes. For a lane-batched
    /// Algorithm II point this counts the batch's shared *lane-diagram*
    /// skeleton (every point of the batch reports the same number) —
    /// not comparable to the scalar path's per-point count.
    pub max_nodes: usize,
    /// Wall-clock time of this point's contraction (planning is paid
    /// once at compile time, not here). Lane-batched points report the
    /// whole batch's single traversal.
    pub elapsed: Duration,
    /// Decision-diagram statistics of this point alone — epoch-fenced on
    /// the session's warm store, so warm reuse shows up as fewer
    /// `nodes_created`, not as double-counted history. Lane-batched
    /// points share their batch's single-traversal statistics.
    pub stats: TddStats,
}

/// A compiled equivalence check: reusable artifacts (miter or doubled
/// network, variable order, contraction plan, warm store) answering many
/// cheap queries. Build one with [`Checker::compile`].
///
/// Queries are *incremental*: every run tightens a cached fidelity
/// interval, and any later query the interval already decides — a
/// repeated [`CompiledCheck::fidelity`], a [`CompiledCheck::verdict`] at
/// a new ε the bounds cover, a whole [`CompiledCheck::sweep_epsilon`]
/// after one exact evaluation — is answered without touching a diagram.
#[derive(Clone, Debug)]
pub struct CompiledCheck {
    options: CheckOptions,
    algorithm: AlgorithmUsed,
    backend: Backend,
    /// The session's warm shared store, when the configured store mode
    /// resolves on for this algorithm and worker count. Reused across
    /// every query and sweep point: later queries hash-cons against
    /// everything earlier ones interned (value-transparent — interning
    /// keeps results bit-identical to fresh-store runs). Held through a
    /// swappable cell so `options.store_reclaim` can retire the store
    /// for a compact successor at quiescent boundaries.
    store: Option<StoreCell>,
    knowledge: Option<Knowledge>,
}

impl CompiledCheck {
    /// [`Checker::compile`] minus validation, for the one-shot wrappers
    /// that already validated (so they never validate twice).
    pub(crate) fn compile_prevalidated(
        ideal: &Circuit,
        noisy: &Circuit,
        options: CheckOptions,
    ) -> CompiledCheck {
        let algorithm = match options.algorithm {
            // The portfolio: try the cheap MPO pass on wide, shallowly
            // entangled pairs (escalating when its interval cannot
            // decide); everything else goes straight to an exact
            // backend, exactly as before.
            AlgorithmChoice::Auto if mpo_favored(noisy) => AlgorithmUsed::Mpo,
            AlgorithmChoice::Auto => auto_choice(noisy),
            AlgorithmChoice::AlgorithmI => AlgorithmUsed::AlgorithmI,
            AlgorithmChoice::AlgorithmII => AlgorithmUsed::AlgorithmII,
            AlgorithmChoice::Mpo => AlgorithmUsed::Mpo,
        };
        let (backend, store) = match algorithm {
            AlgorithmUsed::AlgorithmI => {
                let artifacts = Alg1Artifacts::compile(ideal, noisy, &options);
                let workers = artifacts.workers(&options);
                let store = options
                    .shared_table
                    .enabled_for(workers)
                    .then(|| StoreCell::new(SharedTddStore::new()));
                (Backend::Alg1(artifacts), store)
            }
            AlgorithmUsed::AlgorithmII => {
                let artifacts = Alg2Artifacts::compile(ideal, noisy, &options);
                let store = (options.shared_table != crate::SharedTableMode::Off)
                    .then(|| StoreCell::new(SharedTddStore::new()));
                (Backend::Alg2(artifacts), store)
            }
            AlgorithmUsed::Mpo => {
                // Only the `Auto` portfolio gets an exact fallback; a
                // forced Algorithm III session reports Inconclusive
                // when its interval straddles the threshold. The MPO
                // engine works on dense site tensors, so no
                // decision-diagram store is allocated — the escalated
                // session (compiled lazily) brings its own.
                let escalation = (options.algorithm == AlgorithmChoice::Auto).then(|| {
                    Arc::new(Mutex::new(EscalationState::Pending {
                        ideal: ideal.clone(),
                        noisy: noisy.clone(),
                    }))
                });
                let backend = MpoBackend {
                    plan: Arc::new(MpoPlan::compile(ideal, noisy)),
                    escalation,
                };
                (Backend::Mpo(backend), None)
            }
        };
        CompiledCheck {
            options,
            algorithm,
            backend,
            store,
            knowledge: None,
        }
    }

    /// Which algorithm the session compiled for (resolved from
    /// [`AlgorithmChoice::Auto`] at compile time).
    pub fn algorithm(&self) -> AlgorithmUsed {
        self.algorithm
    }

    /// The options the session was compiled with.
    pub fn options(&self) -> &CheckOptions {
        &self.options
    }

    /// The session's current warm shared store, when the configured
    /// store mode resolved on at compile time — `None` for
    /// private-store sessions. An owned handle: reclamation may swap
    /// the cell while the caller still runs against this generation.
    pub(crate) fn warm_store(&self) -> Option<Arc<SharedTddStore>> {
        self.store.as_ref().map(StoreCell::get)
    }

    /// The swappable store cell itself, for holders (the service cache)
    /// that must observe reclamation swaps instead of pinning one
    /// generation.
    pub(crate) fn warm_store_cell(&self) -> Option<&StoreCell> {
        self.store.as_ref()
    }

    /// Bytes of backing storage held by the session's warm store
    /// ([`SharedTddStore::bytes_used`]) — the footprint a byte-budgeted
    /// session cache accounts against. 0 for private-store sessions
    /// (Algorithm I at one worker under [`crate::SharedTableMode::Auto`]),
    /// whose per-query arenas die with each query.
    ///
    /// Steps down when `options.store_reclaim` retires the store for a
    /// compact successor at a quiescent boundary; with reclamation off
    /// the shared arenas are append-only and the number is monotone
    /// until the session drops. [`CompiledCheck::warm_store_peak_bytes`]
    /// keeps the high-water mark either way.
    pub fn warm_store_bytes(&self) -> usize {
        self.warm_store().map_or(0, |store| store.bytes_used())
    }

    /// High-water mark of [`CompiledCheck::warm_store_bytes`] across the
    /// session's life, *including* every store generation reclamation
    /// has since retired ([`SharedTddStore::peak_bytes_used`] carries
    /// across successor swaps).
    pub fn warm_store_peak_bytes(&self) -> usize {
        self.warm_store().map_or(0, |store| store.peak_bytes_used())
    }

    /// The quiescent-boundary reclamation hook: called between queries
    /// and sweep points, when no contraction holds ids into the store.
    /// Retires the store for a compact successor when
    /// `options.store_reclaim` says so — value-transparent (interning is
    /// pure, no engine value depends on an id), so results are
    /// bit-identical whether or when swaps happen.
    fn maybe_reclaim_store(&self) {
        let Some(cell) = &self.store else { return };
        let store = cell.get();
        if self
            .options
            .store_reclaim
            .should_reclaim(store.approx_data_bytes())
        {
            cell.swap(store.successor());
        }
    }

    /// The compiled noise channels, in site order — the sites
    /// [`CompiledCheck::sweep_noise`] re-instantiates.
    pub fn noise_channels(&self) -> &[NoiseChannel] {
        match &self.backend {
            Backend::Alg1(a) => &a.template.channels,
            Backend::Alg2(a) => &a.template.channels,
            Backend::Mpo(b) => b.plan.channels(),
        }
    }

    /// The MPO tuning knobs of this session's options, in the engine's
    /// own vocabulary.
    fn mpo_options(&self) -> MpoOptions {
        MpoOptions {
            svd_threshold: self.options.svd_threshold,
            max_bond: self.options.max_bond,
        }
    }

    /// The exact Jamiolkowski fidelity `F_J(E, U)`, cached after the
    /// first evaluation (subject to `options.max_terms`, which — as in
    /// the one-shot path — returns the proven lower bound).
    ///
    /// Bit-identical to [`crate::jamiolkowski_fidelity`] on the same
    /// pair and options. An `Auto` session whose portfolio compiled the
    /// MPO backend keeps that promise by escalating this query to its
    /// exact fallback; only an explicitly-forced
    /// [`AlgorithmChoice::Mpo`] session returns the MPO midpoint
    /// estimate instead, whose distance from the exact value is bounded
    /// by the reported truncation error.
    ///
    /// # Errors
    ///
    /// [`QaecError::Timeout`] if `options.deadline` expires.
    pub fn fidelity(&mut self) -> Result<f64, QaecError> {
        if let Some(k) = &self.knowledge {
            if k.exact() {
                return Ok(k.lower);
            }
        }
        match &self.backend {
            Backend::Alg1(artifacts) => {
                let report = artifacts.run(None, &self.options, self.warm_store().as_ref())?;
                let value = report.fidelity_lower;
                self.remember(Knowledge {
                    lower: report.fidelity_lower,
                    upper: report.fidelity_upper,
                    estimate: None,
                    algorithm: AlgorithmUsed::AlgorithmI,
                    terms_computed: report.terms_computed,
                    total_terms: report.total_terms,
                    max_nodes: report.max_nodes,
                    elapsed: report.elapsed,
                    stats: report.stats,
                    trunc_error: None,
                    bond_max: None,
                    cross_check: None,
                });
                self.maybe_reclaim_store();
                Ok(value)
            }
            Backend::Alg2(artifacts) => {
                let report = artifacts.run(&self.options, self.warm_store().as_ref())?;
                let value = report.fidelity;
                self.remember(Knowledge {
                    lower: value,
                    upper: value,
                    estimate: None,
                    algorithm: AlgorithmUsed::AlgorithmII,
                    terms_computed: 1,
                    total_terms: 1,
                    max_nodes: report.max_nodes,
                    elapsed: report.elapsed,
                    stats: report.stats,
                    trunc_error: None,
                    bond_max: None,
                    cross_check: None,
                });
                self.maybe_reclaim_store();
                Ok(value)
            }
            Backend::Mpo(backend) => {
                let backend = backend.clone();
                match &backend.escalation {
                    // `Auto` promised the exact value: escalate.
                    Some(cell) => {
                        let mut state = cell.lock().expect("escalation cell poisoned");
                        let exact = state.ready(&self.options);
                        let value = exact.fidelity()?;
                        let knowledge = exact.knowledge.clone();
                        drop(state);
                        if let Some(k) = knowledge {
                            self.remember(k);
                        }
                        Ok(value)
                    }
                    None => {
                        // A forced approximate session serves its
                        // cached estimate rather than re-contracting.
                        if let Some(estimate) = self.knowledge.as_ref().and_then(|k| k.estimate) {
                            return Ok(estimate);
                        }
                        let out = backend.plan.run(&self.mpo_options());
                        self.remember(Knowledge::from_mpo(&out));
                        Ok(out.fidelity)
                    }
                }
            }
        }
    }

    /// Decides ε-equivalence: `F_J > 1 − ε`?
    ///
    /// Costs nothing when the cached fidelity interval already decides
    /// this ε (always, once [`CompiledCheck::fidelity`] has run);
    /// otherwise Algorithm I re-runs with two-sided early termination at
    /// the new threshold (Algorithm II computes its single exact value
    /// once and every later verdict is free).
    ///
    /// Agrees with [`crate::check_equivalence`] on every input,
    /// boundary included ([`Verdict::decide`] is the single comparison
    /// both paths share).
    ///
    /// # Errors
    ///
    /// [`QaecError::InvalidEpsilon`] or [`QaecError::Timeout`].
    pub fn verdict(&mut self, epsilon: f64) -> Result<Verdict, QaecError> {
        validate_epsilon(epsilon)?;
        self.verdict_prevalidated(epsilon)
    }

    fn verdict_prevalidated(&mut self, epsilon: f64) -> Result<Verdict, QaecError> {
        Ok(self.check_prevalidated(epsilon)?.verdict)
    }

    /// The full ε-equivalence report (what [`crate::check_equivalence`]
    /// returns): verdict, proven bounds, term counts and statistics.
    ///
    /// When the cached interval decides this ε the report is served from
    /// the cache — its bounds, counts and statistics are those of the
    /// run that established the interval, and no diagram work happens.
    ///
    /// # Errors
    ///
    /// [`QaecError::InvalidEpsilon`] or [`QaecError::Timeout`].
    pub fn check(&mut self, epsilon: f64) -> Result<EquivalenceReport, QaecError> {
        validate_epsilon(epsilon)?;
        self.check_prevalidated(epsilon)
    }

    pub(crate) fn check_prevalidated(
        &mut self,
        epsilon: f64,
    ) -> Result<EquivalenceReport, QaecError> {
        if let Some(k) = &self.knowledge {
            if let Some(verdict) = Verdict::decide_bounds(k.lower, k.upper, epsilon) {
                return Ok(self.report_from_knowledge(verdict, epsilon));
            }
        }
        match &self.backend {
            Backend::Alg1(artifacts) => {
                let report =
                    artifacts.run(Some(epsilon), &self.options, self.warm_store().as_ref())?;
                // All terms evaluated without an early decision: compare
                // the exact value (the same single comparison the early
                // exit used on its bounds).
                let verdict = report
                    .verdict
                    .unwrap_or_else(|| Verdict::decide(report.fidelity_lower, epsilon));
                let out = EquivalenceReport {
                    verdict,
                    fidelity_bounds: (report.fidelity_lower, report.fidelity_upper),
                    epsilon,
                    algorithm: AlgorithmUsed::AlgorithmI,
                    terms_computed: report.terms_computed,
                    total_terms: report.total_terms,
                    max_nodes: report.max_nodes,
                    elapsed: report.elapsed,
                    stats: report.stats,
                    trunc_error: None,
                    bond_max: None,
                    cross_check: None,
                };
                self.remember(Knowledge::from_report(&out));
                self.maybe_reclaim_store();
                Ok(out)
            }
            Backend::Alg2(artifacts) => {
                let report = artifacts.run(&self.options, self.warm_store().as_ref())?;
                let verdict = Verdict::decide(report.fidelity, epsilon);
                let out = EquivalenceReport {
                    verdict,
                    fidelity_bounds: (report.fidelity, report.fidelity),
                    epsilon,
                    algorithm: AlgorithmUsed::AlgorithmII,
                    terms_computed: 1,
                    total_terms: 1,
                    max_nodes: report.max_nodes,
                    elapsed: report.elapsed,
                    stats: report.stats,
                    trunc_error: None,
                    bond_max: None,
                    cross_check: None,
                };
                self.remember(Knowledge::from_report(&out));
                self.maybe_reclaim_store();
                Ok(out)
            }
            Backend::Mpo(backend) => {
                let backend = backend.clone();
                self.check_mpo(&backend, epsilon)
            }
        }
    }

    /// The portfolio's query body: run the compiled MPO program, decide
    /// from its rigorous interval if possible, otherwise escalate to
    /// the exact fallback (`Auto`) or report
    /// [`Verdict::Inconclusive`] (forced Algorithm III).
    fn check_mpo(
        &mut self,
        backend: &MpoBackend,
        epsilon: f64,
    ) -> Result<EquivalenceReport, QaecError> {
        let out = backend.plan.run(&self.mpo_options());
        let decided = Verdict::decide_bounds(out.f_lo, out.f_hi, epsilon);
        if let Some(verdict) = decided {
            let report = EquivalenceReport {
                verdict,
                fidelity_bounds: (out.f_lo, out.f_hi),
                epsilon,
                algorithm: AlgorithmUsed::Mpo,
                terms_computed: 1,
                total_terms: 1,
                max_nodes: out.bond_max,
                elapsed: out.elapsed,
                stats: TddStats::default(),
                trunc_error: Some(out.trunc_error),
                bond_max: Some(out.bond_max),
                cross_check: None,
            };
            self.remember(Knowledge::from_mpo(&out));
            return Ok(report);
        }
        // The interval straddles 1 − ε.
        match &backend.escalation {
            None => {
                self.remember(Knowledge::from_mpo(&out));
                Ok(EquivalenceReport {
                    verdict: Verdict::Inconclusive,
                    fidelity_bounds: (out.f_lo, out.f_hi),
                    epsilon,
                    algorithm: AlgorithmUsed::Mpo,
                    terms_computed: 1,
                    total_terms: 1,
                    max_nodes: out.bond_max,
                    elapsed: out.elapsed,
                    stats: TddStats::default(),
                    trunc_error: Some(out.trunc_error),
                    bond_max: Some(out.bond_max),
                    cross_check: None,
                })
            }
            Some(cell) => {
                let mut state = cell.lock().expect("escalation cell poisoned");
                let mut report = state.ready(&self.options).check_prevalidated(epsilon)?;
                drop(state);
                // Cross-check: two sound fidelity intervals for the
                // same pair must intersect (the exact bounds are a
                // point unless Algorithm I early-stopped).
                let (lo, hi) = report.fidelity_bounds;
                report.cross_check = Some(lo <= out.f_hi && out.f_lo <= hi);
                report.trunc_error = Some(out.trunc_error);
                report.bond_max = Some(out.bond_max);
                self.remember(Knowledge::from_report(&report));
                Ok(report)
            }
        }
    }

    /// Decides every threshold in `epsilons` (any order), re-running
    /// Algorithm I only for thresholds the accumulated bounds cannot
    /// decide. After one exact fidelity evaluation the whole sweep is
    /// pure arithmetic.
    ///
    /// # Errors
    ///
    /// [`QaecError::InvalidEpsilon`] (checked for *every* threshold
    /// before any work) or [`QaecError::Timeout`].
    pub fn sweep_epsilon(&mut self, epsilons: &[f64]) -> Result<Vec<EpsilonPoint>, QaecError> {
        for &epsilon in epsilons {
            validate_epsilon(epsilon)?;
        }
        epsilons
            .iter()
            .map(|&epsilon| {
                let verdict = self.verdict_prevalidated(epsilon)?;
                let k = self.knowledge.as_ref().expect("verdict established bounds");
                Ok(EpsilonPoint {
                    epsilon,
                    verdict,
                    fidelity_bounds: (k.lower, k.upper),
                })
            })
            .collect()
    }

    /// Re-checks the compiled pair at each noise strength: every noise
    /// site's channel is replaced by the same channel at strength
    /// `strengths[i]` (via [`NoiseChannel::with_strength`]) and the
    /// point is evaluated **on the compiled plan** — the Kraus weights
    /// are re-instantiated, the wire bookkeeping re-laid (linear), and
    /// planning is not repeated. The whole batch shares the session's
    /// warm store.
    ///
    /// Every point's fidelity and verdict are bit-identical to a cold
    /// [`crate::jamiolkowski_fidelity`] / [`crate::check_equivalence`]
    /// call on the corresponding re-parameterised pair, at every thread
    /// count — the paper's Table I column, `N` points for one
    /// compilation.
    ///
    /// # Errors
    ///
    /// * [`QaecError::InvalidEpsilon`];
    /// * [`QaecError::NoiseSweepUnsupported`] if a compiled site has no
    ///   single scalar strength (Pauli / custom channels) or a strength
    ///   is outside its valid range — checked for every point before any
    ///   contraction runs;
    /// * [`QaecError::Timeout`].
    pub fn sweep_noise(
        &self,
        epsilon: f64,
        strengths: &[f64],
    ) -> Result<Vec<SweepPoint>, QaecError> {
        validate_epsilon(epsilon)?;
        let points = self.strength_points(strengths)?;
        self.sweep_noise_prevalidated(epsilon, &points)
    }

    /// ε-aware noise sweep: one verdict per strength, letting each point
    /// terminate as early as its backend allows. Algorithm I runs every
    /// point with genuine two-sided early exit at ε — high-mass terms
    /// accumulate first and the point stops the moment its bounds
    /// decide, without computing the exact fidelity. Algorithm II
    /// evaluates its single exact value per point (lane-batched like
    /// [`CompiledCheck::sweep_noise`]); its bounds collapse to a point,
    /// so every lane's decision is immediate once its trace is known —
    /// a decided lane contributes nothing further.
    ///
    /// Verdicts agree with [`CompiledCheck::sweep_noise`] on every
    /// point: the early exit only proves the same comparison cheaper.
    ///
    /// # Errors
    ///
    /// As [`CompiledCheck::sweep_noise`].
    pub fn sweep_noise_verdicts(
        &self,
        epsilon: f64,
        strengths: &[f64],
    ) -> Result<Vec<Verdict>, QaecError> {
        validate_epsilon(epsilon)?;
        let points = self.strength_points(strengths)?;
        self.validate_sweep_points(&points)?;
        match &self.backend {
            Backend::Alg1(artifacts) => points
                .iter()
                .map(|channels| {
                    let template = artifacts.template.with_channels(channels);
                    let report = artifacts.run_template(
                        &template,
                        Some(epsilon),
                        &self.options,
                        self.warm_store().as_ref(),
                    )?;
                    self.maybe_reclaim_store();
                    Ok(report
                        .verdict
                        .unwrap_or_else(|| Verdict::decide(report.fidelity_lower, epsilon)))
                })
                .collect(),
            Backend::Alg2(_) | Backend::Mpo(_) => Ok(self
                .sweep_noise_prevalidated(epsilon, &points)?
                .into_iter()
                .map(|point| point.verdict)
                .collect()),
        }
    }

    /// Re-parameterises every compiled site at each strength — the
    /// shared first step of [`CompiledCheck::sweep_noise`] and
    /// [`CompiledCheck::sweep_noise_verdicts`].
    fn strength_points(&self, strengths: &[f64]) -> Result<Vec<Vec<NoiseChannel>>, QaecError> {
        let base = self.noise_channels();
        strengths
            .iter()
            .map(|&strength| {
                base.iter()
                    .enumerate()
                    .map(|(site, channel)| {
                        channel.with_strength(strength).ok_or_else(|| {
                            QaecError::NoiseSweepUnsupported {
                                reason: format!(
                                    "site {site} ({}) has no single scalar strength to sweep",
                                    channel.name()
                                ),
                            }
                        })
                    })
                    .collect()
            })
            .collect()
    }

    /// [`CompiledCheck::sweep_noise`] with explicit per-site channels
    /// per point — for sweeping multi-parameter channels, or different
    /// strengths per site. Each point must supply one channel per
    /// compiled site, with matching arity.
    ///
    /// # Errors
    ///
    /// As [`CompiledCheck::sweep_noise`]; mismatched site counts or
    /// arities are [`QaecError::NoiseSweepUnsupported`].
    pub fn sweep_noise_channels(
        &self,
        epsilon: f64,
        points: &[Vec<NoiseChannel>],
    ) -> Result<Vec<SweepPoint>, QaecError> {
        validate_epsilon(epsilon)?;
        self.sweep_noise_prevalidated(epsilon, points)
    }

    fn sweep_noise_prevalidated(
        &self,
        epsilon: f64,
        points: &[Vec<NoiseChannel>],
    ) -> Result<Vec<SweepPoint>, QaecError> {
        self.validate_sweep_points(points)?;
        match &self.backend {
            Backend::Alg1(artifacts) => points
                .iter()
                .map(|channels| self.alg1_point(artifacts, channels, epsilon))
                .collect(),
            Backend::Alg2(artifacts) => self.alg2_sweep_lanes(artifacts, epsilon, points),
            Backend::Mpo(backend) => match &backend.escalation {
                // `Auto` promised exact per-point fidelities: the whole
                // sweep escalates to the exact fallback (the compiled
                // channel sites are the same circuit walk, so the
                // points substitute one-for-one).
                Some(cell) => cell
                    .lock()
                    .expect("escalation cell poisoned")
                    .ready(&self.options)
                    .sweep_noise_prevalidated(epsilon, points),
                // A forced Algorithm III session sweeps on the compiled
                // MPO program: per-point midpoint estimates, with
                // verdicts taken on each point's rigorous interval —
                // straddling points surface as Inconclusive.
                None => Ok(points
                    .iter()
                    .map(|channels| {
                        let out = backend.plan.run_channels(&self.mpo_options(), channels);
                        SweepPoint {
                            fidelity: out.fidelity,
                            verdict: Verdict::decide_bounds(out.f_lo, out.f_hi, epsilon)
                                .unwrap_or(Verdict::Inconclusive),
                            max_nodes: out.bond_max,
                            elapsed: out.elapsed,
                            stats: TddStats::default(),
                        }
                    })
                    .collect()),
            },
        }
    }

    /// Validates a whole sweep batch before contracting anything, so a
    /// bad late point cannot waste the early ones.
    fn validate_sweep_points(&self, points: &[Vec<NoiseChannel>]) -> Result<(), QaecError> {
        let base = self.noise_channels();
        for (index, channels) in points.iter().enumerate() {
            if channels.len() != base.len() {
                return Err(QaecError::NoiseSweepUnsupported {
                    reason: format!(
                        "point {index} supplies {} channels for {} compiled sites",
                        channels.len(),
                        base.len()
                    ),
                });
            }
            for (site, (new, old)) in channels.iter().zip(base).enumerate() {
                if new.arity() != old.arity() {
                    return Err(QaecError::NoiseSweepUnsupported {
                        reason: format!(
                            "point {index}, site {site}: arity {} replaces arity {}",
                            new.arity(),
                            old.arity()
                        ),
                    });
                }
                new.validate()
                    .map_err(|e| QaecError::NoiseSweepUnsupported {
                        reason: format!("point {index}, site {site}: {e}"),
                    })?;
            }
        }
        Ok(())
    }

    fn alg1_point(
        &self,
        artifacts: &Alg1Artifacts,
        channels: &[NoiseChannel],
        epsilon: f64,
    ) -> Result<SweepPoint, QaecError> {
        let template = artifacts.template.with_channels(channels);
        let report =
            artifacts.run_template(&template, None, &self.options, self.warm_store().as_ref())?;
        self.maybe_reclaim_store();
        Ok(SweepPoint {
            fidelity: report.fidelity_lower,
            verdict: Verdict::decide(report.fidelity_lower, epsilon),
            max_nodes: report.max_nodes,
            elapsed: report.elapsed,
            stats: report.stats,
        })
    }

    fn alg2_point(
        &self,
        artifacts: &Alg2Artifacts,
        channels: &[NoiseChannel],
        epsilon: f64,
    ) -> Result<SweepPoint, QaecError> {
        let report = artifacts.run_channels(channels, &self.options, self.warm_store().as_ref())?;
        self.maybe_reclaim_store();
        Ok(SweepPoint {
            fidelity: report.fidelity,
            verdict: Verdict::decide(report.fidelity, epsilon),
            max_nodes: report.max_nodes,
            elapsed: report.elapsed,
            stats: report.stats,
        })
    }

    /// The Algorithm II sweep body: greedily batches points into the
    /// widest monomorphised lane width ≤ `options.sweep_lanes` and
    /// contracts each batch in one multi-lane traversal, ⌈N/LANES⌉
    /// passes instead of N. The ragged tail (and everything, when lanes
    /// resolve off) runs the scalar per-point reference path.
    ///
    /// Lanes engage only over the session's warm shared store: the lane
    /// snap replicates the *canonical* interning that makes scalar
    /// results value-pure. A private-store session
    /// ([`crate::SharedTableMode::Off`]) keeps first-come-first-served
    /// weight merging, which is order-dependent — so it stays on the
    /// scalar path and its results are unchanged by construction.
    ///
    /// A batch whose lanes diverge (a value-dependent decision that is
    /// not lane-uniform — see [`qaec_tdd::lanes`]) is replayed per
    /// point: divergence costs time, never changes a result. Lane
    /// batches contract sequentially, so sweep results stay independent
    /// of `options.threads` here too.
    fn alg2_sweep_lanes(
        &self,
        artifacts: &Alg2Artifacts,
        epsilon: f64,
        points: &[Vec<NoiseChannel>],
    ) -> Result<Vec<SweepPoint>, QaecError> {
        let max_lanes = match &self.store {
            Some(_) => clamp_lane_width(self.options.sweep_lanes),
            None => 1,
        };
        let mut out = Vec::with_capacity(points.len());
        let mut rest = points;
        while !rest.is_empty() {
            let width = [8, 4, 2]
                .into_iter()
                .find(|&w| w <= max_lanes && w <= rest.len())
                .unwrap_or(1);
            if width == 1 {
                out.push(self.alg2_point(artifacts, &rest[0], epsilon)?);
                rest = &rest[1..];
                continue;
            }
            let (batch, tail) = rest.split_at(width);
            rest = tail;
            let store = self.warm_store().expect("lane widths require a store");
            let report = match width {
                8 => artifacts.run_channels_lanes::<8>(batch, &self.options, &store)?,
                4 => artifacts.run_channels_lanes::<4>(batch, &self.options, &store)?,
                2 => artifacts.run_channels_lanes::<2>(batch, &self.options, &store)?,
                _ => unreachable!("lane widths are 2, 4 or 8"),
            };
            match report {
                Some(report) => {
                    for &fidelity in &report.fidelities {
                        out.push(SweepPoint {
                            fidelity,
                            verdict: Verdict::decide(fidelity, epsilon),
                            max_nodes: report.max_nodes,
                            elapsed: report.elapsed,
                            stats: report.stats,
                        });
                    }
                    // A lane batch is a quiescent boundary too: nothing
                    // survives it but the per-point scalars.
                    self.maybe_reclaim_store();
                }
                None => {
                    for channels in batch {
                        out.push(self.alg2_point(artifacts, channels, epsilon)?);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Serves a report from the cached interval: the evidence (bounds,
    /// counts, statistics, elapsed) is that of the run that established
    /// it — the query itself did no diagram work.
    fn report_from_knowledge(&self, verdict: Verdict, epsilon: f64) -> EquivalenceReport {
        let k = self.knowledge.as_ref().expect("caller checked");
        EquivalenceReport {
            verdict,
            fidelity_bounds: (k.lower, k.upper),
            epsilon,
            algorithm: k.algorithm,
            terms_computed: k.terms_computed,
            total_terms: k.total_terms,
            max_nodes: k.max_nodes,
            elapsed: k.elapsed,
            stats: k.stats,
            trunc_error: k.trunc_error,
            bond_max: k.bond_max,
            cross_check: k.cross_check,
        }
    }

    /// Records a run's proven interval, keeping the tightest evidence
    /// seen so far (an exact evaluation wins over any early-stopped
    /// bounds or approximate interval, and every later query is then
    /// cache-served).
    fn remember(&mut self, fresh: Knowledge) {
        match &self.knowledge {
            Some(old) if old.width() <= fresh.width() => {}
            _ => self.knowledge = Some(fresh),
        }
    }
}
