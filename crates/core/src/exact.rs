//! Exact equivalence checking of noiseless circuits.
//!
//! The classical (pre-NISQ) problem the paper's related work addresses
//! with decision diagrams: are two unitary circuits equal up to a global
//! phase? Since `|tr(U†V)| = d` iff `V = e^{iθ}U` (the Cauchy–Schwarz
//! equality case), a *single* miter-trace contraction decides it — the
//! same machinery as Algorithm I with zero noise sites, so the noisy
//! checker subsumes the exact one.

use crate::error::QaecError;
use crate::miter::{build_trace_network, identity_map, Alg1Template};
use crate::optimize::{cancel_inverse_pairs, eliminate_swaps};
use crate::options::CheckOptions;
use qaec_circuit::Circuit;
use qaec_math::C64;
use qaec_tdd::{contract_network_opts, DriverOptions, TddManager};
use std::time::{Duration, Instant};

/// The outcome of an exact check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExactVerdict {
    /// `V = U` exactly (global phase 1).
    Equal,
    /// `V = e^{iθ}U` with the reported phase `θ ∈ (−π, π]`, `θ ≠ 0`.
    EqualUpToGlobalPhase {
        /// The relative global phase.
        theta: f64,
    },
    /// The circuits implement different unitaries; the process fidelity
    /// `|tr(U†V)|²/d²` quantifies how different.
    NotEquivalent {
        /// `|tr(U†V)|²/d² < 1`.
        fidelity: f64,
    },
}

/// Full report of an exact equivalence check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExactReport {
    /// The decision.
    pub verdict: ExactVerdict,
    /// The raw miter trace `tr(U†V)`.
    pub trace: C64,
    /// Largest intermediate diagram, in nodes.
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Decides whether two noiseless circuits implement the same unitary (up
/// to global phase), by one trace-miter contraction.
///
/// Uses `options` for the contraction strategy, variable order, §IV-C
/// optimisations and deadline; the tolerance on `||tr| − d|` is `1e-9·d`.
///
/// # Errors
///
/// * [`QaecError::WidthMismatch`] if the circuits differ in width;
/// * [`QaecError::IdealNotUnitary`] if either circuit contains noise;
/// * [`QaecError::Timeout`] if `options.deadline` expires.
///
/// # Example
///
/// ```
/// use qaec::exact::{check_unitary_equivalence, ExactVerdict};
/// use qaec::CheckOptions;
/// use qaec_circuit::{Circuit, Gate};
///
/// // H·X·H = Z.
/// let mut lhs = Circuit::new(1);
/// lhs.h(0).x(0).h(0);
/// let mut rhs = Circuit::new(1);
/// rhs.z(0);
/// let report = check_unitary_equivalence(&lhs, &rhs, &CheckOptions::default())?;
/// assert_eq!(report.verdict, ExactVerdict::Equal);
/// # Ok::<(), qaec::QaecError>(())
/// ```
pub fn check_unitary_equivalence(
    left: &Circuit,
    right: &Circuit,
    options: &CheckOptions,
) -> Result<ExactReport, QaecError> {
    if left.n_qubits() != right.n_qubits() {
        return Err(QaecError::WidthMismatch {
            ideal: right.n_qubits(),
            noisy: left.n_qubits(),
        });
    }
    if !left.is_unitary() || !right.is_unitary() {
        return Err(QaecError::IdealNotUnitary);
    }
    let start = Instant::now();

    // Miter: left followed by right†, traced — tr(right† · left).
    let mut template = Alg1Template::build(right, left);
    let n_wires = template.n_wires;
    let final_map = if options.swap_elimination {
        eliminate_swaps(&mut template.elements, n_wires)
    } else {
        identity_map(n_wires)
    };
    if options.local_optimization {
        cancel_inverse_pairs(&mut template.elements, n_wires);
    }
    let elements = template.instantiate(&[]);
    let built = build_trace_network(&elements, n_wires, &final_map, options.var_order);
    let plan = built.network.plan(options.strategy);

    let mut manager = TddManager::new();
    let result = contract_network_opts(
        &mut manager,
        &built.network,
        &plan,
        &built.order,
        DriverOptions {
            gc_threshold: options.gc_threshold,
            deadline: options.deadline,
        },
    )
    .map_err(|_| QaecError::Timeout)?;
    let trace = manager.edge_scalar(result.root).expect("closed network");

    let d = (1u64 << left.n_qubits()) as f64;
    let verdict = if (trace.abs() - d).abs() <= 1e-9 * d {
        let theta = trace.arg();
        if theta.abs() <= 1e-9 {
            ExactVerdict::Equal
        } else {
            ExactVerdict::EqualUpToGlobalPhase { theta }
        }
    } else {
        ExactVerdict::NotEquivalent {
            fidelity: (trace.norm_sqr() / (d * d)).min(1.0),
        }
    };
    Ok(ExactReport {
        verdict,
        trace,
        max_nodes: result.max_nodes,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::generators::{qft, random_circuit, QftStyle};
    use qaec_circuit::{Gate, NoiseChannel};

    fn opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn circuit_equals_itself() {
        for seed in 0..4u64 {
            let c = random_circuit(3, 15, seed);
            let report = check_unitary_equivalence(&c, &c, &opts()).unwrap();
            assert_eq!(report.verdict, ExactVerdict::Equal, "seed {seed}");
        }
    }

    #[test]
    fn textbook_identities() {
        // HXH = Z, HZH = X, S² = Z.
        let cases: Vec<(Vec<Gate>, Vec<Gate>)> = vec![
            (vec![Gate::H, Gate::X, Gate::H], vec![Gate::Z]),
            (vec![Gate::H, Gate::Z, Gate::H], vec![Gate::X]),
            (vec![Gate::S, Gate::S], vec![Gate::Z]),
            (vec![Gate::T, Gate::T], vec![Gate::S]),
        ];
        for (lhs, rhs) in cases {
            let mut a = Circuit::new(1);
            for g in &lhs {
                a.gate(*g, &[0]);
            }
            let mut b = Circuit::new(1);
            for g in &rhs {
                b.gate(*g, &[0]);
            }
            let report = check_unitary_equivalence(&a, &b, &opts()).unwrap();
            assert_eq!(report.verdict, ExactVerdict::Equal, "{lhs:?} vs {rhs:?}");
        }
    }

    #[test]
    fn global_phase_detected() {
        // Rz(2π) = −I: phase π relative to the identity.
        let mut a = Circuit::new(1);
        a.gate(Gate::Rz(2.0 * std::f64::consts::PI), &[0]);
        let b = Circuit::new(1);
        let report = check_unitary_equivalence(&a, &b, &opts()).unwrap();
        match report.verdict {
            ExactVerdict::EqualUpToGlobalPhase { theta } => {
                assert!((theta.abs() - std::f64::consts::PI).abs() < 1e-9);
            }
            other => panic!("expected phase verdict, got {other:?}"),
        }
    }

    #[test]
    fn different_unitaries_rejected_with_fidelity() {
        let mut a = Circuit::new(1);
        a.h(0);
        let mut b = Circuit::new(1);
        b.x(0);
        let report = check_unitary_equivalence(&a, &b, &opts()).unwrap();
        match report.verdict {
            ExactVerdict::NotEquivalent { fidelity } => {
                assert!((fidelity - 0.5).abs() < 1e-9);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn single_gate_perturbation_detected() {
        let c = qft(4, QftStyle::DecomposedNoSwaps);
        let mut perturbed = c.clone();
        perturbed.t(2); // extra T gate
        let report = check_unitary_equivalence(&c, &perturbed, &opts()).unwrap();
        assert!(matches!(report.verdict, ExactVerdict::NotEquivalent { .. }));
    }

    #[test]
    fn qft_decompositions_agree() {
        // The decomposed QFT equals the native one (no swaps) exactly.
        for n in 2..=5 {
            let a = qft(n, QftStyle::NoSwaps);
            let b = qft(n, QftStyle::DecomposedNoSwaps);
            let report = check_unitary_equivalence(&a, &b, &opts()).unwrap();
            assert_eq!(report.verdict, ExactVerdict::Equal, "qft{n}");
        }
    }

    #[test]
    fn optimisations_preserve_verdicts() {
        let a = qft(4, QftStyle::Textbook);
        let b = qft(4, QftStyle::Textbook);
        let options = CheckOptions {
            local_optimization: true,
            swap_elimination: true,
            ..CheckOptions::default()
        };
        let report = check_unitary_equivalence(&a, &b, &options).unwrap();
        assert_eq!(report.verdict, ExactVerdict::Equal);
        // Fully cancelled miter: the trace costs almost nothing.
        assert!(
            report.max_nodes <= 2,
            "miter should vanish: {}",
            report.max_nodes
        );
    }

    #[test]
    fn noisy_inputs_rejected() {
        let mut a = Circuit::new(1);
        a.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
        let b = Circuit::new(1);
        assert_eq!(
            check_unitary_equivalence(&a, &b, &opts()),
            Err(QaecError::IdealNotUnitary)
        );
        assert!(matches!(
            check_unitary_equivalence(&b, &Circuit::new(2), &opts()),
            Err(QaecError::WidthMismatch { .. })
        ));
    }
}
