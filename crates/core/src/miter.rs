//! Trace-miter construction.
//!
//! Both algorithms reduce to traces of "miter-like" networks (the paper's
//! Fig. 3–5): the noisy circuit's tensors followed by the adjoint ideal
//! circuit's, with each qubit's final wire connected back to its initial
//! wire. This module builds those networks:
//!
//! * `Alg1Template` — the per-Kraus-selection network of Algorithm I,
//!   with noise sites left as substitutable holes;
//! * `alg2_elements` — the doubled network of Algorithm II
//!   (`V ⊗ V*` for gates, `M_N = Σ K ⊗ K*` for noise);
//! * `build_trace_network` — wire bookkeeping, trace closure (through
//!   explicit delta tensors), and the decision-diagram variable order.

use crate::options::VarOrderStyle;
use qaec_circuit::{Circuit, Gate, NoiseChannel, Operation};
use qaec_math::Matrix;
use qaec_tensornet::{IndexId, Tensor, TensorNetwork, VarOrder};
use std::collections::HashMap;

/// One element of a miter sequence.
#[derive(Clone, Debug)]
pub(crate) enum MiterElement {
    /// A concrete tensor: matrix on wires, with gate provenance for the
    /// §IV-C optimisations (`bool` = mirror/conjugated copy).
    Fixed {
        matrix: Matrix,
        qubits: Vec<usize>,
        tag: Option<(Gate, bool)>,
    },
    /// A substitutable noise site of Algorithm I.
    NoiseSite { site: usize, qubits: Vec<usize> },
}

impl MiterElement {
    pub(crate) fn qubits(&self) -> &[usize] {
        match self {
            MiterElement::Fixed { qubits, .. } | MiterElement::NoiseSite { qubits, .. } => qubits,
        }
    }

    pub(crate) fn qubits_mut(&mut self) -> &mut Vec<usize> {
        match self {
            MiterElement::Fixed { qubits, .. } | MiterElement::NoiseSite { qubits, .. } => qubits,
        }
    }

    pub(crate) fn tag(&self) -> Option<(Gate, bool)> {
        match self {
            MiterElement::Fixed { tag, .. } => *tag,
            MiterElement::NoiseSite { .. } => None,
        }
    }
}

/// A noise site of the Algorithm I template.
#[derive(Clone, Debug)]
pub(crate) struct NoiseSite {
    /// The site's Kraus operators.
    pub kraus: Vec<Matrix>,
    /// Probability mass `tr(K†K)/2^ℓ` per operator.
    pub masses: Vec<f64>,
}

impl NoiseSite {
    /// The site for one channel: its Kraus operators and their masses.
    fn from_channel(channel: &NoiseChannel) -> NoiseSite {
        NoiseSite {
            kraus: channel.kraus(),
            masses: channel.kraus_masses(),
        }
    }
}

/// The Algorithm I miter with substitutable noise sites.
#[derive(Clone, Debug)]
pub(crate) struct Alg1Template {
    pub elements: Vec<MiterElement>,
    pub sites: Vec<NoiseSite>,
    /// The channel behind each site, kept so a compiled check can
    /// re-instantiate the *same positions* with swept noise strengths.
    pub channels: Vec<NoiseChannel>,
    pub n_wires: usize,
}

impl Alg1Template {
    /// Builds the template: the noisy circuit followed by the adjoint of
    /// the ideal circuit.
    ///
    /// Callers must have validated that `ideal` is unitary and the widths
    /// match.
    pub fn build(ideal: &Circuit, noisy: &Circuit) -> Alg1Template {
        let mut elements = Vec::new();
        let mut sites = Vec::new();
        let mut channels = Vec::new();
        for instr in noisy.iter() {
            match &instr.op {
                Operation::Gate(g) => elements.push(MiterElement::Fixed {
                    matrix: g.matrix(),
                    qubits: instr.qubits.clone(),
                    tag: Some((*g, false)),
                }),
                Operation::Noise(ch) => {
                    elements.push(MiterElement::NoiseSite {
                        site: sites.len(),
                        qubits: instr.qubits.clone(),
                    });
                    sites.push(NoiseSite::from_channel(ch));
                    channels.push(ch.clone());
                }
            }
        }
        let adjoint = ideal.adjoint().expect("ideal circuit validated unitary");
        for instr in adjoint.iter() {
            let g = *instr.as_gate().expect("unitary circuit");
            elements.push(MiterElement::Fixed {
                matrix: g.matrix(),
                qubits: instr.qubits.clone(),
                tag: Some((g, false)),
            });
        }
        Alg1Template {
            elements,
            sites,
            channels,
            n_wires: noisy.n_qubits(),
        }
    }

    /// The template with every noise site's channel replaced — same
    /// positions, same element structure, new Kraus weights. This is how
    /// a compiled check re-instantiates a noise-sweep point on the
    /// already-built contraction plan: the plan depends only on the
    /// element/wire structure, which is untouched here.
    ///
    /// # Panics
    ///
    /// Panics if `channels` has the wrong length or a channel's arity
    /// differs from the site it replaces (callers validate first).
    pub fn with_channels(&self, channels: &[NoiseChannel]) -> Alg1Template {
        assert_eq!(channels.len(), self.sites.len(), "channel count mismatch");
        for (new, old) in channels.iter().zip(&self.channels) {
            assert_eq!(new.arity(), old.arity(), "channel arity mismatch");
        }
        Alg1Template {
            elements: self.elements.clone(),
            sites: channels.iter().map(NoiseSite::from_channel).collect(),
            channels: channels.to_vec(),
            n_wires: self.n_wires,
        }
    }

    /// Total number of Kraus selections (saturating).
    pub fn total_terms(&self) -> usize {
        self.sites
            .iter()
            .fold(1usize, |acc, s| acc.saturating_mul(s.kraus.len()))
    }

    /// Concrete miter for one Kraus selection.
    ///
    /// # Panics
    ///
    /// Panics if `choice` has the wrong length or an index is out of
    /// range.
    pub fn instantiate(&self, choice: &[usize]) -> Vec<MiterElement> {
        assert_eq!(choice.len(), self.sites.len(), "choice length mismatch");
        self.elements
            .iter()
            .map(|el| match el {
                MiterElement::Fixed { .. } => el.clone(),
                MiterElement::NoiseSite { site, qubits } => MiterElement::Fixed {
                    matrix: self.sites[*site].kraus[choice[*site]].clone(),
                    qubits: qubits.clone(),
                    tag: None,
                },
            })
            .collect()
    }
}

/// The Algorithm II doubled miter with substitutable noise sites: every
/// gate `V` of the noisy circuit is emitted on the primal wires plus
/// `V*` on the mirror wires (`q + n`), every noise channel becomes a
/// hole spanning both (filled with its superoperator matrix
/// `M_N = Σ K ⊗ K*` at instantiation), and the adjoint ideal circuit is
/// doubled the same way (`U† ⊗ Uᵀ`).
///
/// Keeping the noise sites as holes is what makes the doubled network a
/// *compiled artifact*: every instantiation — the original channels or a
/// noise-sweep point — has the identical element/wire structure, so one
/// contraction plan and variable order serve them all.
#[derive(Clone, Debug)]
pub(crate) struct Alg2Template {
    pub elements: Vec<MiterElement>,
    /// The channel behind each hole, in site order.
    pub channels: Vec<NoiseChannel>,
    /// Doubled width `2n`.
    pub width: usize,
}

impl Alg2Template {
    /// Builds the doubled-miter template. Callers must have validated
    /// that `ideal` is unitary and the widths match.
    pub fn build(ideal: &Circuit, noisy: &Circuit) -> Alg2Template {
        let n = noisy.n_qubits();
        let mut elements = Vec::new();
        let mut channels = Vec::new();
        fn emit_doubled(elements: &mut Vec<MiterElement>, n: usize, g: &Gate, qubits: &[usize]) {
            elements.push(MiterElement::Fixed {
                matrix: g.matrix(),
                qubits: qubits.to_vec(),
                tag: Some((*g, false)),
            });
            elements.push(MiterElement::Fixed {
                matrix: g.matrix().conj(),
                qubits: qubits.iter().map(|&q| q + n).collect(),
                tag: Some((*g, true)),
            });
        }
        for instr in noisy.iter() {
            match &instr.op {
                Operation::Gate(g) => emit_doubled(&mut elements, n, g, &instr.qubits),
                Operation::Noise(ch) => {
                    let mut qubits: Vec<usize> = instr.qubits.clone();
                    qubits.extend(instr.qubits.iter().map(|&q| q + n));
                    elements.push(MiterElement::NoiseSite {
                        site: channels.len(),
                        qubits,
                    });
                    channels.push(ch.clone());
                }
            }
        }
        let adjoint = ideal.adjoint().expect("ideal circuit validated unitary");
        for instr in adjoint.iter() {
            let g = instr.as_gate().expect("unitary circuit");
            emit_doubled(&mut elements, n, g, &instr.qubits);
        }
        Alg2Template {
            elements,
            channels,
            width: 2 * n,
        }
    }

    /// Concrete doubled miter for one set of channels (site order),
    /// filling each hole with the channel's superoperator matrix.
    ///
    /// # Panics
    ///
    /// Panics if `channels` has the wrong length or a channel's arity
    /// differs from the site it replaces (callers validate first).
    pub fn instantiate(&self, channels: &[NoiseChannel]) -> Vec<MiterElement> {
        assert_eq!(
            channels.len(),
            self.channels.len(),
            "channel count mismatch"
        );
        for (new, old) in channels.iter().zip(&self.channels) {
            assert_eq!(new.arity(), old.arity(), "channel arity mismatch");
        }
        self.elements
            .iter()
            .map(|el| match el {
                MiterElement::Fixed { .. } => el.clone(),
                MiterElement::NoiseSite { site, qubits } => MiterElement::Fixed {
                    matrix: channels[*site].superop_matrix(),
                    qubits: qubits.clone(),
                    tag: None,
                },
            })
            .collect()
    }
}

/// The concrete Algorithm II doubled miter for a circuit pair, used by
/// the paper-example tests (the checker itself keeps the
/// [`Alg2Template`] and instantiates on demand).
#[cfg(test)]
pub(crate) fn alg2_elements(ideal: &Circuit, noisy: &Circuit) -> (Vec<MiterElement>, usize) {
    let template = Alg2Template::build(ideal, noisy);
    let elements = template.instantiate(&template.channels);
    (elements, template.width)
}

/// A trace network ready for contraction.
#[derive(Clone, Debug)]
pub(crate) struct BuiltNetwork {
    pub network: TensorNetwork,
    pub order: VarOrder,
}

/// Lays the miter elements onto wires, closes the trace, and derives the
/// variable order.
///
/// `final_map[q]` is the physical wire carrying logical qubit `q` at the
/// end of the sequence (identity unless SWAP elimination rerouted wires):
/// the closure connects the final index of wire `final_map[q]` to the
/// initial index of wire `q`, through an explicit [`Tensor::delta`] (or a
/// bare loop worth a factor 2 when the wire is untouched).
///
/// # Panics
///
/// Panics if any element is still an unsubstituted noise site.
pub(crate) fn build_trace_network(
    elements: &[MiterElement],
    n_wires: usize,
    final_map: &[usize],
    style: VarOrderStyle,
) -> BuiltNetwork {
    let mut tags: HashMap<IndexId, (u32, u32)> = HashMap::new();
    let mut next_id = 0u32;
    let mut fresh = |q: usize, col: u32, tags: &mut HashMap<IndexId, (u32, u32)>| {
        let id = IndexId(next_id);
        next_id += 1;
        tags.insert(id, (q as u32, col));
        id
    };

    let input: Vec<IndexId> = (0..n_wires).map(|q| fresh(q, 0, &mut tags)).collect();
    let mut current = input.clone();
    let mut network = TensorNetwork::new();

    for (pos, el) in elements.iter().enumerate() {
        let MiterElement::Fixed { matrix, qubits, .. } = el else {
            panic!("noise site not substituted before network construction");
        };
        let ins: Vec<IndexId> = qubits.iter().map(|&q| current[q]).collect();
        let outs: Vec<IndexId> = qubits
            .iter()
            .map(|&q| fresh(q, pos as u32 + 1, &mut tags))
            .collect();
        network.add(Tensor::from_matrix(matrix, &outs, &ins));
        for (slot, &q) in qubits.iter().enumerate() {
            current[q] = outs[slot];
        }
    }

    // Trace closure.
    let closure_col = elements.len() as u32 + 1;
    for q in 0..n_wires {
        let f = current[final_map[q]];
        let s = input[q];
        if f == s {
            network.close_index(s);
        } else {
            // Tag the delta at the boundary column so the variable order
            // keeps it near its wire.
            tags.entry(f).or_insert((q as u32, closure_col));
            network.add(Tensor::delta(f, s));
        }
    }

    // Variable order over every allocated index.
    let mut ids: Vec<IndexId> = (0..next_id).map(IndexId).collect();
    match style {
        VarOrderStyle::QubitMajor => ids.sort_by_key(|i| (tags[i].0, tags[i].1)),
        VarOrderStyle::TimeMajor => ids.sort_by_key(|i| (tags[i].1, tags[i].0)),
    }
    let order = VarOrder::from_sequence(ids);

    BuiltNetwork { network, order }
}

/// Identity wire map (no SWAP elimination).
pub(crate) fn identity_map(n_wires: usize) -> Vec<usize> {
    (0..n_wires).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::NoiseChannel;
    use qaec_math::C64;
    use qaec_tensornet::Strategy;

    fn trace_value(built: &BuiltNetwork) -> C64 {
        let plan = built.network.plan(Strategy::MinFill);
        built
            .network
            .contract_dense(&plan)
            .as_scalar()
            .expect("closed trace network")
    }

    /// The paper's Fig. 2 noisy QFT2.
    fn noisy_qft2(p: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0)
            .noise(NoiseChannel::BitFlip { p }, &[1])
            .cp(std::f64::consts::FRAC_PI_2, 1, 0)
            .noise(NoiseChannel::PhaseFlip { p }, &[0])
            .h(1)
            .swap(0, 1);
        c
    }

    #[test]
    fn example_3_trace_terms() {
        // tr(U†E₁,₁) = 4p; the other three terms vanish.
        let p = 0.95;
        let noisy = noisy_qft2(p);
        let ideal = noisy.ideal();
        let template = Alg1Template::build(&ideal, &noisy);
        assert_eq!(template.total_terms(), 4);
        let expectations = [
            (vec![0, 0], 4.0 * p),
            (vec![1, 0], 0.0),
            (vec![0, 1], 0.0),
            (vec![1, 1], 0.0),
        ];
        for (choice, expected) in expectations {
            let elements = template.instantiate(&choice);
            let built = build_trace_network(
                &elements,
                template.n_wires,
                &identity_map(template.n_wires),
                VarOrderStyle::QubitMajor,
            );
            let t = trace_value(&built);
            assert!(
                (t - C64::real(expected)).abs() < 1e-10,
                "choice {choice:?}: got {t}, expected {expected}"
            );
        }
    }

    #[test]
    fn example_4_collective_trace() {
        // The doubled network contracts to 16p² in one shot.
        let p = 0.95;
        let noisy = noisy_qft2(p);
        let ideal = noisy.ideal();
        let (elements, width) = alg2_elements(&ideal, &noisy);
        let built = build_trace_network(
            &elements,
            width,
            &identity_map(width),
            VarOrderStyle::QubitMajor,
        );
        let t = trace_value(&built);
        assert!(
            (t - C64::real(16.0 * p * p)).abs() < 1e-9,
            "got {t}, expected {}",
            16.0 * p * p
        );
    }

    #[test]
    fn noiseless_identity_miter_traces_to_dimension_squared() {
        // U†U = I: Alg II trace = Σ|tr(I)|² = d², here d = 4.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).s(1);
        let (elements, width) = alg2_elements(&c, &c);
        let built = build_trace_network(
            &elements,
            width,
            &identity_map(width),
            VarOrderStyle::QubitMajor,
        );
        let t = trace_value(&built);
        assert!((t - C64::real(16.0)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn untouched_wires_contribute_loops() {
        // Empty circuits on 3 qubits: tr(I₈) = 8 (Alg I form).
        let c = Circuit::new(3);
        let template = Alg1Template::build(&c, &c);
        let built = build_trace_network(
            &template.instantiate(&[]),
            3,
            &identity_map(3),
            VarOrderStyle::QubitMajor,
        );
        let t = trace_value(&built);
        assert!((t - C64::real(8.0)).abs() < 1e-12, "{t}");
    }

    #[test]
    fn permuted_closure_counts_cycles() {
        // No ops, final_map = cycle (0→1→0): tr(SWAP) = 2 on two wires.
        let built = build_trace_network(&[], 2, &[1, 0], VarOrderStyle::QubitMajor);
        let t = trace_value(&built);
        assert!((t - C64::real(2.0)).abs() < 1e-12, "{t}");
        // Identity map on 2 untouched wires: tr(I₄) = 4.
        let built = build_trace_network(&[], 2, &[0, 1], VarOrderStyle::QubitMajor);
        assert!((trace_value(&built) - C64::real(4.0)).abs() < 1e-12);
    }

    #[test]
    fn single_gate_wire_uses_delta_closure() {
        // One H on one qubit, traced: tr(H) = 0.
        let mut c = Circuit::new(1);
        c.h(0);
        let noisy = c.clone();
        let ideal = Circuit::new(1); // empty ideal: miter is just H
        let template = Alg1Template::build(&ideal, &noisy);
        let built = build_trace_network(
            &template.instantiate(&[]),
            1,
            &identity_map(1),
            VarOrderStyle::QubitMajor,
        );
        let t = trace_value(&built);
        assert!(t.abs() < 1e-12, "tr(H) should vanish, got {t}");
    }

    #[test]
    fn var_order_styles_cover_all_indices() {
        let noisy = noisy_qft2(0.9);
        let ideal = noisy.ideal();
        let template = Alg1Template::build(&ideal, &noisy);
        for style in [VarOrderStyle::QubitMajor, VarOrderStyle::TimeMajor] {
            let built =
                build_trace_network(&template.instantiate(&[0, 0]), 2, &identity_map(2), style);
            for idx in built.network.all_indices() {
                assert!(built.order.contains(idx), "{style:?} missing {idx}");
            }
        }
    }

    #[test]
    fn masses_recorded_per_site() {
        let noisy = noisy_qft2(0.9);
        let template = Alg1Template::build(&noisy.ideal(), &noisy);
        assert_eq!(template.sites.len(), 2);
        for site in &template.sites {
            let total: f64 = site.masses.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }
}
