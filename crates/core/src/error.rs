//! Errors of the equivalence checker.

use std::error::Error;
use std::fmt;

/// Errors returned by the checking algorithms.
#[derive(Clone, Debug, PartialEq)]
pub enum QaecError {
    /// Ideal and noisy circuits have different qubit counts.
    WidthMismatch {
        /// Ideal width.
        ideal: usize,
        /// Noisy width.
        noisy: usize,
    },
    /// The ideal circuit contains noise instructions.
    IdealNotUnitary,
    /// The error threshold was outside `[0, 1]`.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// The configured deadline expired (the paper's "TO" outcome).
    Timeout,
    /// A noise-sweep point could not be instantiated on the compiled
    /// artifacts (see [`crate::CompiledCheck::sweep_noise`]): a site's
    /// channel has no single scalar strength to sweep, a point's channel
    /// list mismatches the compiled sites, or a parameter is invalid.
    NoiseSweepUnsupported {
        /// What went wrong, naming the offending site or parameter.
        reason: String,
    },
}

impl fmt::Display for QaecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QaecError::WidthMismatch { ideal, noisy } => {
                write!(f, "circuit widths differ: ideal {ideal}, noisy {noisy}")
            }
            QaecError::IdealNotUnitary => {
                write!(f, "the ideal circuit must be noiseless")
            }
            QaecError::InvalidEpsilon { value } => {
                write!(f, "epsilon {value} outside [0, 1]")
            }
            QaecError::Timeout => write!(f, "deadline exceeded"),
            QaecError::NoiseSweepUnsupported { reason } => {
                write!(f, "noise sweep unsupported: {reason}")
            }
        }
    }
}

impl Error for QaecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(QaecError::WidthMismatch { ideal: 2, noisy: 3 }
            .to_string()
            .contains("2"));
        assert!(!QaecError::Timeout.to_string().is_empty());
        assert!(QaecError::InvalidEpsilon { value: 2.0 }
            .to_string()
            .contains("2"));
    }
}
