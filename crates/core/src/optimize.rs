//! The §IV-C miter optimisations: SWAP elimination and (cyclic) local
//! gate cancellation.
//!
//! Both transformations preserve the trace value of the miter network:
//!
//! * **SWAP elimination** drops every SWAP gate and instead reroutes the
//!   wires, returning the final logical→physical map that the trace
//!   closure uses to reconnect inputs and outputs;
//! * **local cancellation** removes adjacent mutually-inverse gate pairs
//!   acting on identical wire tuples, and — because `tr(AB) = tr(BA)` —
//!   also pairs wrapping around the trace boundary, exactly the paper's
//!   Fig. 6 simplification.

use crate::miter::MiterElement;
use qaec_circuit::Gate;

/// Removes SWAP gates, rewriting subsequent operations onto the swapped
/// wires. Returns the final logical→physical wire map for the closure.
pub(crate) fn eliminate_swaps(elements: &mut Vec<MiterElement>, n_wires: usize) -> Vec<usize> {
    let mut map: Vec<usize> = (0..n_wires).collect();
    let mut out = Vec::with_capacity(elements.len());
    for mut el in elements.drain(..) {
        if let Some((Gate::Swap, _)) = el.tag() {
            let qs = el.qubits().to_vec();
            map.swap(qs[0], qs[1]);
            continue;
        }
        for q in el.qubits_mut() {
            *q = map[*q];
        }
        out.push(el);
    }
    *elements = out;
    map
}

/// Cancels adjacent mutually-inverse gate pairs (same wires, no
/// intervening operation on any of those wires), cascading as pairs are
/// removed; then repeats the check cyclically across the trace boundary.
pub(crate) fn cancel_inverse_pairs(elements: &mut Vec<MiterElement>, n_wires: usize) {
    const TOL: f64 = 1e-12;
    let mut live: Vec<Option<MiterElement>> = elements.drain(..).map(Some).collect();

    // Linear pass with per-wire predecessor links so cancellations cascade.
    let mut last_on_wire: Vec<Option<usize>> = vec![None; n_wires];
    let mut prev_link: Vec<Vec<Option<usize>>> = vec![Vec::new(); live.len()];
    for idx in 0..live.len() {
        let el = live[idx].as_ref().expect("unprocessed element");
        let qubits = el.qubits().to_vec();
        prev_link[idx] = qubits.iter().map(|&q| last_on_wire[q]).collect();

        // Candidate: the same immediate predecessor on every wire.
        let candidate = {
            let first = prev_link[idx][0];
            if first.is_some() && prev_link[idx].iter().all(|&p| p == first) {
                first
            } else {
                None
            }
        };
        let cancels = candidate.is_some_and(|c| {
            let prev = live[c].as_ref().expect("linked element is live");
            match (prev.tag(), live[idx].as_ref().expect("current").tag()) {
                (Some((g1, conj1)), Some((g2, conj2))) => {
                    conj1 == conj2
                        && prev.qubits() == live[idx].as_ref().expect("current").qubits()
                        && g1.cancels_with(&g2, TOL)
                }
                _ => false,
            }
        });
        if let Some(c) = candidate.filter(|_| cancels) {
            // Remove both; restore wire heads to the pair's predecessors.
            live[idx] = None;
            live[c] = None;
            for (slot, &q) in qubits.iter().enumerate() {
                last_on_wire[q] = prev_link[c][slot];
            }
        } else {
            for &q in &qubits {
                last_on_wire[q] = Some(idx);
            }
        }
    }

    // Cyclic pass: tr(o_k ⋯ o_1) = tr(o_1 · o_k ⋯ o_2), so the first and
    // last live operations can cancel if each is the first/last on all of
    // its wires.
    loop {
        let order: Vec<usize> = (0..live.len()).filter(|&i| live[i].is_some()).collect();
        if order.len() < 2 {
            break;
        }
        let first = order[0];
        let last = *order.last().expect("len >= 2");
        let (Some(f), Some(l)) = (&live[first], &live[last]) else {
            break;
        };
        let boundary_ok = {
            let f_qubits = f.qubits();
            let l_qubits = l.qubits();
            f_qubits == l_qubits
                && f_qubits.iter().all(|&q| {
                    // f is the earliest live op on q, l the latest.
                    let on_wire: Vec<usize> = order
                        .iter()
                        .copied()
                        .filter(|&i| live[i].as_ref().expect("live").qubits().contains(&q))
                        .collect();
                    on_wire.first() == Some(&first) && on_wire.last() == Some(&last)
                })
        };
        let cancels = boundary_ok
            && match (l.tag(), f.tag()) {
                (Some((g1, c1)), Some((g2, c2))) => c1 == c2 && g1.cancels_with(&g2, TOL),
                _ => false,
            };
        if cancels {
            live[first] = None;
            live[last] = None;
        } else {
            break;
        }
    }

    *elements = live.into_iter().flatten().collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miter::{build_trace_network, identity_map, Alg1Template};
    use crate::options::VarOrderStyle;
    use qaec_circuit::{Circuit, NoiseChannel};
    use qaec_math::C64;
    use qaec_tensornet::Strategy;

    fn noisy_qft2(p: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0)
            .noise(NoiseChannel::BitFlip { p }, &[1])
            .cp(std::f64::consts::FRAC_PI_2, 1, 0)
            .noise(NoiseChannel::PhaseFlip { p }, &[0])
            .h(1)
            .swap(0, 1);
        c
    }

    fn trace_of(elements: &[MiterElement], n_wires: usize, map: &[usize]) -> C64 {
        let built = build_trace_network(elements, n_wires, map, VarOrderStyle::QubitMajor);
        let plan = built.network.plan(Strategy::MinFill);
        built
            .network
            .contract_dense(&plan)
            .as_scalar()
            .expect("closed network")
    }

    #[test]
    fn example_5_simplification() {
        // Fig. 6: the two SWAPs vanish, the four H's cancel (two locally,
        // two cyclically), leaving 4 elements: N, CS, N', CS†.
        let p = 0.95;
        let noisy = noisy_qft2(p);
        let ideal = noisy.ideal();
        let template = Alg1Template::build(&ideal, &noisy);
        let mut elements = template.instantiate(&[0, 0]);
        let before = trace_of(&elements, 2, &identity_map(2));

        let map = eliminate_swaps(&mut elements, 2);
        cancel_inverse_pairs(&mut elements, 2);
        assert_eq!(
            elements.len(),
            4,
            "expected N, CS, N', CS† after optimisation"
        );
        let after = trace_of(&elements, 2, &map);
        assert!((before - after).abs() < 1e-10, "{before} vs {after}");
        assert!((after - C64::real(4.0 * p)).abs() < 1e-10);
    }

    #[test]
    fn swap_elimination_preserves_all_kraus_terms() {
        let noisy = noisy_qft2(0.9);
        let ideal = noisy.ideal();
        let template = Alg1Template::build(&ideal, &noisy);
        for choice in [[0, 0], [0, 1], [1, 0], [1, 1]] {
            let mut elements = template.instantiate(&choice);
            let before = trace_of(&elements, 2, &identity_map(2));
            let map = eliminate_swaps(&mut elements, 2);
            let after = trace_of(&elements, 2, &map);
            assert!(
                (before - after).abs() < 1e-10,
                "choice {choice:?}: {before} vs {after}"
            );
        }
    }

    #[test]
    fn cascading_cancellation() {
        // H X X H on one wire cancels completely: the miter of C against
        // itself where C = H·X ends empty (tr = 2).
        let mut c = Circuit::new(1);
        c.h(0).x(0);
        let template = Alg1Template::build(&c, &c);
        let mut elements = template.instantiate(&[]);
        assert_eq!(elements.len(), 4);
        cancel_inverse_pairs(&mut elements, 1);
        assert!(elements.is_empty(), "all four gates must cancel");
        let t = trace_of(&elements, 1, &identity_map(1));
        assert!((t - C64::real(2.0)).abs() < 1e-12);
    }

    #[test]
    fn intervening_gate_only_cancels_cyclically() {
        // S then X then S†: not adjacent linearly, but the trace is
        // cyclic — tr(S†·X·S) = tr(X) — so the boundary pass removes the
        // S/S† pair and must preserve the trace.
        let mut elements = vec![
            fixed(Gate::S, vec![0]),
            fixed(Gate::X, vec![0]),
            fixed(Gate::Sdg, vec![0]),
        ];
        let before = trace_of(&elements, 1, &identity_map(1));
        cancel_inverse_pairs(&mut elements, 1);
        assert_eq!(elements.len(), 1, "only X should remain");
        let after = trace_of(&elements, 1, &identity_map(1));
        assert!((before - after).abs() < 1e-12);
        assert!(after.abs() < 1e-12); // tr(X) = 0

        // A second op on the wire *between* the pair and not itself
        // cancellable blocks the linear pass; with two middle ops the
        // boundary pair still goes, nothing else.
        let mut elements = vec![
            fixed(Gate::S, vec![0]),
            fixed(Gate::X, vec![0]),
            fixed(Gate::T, vec![0]),
            fixed(Gate::Sdg, vec![0]),
        ];
        let before = trace_of(&elements, 1, &identity_map(1));
        cancel_inverse_pairs(&mut elements, 1);
        assert_eq!(elements.len(), 2);
        let after = trace_of(&elements, 1, &identity_map(1));
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_cancellation_requires_same_wire_order() {
        let mut elements = vec![fixed(Gate::Cx, vec![0, 1]), fixed(Gate::Cx, vec![0, 1])];
        cancel_inverse_pairs(&mut elements, 2);
        assert!(elements.is_empty());

        // Reversed wires: CX(0,1) then CX(1,0) must not cancel.
        let mut elements = vec![fixed(Gate::Cx, vec![0, 1]), fixed(Gate::Cx, vec![1, 0])];
        cancel_inverse_pairs(&mut elements, 2);
        assert_eq!(elements.len(), 2);
    }

    #[test]
    fn partial_wire_overlap_blocks_pairing() {
        // CX(0,1), then H(1): the predecessor of H(1) is CX but H only
        // covers one of CX's wires; nothing cancels.
        let mut elements = vec![fixed(Gate::Cx, vec![0, 1]), fixed(Gate::H, vec![1])];
        cancel_inverse_pairs(&mut elements, 2);
        assert_eq!(elements.len(), 2);
    }

    #[test]
    fn noise_sites_block_linear_but_not_cyclic_cancellation() {
        // H ∘ noise ∘ H: the noise site blocks the linear pass, but
        // tr(H·N·H) = tr(N·H·H) = tr(N), so the cyclic pass removes the
        // H pair — with the noise site (tag-less) itself never cancelling.
        let mut noisy = Circuit::new(1);
        noisy
            .h(0)
            .noise(NoiseChannel::BitFlip { p: 0.9 }, &[0])
            .h(0);
        let ideal = Circuit::new(1);
        let template = Alg1Template::build(&ideal, &noisy);
        let mut elements = template.elements.clone();
        cancel_inverse_pairs(&mut elements, 1);
        assert_eq!(elements.len(), 1, "only the noise site should remain");
        assert!(elements[0].tag().is_none());

        // Two different noise sites never cancel with each other.
        let mut noisy = Circuit::new(1);
        noisy
            .noise(NoiseChannel::BitFlip { p: 0.9 }, &[0])
            .noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
        let template = Alg1Template::build(&ideal, &noisy);
        let mut elements = template.instantiate(&[0, 0]);
        cancel_inverse_pairs(&mut elements, 1);
        assert_eq!(elements.len(), 2);
    }

    #[test]
    fn pure_swap_circuit_reduces_to_permutation_loops() {
        // C = SWAP on 2 qubits, miter C·C† = two SWAPs; after elimination
        // no elements remain and the map is the identity: tr(I₄) = 4.
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let template = Alg1Template::build(&c, &c);
        let mut elements = template.instantiate(&[]);
        let map = eliminate_swaps(&mut elements, 2);
        assert!(elements.is_empty());
        assert_eq!(map, vec![0, 1]);
        assert!((trace_of(&elements, 2, &map) - C64::real(4.0)).abs() < 1e-12);
    }

    #[test]
    fn lone_swap_gives_cycle_trace() {
        // Miter of SWAP against the ideal identity: tr(SWAP) = 2.
        let mut noisy = Circuit::new(2);
        noisy.swap(0, 1);
        let ideal = Circuit::new(2);
        let template = Alg1Template::build(&ideal, &noisy);
        let mut elements = template.instantiate(&[]);
        let before = trace_of(&elements, 2, &identity_map(2));
        let map = eliminate_swaps(&mut elements, 2);
        let after = trace_of(&elements, 2, &map);
        assert!((before - C64::real(2.0)).abs() < 1e-12);
        assert!((after - C64::real(2.0)).abs() < 1e-12);
        assert_eq!(map, vec![1, 0]);
    }

    fn fixed(g: Gate, qubits: Vec<usize>) -> MiterElement {
        MiterElement::Fixed {
            matrix: g.matrix(),
            qubits,
            tag: Some((g, false)),
        }
    }
}
