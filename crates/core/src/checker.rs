//! The top-level ε-equivalence checker.
//!
//! The free functions here are thin wrappers over a single-query
//! session: each call compiles a [`crate::CompiledCheck`] and runs one
//! query against it, so results and error precedence are identical to
//! building the session yourself — re-checking the same pair many times
//! (ε- or noise-sweeps) should go through [`crate::Checker`] instead,
//! which pays the compilation once.

use crate::error::QaecError;
use crate::options::CheckOptions;
use crate::report::{AlgorithmUsed, EquivalenceReport};
use crate::session::CompiledCheck;
use qaec_circuit::Circuit;
use std::time::Instant;

/// Kraus-term count at or below which the automatic algorithm choice
/// prefers Algorithm I (the paper's Fig. 7 crossover sits around one to
/// two noise sites, i.e. 4–16 depolarizing terms).
pub const AUTO_TERM_THRESHOLD: usize = 16;

/// Picks the **exact** algorithm for a noisy circuit under
/// [`crate::AlgorithmChoice::Auto`] — and the backend the portfolio
/// escalates to when an MPO interval cannot decide.
pub fn auto_choice(noisy: &Circuit) -> AlgorithmUsed {
    if noisy.kraus_term_count() <= AUTO_TERM_THRESHOLD {
        AlgorithmUsed::AlgorithmI
    } else {
        AlgorithmUsed::AlgorithmII
    }
}

/// Register width at or above which the `Auto` portfolio considers the
/// approximate MPO pass (Algorithm III) worth trying.
pub const MPO_WIDTH_THRESHOLD: usize = 8;

/// Whether the `Auto` portfolio should run the approximate MPO backend
/// first: the register is wide (≥ [`MPO_WIDTH_THRESHOLD`] qubits) *and*
/// shallowly entangled — the largest connected component of the
/// qubit-interaction graph (each multi-qubit instruction links its
/// qubits) spans at most half the register.
///
/// The heuristic targets the regimes where the two cost models diverge:
/// the exact backends' decision diagrams grow with *global* circuit
/// structure, while MPO bond dimension is bounded by the width of the
/// component a bond cuts through — on tiled or block-local workloads
/// that bound is a small constant no matter how wide the register gets.
pub fn mpo_favored(noisy: &Circuit) -> bool {
    let n = noisy.n_qubits();
    if n < MPO_WIDTH_THRESHOLD {
        return false;
    }
    // Union-find over the qubit-interaction graph.
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut parent: Vec<usize> = (0..n).collect();
    for inst in noisy.instructions() {
        for pair in inst.qubits.windows(2) {
            let (a, b) = (find(&mut parent, pair[0]), find(&mut parent, pair[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut size = vec![0usize; n];
    let mut largest = 0;
    for q in 0..n {
        let root = find(&mut parent, q);
        size[root] += 1;
        largest = largest.max(size[root]);
    }
    largest * 2 <= n
}

/// Computes the Jamiolkowski fidelity `F_J(E, U)` between an ideal
/// circuit and its noisy implementation.
///
/// # Errors
///
/// See [`crate::fidelity_alg1`] / [`crate::fidelity_alg2`].
///
/// # Example
///
/// ```
/// use qaec::{jamiolkowski_fidelity, CheckOptions};
/// use qaec_circuit::{Circuit, NoiseChannel};
///
/// // The paper's Example 3: F_J = p².
/// let p = 0.95;
/// let mut noisy = Circuit::new(2);
/// noisy.h(0)
///     .noise(NoiseChannel::BitFlip { p }, &[1])
///     .cp(std::f64::consts::FRAC_PI_2, 1, 0)
///     .noise(NoiseChannel::PhaseFlip { p }, &[0])
///     .h(1)
///     .swap(0, 1);
/// let f = jamiolkowski_fidelity(&noisy.ideal(), &noisy, &CheckOptions::default())?;
/// assert!((f - p * p).abs() < 1e-9);
/// # Ok::<(), qaec::QaecError>(())
/// ```
pub fn jamiolkowski_fidelity(
    ideal: &Circuit,
    noisy: &Circuit,
    options: &CheckOptions,
) -> Result<f64, QaecError> {
    // A single-query session: validate once, compile once, ask once.
    crate::validate(ideal, noisy, None)?;
    CompiledCheck::compile_prevalidated(ideal, noisy, options.clone()).fidelity()
}

/// Decides the paper's Problem 1: is the noisy circuit ε-equivalent to
/// the ideal one, i.e. `F_J(E, U) > 1 − ε`?
///
/// # Errors
///
/// * [`QaecError::InvalidEpsilon`] if `epsilon ∉ [0, 1]`;
/// * plus everything [`jamiolkowski_fidelity`] can return.
///
/// # Example
///
/// ```
/// use qaec::{check_equivalence, CheckOptions, Verdict};
/// use qaec_circuit::{Circuit, NoiseChannel};
///
/// let p = 0.95; // F_J = p² = 0.9025
/// let mut noisy = Circuit::new(2);
/// noisy.h(0)
///     .noise(NoiseChannel::BitFlip { p }, &[1])
///     .cp(std::f64::consts::FRAC_PI_2, 1, 0)
///     .noise(NoiseChannel::PhaseFlip { p }, &[0])
///     .h(1)
///     .swap(0, 1);
/// let ideal = noisy.ideal();
/// // ε = 0.1: 0.9025 > 0.9 → equivalent (the paper's example decision).
/// let report = check_equivalence(&ideal, &noisy, 0.1, &CheckOptions::default())?;
/// assert_eq!(report.verdict, Verdict::Equivalent);
/// // ε = 0.05: 0.9025 ≤ 0.95 → not equivalent.
/// let report = check_equivalence(&ideal, &noisy, 0.05, &CheckOptions::default())?;
/// assert_eq!(report.verdict, Verdict::NotEquivalent);
/// # Ok::<(), qaec::QaecError>(())
/// ```
pub fn check_equivalence(
    ideal: &Circuit,
    noisy: &Circuit,
    epsilon: f64,
    options: &CheckOptions,
) -> Result<EquivalenceReport, QaecError> {
    // Validation runs exactly once per call, before either arm, so both
    // algorithms reject invalid inputs with identical error precedence
    // (width mismatch, then non-unitary ideal, then bad epsilon). The
    // body is a single-query session; the ε comparison itself lives in
    // [`Verdict::decide`], shared with every session query.
    crate::validate(ideal, noisy, Some(epsilon))?;
    let start = Instant::now();
    let mut compiled = CompiledCheck::compile_prevalidated(ideal, noisy, options.clone());
    let mut report = compiled.check_prevalidated(epsilon)?;
    // One-shot elapsed covers compilation + query, as it always has.
    report.elapsed = start.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::AlgorithmChoice;
    use crate::report::Verdict;
    use qaec_circuit::NoiseChannel;

    /// Regression: the ε comparison used to live in three places (the
    /// checker's two arms and the engine's early-exit bounds), so the
    /// exact boundary `F_J == 1 − ε` could in principle decide
    /// differently per path. It now lives only in [`Verdict::decide`]:
    /// the boundary must yield `NotEquivalent` identically via
    /// `check_equivalence`, `CompiledCheck::verdict` and both forced
    /// algorithm arms.
    #[test]
    fn epsilon_boundary_is_not_equivalent_on_every_path() {
        // A noiseless identity pair: F_J is *exactly* 1.0 on both
        // algorithms over the private store (exact weight arithmetic),
        // so ε = 0 puts every path exactly on the boundary. The store is
        // pinned to the private backend because landing *on* the
        // boundary needs bit-exact values — the canonical shared store
        // deliberately snaps weights to a grid (±ulp-level), which moves
        // F off the boundary; the comparison under regression here,
        // `Verdict::decide`, is the single one every backend shares.
        let mut ideal = Circuit::new(2);
        ideal.h(0).cx(0, 1);
        let noisy = ideal.clone();
        for algorithm in [
            AlgorithmChoice::Auto,
            AlgorithmChoice::AlgorithmI,
            AlgorithmChoice::AlgorithmII,
        ] {
            let options = CheckOptions {
                algorithm,
                threads: 1,
                shared_table: crate::SharedTableMode::Off,
                ..CheckOptions::default()
            };
            let report = check_equivalence(&ideal, &noisy, 0.0, &options).expect("check");
            assert_eq!(
                (report.verdict, report.fidelity_bounds.0),
                (Verdict::NotEquivalent, 1.0),
                "one-shot, {algorithm:?}: F_J == 1 − ε must NOT be equivalent"
            );
            let mut compiled = crate::Checker::new(&ideal, &noisy)
                .options(options.clone())
                .compile()
                .expect("compile");
            assert_eq!(
                compiled.verdict(0.0).expect("verdict"),
                Verdict::NotEquivalent,
                "session, {algorithm:?}"
            );
            // Strictly above the boundary the same fidelity is accepted.
            assert_eq!(
                compiled.verdict(1e-12).expect("verdict"),
                Verdict::Equivalent,
                "session off-boundary, {algorithm:?}"
            );
        }
    }

    /// The portfolio gate ([`mpo_favored`]): wide registers of narrow
    /// interaction components go to the MPO pass; narrow registers and
    /// globally entangled circuits stay exact.
    #[test]
    fn mpo_favored_requires_wide_and_shallow() {
        use qaec_circuit::generators::{qft, quantum_volume, tile, QftStyle};
        // Narrow: below the width threshold no matter how local.
        assert!(!mpo_favored(&qft(3, QftStyle::DecomposedNoSwaps)));
        assert!(!mpo_favored(&quantum_volume(6, 4, 7)));
        // Wide register of 3-qubit blocks: largest component 3 ≤ 24/2.
        let tiled = tile(&qft(3, QftStyle::DecomposedNoSwaps), 8);
        assert!(mpo_favored(&tiled));
        // Wide but globally entangled: one component spans everything.
        assert!(!mpo_favored(&qft(8, QftStyle::DecomposedNoSwaps)));
        // Two half-register components sit exactly on the boundary
        // (largest component == n/2) and are still accepted.
        let half = tile(&qft(4, QftStyle::DecomposedNoSwaps), 2);
        assert!(mpo_favored(&half));
    }

    /// Regression: the Algorithm II arm used to validate twice (once in
    /// `check_equivalence`, once inside `fidelity_alg2`) while the
    /// Algorithm I arm validated only inside `fidelity_alg1`. Validation
    /// now runs exactly once, before either arm, so invalid inputs fail
    /// with identical error precedence whichever algorithm is forced.
    #[test]
    fn validation_precedence_is_identical_across_arms() {
        let two = Circuit::new(2);
        let three = Circuit::new(3);
        let mut noisy_ideal = Circuit::new(2);
        noisy_ideal.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
        let arms = [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII];
        for algorithm in arms {
            let options = CheckOptions {
                algorithm,
                ..CheckOptions::default()
            };
            // Width mismatch beats a bad epsilon.
            assert_eq!(
                check_equivalence(&two, &three, 1.5, &options).unwrap_err(),
                QaecError::WidthMismatch { ideal: 2, noisy: 3 },
                "{algorithm:?}"
            );
            // A noisy ideal beats a bad epsilon.
            assert_eq!(
                check_equivalence(&noisy_ideal, &two, 1.5, &options).unwrap_err(),
                QaecError::IdealNotUnitary,
                "{algorithm:?}"
            );
            // With valid circuits the epsilon error surfaces.
            assert_eq!(
                check_equivalence(&two, &two, 1.5, &options).unwrap_err(),
                QaecError::InvalidEpsilon { value: 1.5 },
                "{algorithm:?}"
            );
        }
    }
}
