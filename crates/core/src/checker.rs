//! The top-level ε-equivalence checker.

use crate::alg1::{fidelity_alg1, fidelity_alg1_prevalidated};
use crate::alg2::{fidelity_alg2, fidelity_alg2_prevalidated};
use crate::error::QaecError;
use crate::options::{AlgorithmChoice, CheckOptions};
use crate::report::{AlgorithmUsed, EquivalenceReport, Verdict};
use qaec_circuit::Circuit;

/// Kraus-term count at or below which the automatic algorithm choice
/// prefers Algorithm I (the paper's Fig. 7 crossover sits around one to
/// two noise sites, i.e. 4–16 depolarizing terms).
pub const AUTO_TERM_THRESHOLD: usize = 16;

/// Picks the algorithm for a noisy circuit under [`AlgorithmChoice::Auto`].
pub fn auto_choice(noisy: &Circuit) -> AlgorithmUsed {
    if noisy.kraus_term_count() <= AUTO_TERM_THRESHOLD {
        AlgorithmUsed::AlgorithmI
    } else {
        AlgorithmUsed::AlgorithmII
    }
}

/// Computes the Jamiolkowski fidelity `F_J(E, U)` between an ideal
/// circuit and its noisy implementation.
///
/// # Errors
///
/// See [`fidelity_alg1`] / [`fidelity_alg2`].
///
/// # Example
///
/// ```
/// use qaec::{jamiolkowski_fidelity, CheckOptions};
/// use qaec_circuit::{Circuit, NoiseChannel};
///
/// // The paper's Example 3: F_J = p².
/// let p = 0.95;
/// let mut noisy = Circuit::new(2);
/// noisy.h(0)
///     .noise(NoiseChannel::BitFlip { p }, &[1])
///     .cp(std::f64::consts::FRAC_PI_2, 1, 0)
///     .noise(NoiseChannel::PhaseFlip { p }, &[0])
///     .h(1)
///     .swap(0, 1);
/// let f = jamiolkowski_fidelity(&noisy.ideal(), &noisy, &CheckOptions::default())?;
/// assert!((f - p * p).abs() < 1e-9);
/// # Ok::<(), qaec::QaecError>(())
/// ```
pub fn jamiolkowski_fidelity(
    ideal: &Circuit,
    noisy: &Circuit,
    options: &CheckOptions,
) -> Result<f64, QaecError> {
    let algorithm = match options.algorithm {
        AlgorithmChoice::Auto => auto_choice(noisy),
        AlgorithmChoice::AlgorithmI => AlgorithmUsed::AlgorithmI,
        AlgorithmChoice::AlgorithmII => AlgorithmUsed::AlgorithmII,
    };
    match algorithm {
        AlgorithmUsed::AlgorithmI => {
            let report = fidelity_alg1(ideal, noisy, None, options)?;
            Ok(report.fidelity_lower)
        }
        AlgorithmUsed::AlgorithmII => Ok(fidelity_alg2(ideal, noisy, options)?.fidelity),
    }
}

/// Decides the paper's Problem 1: is the noisy circuit ε-equivalent to
/// the ideal one, i.e. `F_J(E, U) > 1 − ε`?
///
/// # Errors
///
/// * [`QaecError::InvalidEpsilon`] if `epsilon ∉ [0, 1]`;
/// * plus everything [`jamiolkowski_fidelity`] can return.
///
/// # Example
///
/// ```
/// use qaec::{check_equivalence, CheckOptions, Verdict};
/// use qaec_circuit::{Circuit, NoiseChannel};
///
/// let p = 0.95; // F_J = p² = 0.9025
/// let mut noisy = Circuit::new(2);
/// noisy.h(0)
///     .noise(NoiseChannel::BitFlip { p }, &[1])
///     .cp(std::f64::consts::FRAC_PI_2, 1, 0)
///     .noise(NoiseChannel::PhaseFlip { p }, &[0])
///     .h(1)
///     .swap(0, 1);
/// let ideal = noisy.ideal();
/// // ε = 0.1: 0.9025 > 0.9 → equivalent (the paper's example decision).
/// let report = check_equivalence(&ideal, &noisy, 0.1, &CheckOptions::default())?;
/// assert_eq!(report.verdict, Verdict::Equivalent);
/// // ε = 0.05: 0.9025 ≤ 0.95 → not equivalent.
/// let report = check_equivalence(&ideal, &noisy, 0.05, &CheckOptions::default())?;
/// assert_eq!(report.verdict, Verdict::NotEquivalent);
/// # Ok::<(), qaec::QaecError>(())
/// ```
pub fn check_equivalence(
    ideal: &Circuit,
    noisy: &Circuit,
    epsilon: f64,
    options: &CheckOptions,
) -> Result<EquivalenceReport, QaecError> {
    // Validation runs exactly once per call, before either arm, so both
    // algorithms reject invalid inputs with identical error precedence
    // (width mismatch, then non-unitary ideal, then bad epsilon).
    crate::validate(ideal, noisy, Some(epsilon))?;
    let algorithm = match options.algorithm {
        AlgorithmChoice::Auto => auto_choice(noisy),
        AlgorithmChoice::AlgorithmI => AlgorithmUsed::AlgorithmI,
        AlgorithmChoice::AlgorithmII => AlgorithmUsed::AlgorithmII,
    };
    match algorithm {
        AlgorithmUsed::AlgorithmI => {
            let report = fidelity_alg1_prevalidated(ideal, noisy, Some(epsilon), options)?;
            let verdict = report.verdict.unwrap_or({
                // All terms evaluated without an early decision: compare
                // the exact value.
                if report.fidelity_lower > 1.0 - epsilon {
                    Verdict::Equivalent
                } else {
                    Verdict::NotEquivalent
                }
            });
            Ok(EquivalenceReport {
                verdict,
                fidelity_bounds: (report.fidelity_lower, report.fidelity_upper),
                epsilon,
                algorithm: AlgorithmUsed::AlgorithmI,
                terms_computed: report.terms_computed,
                total_terms: report.total_terms,
                max_nodes: report.max_nodes,
                elapsed: report.elapsed,
                stats: report.stats,
            })
        }
        AlgorithmUsed::AlgorithmII => {
            let report = fidelity_alg2_prevalidated(ideal, noisy, options)?;
            let verdict = if report.fidelity > 1.0 - epsilon {
                Verdict::Equivalent
            } else {
                Verdict::NotEquivalent
            };
            Ok(EquivalenceReport {
                verdict,
                fidelity_bounds: (report.fidelity, report.fidelity),
                epsilon,
                algorithm: AlgorithmUsed::AlgorithmII,
                terms_computed: 1,
                total_terms: 1,
                max_nodes: report.max_nodes,
                elapsed: report.elapsed,
                stats: report.stats,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::NoiseChannel;

    /// Regression: the Algorithm II arm used to validate twice (once in
    /// `check_equivalence`, once inside `fidelity_alg2`) while the
    /// Algorithm I arm validated only inside `fidelity_alg1`. Validation
    /// now runs exactly once, before either arm, so invalid inputs fail
    /// with identical error precedence whichever algorithm is forced.
    #[test]
    fn validation_precedence_is_identical_across_arms() {
        let two = Circuit::new(2);
        let three = Circuit::new(3);
        let mut noisy_ideal = Circuit::new(2);
        noisy_ideal.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
        let arms = [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII];
        for algorithm in arms {
            let options = CheckOptions {
                algorithm,
                ..CheckOptions::default()
            };
            // Width mismatch beats a bad epsilon.
            assert_eq!(
                check_equivalence(&two, &three, 1.5, &options).unwrap_err(),
                QaecError::WidthMismatch { ideal: 2, noisy: 3 },
                "{algorithm:?}"
            );
            // A noisy ideal beats a bad epsilon.
            assert_eq!(
                check_equivalence(&noisy_ideal, &two, 1.5, &options).unwrap_err(),
                QaecError::IdealNotUnitary,
                "{algorithm:?}"
            );
            // With valid circuits the epsilon error surfaces.
            assert_eq!(
                check_equivalence(&two, &two, 1.5, &options).unwrap_err(),
                QaecError::InvalidEpsilon { value: 1.5 },
                "{algorithm:?}"
            );
        }
    }
}
