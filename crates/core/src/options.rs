//! Configuration of the equivalence checker.

use qaec_tensornet::Strategy;
use std::time::Instant;

/// Which checking algorithm to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// Portfolio mode: on wide, weakly-coupled workloads run a cheap
    /// MPO pass first and escalate to an exact backend whenever the
    /// truncation interval straddles `1 − ε`; everywhere else pick
    /// between Algorithms I and II from the number of Kraus terms (the
    /// paper's observed crossover). Fidelity queries and noise sweeps
    /// always resolve to an exact backend.
    #[default]
    Auto,
    /// Algorithm I: one trace network per Kraus selection.
    AlgorithmI,
    /// Algorithm II: a single doubled network.
    AlgorithmII,
    /// Algorithm III: approximate MPO contraction with a rigorous
    /// truncation-error interval (`qaec-mpo`). Never escalates — an
    /// interval straddling `1 − ε` yields
    /// [`crate::Verdict::Inconclusive`].
    Mpo,
}

/// Global variable orders for the decision diagrams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VarOrderStyle {
    /// Indices sorted by `(qubit, circuit column)` — wires stay together.
    #[default]
    QubitMajor,
    /// Indices sorted by `(circuit column, qubit)` — time slices stay
    /// together.
    TimeMajor,
}

/// Whether Algorithm I / Monte-Carlo workers share one concurrent TDD
/// store (lock-striped unique table + sharded canonical weight
/// interning) or each keep a fully private manager.
///
/// With the shared store, common sub-diagrams are hash-consed *across*
/// worker threads — recovering Table II's "Opt." sharing in parallel
/// runs — and results are **bit-identical** whatever the thread count,
/// because the store's canonical interning makes every weight a pure
/// function of its value. The private backend remains the unchanged
/// sequential fast path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SharedTableMode {
    /// Share exactly when more than one worker runs (the default): the
    /// single-threaded path keeps its lock-free private store.
    /// Algorithm II is the exception — its plan scheduler contracts
    /// over the canonical shared store at *every* thread count under
    /// `Auto`, so `threads` is a pure performance knob there (see
    /// [`crate::fidelity_alg2`]).
    #[default]
    Auto,
    /// Always share, even with one worker — useful to get shared-store
    /// numerics (and bit-comparability with parallel runs) sequentially.
    On,
    /// Never share: every worker keeps a private manager (the pre-shared
    /// behaviour; cross-thread results agree only to ≈1e-9).
    Off,
}

impl SharedTableMode {
    /// Resolves the mode for an actual worker count.
    pub fn enabled_for(self, workers: usize) -> bool {
        match self {
            SharedTableMode::Auto => workers > 1,
            SharedTableMode::On => true,
            SharedTableMode::Off => false,
        }
    }
}

/// When a session retires its shared store for a compact successor
/// (epoch-based reclamation, [`qaec_tdd::SharedTddStore::successor`]).
///
/// The shared store's arenas are append-only: without reclamation a
/// long session — a Table I noise sweep, a service entry answering
/// queries for hours — pins every node and weight it ever interned
/// until the session drops. Reclamation swaps the store for a fresh
/// successor at *quiescent* batch boundaries (between sweep points /
/// queries, when no contraction holds ids into the store), releasing
/// the retired arenas while cumulative statistics, epoch fences and
/// peak high-water marks carry over.
///
/// Reclamation is value-transparent: interning is a pure function of
/// the value (canonical grid) or of the scope's input values (scoped
/// exact-bits), and no engine value ever depends on an id, so every
/// fidelity and verdict is bit-identical whichever mode runs. `Off`
/// remains the escape hatch that additionally keeps warm-store *reuse*
/// unconditional.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreReclaimMode {
    /// Reclaim when the store's payload passes a size threshold
    /// (~16 MiB): small sessions keep their warm store intact, big
    /// sweeps stop peaking at full-arena memory. The default.
    #[default]
    Auto,
    /// Reclaim at every quiescent boundary — minimal footprint, no
    /// warm-store reuse between points.
    On,
    /// Never reclaim (the pre-reclamation behaviour): the store grows
    /// monotonically until the session drops.
    Off,
}

/// The `Auto` reclamation trigger: retire the store once its payload
/// arenas pass this many bytes.
pub(crate) const RECLAIM_AUTO_THRESHOLD_BYTES: usize = 16 << 20;

impl StoreReclaimMode {
    /// Whether a store whose payload measures `approx_bytes` should be
    /// retired at the current quiescent boundary.
    pub fn should_reclaim(self, approx_bytes: usize) -> bool {
        match self {
            StoreReclaimMode::On => true,
            StoreReclaimMode::Off => false,
            StoreReclaimMode::Auto => approx_bytes >= RECLAIM_AUTO_THRESHOLD_BYTES,
        }
    }
}

/// Order in which Algorithm I enumerates Kraus selections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TermOrder {
    /// Descending probability mass (best-first): high-mass terms
    /// accumulate fidelity fastest, enabling early accept/reject — the
    /// paper's "calculate only a small part of these trace terms".
    #[default]
    BestFirst,
    /// Plain mixed-radix order (the paper's baseline behaviour).
    Lexicographic,
}

/// Tunables shared by both algorithms.
///
/// The defaults mirror the paper's experimental configuration: tree
/// decomposition (min-fill) contraction ordering and a shared computed
/// table, with the §IV-C local optimisations *disabled* (the paper
/// excludes them for fairness against Qiskit).
///
/// # Example
///
/// ```
/// use qaec::CheckOptions;
///
/// let opts = CheckOptions {
///     local_optimization: true,
///     swap_elimination: true,
///     ..CheckOptions::default()
/// };
/// assert!(opts.reuse_tables);
/// ```
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Which algorithm to run.
    pub algorithm: AlgorithmChoice,
    /// Contraction-order strategy (default: min-fill tree decomposition).
    pub strategy: Strategy,
    /// Decision-diagram variable order.
    pub var_order: VarOrderStyle,
    /// Keep one shared computed table across Algorithm I trace terms
    /// (the paper's "Opt." configuration of Table II).
    pub reuse_tables: bool,
    /// Cancel adjacent mutually-inverse gates in the miter, including
    /// cyclically across the trace boundary (§IV-C).
    pub local_optimization: bool,
    /// Remove SWAP gates by rewiring the trace closure (§IV-C).
    pub swap_elimination: bool,
    /// Kraus-term enumeration order for Algorithm I.
    pub term_order: TermOrder,
    /// Abort with [`crate::QaecError::Timeout`] past this instant.
    pub deadline: Option<Instant>,
    /// Arena size that triggers decision-diagram garbage collection.
    pub gc_threshold: Option<usize>,
    /// Worker threads. Algorithm I and the Monte-Carlo estimator steal
    /// independent trace terms (the paper notes they parallelize
    /// trivially), composing with `epsilon`, `term_order`, `max_terms`
    /// and `deadline`; Algorithm II dispatches independent contraction
    /// *plan steps* to the pool instead (there is only one term), with
    /// bit-identical results at every thread count. Plan *construction*
    /// (one-shot calls and [`crate::Checker::compile`]) also plans
    /// disconnected network components concurrently on this many
    /// workers — the emitted plan is worker-count independent, so this
    /// stays a pure performance knob end to end.
    pub threads: usize,
    /// Cap on Algorithm I terms (None = all); bounds stay correct, they
    /// just stop tightening.
    pub max_terms: Option<usize>,
    /// Whether parallel workers share one concurrent TDD store
    /// (default: [`SharedTableMode::Auto`] — on whenever `threads > 1` —
    /// overridable via the `QAEC_SHARED_TABLE` environment variable).
    pub shared_table: SharedTableMode,
    /// Seed each worker's contraction computed table from the heaviest
    /// completed term's cache before every new batch (shared-store runs
    /// only — cache entries hold store handles that are not portable
    /// between private managers, so the flag is a no-op elsewhere). On
    /// by default since profiling on the bench smoke preset showed it
    /// value-transparent and mildly faster on term-heavy parallel runs;
    /// `--seed-cache off` is the escape hatch.
    /// [`qaec_tdd::TddStats::seed_imports`] / `seed_hits` report the
    /// traffic and its payoff.
    pub seed_cont_cache: bool,
    /// Maximum lane width for vectorised noise sweeps
    /// ([`crate::CompiledCheck::sweep_noise`]): Algorithm II sweep points
    /// are batched into groups of up to this many and contracted in a
    /// single multi-lane traversal ([`qaec_tdd::lanes`]), ⌈N/LANES⌉
    /// passes instead of N. Clamped to the monomorphised widths
    /// {1, 2, 4, 8}; `1` forces the scalar per-point reference path.
    /// Results are bit-identical either way — lanes that cannot stay
    /// bit-identical fall back to the scalar path automatically.
    /// Default: 8, overridable via the `QAEC_SWEEP_LANES` environment
    /// variable.
    pub sweep_lanes: usize,
    /// When the session retires its shared store for a compact
    /// successor (default: [`StoreReclaimMode::Auto`] — once the store
    /// passes ~16 MiB of payload — overridable via the
    /// `QAEC_STORE_RECLAIM` environment variable). Bit-transparent:
    /// every result is identical with reclamation on, off or auto.
    pub store_reclaim: StoreReclaimMode,
    /// Relative singular-value mass one Algorithm III truncation may
    /// discard (every discarded mass is charged to the reported error
    /// interval, so loosening this widens intervals rather than
    /// corrupting answers). Ignored by the exact backends. Default
    /// `1e-8`.
    pub svd_threshold: f64,
    /// Hard cap on Algorithm III bond dimension; overflow past the cap
    /// is likewise charged to the error interval. Ignored by the exact
    /// backends. Default `16`.
    pub max_bond: usize,
}

/// The default worker-thread count: the `QAEC_THREADS` environment
/// variable when set to a positive integer, else 1.
///
/// This is what [`CheckOptions::default`] uses, so exporting
/// `QAEC_THREADS=4` runs every default-configured check (including the
/// whole test suite) through the parallel engine — CI uses exactly that
/// as its thread-sanity pass.
pub fn default_threads() -> usize {
    std::env::var("QAEC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The default shared-store mode: the `QAEC_SHARED_TABLE` environment
/// variable when set (`on`/`1`/`true` force sharing, `off`/`0`/`false`
/// force private managers), else [`SharedTableMode::Auto`].
///
/// This is what [`CheckOptions::default`] uses, so CI can run the whole
/// suite with either backend forced — the `shared-table-sanity` matrix
/// does exactly that on 4 workers.
pub fn default_shared_table() -> SharedTableMode {
    match std::env::var("QAEC_SHARED_TABLE").as_deref() {
        Ok("on") | Ok("1") | Ok("true") => SharedTableMode::On,
        Ok("off") | Ok("0") | Ok("false") => SharedTableMode::Off,
        _ => SharedTableMode::Auto,
    }
}

/// The default noise-sweep lane width: the `QAEC_SWEEP_LANES`
/// environment variable when set to a positive integer (rounded down to
/// the nearest monomorphised width in {1, 2, 4, 8}), else 8.
///
/// This is what [`CheckOptions::default`] uses, so exporting
/// `QAEC_SWEEP_LANES=1` forces every default-configured sweep through
/// the scalar per-point reference path — CI's `sweep-lane-parity` job
/// uses exactly that to prove the lane path bit-identical.
pub fn default_sweep_lanes() -> usize {
    std::env::var("QAEC_SWEEP_LANES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(clamp_lane_width)
        .unwrap_or(8)
}

/// The default store-reclamation mode: the `QAEC_STORE_RECLAIM`
/// environment variable when set (`on`/`1`/`true` reclaim at every
/// quiescent boundary, `off`/`0`/`false` never reclaim, `auto` the
/// size-triggered default), else [`StoreReclaimMode::Auto`].
///
/// This is what [`CheckOptions::default`] uses, so CI can force either
/// extreme for the whole suite — the `shared-table-sanity` matrix runs
/// a `QAEC_STORE_RECLAIM=on`/`off` leg to prove reclamation
/// bit-transparent end to end.
pub fn default_store_reclaim() -> StoreReclaimMode {
    match std::env::var("QAEC_STORE_RECLAIM").as_deref() {
        Ok("on") | Ok("1") | Ok("true") => StoreReclaimMode::On,
        Ok("off") | Ok("0") | Ok("false") => StoreReclaimMode::Off,
        _ => StoreReclaimMode::Auto,
    }
}

/// Rounds a requested lane width down to the nearest monomorphised
/// width: {1, 2, 4, 8}.
pub(crate) fn clamp_lane_width(n: usize) -> usize {
    match n {
        0..=1 => 1,
        2..=3 => 2,
        4..=7 => 4,
        _ => 8,
    }
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            algorithm: AlgorithmChoice::Auto,
            strategy: Strategy::MinFill,
            var_order: VarOrderStyle::QubitMajor,
            reuse_tables: true,
            local_optimization: false,
            swap_elimination: false,
            term_order: TermOrder::BestFirst,
            deadline: None,
            gc_threshold: Some(2_000_000),
            threads: default_threads(),
            max_terms: None,
            shared_table: default_shared_table(),
            seed_cont_cache: true,
            sweep_lanes: default_sweep_lanes(),
            store_reclaim: default_store_reclaim(),
            svd_threshold: 1e-8,
            max_bond: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let o = CheckOptions::default();
        assert_eq!(o.algorithm, AlgorithmChoice::Auto);
        assert_eq!(o.strategy, Strategy::MinFill);
        assert!(o.reuse_tables);
        assert!(!o.local_optimization);
        assert!(!o.swap_elimination);
        // 1 unless the QAEC_THREADS env override is active (the CI
        // thread-sanity pass sets it to exercise the parallel engine).
        assert_eq!(o.threads, default_threads());
        assert!(o.deadline.is_none());
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn shared_table_resolution() {
        assert!(!SharedTableMode::Auto.enabled_for(1));
        assert!(SharedTableMode::Auto.enabled_for(2));
        assert!(SharedTableMode::On.enabled_for(1));
        assert!(SharedTableMode::On.enabled_for(8));
        assert!(!SharedTableMode::Off.enabled_for(8));
        // Unless the env override is active, the default is Auto; with
        // it, CI forces one backend for the whole suite.
        let expected = match std::env::var("QAEC_SHARED_TABLE").as_deref() {
            Ok("on") | Ok("1") | Ok("true") => SharedTableMode::On,
            Ok("off") | Ok("0") | Ok("false") => SharedTableMode::Off,
            _ => SharedTableMode::Auto,
        };
        assert_eq!(CheckOptions::default().shared_table, expected);
        // Cache seeding defaults on (shared-store runs only; a no-op —
        // and value-transparent — everywhere else).
        assert!(CheckOptions::default().seed_cont_cache);
    }

    #[test]
    fn store_reclaim_resolution() {
        assert!(StoreReclaimMode::On.should_reclaim(0));
        assert!(!StoreReclaimMode::Off.should_reclaim(usize::MAX));
        assert!(!StoreReclaimMode::Auto.should_reclaim(0));
        assert!(StoreReclaimMode::Auto.should_reclaim(RECLAIM_AUTO_THRESHOLD_BYTES));
        // Unless the env override is active, the default is Auto; the
        // CI reclamation leg forces on/off for the whole suite.
        let expected = match std::env::var("QAEC_STORE_RECLAIM").as_deref() {
            Ok("on") | Ok("1") | Ok("true") => StoreReclaimMode::On,
            Ok("off") | Ok("0") | Ok("false") => StoreReclaimMode::Off,
            _ => StoreReclaimMode::Auto,
        };
        assert_eq!(CheckOptions::default().store_reclaim, expected);
    }

    #[test]
    fn lane_widths_clamp_to_monomorphised_set() {
        assert_eq!(clamp_lane_width(0), 1);
        assert_eq!(clamp_lane_width(1), 1);
        assert_eq!(clamp_lane_width(2), 2);
        assert_eq!(clamp_lane_width(3), 2);
        assert_eq!(clamp_lane_width(4), 4);
        assert_eq!(clamp_lane_width(7), 4);
        assert_eq!(clamp_lane_width(8), 8);
        assert_eq!(clamp_lane_width(64), 8);
        // Unless the env override is active, the default is the widest
        // lane; the CI parity job forces 1 to pin the scalar path.
        let expected = std::env::var("QAEC_SWEEP_LANES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .map(clamp_lane_width)
            .unwrap_or(8);
        assert_eq!(CheckOptions::default().sweep_lanes, expected);
    }
}
