//! Algorithm I: calculate trace terms individually.
//!
//! `F_J(E, U) = Σᵢ |tr(U†Eᵢ)|² / d²`, one miter contraction per Kraus
//! selection. The number of selections is exponential in the number of
//! noise sites, but:
//!
//! * the shared manager reuses unique/computed-table entries across terms
//!   (Table II's "Opt." configuration);
//! * terms can be enumerated best-first by probability mass, and
//!   Cauchy–Schwarz (`|tr(U†Eᵢ)|² ≤ d·tr(Eᵢ†Eᵢ)`) bounds the mass still
//!   outstanding, so an ε-decision can stop early in *both* directions —
//!   the paper's "calculate only a small part of these trace terms"
//!   future-work item;
//! * independent terms parallelize across threads (`threads > 1`).

use crate::error::QaecError;
use crate::miter::{build_trace_network, identity_map, Alg1Template, BuiltNetwork};
use crate::optimize::{cancel_inverse_pairs, eliminate_swaps};
use crate::options::{CheckOptions, TermOrder};
use crate::report::Verdict;
use crate::validate;
use qaec_circuit::Circuit;
use qaec_tdd::{contract_network_opts, DriverOptions, TddManager};
use qaec_tensornet::ContractionPlan;
use std::collections::{BinaryHeap, HashSet};
use std::time::{Duration, Instant};

/// Outcome of an Algorithm I run.
#[derive(Clone, Debug, PartialEq)]
pub struct Alg1Report {
    /// Proven lower bound on the fidelity (sum of computed terms).
    pub fidelity_lower: f64,
    /// Proven upper bound (lower + outstanding Kraus mass).
    pub fidelity_upper: f64,
    /// Terms actually contracted.
    pub terms_computed: usize,
    /// Total number of Kraus selections.
    pub total_terms: usize,
    /// Largest intermediate diagram, in nodes (Table I's `nodes`).
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The ε-decision, when a threshold was supplied.
    pub verdict: Option<Verdict>,
}

/// Computes the Jamiolkowski fidelity with Algorithm I.
///
/// With `epsilon = None` every term is evaluated (up to
/// `options.max_terms`) and the bounds coincide; with `Some(ε)` the run
/// stops as soon as ε-equivalence is decided either way.
///
/// # Errors
///
/// * [`QaecError::WidthMismatch`] / [`QaecError::IdealNotUnitary`] /
///   [`QaecError::InvalidEpsilon`] on invalid inputs;
/// * [`QaecError::Timeout`] if `options.deadline` expires.
pub fn fidelity_alg1(
    ideal: &Circuit,
    noisy: &Circuit,
    epsilon: Option<f64>,
    options: &CheckOptions,
) -> Result<Alg1Report, QaecError> {
    validate(ideal, noisy, epsilon)?;
    let start = Instant::now();

    let mut template = Alg1Template::build(ideal, noisy);
    let n_wires = template.n_wires;
    let final_map = if options.swap_elimination {
        eliminate_swaps(&mut template.elements, n_wires)
    } else {
        identity_map(n_wires)
    };
    if options.local_optimization {
        cancel_inverse_pairs(&mut template.elements, n_wires);
    }

    let d = (1u64 << noisy.n_qubits()) as f64;
    let d2 = d * d;
    let total_terms = template.total_terms();

    // Every instantiation shares the network structure, so the plan and
    // variable order come from the first term and are reused throughout.
    let first_choice = vec![0usize; template.sites.len()];
    let first = build_network(&template, &first_choice, &final_map, options);
    let plan = first.network.plan(options.strategy);
    let order = first.order.clone();

    let mut shared_manager = options.reuse_tables.then(TddManager::new);
    let mut lower = 0.0f64;
    let mut remaining = 1.0f64; // CPTP: masses sum to 1
    let mut max_nodes = 0usize;
    let mut terms_computed = 0usize;
    let mut verdict = None;

    // Parallel exact mode: fixed-size chunks of the lexicographic space.
    if options.threads > 1 && epsilon.is_none() && total_terms > 1 {
        let (lo, nodes, computed) = run_parallel(
            &template,
            &final_map,
            &plan,
            &order,
            options,
            total_terms,
            d2,
        )?;
        return Ok(Alg1Report {
            fidelity_lower: lo,
            fidelity_upper: lo,
            terms_computed: computed,
            total_terms,
            max_nodes: nodes,
            elapsed: start.elapsed(),
            verdict: None,
        });
    }

    let mut enumerator = TermEnumerator::new(&template, options.term_order);
    while let Some((choice, mass)) = enumerator.next_term() {
        if options.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(QaecError::Timeout);
        }
        if options.max_terms.is_some_and(|cap| terms_computed >= cap) {
            break;
        }
        let built = build_network(&template, &choice, &final_map, options);
        let mut fresh_manager;
        let manager: &mut TddManager = match shared_manager.as_mut() {
            Some(m) => m,
            None => {
                fresh_manager = TddManager::new();
                &mut fresh_manager
            }
        };
        let result = contract_network_opts(
            manager,
            &built.network,
            &plan,
            &order,
            DriverOptions {
                gc_threshold: options.gc_threshold,
                deadline: options.deadline,
            },
        )
        .map_err(|_| QaecError::Timeout)?;
        let trace = manager.edge_scalar(result.root).expect("closed network");
        lower += trace.norm_sqr() / d2;
        remaining = (remaining - mass).max(0.0);
        max_nodes = max_nodes.max(result.max_nodes);
        terms_computed += 1;

        if let Some(eps) = epsilon {
            if lower > 1.0 - eps {
                verdict = Some(Verdict::Equivalent);
                break;
            }
            if lower + remaining <= 1.0 - eps {
                verdict = Some(Verdict::NotEquivalent);
                break;
            }
        }
    }

    if terms_computed == total_terms {
        remaining = 0.0;
    }
    Ok(Alg1Report {
        fidelity_lower: lower.min(1.0 + 1e-9),
        fidelity_upper: (lower + remaining).min(1.0),
        terms_computed,
        total_terms,
        max_nodes,
        elapsed: start.elapsed(),
        verdict,
    })
}

fn build_network(
    template: &Alg1Template,
    choice: &[usize],
    final_map: &[usize],
    options: &CheckOptions,
) -> BuiltNetwork {
    let elements = template.instantiate(choice);
    build_trace_network(&elements, template.n_wires, final_map, options.var_order)
}

fn run_parallel(
    template: &Alg1Template,
    final_map: &[usize],
    plan: &ContractionPlan,
    order: &qaec_tensornet::VarOrder,
    options: &CheckOptions,
    total_terms: usize,
    d2: f64,
) -> Result<(f64, usize, usize), QaecError> {
    let threads = options.threads.min(total_terms).max(1);
    let chunk = total_terms.div_ceil(threads);
    let counts: Vec<usize> = template.sites.iter().map(|s| s.kraus.len()).collect();
    let results = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo_term = t * chunk;
            let hi_term = ((t + 1) * chunk).min(total_terms);
            let counts = &counts;
            let handle = scope.spawn(move || {
                let mut manager = TddManager::new();
                let mut sum = 0.0f64;
                let mut nodes = 0usize;
                let mut choice = vec![0usize; counts.len()];
                for term in lo_term..hi_term {
                    if options.deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(QaecError::Timeout);
                    }
                    let mut rem = term;
                    for (slot, &c) in counts.iter().enumerate() {
                        choice[slot] = rem % c;
                        rem /= c;
                    }
                    let built = build_network(template, &choice, final_map, options);
                    let result = contract_network_opts(
                        &mut manager,
                        &built.network,
                        plan,
                        order,
                        DriverOptions {
                            gc_threshold: options.gc_threshold,
                            deadline: options.deadline,
                        },
                    )
                    .map_err(|_| QaecError::Timeout)?;
                    let trace = manager.edge_scalar(result.root).expect("closed");
                    sum += trace.norm_sqr() / d2;
                    nodes = nodes.max(result.max_nodes);
                }
                Ok((sum, nodes, hi_term - lo_term))
            });
            handles.push(handle);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut lower = 0.0;
    let mut max_nodes = 0;
    let mut computed = 0;
    for r in results {
        let (sum, nodes, count) = r?;
        lower += sum;
        max_nodes = max_nodes.max(nodes);
        computed += count;
    }
    Ok((lower, max_nodes, computed))
}

/// Mixed-radix / best-first enumeration of Kraus selections with their
/// probability masses.
struct TermEnumerator {
    counts: Vec<usize>,
    /// Per site, masses sorted descending (positions, not raw indices).
    masses: Vec<Vec<f64>>,
    /// Per site, sorted position → raw Kraus index.
    sorted_maps: Vec<Vec<usize>>,
    mode: TermOrder,
    // Lexicographic state.
    next_lex: Option<Vec<usize>>,
    // Best-first state.
    heap: BinaryHeap<HeapTerm>,
    seen: HashSet<Vec<usize>>,
}

struct HeapTerm {
    mass: f64,
    choice: Vec<usize>,
}

impl PartialEq for HeapTerm {
    fn eq(&self, other: &Self) -> bool {
        self.mass == other.mass && self.choice == other.choice
    }
}
impl Eq for HeapTerm {}
impl PartialOrd for HeapTerm {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapTerm {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mass
            .total_cmp(&other.mass)
            .then_with(|| other.choice.cmp(&self.choice))
    }
}

impl TermEnumerator {
    fn new(template: &Alg1Template, mode: TermOrder) -> Self {
        let counts: Vec<usize> = template.sites.iter().map(|s| s.kraus.len()).collect();
        // Per site: Kraus indices sorted by descending mass, so the
        // all-zero choice over *sorted positions* is the heaviest term.
        let sorted_indices: Vec<Vec<usize>> = template
            .sites
            .iter()
            .map(|s| {
                let mut idx: Vec<usize> = (0..s.masses.len()).collect();
                idx.sort_by(|&a, &b| s.masses[b].total_cmp(&s.masses[a]));
                idx
            })
            .collect();
        let masses: Vec<Vec<f64>> = template
            .sites
            .iter()
            .zip(&sorted_indices)
            .map(|(s, idx)| idx.iter().map(|&i| s.masses[i]).collect())
            .collect();
        let root = vec![0usize; counts.len()];
        let mut e = TermEnumerator {
            counts,
            masses,
            sorted_maps: sorted_indices,
            mode,
            next_lex: Some(root.clone()),
            heap: BinaryHeap::new(),
            seen: HashSet::new(),
        };
        if mode == TermOrder::BestFirst {
            e.heap.push(HeapTerm {
                mass: e.mass_of(&root),
                choice: root.clone(),
            });
            e.seen.insert(root);
        }
        e
    }

    fn mass_of(&self, positions: &[usize]) -> f64 {
        positions
            .iter()
            .enumerate()
            .map(|(site, &p)| self.masses[site][p])
            .product()
    }

    /// Yields `(raw Kraus choice, mass)` or `None` when exhausted.
    fn next_term(&mut self) -> Option<(Vec<usize>, f64)> {
        match self.mode {
            TermOrder::Lexicographic => {
                let current = self.next_lex.take()?;
                // Advance the mixed-radix counter.
                let mut next = current.clone();
                let mut carry = true;
                for (digit, &radix) in next.iter_mut().zip(&self.counts) {
                    if carry {
                        *digit += 1;
                        if *digit == radix {
                            *digit = 0;
                        } else {
                            carry = false;
                        }
                    }
                }
                if !carry && !next.is_empty() {
                    self.next_lex = Some(next);
                }
                let mass = self.mass_of(&current);
                let raw = self.to_raw(&current);
                Some((raw, mass))
            }
            TermOrder::BestFirst => {
                let top = self.heap.pop()?;
                for site in 0..self.counts.len() {
                    if top.choice[site] + 1 < self.counts[site] {
                        let mut succ = top.choice.clone();
                        succ[site] += 1;
                        if self.seen.insert(succ.clone()) {
                            self.heap.push(HeapTerm {
                                mass: self.mass_of(&succ),
                                choice: succ,
                            });
                        }
                    }
                }
                let raw = self.to_raw(&top.choice);
                Some((raw, top.mass))
            }
        }
    }

    fn to_raw(&self, positions: &[usize]) -> Vec<usize> {
        positions
            .iter()
            .enumerate()
            .map(|(site, &p)| self.sorted_maps[site][p])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::{Circuit, NoiseChannel};
    use std::collections::HashSet;

    fn template_with(channels: &[NoiseChannel]) -> Alg1Template {
        let mut noisy = Circuit::new(1);
        for ch in channels {
            noisy.noise(ch.clone(), &[0]);
        }
        Alg1Template::build(&Circuit::new(1), &noisy)
    }

    #[test]
    fn lexicographic_covers_every_selection_once() {
        let template = template_with(&[
            NoiseChannel::Depolarizing { p: 0.9 },
            NoiseChannel::BitFlip { p: 0.8 },
        ]);
        let mut e = TermEnumerator::new(&template, TermOrder::Lexicographic);
        let mut seen = HashSet::new();
        let mut total_mass = 0.0;
        while let Some((choice, mass)) = e.next_term() {
            assert!(seen.insert(choice.clone()), "duplicate {choice:?}");
            assert!(choice[0] < 4 && choice[1] < 2);
            total_mass += mass;
        }
        assert_eq!(seen.len(), 8);
        assert!((total_mass - 1.0).abs() < 1e-12, "masses must sum to 1");
    }

    #[test]
    fn best_first_is_non_increasing_and_complete() {
        let template = template_with(&[
            NoiseChannel::Depolarizing { p: 0.7 },
            NoiseChannel::Pauli {
                pi: 0.6,
                px: 0.25,
                py: 0.1,
                pz: 0.05,
            },
        ]);
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let mut seen = HashSet::new();
        let mut last = f64::INFINITY;
        while let Some((choice, mass)) = e.next_term() {
            assert!(mass <= last + 1e-12, "mass not descending: {mass} > {last}");
            last = mass;
            assert!(seen.insert(choice));
        }
        assert_eq!(seen.len(), 16);
        // The first term must be the heaviest: 0.7 · 0.6.
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let (_, first_mass) = e.next_term().expect("non-empty");
        assert!((first_mass - 0.42).abs() < 1e-12);
    }

    #[test]
    fn best_first_maps_back_to_raw_indices() {
        // Amplitude damping masses are not sorted by Kraus index for
        // large gamma: K1 (decay) can outweigh K0.
        let template = template_with(&[NoiseChannel::AmplitudeDamping { gamma: 0.9 }]);
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let (first, first_mass) = e.next_term().expect("some");
        // masses: K0 = (1 + (1−γ))/2 = 0.55, K1 = γ/2 = 0.45 → K0 first.
        assert_eq!(first, vec![0]);
        assert!((first_mass - 0.55).abs() < 1e-12);
        let (second, second_mass) = e.next_term().expect("some");
        assert_eq!(second, vec![1]);
        assert!((second_mass - 0.45).abs() < 1e-12);
    }

    #[test]
    fn zero_sites_yield_single_unit_term() {
        let template = template_with(&[]);
        for order in [TermOrder::Lexicographic, TermOrder::BestFirst] {
            let mut e = TermEnumerator::new(&template, order);
            let (choice, mass) = e.next_term().expect("one term");
            assert!(choice.is_empty());
            assert!((mass - 1.0).abs() < 1e-12);
            assert!(e.next_term().is_none(), "{order:?} must be exhausted");
        }
    }
}
