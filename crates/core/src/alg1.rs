//! Algorithm I: calculate trace terms individually.
//!
//! `F_J(E, U) = Σᵢ |tr(U†Eᵢ)|² / d²`, one miter contraction per Kraus
//! selection. The number of selections is exponential in the number of
//! noise sites, but:
//!
//! * the shared manager reuses unique/computed-table entries across terms
//!   (Table II's "Opt." configuration);
//! * terms can be enumerated best-first by probability mass, and
//!   Cauchy–Schwarz (`|tr(U†Eᵢ)|² ≤ d·tr(Eᵢ†Eᵢ)`) bounds the mass still
//!   outstanding, so an ε-decision can stop early in *both* directions —
//!   the paper's "calculate only a small part of these trace terms"
//!   future-work item;
//! * independent terms parallelize across threads (`threads > 1`) through
//!   the work-stealing [`crate::engine`], which composes with `epsilon`,
//!   `term_order`, `max_terms` and `deadline`;
//! * parallel workers share one concurrent decision-diagram store by
//!   default (`options.shared_table`), hash-consing sub-diagrams across
//!   threads — so parallel runs keep Table II's "Opt." structure sharing
//!   *and* every shared-store run returns bit-identical bounds/verdicts
//!   whatever the thread count (force the store on at `threads == 1`
//!   for a bit-comparable sequential reference; the `Auto` default
//!   keeps the private fast path there).

use crate::engine::TermEngine;
use crate::error::QaecError;
use crate::miter::{identity_map, Alg1Template};
use crate::optimize::{cancel_inverse_pairs, eliminate_swaps};
use crate::options::CheckOptions;
use crate::report::Verdict;
use crate::validate;
use qaec_circuit::Circuit;
use qaec_tdd::{SharedTddStore, TddStats};
use qaec_tensornet::{ContractionPlan, VarOrder};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of an Algorithm I run.
#[derive(Clone, Debug, PartialEq)]
pub struct Alg1Report {
    /// Proven lower bound on the fidelity (sum of computed terms).
    pub fidelity_lower: f64,
    /// Proven upper bound (lower + outstanding Kraus mass).
    pub fidelity_upper: f64,
    /// Terms actually contracted.
    pub terms_computed: usize,
    /// Total number of Kraus selections.
    pub total_terms: usize,
    /// Largest intermediate diagram, in nodes (Table I's `nodes`).
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The ε-decision, when a threshold was supplied.
    pub verdict: Option<Verdict>,
    /// Decision-diagram statistics, merged across all workers.
    pub stats: TddStats,
}

/// Computes the Jamiolkowski fidelity with Algorithm I.
///
/// With `epsilon = None` every term is evaluated (up to
/// `options.max_terms`) and the bounds coincide; with `Some(ε)` the run
/// stops as soon as ε-equivalence is decided either way. Both modes run
/// on `options.threads` work-stealing workers, which share the
/// enumerated term stream and stop together the moment a verdict, the
/// `max_terms` cap or the deadline lands.
///
/// # Errors
///
/// * [`QaecError::WidthMismatch`] / [`QaecError::IdealNotUnitary`] /
///   [`QaecError::InvalidEpsilon`] on invalid inputs;
/// * [`QaecError::Timeout`] if `options.deadline` expires.
pub fn fidelity_alg1(
    ideal: &Circuit,
    noisy: &Circuit,
    epsilon: Option<f64>,
    options: &CheckOptions,
) -> Result<Alg1Report, QaecError> {
    validate(ideal, noisy, epsilon)?;
    fidelity_alg1_prevalidated(ideal, noisy, epsilon, options)
}

/// [`fidelity_alg1`] minus input validation, for callers (the top-level
/// checker) that already validated once — so `check_equivalence` never
/// validates the same pair twice. One-shot: compiles the artifacts and
/// runs a single query; the reported `elapsed` covers both, as it always
/// has.
pub(crate) fn fidelity_alg1_prevalidated(
    ideal: &Circuit,
    noisy: &Circuit,
    epsilon: Option<f64>,
    options: &CheckOptions,
) -> Result<Alg1Report, QaecError> {
    let start = Instant::now();
    let artifacts = Alg1Artifacts::compile(ideal, noisy, options);
    let mut report = artifacts.run(epsilon, options, None)?;
    report.elapsed = start.elapsed();
    Ok(report)
}

/// The compiled, reusable part of an Algorithm I check: the miter
/// template (noise sites still substitutable), the SWAP-elimination wire
/// map, and the contraction plan + variable order shared by every Kraus
/// instantiation. Compiling once and querying many times is what the
/// session API ([`crate::Checker`]) amortises across ε- and
/// noise-sweeps.
#[derive(Clone, Debug)]
pub(crate) struct Alg1Artifacts {
    pub(crate) template: Alg1Template,
    final_map: Vec<usize>,
    plan: ContractionPlan,
    order: VarOrder,
    d2: f64,
}

impl Alg1Artifacts {
    /// Builds the template, applies the §IV-C optimisations, and plans
    /// the contraction — everything that does not depend on ε or the
    /// concrete Kraus weights. Planning uses the component-parallel
    /// planner on `options.threads` workers (the emitted plan is
    /// worker-count independent).
    ///
    /// Callers must have validated the circuit pair.
    pub(crate) fn compile(ideal: &Circuit, noisy: &Circuit, options: &CheckOptions) -> Self {
        let mut template = Alg1Template::build(ideal, noisy);
        let n_wires = template.n_wires;
        let final_map = if options.swap_elimination {
            eliminate_swaps(&mut template.elements, n_wires)
        } else {
            identity_map(n_wires)
        };
        if options.local_optimization {
            cancel_inverse_pairs(&mut template.elements, n_wires);
        }

        let d = (1u64 << noisy.n_qubits()) as f64;

        // Every instantiation shares the network structure, so the plan
        // and variable order come from the first term and are reused
        // throughout — including across noise-sweep re-instantiations.
        let first_choice = vec![0usize; template.sites.len()];
        let first = {
            let elements = template.instantiate(&first_choice);
            crate::miter::build_trace_network(&elements, n_wires, &final_map, options.var_order)
        };
        let plan = first
            .network
            .plan_parallel(options.strategy, options.threads.max(1));
        Alg1Artifacts {
            template,
            final_map,
            plan,
            order: first.order,
            d2: d * d,
        }
    }

    /// One query over the compiled artifacts (the compiled channels).
    pub(crate) fn run(
        &self,
        epsilon: Option<f64>,
        options: &CheckOptions,
        warm_store: Option<&Arc<SharedTddStore>>,
    ) -> Result<Alg1Report, QaecError> {
        self.run_template(&self.template, epsilon, options, warm_store)
    }

    /// One query over a re-instantiated template (a noise-sweep point):
    /// same element structure, new Kraus weights, same plan and order.
    pub(crate) fn run_template(
        &self,
        template: &Alg1Template,
        epsilon: Option<f64>,
        options: &CheckOptions,
        warm_store: Option<&Arc<SharedTddStore>>,
    ) -> Result<Alg1Report, QaecError> {
        let start = Instant::now();
        let total_terms = template.total_terms();
        let engine = TermEngine {
            template,
            final_map: &self.final_map,
            plan: &self.plan,
            order: &self.order,
            options,
            d2: self.d2,
            warm_store,
        };
        let outcome = engine.run(epsilon, total_terms)?;

        Ok(Alg1Report {
            fidelity_lower: outcome.lower.min(1.0 + 1e-9),
            fidelity_upper: (outcome.lower + outcome.remaining).min(1.0),
            terms_computed: outcome.terms_computed,
            total_terms,
            max_nodes: outcome.max_nodes,
            elapsed: start.elapsed(),
            verdict: outcome.verdict,
            stats: outcome.stats,
        })
    }

    /// Worker count a run over `total_terms` terms would use (bounds the
    /// shared-store resolution the session makes at compile time).
    pub(crate) fn workers(&self, options: &CheckOptions) -> usize {
        options
            .threads
            .max(1)
            .min(self.template.total_terms().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::generators::random_circuit;
    use qaec_circuit::noise_insertion::insert_random_noise;
    use qaec_circuit::NoiseChannel;

    #[test]
    fn report_carries_merged_stats() {
        let ideal = random_circuit(2, 8, 11);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.95 }, 2, 12);
        let report = fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default()).expect("run");
        assert!(report.stats.nodes_created > 0, "{:?}", report.stats);
        assert!(report.stats.cont_calls > 0);
        assert!(report.stats.peak_nodes > 0);
    }

    #[test]
    fn parallel_exact_honours_max_terms() {
        // Regression: the old fixed-chunk parallel path ignored
        // `max_terms` and collapsed the bounds to a point.
        let ideal = random_circuit(2, 8, 3);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9 }, 3, 5);
        let cap = 5usize;
        let capped = fidelity_alg1(
            &ideal,
            &noisy,
            None,
            &CheckOptions {
                threads: 4,
                max_terms: Some(cap),
                ..CheckOptions::default()
            },
        )
        .expect("capped parallel");
        assert_eq!(capped.terms_computed, cap);
        assert!(
            capped.fidelity_upper > capped.fidelity_lower + 1e-6,
            "capped bounds must stay open: [{}, {}]",
            capped.fidelity_lower,
            capped.fidelity_upper
        );
        let sequential = fidelity_alg1(
            &ideal,
            &noisy,
            None,
            &CheckOptions {
                max_terms: Some(cap),
                ..CheckOptions::default()
            },
        )
        .expect("capped sequential");
        assert_eq!(sequential.terms_computed, cap);
        assert!((capped.fidelity_lower - sequential.fidelity_lower).abs() < 1e-9);
        assert!((capped.fidelity_upper - sequential.fidelity_upper).abs() < 1e-9);
    }

    #[test]
    fn parallel_epsilon_matches_sequential_verdict() {
        let ideal = random_circuit(2, 10, 21);
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.97 }, 3, 22);
        for eps in [1e-2, 0.2] {
            let sequential =
                fidelity_alg1(&ideal, &noisy, Some(eps), &CheckOptions::default()).expect("seq");
            let parallel = fidelity_alg1(
                &ideal,
                &noisy,
                Some(eps),
                &CheckOptions {
                    threads: 4,
                    ..CheckOptions::default()
                },
            )
            .expect("par");
            assert_eq!(sequential.verdict, parallel.verdict, "ε = {eps}");
        }
    }
}
