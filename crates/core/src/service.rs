//! The serving layer: a keyed cache of compiled sessions answering
//! check/sweep requests for a hot set of circuit pairs.
//!
//! The paper's workloads — and the ROADMAP's north-star service — are
//! repeated-query shaped: the same circuit pair is checked at many
//! thresholds and noise strengths, and a hot pair is asked again long
//! after its first request. [`crate::Checker`] already splits compile
//! from query *within* one session; a [`Service`] extends that across
//! requests:
//!
//! * **Content-keyed sessions.** Each request names a pair; the cache
//!   key is [`qaec_circuit::hash::pair_hash`] — gates, parameters,
//!   wiring and noise sites, order-canonicalised — so the same pair
//!   submitted twice (from a file, inline, re-serialized) lands on the
//!   same [`crate::CompiledCheck`], and its warm store and cached
//!   fidelity interval serve the repeat for free.
//! * **Single-flight compilation.** Concurrent requests for the same
//!   uncached pair compile **once**: the loser threads block on the
//!   winner's compile and then share its session, so a thundering herd
//!   on a cold pair costs one plan construction
//!   ([`ServiceStats::compiles`] proves it).
//! * **Byte-budgeted LRU eviction.** The cache sums
//!   [`crate::CompiledCheck::warm_store_bytes`] over its sessions and
//!   evicts least-recently-used entries until the total fits
//!   [`ServiceConfig::cache_bytes`] (the session that just served is
//!   never evicted — a single pair bigger than the budget still serves,
//!   the budget then simply holds nothing else). Within a session,
//!   epoch-based store reclamation ([`crate::StoreReclaimMode`])
//!   retires oversized stores for compact successors at query
//!   boundaries, so a long-lived entry's footprint steps down instead
//!   of growing without bound — the budget then holds more warm
//!   sessions.
//! * **Batch concurrency.** [`Service::handle_batch`] groups a request
//!   stream by pair, runs distinct pairs concurrently on
//!   [`qaec_tdd::run_on_workers`] and queries each pair's session
//!   sequentially in stream order — so batched repeats are cache hits,
//!   not racing duplicate compiles.
//!
//! Results are **bit-identical** to cold one-shot calls: a session is
//! exactly the [`crate::Checker`] artifact, and warm-store reuse is
//! value-transparent (see [`crate::session`]).
//!
//! # Example
//!
//! ```
//! use qaec::{CacheOutcome, Service, ServiceConfig, ServiceReply, ServiceRequest, ServiceQuery};
//! use qaec_circuit::{Circuit, NoiseChannel};
//!
//! let mut noisy = Circuit::new(2);
//! noisy.h(0).cx(0, 1).noise(NoiseChannel::Depolarizing { p: 0.999 }, &[1]);
//! let ideal = noisy.ideal();
//!
//! let service = Service::new(ServiceConfig::default());
//! let request = ServiceRequest {
//!     ideal: ideal.clone(),
//!     noisy: noisy.clone(),
//!     query: ServiceQuery::Check { epsilon: 0.05 },
//!     algorithm: None,
//! };
//!
//! // First request compiles; the repeat is served by the cached session.
//! let cold = service.handle(&request);
//! let warm = service.handle(&request);
//! assert_eq!(cold.cache, CacheOutcome::Miss);
//! assert_eq!(warm.cache, CacheOutcome::Hit);
//! let stats = service.stats();
//! assert_eq!((stats.hits, stats.misses, stats.compiles), (1, 1, 1));
//!
//! // And the answers are bit-identical.
//! let (a, b) = (cold.result.unwrap(), warm.result.unwrap());
//! match (&a, &b) {
//!     (ServiceReply::Check(x), ServiceReply::Check(y)) => {
//!         assert_eq!(x.verdict, y.verdict);
//!         assert_eq!(x.fidelity_bounds.0.to_bits(), y.fidelity_bounds.0.to_bits());
//!     }
//!     _ => unreachable!(),
//! }
//! ```

use crate::error::QaecError;
use crate::options::{AlgorithmChoice, CheckOptions};
use crate::report::EquivalenceReport;
use crate::session::{CompiledCheck, EpsilonPoint, StoreCell, SweepPoint};
use crate::validate;
use qaec_circuit::hash::pair_hash;
use qaec_circuit::Circuit;
use qaec_tdd::run_on_workers;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use qaec_tdd::sync::atomic::{AtomicU64, Ordering};
use qaec_tdd::sync::Mutex;

/// Configuration of a [`Service`].
#[derive(Clone, Debug, Default)]
pub struct ServiceConfig {
    /// Checker options every session is compiled with (algorithm,
    /// strategy, threads, store mode, …). `threads` doubles as the
    /// worker count [`Service::handle_batch`] spreads distinct pairs
    /// over.
    pub options: CheckOptions,
    /// Warm-store byte budget for the session cache, summed over
    /// [`crate::CompiledCheck::warm_store_bytes`]. `None` (the default)
    /// caches without bound; `Some(0)` keeps at most the session that
    /// served the last request.
    pub cache_bytes: Option<usize>,
}

/// One query against a circuit pair — the three request shapes of the
/// `qaec serve` protocol (see `docs/PROTOCOL.md`).
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceQuery {
    /// An ε-equivalence check: [`crate::CompiledCheck::check`].
    Check {
        /// The threshold to decide.
        epsilon: f64,
    },
    /// A threshold sweep: [`crate::CompiledCheck::sweep_epsilon`].
    SweepEpsilon {
        /// The thresholds to decide, in response order.
        epsilons: Vec<f64>,
    },
    /// A noise-strength sweep: [`crate::CompiledCheck::sweep_noise`].
    SweepNoise {
        /// The threshold each point is decided at.
        epsilon: f64,
        /// The per-point noise strengths.
        strengths: Vec<f64>,
    },
}

/// One request: the circuit pair (the cache key) plus the query to run
/// on its session.
#[derive(Clone, Debug)]
pub struct ServiceRequest {
    /// The specification circuit (must be noise-free).
    pub ideal: Circuit,
    /// The noisy implementation.
    pub noisy: Circuit,
    /// What to compute.
    pub query: ServiceQuery,
    /// Per-request algorithm override (`None` uses the service's
    /// configured options unchanged). Sessions compiled under different
    /// algorithms answer differently, so the override is folded into
    /// the cache key — a pair checked both ways holds two cache
    /// entries, and `None` keys exactly as before the field existed.
    pub algorithm: Option<AlgorithmChoice>,
}

/// Folds a per-request algorithm override into the pair's cache key.
/// `None` maps to 0 so requests without an override keep the bare
/// [`pair_hash`] key.
fn algorithm_tag(algorithm: Option<AlgorithmChoice>) -> u64 {
    match algorithm {
        None => 0,
        // Arbitrary fixed odd constants, well spread so XORing them
        // into a 64-bit content hash cannot collide two overrides of
        // the same pair.
        Some(AlgorithmChoice::Auto) => 0x9e37_79b9_7f4a_7c15,
        Some(AlgorithmChoice::AlgorithmI) => 0xc2b2_ae3d_27d4_eb4f,
        Some(AlgorithmChoice::AlgorithmII) => 0x1656_67b1_9e37_79f9,
        Some(AlgorithmChoice::Mpo) => 0x27d4_eb2f_1656_67c5,
    }
}

/// The successful payload of a [`ServiceResponse`] — one variant per
/// [`ServiceQuery`] shape, carrying the same report types the session
/// API returns.
#[derive(Clone, Debug)]
pub enum ServiceReply {
    /// Response to [`ServiceQuery::Check`].
    Check(EquivalenceReport),
    /// Response to [`ServiceQuery::SweepEpsilon`].
    SweepEpsilon(Vec<EpsilonPoint>),
    /// Response to [`ServiceQuery::SweepNoise`].
    SweepNoise(Vec<SweepPoint>),
}

/// Whether a request found its pair's session already in the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The session existed (compiled or compiling) when the request
    /// arrived.
    Hit,
    /// The request created the cache entry; the session is compiled
    /// exactly once by whichever request for the pair first reaches it.
    Miss,
}

impl CacheOutcome {
    /// The wire-format label (`"hit"` / `"miss"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// The outcome of one request: the pair's cache key, whether the
/// session was cached, and the query result.
#[derive(Clone, Debug)]
pub struct ServiceResponse {
    /// The request's cache key: the pair's content hash
    /// ([`qaec_circuit::hash::pair_hash`]), XORed with a fixed tag when
    /// the request carried an algorithm override (bare content hash
    /// otherwise).
    pub key: u64,
    /// Whether the pair's session was already cached.
    pub cache: CacheOutcome,
    /// The query result, or the same error the session API would raise.
    pub result: Result<ServiceReply, QaecError>,
}

/// Cache and traffic counters of a [`Service`]
/// ([`Service::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests whose pair was already cached.
    pub hits: u64,
    /// Requests that created their pair's cache entry.
    pub misses: u64,
    /// Sessions actually compiled — equals `misses` unless single-flight
    /// deduplicated a concurrent cold herd (then it is the number of
    /// distinct pairs, not of requests).
    pub compiles: u64,
    /// Sessions evicted to fit [`ServiceConfig::cache_bytes`].
    pub evictions: u64,
    /// Sessions currently cached.
    pub sessions: usize,
    /// Total warm-store bytes currently held by the cached sessions.
    pub store_bytes: u64,
    /// Sum of the cached sessions' warm-store high-water marks — the
    /// aggregate counterpart of `store_bytes` (each session's peak is
    /// carried across reclamation swaps, so this reports true peaks
    /// even after stores stepped down; never below `store_bytes`).
    pub peak_store_bytes: u64,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} compiles, {} evictions; {} session(s) holding {} B (peak {} B)",
            self.hits,
            self.misses,
            self.compiles,
            self.evictions,
            self.sessions,
            self.store_bytes,
            self.peak_store_bytes
        )
    }
}

/// What a cache entry's `OnceLock` publishes after the winning request
/// compiles: the session, plus its swappable store cell pulled out so
/// eviction can size entries without taking the (possibly busy) session
/// lock — through the *cell*, so a reclamation swap inside the session
/// is immediately visible to the sizing path instead of pinning the
/// retired store.
struct SlotCell {
    session: Mutex<CompiledCheck>,
    store: Option<StoreCell>,
}

/// One cache slot. The `OnceLock` is the single-flight mechanism:
/// whichever request reaches `get_or_init` first compiles, every
/// concurrent request for the same pair blocks on it and then shares
/// the published session.
struct Slot {
    cell: OnceLock<SlotCell>,
}

impl Slot {
    fn bytes(&self) -> usize {
        self.cell
            .get()
            .and_then(|cell| cell.store.as_ref())
            .map_or(0, |store| store.get().bytes_used())
    }

    fn peak_bytes(&self) -> usize {
        self.cell
            .get()
            .and_then(|cell| cell.store.as_ref())
            .map_or(0, |store| store.get().peak_bytes_used())
    }
}

struct CacheEntry {
    slot: Arc<Slot>,
    last_used: u64,
}

struct Cache {
    entries: HashMap<u64, CacheEntry>,
    tick: u64,
}

/// A long-lived checking service: a byte-budgeted, content-keyed cache
/// of compiled sessions behind [`Service::handle`] /
/// [`Service::handle_batch`]. See the [module docs](self) for the
/// caching rules and the example.
pub struct Service {
    config: ServiceConfig,
    cache: Mutex<Cache>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
}

impl Service {
    /// A service with the given configuration and an empty cache.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            config,
            cache: Mutex::new(Cache {
                entries: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Handles one request: validates the pair, finds or compiles its
    /// session (single-flight), runs the query, then enforces the byte
    /// budget. Validation failures return the same [`QaecError`] (and
    /// precedence) as the one-shot API, without touching the cache.
    ///
    /// Safe to call from many threads at once; queries for the *same*
    /// pair serialise on that pair's session, distinct pairs proceed in
    /// parallel.
    pub fn handle(&self, request: &ServiceRequest) -> ServiceResponse {
        let key = pair_hash(&request.ideal, &request.noisy) ^ algorithm_tag(request.algorithm);
        if let Err(error) = validate(&request.ideal, &request.noisy, None) {
            return ServiceResponse {
                key,
                cache: CacheOutcome::Miss,
                result: Err(error),
            };
        }
        let (slot, cache) = self.lookup(key);
        let cell = slot.cell.get_or_init(|| {
            // ordering: Relaxed — statistics counter; the OnceLock is what
            // synchronises the compiled session itself.
            self.compiles.fetch_add(1, Ordering::Relaxed);
            let mut options = self.config.options.clone();
            if let Some(algorithm) = request.algorithm {
                options.algorithm = algorithm;
            }
            let session =
                CompiledCheck::compile_prevalidated(&request.ideal, &request.noisy, options);
            let store = session.warm_store_cell().cloned();
            SlotCell {
                session: Mutex::new(session),
                store,
            }
        });
        let result = {
            let mut session = cell.session.lock().expect("session lock poisoned");
            match &request.query {
                ServiceQuery::Check { epsilon } => session.check(*epsilon).map(ServiceReply::Check),
                ServiceQuery::SweepEpsilon { epsilons } => session
                    .sweep_epsilon(epsilons)
                    .map(ServiceReply::SweepEpsilon),
                ServiceQuery::SweepNoise { epsilon, strengths } => session
                    .sweep_noise(*epsilon, strengths)
                    .map(ServiceReply::SweepNoise),
            }
        };
        self.enforce_budget(key);
        ServiceResponse { key, cache, result }
    }

    /// Handles a request stream: requests are grouped by pair, distinct
    /// pairs run concurrently on [`qaec_tdd::run_on_workers`]
    /// (`options.threads` workers), and each pair's requests run
    /// sequentially in stream order against one shared session — so
    /// repeats within the batch are cache hits. Responses come back in
    /// input order.
    pub fn handle_batch(&self, requests: &[ServiceRequest]) -> Vec<ServiceResponse> {
        let mut order: Vec<u64> = Vec::new();
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        for (index, request) in requests.iter().enumerate() {
            let key = pair_hash(&request.ideal, &request.noisy) ^ algorithm_tag(request.algorithm);
            match groups.entry(key) {
                MapEntry::Vacant(entry) => {
                    order.push(key);
                    entry.insert(vec![index]);
                }
                MapEntry::Occupied(mut entry) => entry.get_mut().push(index),
            }
        }
        let workers = self.config.options.threads.max(1).min(order.len().max(1));
        let per_worker: Vec<Vec<(usize, ServiceResponse)>> = run_on_workers(workers, |worker| {
            order
                .iter()
                .skip(worker)
                .step_by(workers)
                .flat_map(|key| {
                    groups[key]
                        .iter()
                        .map(|&index| (index, self.handle(&requests[index])))
                        .collect::<Vec<_>>()
                })
                .collect()
        });
        let mut responses: Vec<Option<ServiceResponse>> = requests.iter().map(|_| None).collect();
        for (index, response) in per_worker.into_iter().flatten() {
            responses[index] = Some(response);
        }
        responses
            .into_iter()
            .map(|response| response.expect("every request handled"))
            .collect()
    }

    /// Current counters and cache footprint.
    pub fn stats(&self) -> ServiceStats {
        let cache = self.cache.lock().expect("cache lock poisoned");
        let store_bytes: usize = cache.entries.values().map(|e| e.slot.bytes()).sum();
        let peak_store_bytes: usize = cache.entries.values().map(|e| e.slot.peak_bytes()).sum();
        ServiceStats {
            // ordering: Relaxed (×4) — statistics counters; a reader racing
            // a live request may be one bump behind, which a stats snapshot
            // tolerates by design.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics counters, as above.
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            sessions: cache.entries.len(),
            store_bytes: store_bytes as u64,
            peak_store_bytes: peak_store_bytes as u64,
        }
    }

    /// Finds or creates the slot for `key`, counting the hit/miss and
    /// stamping recency. The entry is inserted *before* compilation so
    /// concurrent requests for the same pair converge on one slot —
    /// the slot's `OnceLock` then makes the compile single-flight.
    fn lookup(&self, key: u64) -> (Arc<Slot>, CacheOutcome) {
        let mut cache = self.cache.lock().expect("cache lock poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        match cache.entries.entry(key) {
            MapEntry::Occupied(mut entry) => {
                entry.get_mut().last_used = tick;
                // ordering: Relaxed — statistics counter under the cache
                // lock; the lock orders the cache state itself.
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(&entry.get().slot), CacheOutcome::Hit)
            }
            MapEntry::Vacant(entry) => {
                let slot = Arc::new(Slot {
                    cell: OnceLock::new(),
                });
                entry.insert(CacheEntry {
                    slot: Arc::clone(&slot),
                    last_used: tick,
                });
                // ordering: Relaxed — statistics counter (see `hits`).
                self.misses.fetch_add(1, Ordering::Relaxed);
                (slot, CacheOutcome::Miss)
            }
        }
    }

    /// Evicts least-recently-used sessions until the summed warm-store
    /// bytes fit the budget. Exempt from eviction: the session that just
    /// served (`keep` — always the most useful entry to hold) and
    /// entries still compiling (their size is unknown and a concurrent
    /// request is blocked on them). Dropping the map's `Arc` is safe
    /// even if another in-flight request still holds the slot — the
    /// session then dies when that request finishes.
    fn enforce_budget(&self, keep: u64) {
        let Some(budget) = self.config.cache_bytes else {
            return;
        };
        let mut cache = self.cache.lock().expect("cache lock poisoned");
        loop {
            let total: usize = cache.entries.values().map(|e| e.slot.bytes()).sum();
            if total <= budget {
                return;
            }
            let victim = cache
                .entries
                .iter()
                .filter(|(&key, entry)| key != keep && entry.slot.cell.get().is_some())
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(&key, _)| key);
            match victim {
                Some(key) => {
                    cache.entries.remove(&key);
                    // ordering: Relaxed — statistics counter under the
                    // cache lock (see `hits`).
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Service({})", self.stats())
    }
}
