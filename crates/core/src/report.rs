//! Check verdicts and the unified equivalence report.

use qaec_tdd::TddStats;
use std::fmt;
use std::time::Duration;

/// The ε-equivalence decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// `F_J(E, U) > 1 − ε` — the circuits are ε-equivalent.
    Equivalent,
    /// `F_J(E, U) ≤ 1 − ε`.
    NotEquivalent,
    /// The proven fidelity interval straddles `1 − ε`, so neither side
    /// is established. Only the approximate Algorithm III backend can
    /// return this (when forced explicitly and its truncation-error
    /// interval is too wide at the requested ε); the `Auto` portfolio
    /// never surfaces it — a straddling interval escalates to an exact
    /// backend instead.
    Inconclusive,
}

impl Verdict {
    /// The paper's Problem 1 decision, in **one** place: `F_J > 1 − ε`
    /// is [`Verdict::Equivalent`], anything else — including the exact
    /// boundary `F_J == 1 − ε` — is [`Verdict::NotEquivalent`].
    ///
    /// Every ε comparison in the checker routes through here (the
    /// one-shot [`crate::check_equivalence`], both algorithm arms, the
    /// term engine's two-sided early-termination bounds and the session
    /// API's cached-bound queries), so the boundary semantics cannot
    /// drift between paths.
    ///
    /// # Example
    ///
    /// ```
    /// use qaec::Verdict;
    ///
    /// assert_eq!(Verdict::decide(0.9025, 0.1), Verdict::Equivalent);
    /// // The boundary itself is NOT equivalent: F_J must *exceed* 1 − ε.
    /// assert_eq!(Verdict::decide(0.75, 0.25), Verdict::NotEquivalent);
    /// assert_eq!(Verdict::decide(1.0, 0.0), Verdict::NotEquivalent);
    /// ```
    #[inline]
    pub fn decide(fidelity: f64, epsilon: f64) -> Verdict {
        if fidelity > 1.0 - epsilon {
            Verdict::Equivalent
        } else {
            Verdict::NotEquivalent
        }
    }

    /// Decides ε-equivalence from a proven fidelity interval, or `None`
    /// when the bounds cannot decide: [`Verdict::Equivalent`] when even
    /// the lower bound clears the threshold, [`Verdict::NotEquivalent`]
    /// when even the upper bound fails it. For a point interval
    /// (`lower == upper`) this always decides, identically to
    /// [`Verdict::decide`].
    #[inline]
    pub fn decide_bounds(lower: f64, upper: f64, epsilon: f64) -> Option<Verdict> {
        if Verdict::decide(lower, epsilon) == Verdict::Equivalent {
            Some(Verdict::Equivalent)
        } else if Verdict::decide(upper, epsilon) == Verdict::NotEquivalent {
            Some(Verdict::NotEquivalent)
        } else {
            None
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent => write!(f, "equivalent"),
            Verdict::NotEquivalent => write!(f, "not equivalent"),
            Verdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// Which algorithm actually ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmUsed {
    /// Per-term trace calculation (§IV-A).
    AlgorithmI,
    /// Collective doubled-network calculation (§IV-B).
    AlgorithmII,
    /// Approximate MPO contraction with a rigorous truncation-error
    /// interval (the portfolio's Algorithm III, crate `qaec-mpo`).
    Mpo,
}

impl AlgorithmUsed {
    /// The serve-protocol wire name of the algorithm (`method` field of
    /// v1 responses): `"1"`, `"2"` or `"mpo"`.
    pub fn wire_name(self) -> &'static str {
        match self {
            AlgorithmUsed::AlgorithmI => "1",
            AlgorithmUsed::AlgorithmII => "2",
            AlgorithmUsed::Mpo => "mpo",
        }
    }
}

impl fmt::Display for AlgorithmUsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmUsed::AlgorithmI => write!(f, "Algorithm I"),
            AlgorithmUsed::AlgorithmII => write!(f, "Algorithm II"),
            AlgorithmUsed::Mpo => write!(f, "Algorithm III (MPO)"),
        }
    }
}

/// The result of an ε-equivalence check.
#[derive(Clone, Debug, PartialEq)]
pub struct EquivalenceReport {
    /// The decision.
    pub verdict: Verdict,
    /// Proven fidelity interval at the moment of decision (a point for
    /// Algorithm II).
    pub fidelity_bounds: (f64, f64),
    /// The threshold that was checked.
    pub epsilon: f64,
    /// Which algorithm ran.
    pub algorithm: AlgorithmUsed,
    /// Trace terms contracted (1 for Algorithm II).
    pub terms_computed: usize,
    /// Total trace terms available (1 for Algorithm II).
    pub total_terms: usize,
    /// Largest intermediate diagram in nodes.
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Decision-diagram statistics, merged across all workers.
    pub stats: TddStats,
    /// MPO truncation-error bound — half the interval width before
    /// clamping. `Some` only when Algorithm III ran.
    pub trunc_error: Option<f64>,
    /// Largest MPO bond dimension reached. `Some` only when
    /// Algorithm III ran.
    pub bond_max: Option<usize>,
    /// When the `Auto` portfolio ran the MPO pass *and* escalated to an
    /// exact backend, whether the two agreed — the MPO interval and the
    /// exact backend's proven bounds intersect, as two sound intervals
    /// for the same fidelity must. `None` when only one backend ran.
    pub cross_check: Option<bool>,
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (ε = {}): F_J ∈ [{:.6}, {:.6}] via {} ({}/{} terms, {} nodes, {:.3?})",
            self.verdict,
            self.epsilon,
            self.fidelity_bounds.0,
            self.fidelity_bounds.1,
            self.algorithm,
            self.terms_computed,
            self.total_terms,
            self.max_nodes,
            self.elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_pins_the_epsilon_boundary() {
        // Strictly above the threshold: equivalent.
        assert_eq!(Verdict::decide(0.9025, 0.1), Verdict::Equivalent);
        // Exactly on it (exact floats, no rounding): not equivalent.
        assert_eq!(Verdict::decide(0.75, 0.25), Verdict::NotEquivalent);
        assert_eq!(Verdict::decide(0.5, 0.5), Verdict::NotEquivalent);
        assert_eq!(Verdict::decide(1.0, 0.0), Verdict::NotEquivalent);
        assert_eq!(Verdict::decide(0.0, 1.0), Verdict::NotEquivalent);
        // Below: not equivalent.
        assert_eq!(Verdict::decide(0.89, 0.1), Verdict::NotEquivalent);
    }

    #[test]
    fn decide_bounds_is_two_sided() {
        assert_eq!(
            Verdict::decide_bounds(0.95, 0.99, 0.1),
            Some(Verdict::Equivalent)
        );
        assert_eq!(
            Verdict::decide_bounds(0.1, 0.85, 0.1),
            Some(Verdict::NotEquivalent)
        );
        assert_eq!(Verdict::decide_bounds(0.85, 0.95, 0.1), None);
        // Point intervals always decide, boundary included.
        assert_eq!(
            Verdict::decide_bounds(0.75, 0.75, 0.25),
            Some(Verdict::NotEquivalent)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Verdict::Equivalent.to_string(), "equivalent");
        assert_eq!(AlgorithmUsed::AlgorithmII.to_string(), "Algorithm II");
        let report = EquivalenceReport {
            verdict: Verdict::Equivalent,
            fidelity_bounds: (0.9, 0.95),
            epsilon: 0.2,
            algorithm: AlgorithmUsed::AlgorithmI,
            terms_computed: 3,
            total_terms: 16,
            max_nodes: 42,
            elapsed: Duration::from_millis(12),
            stats: TddStats::default(),
            trunc_error: None,
            bond_max: None,
            cross_check: None,
        };
        let text = report.to_string();
        assert!(text.contains("equivalent"));
        assert!(text.contains("3/16"));
        assert!(text.contains("42"));
    }

    #[test]
    fn inconclusive_and_mpo_display() {
        assert_eq!(Verdict::Inconclusive.to_string(), "inconclusive");
        assert_eq!(AlgorithmUsed::Mpo.to_string(), "Algorithm III (MPO)");
        assert_eq!(AlgorithmUsed::AlgorithmI.wire_name(), "1");
        assert_eq!(AlgorithmUsed::AlgorithmII.wire_name(), "2");
        assert_eq!(AlgorithmUsed::Mpo.wire_name(), "mpo");
    }
}
