//! Check verdicts and the unified equivalence report.

use qaec_tdd::TddStats;
use std::fmt;
use std::time::Duration;

/// The ε-equivalence decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// `F_J(E, U) > 1 − ε` — the circuits are ε-equivalent.
    Equivalent,
    /// `F_J(E, U) ≤ 1 − ε`.
    NotEquivalent,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent => write!(f, "equivalent"),
            Verdict::NotEquivalent => write!(f, "not equivalent"),
        }
    }
}

/// Which algorithm actually ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmUsed {
    /// Per-term trace calculation (§IV-A).
    AlgorithmI,
    /// Collective doubled-network calculation (§IV-B).
    AlgorithmII,
}

impl fmt::Display for AlgorithmUsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmUsed::AlgorithmI => write!(f, "Algorithm I"),
            AlgorithmUsed::AlgorithmII => write!(f, "Algorithm II"),
        }
    }
}

/// The result of an ε-equivalence check.
#[derive(Clone, Debug, PartialEq)]
pub struct EquivalenceReport {
    /// The decision.
    pub verdict: Verdict,
    /// Proven fidelity interval at the moment of decision (a point for
    /// Algorithm II).
    pub fidelity_bounds: (f64, f64),
    /// The threshold that was checked.
    pub epsilon: f64,
    /// Which algorithm ran.
    pub algorithm: AlgorithmUsed,
    /// Trace terms contracted (1 for Algorithm II).
    pub terms_computed: usize,
    /// Total trace terms available (1 for Algorithm II).
    pub total_terms: usize,
    /// Largest intermediate diagram in nodes.
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Decision-diagram statistics, merged across all workers.
    pub stats: TddStats,
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (ε = {}): F_J ∈ [{:.6}, {:.6}] via {} ({}/{} terms, {} nodes, {:.3?})",
            self.verdict,
            self.epsilon,
            self.fidelity_bounds.0,
            self.fidelity_bounds.1,
            self.algorithm,
            self.terms_computed,
            self.total_terms,
            self.max_nodes,
            self.elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Verdict::Equivalent.to_string(), "equivalent");
        assert_eq!(AlgorithmUsed::AlgorithmII.to_string(), "Algorithm II");
        let report = EquivalenceReport {
            verdict: Verdict::Equivalent,
            fidelity_bounds: (0.9, 0.95),
            epsilon: 0.2,
            algorithm: AlgorithmUsed::AlgorithmI,
            terms_computed: 3,
            total_terms: 16,
            max_nodes: 42,
            elapsed: Duration::from_millis(12),
            stats: TddStats::default(),
        };
        let text = report.to_string();
        assert!(text.contains("equivalent"));
        assert!(text.contains("3/16"));
        assert!(text.contains("42"));
    }
}
