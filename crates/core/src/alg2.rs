//! Algorithm II: calculate all trace terms collectively.
//!
//! A single contraction of the doubled network computes
//! `Σᵢ |tr(U†Eᵢ)|² = tr((U† ⊗ Uᵀ) · M_E)` at the cost of twice the
//! qubits — the right trade when noise sites are plentiful (every gate on
//! a real device is noisy).
//!
//! ## Parallelism
//!
//! There are no independent trace terms to steal here, so `threads > 1`
//! parallelises *inside* the contraction: the plan's step DAG is
//! dispatched critical-path-first to a worker pool over one
//! [`SharedTddStore`] ([`qaec_tdd::par_driver`]). Because the shared
//! store's canonical interning makes every step's result a pure function
//! of its operands, the fidelity and `max_nodes` are **bit-identical for
//! every thread count** — which is why Algorithm II resolves
//! [`SharedTableMode::Auto`] to the shared store even at one worker
//! (`--threads` stays a pure performance knob). `SharedTableMode::Off`
//! keeps the original private sequential driver, including its
//! mark-compact GC (append-only shared arenas cannot compact).

use crate::error::QaecError;
use crate::miter::{build_trace_network, identity_map, Alg2Template, BuiltNetwork};
use crate::optimize::{cancel_inverse_pairs, eliminate_swaps};
use crate::options::{CheckOptions, SharedTableMode};
use crate::validate;
use qaec_circuit::{Circuit, NoiseChannel};
use qaec_tdd::{
    contract_network_lanes, contract_network_opts, contract_network_parallel, DriverOptions,
    LaneError, ParallelOptions, SharedTddStore, TddManager, TddStats,
};
use qaec_tensornet::plan::PlanCost;
use qaec_tensornet::ContractionPlan;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of an Algorithm II run.
#[derive(Clone, Debug, PartialEq)]
pub struct Alg2Report {
    /// The Jamiolkowski fidelity (exact up to floating point).
    pub fidelity: f64,
    /// Largest intermediate diagram, in nodes (Table I's `nodes`).
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Static cost estimates of the contraction plan.
    pub plan_cost: PlanCost,
    /// Decision-diagram statistics of the single contraction (merged
    /// across workers for parallel runs).
    pub stats: TddStats,
}

/// Computes the Jamiolkowski fidelity with Algorithm II.
///
/// # Errors
///
/// * [`QaecError::WidthMismatch`] / [`QaecError::IdealNotUnitary`] on
///   invalid inputs;
/// * [`QaecError::Timeout`] if `options.deadline` expires mid-contraction.
pub fn fidelity_alg2(
    ideal: &Circuit,
    noisy: &Circuit,
    options: &CheckOptions,
) -> Result<Alg2Report, QaecError> {
    validate(ideal, noisy, None)?;
    fidelity_alg2_prevalidated(ideal, noisy, options)
}

/// [`fidelity_alg2`] minus input validation, for callers (the top-level
/// checker) that already validated once — so `check_equivalence` never
/// validates the same pair twice. One-shot: compiles the doubled-network
/// artifacts and runs a single contraction; `elapsed` covers both.
pub(crate) fn fidelity_alg2_prevalidated(
    ideal: &Circuit,
    noisy: &Circuit,
    options: &CheckOptions,
) -> Result<Alg2Report, QaecError> {
    let start = Instant::now();
    let artifacts = Alg2Artifacts::compile(ideal, noisy, options);
    let mut report = artifacts.run(options, None)?;
    report.elapsed = start.elapsed();
    Ok(report)
}

/// Outcome of one multi-lane Algorithm II batch
/// ([`Alg2Artifacts::run_channels_lanes`]): one fidelity per lane, plus
/// the single traversal's shared evidence.
#[derive(Clone, Debug)]
pub(crate) struct Alg2LaneReport {
    /// Per-lane Jamiolkowski fidelities, bit-identical to the scalar
    /// per-point replay.
    pub(crate) fidelities: Vec<f64>,
    /// Largest intermediate *lane-diagram* node count for the batch.
    pub(crate) max_nodes: usize,
    /// Wall-clock time of the whole batch (instantiation + contraction).
    pub(crate) elapsed: Duration,
    /// Lane-engine statistics of the batch's single traversal.
    pub(crate) stats: TddStats,
}

/// The compiled, reusable part of an Algorithm II check: the doubled
/// miter template (noise sites still substitutable), the base network
/// for the compiled channels, and the contraction plan + variable order
/// every instantiation shares. A noise-sweep point re-fills the noise
/// holes and contracts on the *same* plan — no replanning.
#[derive(Clone, Debug)]
pub(crate) struct Alg2Artifacts {
    pub(crate) template: Alg2Template,
    final_map: Vec<usize>,
    built: BuiltNetwork,
    plan: ContractionPlan,
    plan_cost: PlanCost,
    d: f64,
}

impl Alg2Artifacts {
    /// Builds the doubled template, applies the §IV-C optimisations, and
    /// plans the contraction once. Planning uses the component-parallel
    /// planner on `options.threads` workers (tiled workloads' doubled
    /// networks decompose into independent components; the emitted plan
    /// is worker-count independent).
    ///
    /// Callers must have validated the circuit pair.
    pub(crate) fn compile(ideal: &Circuit, noisy: &Circuit, options: &CheckOptions) -> Self {
        let mut template = Alg2Template::build(ideal, noisy);
        let width = template.width;
        let final_map = if options.swap_elimination {
            eliminate_swaps(&mut template.elements, width)
        } else {
            identity_map(width)
        };
        if options.local_optimization {
            cancel_inverse_pairs(&mut template.elements, width);
        }

        let elements = template.instantiate(&template.channels);
        let built = build_trace_network(&elements, width, &final_map, options.var_order);
        let plan = built
            .network
            .plan_parallel(options.strategy, options.threads.max(1));
        let plan_cost = plan.cost(&built.network);
        Alg2Artifacts {
            template,
            final_map,
            built,
            plan,
            plan_cost,
            d: (1u64 << noisy.n_qubits()) as f64,
        }
    }

    /// One contraction of the compiled (base) network.
    pub(crate) fn run(
        &self,
        options: &CheckOptions,
        warm_store: Option<&Arc<SharedTddStore>>,
    ) -> Result<Alg2Report, QaecError> {
        self.run_network(&self.built, options, warm_store)
    }

    /// One contraction of a noise-sweep point: the noise holes are
    /// re-filled with `channels` (same sites, same arities), the wire
    /// bookkeeping is re-laid (cheap, linear), and the compiled plan and
    /// variable order are reused — the plan depends only on the element
    /// structure, which re-instantiation preserves.
    pub(crate) fn run_channels(
        &self,
        channels: &[NoiseChannel],
        options: &CheckOptions,
        warm_store: Option<&Arc<SharedTddStore>>,
    ) -> Result<Alg2Report, QaecError> {
        let elements = self.template.instantiate(channels);
        let built = build_trace_network(
            &elements,
            self.template.width,
            &self.final_map,
            options.var_order,
        );
        debug_assert!(
            built.order == self.built.order,
            "re-instantiation must preserve the index structure"
        );
        self.run_network(&built, options, warm_store)
    }

    /// One multi-lane contraction of `L` noise-sweep points at once: the
    /// template is re-instantiated per lane (same element structure, so
    /// the compiled plan and order apply to every lane), and all `L`
    /// networks are contracted in a single traversal by the lane engine
    /// ([`qaec_tdd::lanes`]).
    ///
    /// Returns `Ok(None)` on lane divergence — the engine could not keep
    /// every lane bit-identical to its scalar run, and the caller must
    /// replay the batch per point on [`Alg2Artifacts::run_channels`]. On
    /// success each lane's fidelity is bit-identical to the per-point
    /// replay; `max_nodes` counts *lane-diagram* nodes (one shared
    /// skeleton, not comparable to scalar `max_nodes`), and the
    /// statistics cover the whole batch's single traversal.
    ///
    /// The lane snap replicates `store`'s canonical interning, so the
    /// session's warm-store tolerance is the one the lanes must match;
    /// the store's arenas themselves are untouched (the lane manager is
    /// private to the batch).
    pub(crate) fn run_channels_lanes<const L: usize>(
        &self,
        points: &[Vec<NoiseChannel>],
        options: &CheckOptions,
        store: &Arc<SharedTddStore>,
    ) -> Result<Option<Alg2LaneReport>, QaecError> {
        debug_assert_eq!(points.len(), L);
        let start = Instant::now();
        let networks: Vec<_> = points
            .iter()
            .map(|channels| {
                let elements = self.template.instantiate(channels);
                let built = build_trace_network(
                    &elements,
                    self.template.width,
                    &self.final_map,
                    options.var_order,
                );
                debug_assert!(
                    built.order == self.built.order,
                    "re-instantiation must preserve the index structure"
                );
                built.network
            })
            .collect();
        match contract_network_lanes::<L>(
            store.tolerance(),
            &networks,
            &self.plan,
            &self.built.order,
            options.deadline,
        ) {
            Ok(outcome) => {
                let fidelities = outcome
                    .scalars
                    .iter()
                    .map(|trace| {
                        (trace.re / (self.d * self.d))
                            .clamp(0.0, 1.0 + 1e-9)
                            .min(1.0)
                    })
                    .collect();
                Ok(Some(Alg2LaneReport {
                    fidelities,
                    max_nodes: outcome.max_nodes,
                    elapsed: start.elapsed(),
                    stats: outcome.stats,
                }))
            }
            Err(LaneError::Divergence(_)) => Ok(None),
            Err(LaneError::Timeout) => Err(QaecError::Timeout),
        }
    }

    fn run_network(
        &self,
        built: &BuiltNetwork,
        options: &CheckOptions,
        warm_store: Option<&Arc<SharedTddStore>>,
    ) -> Result<Alg2Report, QaecError> {
        let start = Instant::now();
        // `Auto` resolves ON at every thread count here (unlike
        // Algorithm I, whose terms are value-independent): the plan
        // scheduler needs the shared substrate, and contracting over the
        // canonical store at one worker too keeps `--threads` a pure
        // performance knob — the fidelity and `max_nodes` are
        // bit-identical whatever the count.
        let (max_nodes, trace, stats) = if options.shared_table != SharedTableMode::Off {
            let workers = options.threads.max(1);
            let store = match warm_store {
                Some(store) => Arc::clone(store),
                None => SharedTddStore::new(),
            };
            // Statistics fence: a warm (session-reused) store reports
            // only this contraction's allocation delta.
            let epoch = store.reset_between_runs();
            let outcome = contract_network_parallel(
                &store,
                &built.network,
                &self.plan,
                &built.order,
                ParallelOptions {
                    workers,
                    deadline: options.deadline,
                },
            )
            .map_err(|_| QaecError::Timeout)?;
            let reader = TddManager::new_shared(&store);
            let trace = reader
                .edge_scalar(outcome.result.root)
                .expect("closed network");
            let mut stats = outcome.stats;
            // Allocation counters are store-owned: merged exactly once.
            stats.merge(&store.stats_since(epoch));
            (outcome.result.max_nodes, trace, stats)
        } else {
            let mut manager = TddManager::new();
            let result = contract_network_opts(
                &mut manager,
                &built.network,
                &self.plan,
                &built.order,
                DriverOptions {
                    gc_threshold: options.gc_threshold,
                    deadline: options.deadline,
                },
            )
            .map_err(|_| QaecError::Timeout)?;
            let trace = manager.edge_scalar(result.root).expect("closed network");
            (result.max_nodes, trace, manager.stats())
        };

        // Σ|tr(U†Eᵢ)|² is real and non-negative; the imaginary part is
        // round-off.
        let fidelity = (trace.re / (self.d * self.d))
            .clamp(0.0, 1.0 + 1e-9)
            .min(1.0);

        Ok(Alg2Report {
            fidelity,
            max_nodes,
            elapsed: start.elapsed(),
            plan_cost: self.plan_cost,
            stats,
        })
    }
}
