//! Algorithm II: calculate all trace terms collectively.
//!
//! A single contraction of the doubled network computes
//! `Σᵢ |tr(U†Eᵢ)|² = tr((U† ⊗ Uᵀ) · M_E)` at the cost of twice the
//! qubits — the right trade when noise sites are plentiful (every gate on
//! a real device is noisy).
//!
//! ## Parallelism
//!
//! There are no independent trace terms to steal here, so `threads > 1`
//! parallelises *inside* the contraction: the plan's step DAG is
//! dispatched critical-path-first to a worker pool over one
//! [`SharedTddStore`] ([`qaec_tdd::par_driver`]). Because the shared
//! store's canonical interning makes every step's result a pure function
//! of its operands, the fidelity and `max_nodes` are **bit-identical for
//! every thread count** — which is why Algorithm II resolves
//! [`SharedTableMode::Auto`] to the shared store even at one worker
//! (`--threads` stays a pure performance knob). `SharedTableMode::Off`
//! keeps the original private sequential driver, including its
//! mark-compact GC (append-only shared arenas cannot compact).

use crate::error::QaecError;
use crate::miter::{alg2_elements, build_trace_network, identity_map};
use crate::optimize::{cancel_inverse_pairs, eliminate_swaps};
use crate::options::{CheckOptions, SharedTableMode};
use crate::validate;
use qaec_circuit::Circuit;
use qaec_tdd::{
    contract_network_opts, contract_network_parallel, DriverOptions, ParallelOptions,
    SharedTddStore, TddManager, TddStats,
};
use qaec_tensornet::plan::PlanCost;
use std::time::{Duration, Instant};

/// Outcome of an Algorithm II run.
#[derive(Clone, Debug, PartialEq)]
pub struct Alg2Report {
    /// The Jamiolkowski fidelity (exact up to floating point).
    pub fidelity: f64,
    /// Largest intermediate diagram, in nodes (Table I's `nodes`).
    pub max_nodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Static cost estimates of the contraction plan.
    pub plan_cost: PlanCost,
    /// Decision-diagram statistics of the single contraction (merged
    /// across workers for parallel runs).
    pub stats: TddStats,
}

/// Computes the Jamiolkowski fidelity with Algorithm II.
///
/// # Errors
///
/// * [`QaecError::WidthMismatch`] / [`QaecError::IdealNotUnitary`] on
///   invalid inputs;
/// * [`QaecError::Timeout`] if `options.deadline` expires mid-contraction.
pub fn fidelity_alg2(
    ideal: &Circuit,
    noisy: &Circuit,
    options: &CheckOptions,
) -> Result<Alg2Report, QaecError> {
    validate(ideal, noisy, None)?;
    fidelity_alg2_prevalidated(ideal, noisy, options)
}

/// [`fidelity_alg2`] minus input validation, for callers (the top-level
/// checker) that already validated once — so `check_equivalence` never
/// validates the same pair twice.
pub(crate) fn fidelity_alg2_prevalidated(
    ideal: &Circuit,
    noisy: &Circuit,
    options: &CheckOptions,
) -> Result<Alg2Report, QaecError> {
    let start = Instant::now();

    let (mut elements, width) = alg2_elements(ideal, noisy);
    let final_map = if options.swap_elimination {
        eliminate_swaps(&mut elements, width)
    } else {
        identity_map(width)
    };
    if options.local_optimization {
        cancel_inverse_pairs(&mut elements, width);
    }

    let built = build_trace_network(&elements, width, &final_map, options.var_order);
    let plan = built.network.plan(options.strategy);
    let plan_cost = plan.cost(&built.network);

    // `Auto` resolves ON at every thread count here (unlike Algorithm I,
    // whose terms are value-independent): the plan scheduler needs the
    // shared substrate, and contracting over the canonical store at one
    // worker too keeps `--threads` a pure performance knob — the
    // fidelity and `max_nodes` are bit-identical whatever the count.
    let (max_nodes, trace, stats) = if options.shared_table != SharedTableMode::Off {
        let workers = options.threads.max(1);
        let store = SharedTddStore::new();
        let outcome = contract_network_parallel(
            &store,
            &built.network,
            &plan,
            &built.order,
            ParallelOptions {
                workers,
                deadline: options.deadline,
            },
        )
        .map_err(|_| QaecError::Timeout)?;
        let reader = TddManager::new_shared(&store);
        let trace = reader
            .edge_scalar(outcome.result.root)
            .expect("closed network");
        let mut stats = outcome.stats;
        // Allocation counters are store-owned: merged exactly once.
        stats.merge(&store.stats());
        (outcome.result.max_nodes, trace, stats)
    } else {
        let mut manager = TddManager::new();
        let result = contract_network_opts(
            &mut manager,
            &built.network,
            &plan,
            &built.order,
            DriverOptions {
                gc_threshold: options.gc_threshold,
                deadline: options.deadline,
            },
        )
        .map_err(|_| QaecError::Timeout)?;
        let trace = manager.edge_scalar(result.root).expect("closed network");
        (result.max_nodes, trace, manager.stats())
    };

    let d = (1u64 << noisy.n_qubits()) as f64;
    // Σ|tr(U†Eᵢ)|² is real and non-negative; the imaginary part is
    // round-off.
    let fidelity = (trace.re / (d * d)).clamp(0.0, 1.0 + 1e-9).min(1.0);

    Ok(Alg2Report {
        fidelity,
        max_nodes,
        elapsed: start.elapsed(),
        plan_cost,
        stats,
    })
}
