//! The work-stealing ε-aware parallel term engine.
//!
//! Algorithm I and the Monte-Carlo estimator both reduce to "contract
//! many instantiations of one miter template". This module runs those
//! contractions on a pool of workers that *pull* work from a shared
//! source instead of being handed fixed chunks, so that:
//!
//! * ε-decisions compose with `threads > 1`: every worker folds its
//!   terms into a pair of atomic accumulators (`fidelity_lower` and the
//!   outstanding Kraus mass) and broadcasts a stop signal the moment
//!   either bound resolves, in either term order;
//! * `max_terms`, `deadline` and `term_order` behave identically in
//!   sequential and parallel runs (the old fixed-chunk path silently
//!   ignored all three);
//! * slow terms don't stall the run: a worker that finishes its batch
//!   steals the next one from the shared enumerator, so load balances
//!   even when term costs vary by orders of magnitude;
//! * every worker keeps a thread-local [`TddManager`] (its own unique
//!   and computed tables) and the per-worker [`TddStats`] are merged
//!   into the report at the end.
//!
//! ## Bound soundness under concurrency
//!
//! `lower` only ever grows (each term is added exactly once) and
//! `remaining` only ever shrinks, and a term's mass is subtracted from
//! `remaining` strictly *after* its value is added to `lower`. Readers
//! load `remaining` first and `lower` second, so the observed
//! `lower + remaining` never undercounts the true upper bound and
//! `lower` never overcounts the true lower bound — a stale snapshot can
//! only *delay* a verdict, never fabricate one.

use crate::error::QaecError;
use crate::miter::{build_trace_network, Alg1Template, BuiltNetwork};
use crate::options::{CheckOptions, TermOrder};
use crate::report::Verdict;
use qaec_tdd::{contract_network_opts, DriverOptions, TddManager, TddStats};
use qaec_tensornet::{ContractionPlan, VarOrder};
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Everything the workers need to instantiate and contract one term.
pub(crate) struct TermEngine<'a> {
    /// The miter with substitutable noise sites.
    pub template: &'a Alg1Template,
    /// Wire remapping from SWAP elimination.
    pub final_map: &'a [usize],
    /// Contraction plan shared by every instantiation.
    pub plan: &'a ContractionPlan,
    /// Decision-diagram variable order shared by every instantiation.
    pub order: &'a VarOrder,
    /// Checker options (threads, tables, GC, deadline).
    pub options: &'a CheckOptions,
    /// `d²` normalisation for `|tr(U†Eᵢ)|²`.
    pub d2: f64,
}

/// What an ε-aware engine run produced.
pub(crate) struct EngineOutcome {
    /// Sum of computed terms (proven fidelity lower bound).
    pub lower: f64,
    /// Outstanding Kraus mass (upper bound = `lower + remaining`).
    pub remaining: f64,
    /// Terms actually contracted.
    pub terms_computed: usize,
    /// Largest intermediate diagram across all workers.
    pub max_nodes: usize,
    /// Early ε-decision, if one was reached.
    pub verdict: Option<Verdict>,
    /// Merged decision-diagram statistics of every worker.
    pub stats: TddStats,
}

/// What a fixed-job engine run produced (Monte-Carlo path).
pub(crate) struct FixedOutcome {
    /// Per-job term values `|tr(U†E_choice)|²/d²`, in job order.
    pub terms: Vec<f64>,
    /// Largest intermediate diagram across all workers.
    pub max_nodes: usize,
    /// Merged decision-diagram statistics of every worker.
    pub stats: TddStats,
}

/// One fixed-mode worker's haul: `(job index, term value)` pairs, its
/// largest intermediate diagram, and its manager statistics.
type FixedWorkerHaul = (Vec<(usize, f64)>, usize, TddStats);

/// Verdict codes in the shared `AtomicU8`.
const VERDICT_NONE: u8 = 0;
const VERDICT_EQUIVALENT: u8 = 1;
const VERDICT_NOT_EQUIVALENT: u8 = 2;

/// Adds `v` to an `f64` stored in an `AtomicU64`, returning the new value.
fn atomic_f64_add(cell: &AtomicU64, v: f64) -> f64 {
    let mut current = cell.load(Ordering::SeqCst);
    loop {
        let next = f64::from_bits(current) + v;
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return next,
            Err(seen) => current = seen,
        }
    }
}

/// Subtracts `v` from an `f64` stored in an `AtomicU64`, clamping at zero.
fn atomic_f64_sub_clamped(cell: &AtomicU64, v: f64) {
    let mut current = cell.load(Ordering::SeqCst);
    loop {
        let next = (f64::from_bits(current) - v).max(0.0);
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// The mutex-guarded work source: the enumerator plus the count of terms
/// already handed out, so `max_terms` caps *pulled* work exactly.
struct TermQueue {
    enumerator: TermEnumerator,
    pulled: usize,
    cap: Option<usize>,
}

impl TermQueue {
    /// Pulls up to `max` terms into `out` (cleared first). An empty
    /// result means the source is exhausted or capped.
    fn pull(&mut self, max: usize, out: &mut Vec<(Vec<usize>, f64)>) {
        out.clear();
        while out.len() < max {
            if self.cap.is_some_and(|cap| self.pulled >= cap) {
                return;
            }
            match self.enumerator.next_term() {
                Some(term) => {
                    self.pulled += 1;
                    out.push(term);
                }
                None => return,
            }
        }
    }
}

/// Cross-worker shared state for an ε-aware run.
struct SharedState {
    queue: Mutex<TermQueue>,
    /// `f64` bits of the accumulated lower bound.
    lower: AtomicU64,
    /// `f64` bits of the outstanding Kraus mass.
    remaining: AtomicU64,
    terms_done: AtomicUsize,
    stop: AtomicBool,
    verdict: AtomicU8,
}

impl SharedState {
    /// Publishes a verdict (first decision wins) and stops the run.
    fn decide(&self, verdict: Verdict) {
        let code = match verdict {
            Verdict::Equivalent => VERDICT_EQUIVALENT,
            Verdict::NotEquivalent => VERDICT_NOT_EQUIVALENT,
        };
        let _ =
            self.verdict
                .compare_exchange(VERDICT_NONE, code, Ordering::SeqCst, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
    }

    fn verdict(&self) -> Option<Verdict> {
        match self.verdict.load(Ordering::SeqCst) {
            VERDICT_EQUIVALENT => Some(Verdict::Equivalent),
            VERDICT_NOT_EQUIVALENT => Some(Verdict::NotEquivalent),
            _ => None,
        }
    }
}

/// A worker's private contraction context: its thread-local manager (or
/// a fresh one per term when table reuse is off) and its local maxima.
struct WorkerCtx<'a> {
    engine: &'a TermEngine<'a>,
    manager: Option<TddManager>,
    max_nodes: usize,
    stats: TddStats,
}

impl<'a> WorkerCtx<'a> {
    fn new(engine: &'a TermEngine<'a>) -> Self {
        WorkerCtx {
            engine,
            manager: engine.options.reuse_tables.then(TddManager::new),
            max_nodes: 0,
            stats: TddStats::default(),
        }
    }

    /// Contracts one Kraus selection, returning `|tr(U†E_choice)|²/d²`.
    fn contract(&mut self, choice: &[usize]) -> Result<f64, QaecError> {
        let built = self.engine.build_network(choice);
        let mut fresh = None;
        let manager = match self.manager.as_mut() {
            Some(m) => m,
            None => fresh.insert(TddManager::new()),
        };
        let result = contract_network_opts(
            manager,
            &built.network,
            self.engine.plan,
            self.engine.order,
            DriverOptions {
                gc_threshold: self.engine.options.gc_threshold,
                deadline: self.engine.options.deadline,
            },
        )
        .map_err(|_| QaecError::Timeout)?;
        let trace = manager.edge_scalar(result.root).expect("closed network");
        self.max_nodes = self.max_nodes.max(result.max_nodes);
        if let Some(fresh) = fresh {
            self.stats.merge(&fresh.stats());
        }
        Ok(trace.norm_sqr() / self.engine.d2)
    }

    /// The worker's merged stats after its last term.
    fn into_stats(self) -> (usize, TddStats) {
        let mut stats = self.stats;
        if let Some(m) = &self.manager {
            stats.merge(&m.stats());
        }
        (self.max_nodes, stats)
    }
}

impl TermEngine<'_> {
    fn build_network(&self, choice: &[usize]) -> BuiltNetwork {
        let elements = self.template.instantiate(choice);
        build_trace_network(
            &elements,
            self.template.n_wires,
            self.final_map,
            self.options.var_order,
        )
    }

    fn deadline_expired(&self) -> bool {
        self.options.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn worker_count(&self, jobs: usize) -> usize {
        self.options.threads.max(1).min(jobs.max(1))
    }

    /// Runs the full ε-aware accumulation over every Kraus selection of
    /// the template (`options.term_order`, `options.max_terms`,
    /// `options.deadline` and `options.threads` all respected).
    ///
    /// With one worker the engine runs inline on the calling thread and
    /// visits terms in exactly the enumerator's order, so sequential
    /// results are bit-for-bit reproducible; with several workers the
    /// partial sums commute up to `f64` associativity (≪ 1e-12 here).
    pub(crate) fn run(
        &self,
        epsilon: Option<f64>,
        total_terms: usize,
    ) -> Result<EngineOutcome, QaecError> {
        let workers = self.worker_count(total_terms);
        // Small batches keep the stop signal responsive during ε runs;
        // exact runs amortise queue locking with larger ones.
        let batch_size = if epsilon.is_some() {
            1
        } else {
            (total_terms / (workers * 4)).clamp(1, 32)
        };
        let shared = SharedState {
            queue: Mutex::new(TermQueue {
                enumerator: TermEnumerator::new(self.template, self.options.term_order),
                pulled: 0,
                cap: self.options.max_terms,
            }),
            lower: AtomicU64::new(0.0f64.to_bits()),
            remaining: AtomicU64::new(1.0f64.to_bits()), // CPTP: masses sum to 1
            terms_done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            verdict: AtomicU8::new(VERDICT_NONE),
        };

        let folded = if workers == 1 {
            vec![self.epsilon_worker(&shared, epsilon, batch_size)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| scope.spawn(|| self.epsilon_worker(&shared, epsilon, batch_size)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            })
        };

        let verdict = shared.verdict();
        let mut max_nodes = 0usize;
        let mut stats = TddStats::default();
        let mut error = None;
        for outcome in folded {
            match outcome {
                Ok((nodes, worker_stats)) => {
                    max_nodes = max_nodes.max(nodes);
                    stats.merge(&worker_stats);
                }
                Err(e) => error = Some(e),
            }
        }
        // A decided verdict outranks a racing deadline in another worker
        // (the sequential loop likewise checks the bounds first).
        if verdict.is_none() {
            if let Some(e) = error {
                return Err(e);
            }
        }

        let terms_computed = shared.terms_done.load(Ordering::SeqCst);
        let lower = f64::from_bits(shared.lower.load(Ordering::SeqCst));
        let mut remaining = f64::from_bits(shared.remaining.load(Ordering::SeqCst));
        if terms_computed == total_terms {
            remaining = 0.0;
        }
        Ok(EngineOutcome {
            lower,
            remaining,
            terms_computed,
            max_nodes,
            verdict,
            stats,
        })
    }

    /// One worker of [`TermEngine::run`]: steal a batch, contract it,
    /// fold into the shared bounds, re-check the ε-decision.
    fn epsilon_worker(
        &self,
        shared: &SharedState,
        epsilon: Option<f64>,
        batch_size: usize,
    ) -> Result<(usize, TddStats), QaecError> {
        let mut ctx = WorkerCtx::new(self);
        let mut batch = Vec::with_capacity(batch_size);
        'steal: loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            shared
                .queue
                .lock()
                .expect("engine queue poisoned")
                .pull(batch_size, &mut batch);
            if batch.is_empty() {
                break;
            }
            for (choice, mass) in batch.drain(..) {
                if shared.stop.load(Ordering::SeqCst) {
                    break 'steal;
                }
                if self.deadline_expired() {
                    shared.stop.store(true, Ordering::SeqCst);
                    return Err(QaecError::Timeout);
                }
                let term = match ctx.contract(&choice) {
                    Ok(term) => term,
                    Err(e) => {
                        // A timeout *inside* a contraction must also stop
                        // the siblings, not just the pre-term check above.
                        shared.stop.store(true, Ordering::SeqCst);
                        return Err(e);
                    }
                };
                // Order matters for soundness: grow `lower` before
                // shrinking `remaining` (see the module docs).
                let new_lower = atomic_f64_add(&shared.lower, term);
                atomic_f64_sub_clamped(&shared.remaining, mass);
                shared.terms_done.fetch_add(1, Ordering::SeqCst);
                if let Some(eps) = epsilon {
                    // Read `remaining` first, then `lower`, so the pair
                    // never undercounts the upper bound.
                    let rem = f64::from_bits(shared.remaining.load(Ordering::SeqCst));
                    let low = f64::from_bits(shared.lower.load(Ordering::SeqCst)).max(new_lower);
                    if low > 1.0 - eps {
                        shared.decide(Verdict::Equivalent);
                        break 'steal;
                    }
                    if low + rem <= 1.0 - eps {
                        shared.decide(Verdict::NotEquivalent);
                        break 'steal;
                    }
                }
            }
        }
        Ok(ctx.into_stats())
    }

    /// Contracts a fixed list of Kraus selections (work-stolen in batches
    /// off a shared cursor), returning each term value in job order. Used
    /// by the Monte-Carlo estimator for parallel trajectory evaluation.
    pub(crate) fn run_fixed(&self, jobs: &[Vec<usize>]) -> Result<FixedOutcome, QaecError> {
        let workers = self.worker_count(jobs.len());
        let batch_size = (jobs.len() / (workers * 4)).clamp(1, 32);
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);

        let fold_worker = || -> Result<FixedWorkerHaul, QaecError> {
            let mut ctx = WorkerCtx::new(self);
            let mut values = Vec::new();
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let lo = cursor.fetch_add(batch_size, Ordering::SeqCst);
                if lo >= jobs.len() {
                    break;
                }
                let hi = (lo + batch_size).min(jobs.len());
                for (index, choice) in jobs.iter().enumerate().take(hi).skip(lo) {
                    if self.deadline_expired() {
                        stop.store(true, Ordering::SeqCst);
                        return Err(QaecError::Timeout);
                    }
                    match ctx.contract(choice) {
                        Ok(term) => values.push((index, term)),
                        Err(e) => {
                            stop.store(true, Ordering::SeqCst);
                            return Err(e);
                        }
                    }
                }
            }
            let (nodes, stats) = ctx.into_stats();
            Ok((values, nodes, stats))
        };

        let folded = if workers == 1 {
            vec![fold_worker()]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(fold_worker)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            })
        };

        let mut terms = vec![0.0f64; jobs.len()];
        let mut max_nodes = 0usize;
        let mut stats = TddStats::default();
        for outcome in folded {
            let (values, nodes, worker_stats) = outcome?;
            for (index, value) in values {
                terms[index] = value;
            }
            max_nodes = max_nodes.max(nodes);
            stats.merge(&worker_stats);
        }
        Ok(FixedOutcome {
            terms,
            max_nodes,
            stats,
        })
    }
}

/// Mixed-radix / best-first enumeration of Kraus selections with their
/// probability masses.
pub(crate) struct TermEnumerator {
    counts: Vec<usize>,
    /// Per site, masses sorted descending (positions, not raw indices).
    masses: Vec<Vec<f64>>,
    /// Per site, sorted position → raw Kraus index.
    sorted_maps: Vec<Vec<usize>>,
    mode: TermOrder,
    // Lexicographic state.
    next_lex: Option<Vec<usize>>,
    // Best-first state.
    heap: BinaryHeap<HeapTerm>,
    seen: HashSet<Vec<usize>>,
}

struct HeapTerm {
    mass: f64,
    choice: Vec<usize>,
}

impl PartialEq for HeapTerm {
    fn eq(&self, other: &Self) -> bool {
        self.mass == other.mass && self.choice == other.choice
    }
}
impl Eq for HeapTerm {}
impl PartialOrd for HeapTerm {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapTerm {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mass
            .total_cmp(&other.mass)
            .then_with(|| other.choice.cmp(&self.choice))
    }
}

impl TermEnumerator {
    pub(crate) fn new(template: &Alg1Template, mode: TermOrder) -> Self {
        let counts: Vec<usize> = template.sites.iter().map(|s| s.kraus.len()).collect();
        // Per site: Kraus indices sorted by descending mass, so the
        // all-zero choice over *sorted positions* is the heaviest term.
        let sorted_indices: Vec<Vec<usize>> = template
            .sites
            .iter()
            .map(|s| {
                let mut idx: Vec<usize> = (0..s.masses.len()).collect();
                idx.sort_by(|&a, &b| s.masses[b].total_cmp(&s.masses[a]));
                idx
            })
            .collect();
        let masses: Vec<Vec<f64>> = template
            .sites
            .iter()
            .zip(&sorted_indices)
            .map(|(s, idx)| idx.iter().map(|&i| s.masses[i]).collect())
            .collect();
        let root = vec![0usize; counts.len()];
        let mut e = TermEnumerator {
            counts,
            masses,
            sorted_maps: sorted_indices,
            mode,
            next_lex: Some(root.clone()),
            heap: BinaryHeap::new(),
            seen: HashSet::new(),
        };
        if mode == TermOrder::BestFirst {
            e.heap.push(HeapTerm {
                mass: e.mass_of(&root),
                choice: root.clone(),
            });
            e.seen.insert(root);
        }
        e
    }

    fn mass_of(&self, positions: &[usize]) -> f64 {
        positions
            .iter()
            .enumerate()
            .map(|(site, &p)| self.masses[site][p])
            .product()
    }

    /// Yields `(raw Kraus choice, mass)` or `None` when exhausted.
    pub(crate) fn next_term(&mut self) -> Option<(Vec<usize>, f64)> {
        match self.mode {
            TermOrder::Lexicographic => {
                let current = self.next_lex.take()?;
                // Advance the mixed-radix counter.
                let mut next = current.clone();
                let mut carry = true;
                for (digit, &radix) in next.iter_mut().zip(&self.counts) {
                    if carry {
                        *digit += 1;
                        if *digit == radix {
                            *digit = 0;
                        } else {
                            carry = false;
                        }
                    }
                }
                if !carry && !next.is_empty() {
                    self.next_lex = Some(next);
                }
                let mass = self.mass_of(&current);
                let raw = self.to_raw(&current);
                Some((raw, mass))
            }
            TermOrder::BestFirst => {
                let top = self.heap.pop()?;
                for site in 0..self.counts.len() {
                    if top.choice[site] + 1 < self.counts[site] {
                        let mut succ = top.choice.clone();
                        succ[site] += 1;
                        if self.seen.insert(succ.clone()) {
                            self.heap.push(HeapTerm {
                                mass: self.mass_of(&succ),
                                choice: succ,
                            });
                        }
                    }
                }
                let raw = self.to_raw(&top.choice);
                Some((raw, top.mass))
            }
        }
    }

    fn to_raw(&self, positions: &[usize]) -> Vec<usize> {
        positions
            .iter()
            .enumerate()
            .map(|(site, &p)| self.sorted_maps[site][p])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::{Circuit, NoiseChannel};
    use std::collections::HashSet;

    fn template_with(channels: &[NoiseChannel]) -> Alg1Template {
        let mut noisy = Circuit::new(1);
        for ch in channels {
            noisy.noise(ch.clone(), &[0]);
        }
        Alg1Template::build(&Circuit::new(1), &noisy)
    }

    #[test]
    fn lexicographic_covers_every_selection_once() {
        let template = template_with(&[
            NoiseChannel::Depolarizing { p: 0.9 },
            NoiseChannel::BitFlip { p: 0.8 },
        ]);
        let mut e = TermEnumerator::new(&template, TermOrder::Lexicographic);
        let mut seen = HashSet::new();
        let mut total_mass = 0.0;
        while let Some((choice, mass)) = e.next_term() {
            assert!(seen.insert(choice.clone()), "duplicate {choice:?}");
            assert!(choice[0] < 4 && choice[1] < 2);
            total_mass += mass;
        }
        assert_eq!(seen.len(), 8);
        assert!((total_mass - 1.0).abs() < 1e-12, "masses must sum to 1");
    }

    #[test]
    fn best_first_is_non_increasing_and_complete() {
        let template = template_with(&[
            NoiseChannel::Depolarizing { p: 0.7 },
            NoiseChannel::Pauli {
                pi: 0.6,
                px: 0.25,
                py: 0.1,
                pz: 0.05,
            },
        ]);
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let mut seen = HashSet::new();
        let mut last = f64::INFINITY;
        while let Some((choice, mass)) = e.next_term() {
            assert!(mass <= last + 1e-12, "mass not descending: {mass} > {last}");
            last = mass;
            assert!(seen.insert(choice));
        }
        assert_eq!(seen.len(), 16);
        // The first term must be the heaviest: 0.7 · 0.6.
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let (_, first_mass) = e.next_term().expect("non-empty");
        assert!((first_mass - 0.42).abs() < 1e-12);
    }

    #[test]
    fn best_first_maps_back_to_raw_indices() {
        // Amplitude damping masses are not sorted by Kraus index for
        // large gamma: K1 (decay) can outweigh K0.
        let template = template_with(&[NoiseChannel::AmplitudeDamping { gamma: 0.9 }]);
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let (first, first_mass) = e.next_term().expect("some");
        // masses: K0 = (1 + (1−γ))/2 = 0.55, K1 = γ/2 = 0.45 → K0 first.
        assert_eq!(first, vec![0]);
        assert!((first_mass - 0.55).abs() < 1e-12);
        let (second, second_mass) = e.next_term().expect("some");
        assert_eq!(second, vec![1]);
        assert!((second_mass - 0.45).abs() < 1e-12);
    }

    #[test]
    fn zero_sites_yield_single_unit_term() {
        let template = template_with(&[]);
        for order in [TermOrder::Lexicographic, TermOrder::BestFirst] {
            let mut e = TermEnumerator::new(&template, order);
            let (choice, mass) = e.next_term().expect("one term");
            assert!(choice.is_empty());
            assert!((mass - 1.0).abs() < 1e-12);
            assert!(e.next_term().is_none(), "{order:?} must be exhausted");
        }
    }

    #[test]
    fn term_queue_respects_cap_across_pulls() {
        let template = template_with(&[NoiseChannel::Depolarizing { p: 0.9 }]);
        let mut queue = TermQueue {
            enumerator: TermEnumerator::new(&template, TermOrder::Lexicographic),
            pulled: 0,
            cap: Some(3),
        };
        let mut out = Vec::new();
        queue.pull(2, &mut out);
        assert_eq!(out.len(), 2);
        queue.pull(2, &mut out);
        assert_eq!(out.len(), 1, "cap must stop the third pull at one term");
        queue.pull(2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn atomic_f64_helpers() {
        let cell = AtomicU64::new(0.0f64.to_bits());
        assert!((atomic_f64_add(&cell, 0.25) - 0.25).abs() < 1e-15);
        assert!((atomic_f64_add(&cell, 0.5) - 0.75).abs() < 1e-15);
        atomic_f64_sub_clamped(&cell, 2.0);
        assert_eq!(f64::from_bits(cell.load(Ordering::SeqCst)), 0.0);
    }
}
