//! The work-stealing ε-aware parallel term engine.
//!
//! Algorithm I and the Monte-Carlo estimator both reduce to "contract
//! many instantiations of one miter template". This module runs those
//! contractions on a pool of workers that *pull* work from a shared
//! source instead of being handed fixed chunks, so that:
//!
//! * ε-decisions compose with `threads > 1`: every worker folds its
//!   terms into a shared ordered reducer and broadcasts a stop signal
//!   the moment either bound resolves, in either term order;
//! * `max_terms`, `deadline` and `term_order` behave identically in
//!   sequential and parallel runs;
//! * slow terms don't stall the run: a worker that finishes its batch
//!   steals the next one from the shared enumerator, so load balances
//!   even when term costs vary by orders of magnitude;
//! * with the **shared TDD store** (`options.shared_table`, on by
//!   default for `threads > 1`) all workers hash-cons nodes and intern
//!   weights into one [`SharedTddStore`], recovering cross-thread
//!   structure sharing; each worker keeps only its computed tables
//!   thread-local. With `SharedTableMode::Off` every worker keeps a
//!   fully private [`TddManager`] instead (the pre-shared behaviour).
//!
//! ## Bit-identical parallel results
//!
//! Two mechanisms make a shared-store run reproduce the sequential
//! result *bit for bit*, whatever the thread count or scheduling:
//!
//! 1. The store's canonical weight interning makes every term's value a
//!    pure function of the term alone (see [`qaec_tdd::store`]).
//! 2. The ordered reducer folds completed terms strictly in enumeration
//!    order: workers deposit `(sequence, value, mass)` and the reducer
//!    advances a gapless frontier, so partial sums — and therefore the
//!    ε-decision point, the verdict, the reported bounds and the
//!    reported term count — are those of the sequential prefix. Terms
//!    completed beyond the frontier when a decision lands are simply
//!    discarded from the report (work wasted, semantics unchanged).
//!
//! With private per-worker stores the reducer still guarantees
//! sequential *decision semantics*, but values drift by the interning
//! tolerance (≈1e-10) because each manager snaps weights along its own
//! history.

use crate::error::QaecError;
use crate::miter::{build_trace_network, Alg1Template, BuiltNetwork};
use crate::options::{CheckOptions, TermOrder};
use crate::report::Verdict;
use qaec_tdd::fxhash::FxHashMap;
use qaec_tdd::{
    contract_network_opts, run_on_workers, ContCacheKey, DriverOptions, Edge, SharedTddStore,
    TddManager, TddStats,
};
use qaec_tensornet::{ContractionPlan, VarOrder};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use qaec_tdd::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use qaec_tdd::sync::Mutex;
use std::time::Instant;

/// Everything the workers need to instantiate and contract one term.
pub(crate) struct TermEngine<'a> {
    /// The miter with substitutable noise sites.
    pub template: &'a Alg1Template,
    /// Wire remapping from SWAP elimination.
    pub final_map: &'a [usize],
    /// Contraction plan shared by every instantiation.
    pub plan: &'a ContractionPlan,
    /// Decision-diagram variable order shared by every instantiation.
    pub order: &'a VarOrder,
    /// Checker options (threads, tables, GC, deadline).
    pub options: &'a CheckOptions,
    /// `d²` normalisation for `|tr(U†Eᵢ)|²`.
    pub d2: f64,
    /// A warm shared store to reuse instead of allocating a fresh one
    /// (compile-once sessions sweeping many queries over one store).
    /// Only consulted when `options.shared_table` resolves on; per-run
    /// statistics are epoch-fenced so each run reports its own delta.
    pub warm_store: Option<&'a Arc<SharedTddStore>>,
}

/// What an ε-aware engine run produced.
pub(crate) struct EngineOutcome {
    /// Sum of folded terms (proven fidelity lower bound).
    pub lower: f64,
    /// Outstanding Kraus mass (upper bound = `lower + remaining`).
    pub remaining: f64,
    /// Terms folded into the bounds (the gapless frontier; for decided
    /// runs, frozen at the decision point).
    pub terms_computed: usize,
    /// Largest intermediate diagram across all workers.
    pub max_nodes: usize,
    /// Early ε-decision, if one was reached.
    pub verdict: Option<Verdict>,
    /// Decision-diagram statistics: every worker's local counters plus
    /// the shared store's allocation counters (merged exactly once).
    pub stats: TddStats,
}

/// What a fixed-job engine run produced (Monte-Carlo path).
pub(crate) struct FixedOutcome {
    /// Per-job term values `|tr(U†E_choice)|²/d²`, in job order.
    pub terms: Vec<f64>,
    /// Largest intermediate diagram across all workers.
    pub max_nodes: usize,
    /// Merged decision-diagram statistics (workers + shared store).
    pub stats: TddStats,
}

/// One fixed-mode worker's haul: `(job index, term value)` pairs, its
/// largest intermediate diagram, and its manager statistics.
type FixedWorkerHaul = (Vec<(usize, f64)>, usize, TddStats);

/// The mutex-guarded work source: the enumerator plus the count of terms
/// already handed out, so `max_terms` caps *pulled* work exactly. Each
/// pulled term carries its sequence number — the fold position the
/// [`Reducer`] will give it, identical in every scheduling.
struct TermQueue {
    enumerator: TermEnumerator,
    pulled: usize,
    cap: Option<usize>,
}

impl TermQueue {
    /// Pulls up to `max` terms into `out` (cleared first). An empty
    /// result means the source is exhausted or capped.
    fn pull(&mut self, max: usize, out: &mut Vec<(usize, Vec<usize>, f64)>) {
        out.clear();
        while out.len() < max {
            if self.cap.is_some_and(|cap| self.pulled >= cap) {
                return;
            }
            match self.enumerator.next_term() {
                Some((choice, mass)) => {
                    out.push((self.pulled, choice, mass));
                    self.pulled += 1;
                }
                None => return,
            }
        }
    }
}

/// The ε-decision at the moment the frontier crossed a threshold, frozen
/// so late-arriving terms cannot perturb the reported result.
#[derive(Clone, Copy, Debug)]
struct Decision {
    verdict: Verdict,
    lower: f64,
    remaining: f64,
    terms: usize,
}

/// Order-restoring accumulator: terms arrive in completion order (any
/// scheduling) and are folded in enumeration order, so the partial sums
/// — and any ε-decision taken on them — are exactly those of the
/// sequential run.
struct Reducer {
    epsilon: Option<f64>,
    /// Completed terms waiting for the frontier: `seq → (value, mass)`.
    /// Bounded by [`PENDING_LIMIT`] plus one in-flight batch per worker
    /// — workers stop pulling new batches while the frontier lags (see
    /// `TermEngine::epsilon_worker`), so one slow term cannot make the
    /// rest of the pool buffer the whole enumeration here.
    pending: HashMap<usize, (f64, f64)>,
    /// Number of terms folded so far (= next sequence to fold).
    folded: usize,
    lower: f64,
    mass_done: f64,
    decision: Option<Decision>,
}

/// Backpressure threshold on [`Reducer::pending`]: workers pause ahead
/// of a stalled frontier once this many completed terms are buffered.
/// Generous enough that ordinary cost skew never trips it (a few MB at
/// worst), small enough that a pathological straggler cannot turn the
/// buffer into the whole term set.
const PENDING_LIMIT: usize = 4096;

impl Reducer {
    fn new(epsilon: Option<f64>) -> Self {
        Reducer {
            epsilon,
            pending: HashMap::new(),
            folded: 0,
            lower: 0.0,
            mass_done: 0.0,
            decision: None,
        }
    }

    /// Outstanding Kraus mass given the folded prefix (CPTP: site masses
    /// sum to 1, so the unfolded terms hold exactly the complement).
    fn remaining(&self) -> f64 {
        (1.0 - self.mass_done).max(0.0)
    }

    /// Deposits one completed term and advances the gapless frontier.
    /// Returns `true` once an ε-decision exists (callers then stop).
    fn submit(&mut self, seq: usize, value: f64, mass: f64) -> bool {
        self.pending.insert(seq, (value, mass));
        while self.decision.is_none() {
            let Some((value, mass)) = self.pending.remove(&self.folded) else {
                break;
            };
            self.folded += 1;
            self.lower += value;
            self.mass_done += mass;
            if let Some(eps) = self.epsilon {
                let remaining = self.remaining();
                // The one boundary-pinning comparison (`Verdict::decide`)
                // applied to both proven bounds: accept when even the
                // lower bound clears 1 − ε, reject when even the upper
                // bound fails it.
                if let Some(verdict) =
                    Verdict::decide_bounds(self.lower, self.lower + remaining, eps)
                {
                    self.decision = Some(Decision {
                        verdict,
                        lower: self.lower,
                        remaining,
                        terms: self.folded,
                    });
                }
            }
        }
        self.decision.is_some()
    }
}

/// The heaviest completed term's contraction-cache snapshot, shipped to
/// workers that pull a new batch (`options.seed_cont_cache`).
struct SeedSlot {
    /// Mass of the term whose cache is stored (`-∞` until first publish).
    mass: f64,
    entries: Arc<FxHashMap<ContCacheKey, Edge>>,
}

/// Cross-worker shared state for an ε-aware run.
struct SharedState {
    queue: Mutex<TermQueue>,
    reducer: Mutex<Reducer>,
    stop: AtomicBool,
    /// `Some` only for shared-store runs with cache seeding enabled.
    seed: Option<Mutex<SeedSlot>>,
}

/// A worker's private contraction context: its thread-local manager (or
/// a fresh one per term when table reuse is off), the store it attaches
/// managers to, and its local maxima.
struct WorkerCtx<'a> {
    engine: &'a TermEngine<'a>,
    store: Option<Arc<SharedTddStore>>,
    /// This worker's id on the shared store — registered once per
    /// logical worker, so fresh per-term managers (table reuse off)
    /// don't misattribute hits on their own earlier nodes as
    /// cross-thread sharing.
    worker: Option<u32>,
    manager: Option<TddManager>,
    max_nodes: usize,
    stats: TddStats,
}

impl<'a> WorkerCtx<'a> {
    fn new(engine: &'a TermEngine<'a>, store: Option<Arc<SharedTddStore>>) -> Self {
        let worker = store.as_ref().map(|s| s.register_worker());
        let manager = engine
            .options
            .reuse_tables
            .then(|| new_manager(store.as_ref(), worker));
        WorkerCtx {
            engine,
            store,
            worker,
            manager,
            max_nodes: 0,
            stats: TddStats::default(),
        }
    }

    /// Contracts one Kraus selection, returning `|tr(U†E_choice)|²/d²`.
    fn contract(&mut self, choice: &[usize]) -> Result<f64, QaecError> {
        let built = self.engine.build_network(choice);
        let mut fresh = None;
        let manager = match self.manager.as_mut() {
            Some(m) => m,
            None => fresh.insert(new_manager(self.store.as_ref(), self.worker)),
        };
        let result = contract_network_opts(
            manager,
            &built.network,
            self.engine.plan,
            self.engine.order,
            DriverOptions {
                gc_threshold: self.engine.options.gc_threshold,
                deadline: self.engine.options.deadline,
            },
        )
        .map_err(|_| QaecError::Timeout)?;
        let trace = manager.edge_scalar(result.root).expect("closed network");
        self.max_nodes = self.max_nodes.max(result.max_nodes);
        if let Some(fresh) = fresh {
            self.stats.merge(&fresh.stats());
        }
        Ok(trace.norm_sqr() / self.engine.d2)
    }

    /// The worker's merged stats after its last term.
    fn into_stats(self) -> (usize, TddStats) {
        let mut stats = self.stats;
        if let Some(m) = &self.manager {
            stats.merge(&m.stats());
        }
        (self.max_nodes, stats)
    }
}

/// A manager on the run's shared store under the worker's stable id, or
/// a fully private one.
fn new_manager(store: Option<&Arc<SharedTddStore>>, worker: Option<u32>) -> TddManager {
    match store {
        Some(store) => {
            let worker = worker.expect("shared store implies a registered worker id");
            TddManager::new_shared_with_id(store, worker)
        }
        None => TddManager::new(),
    }
}

impl TermEngine<'_> {
    fn build_network(&self, choice: &[usize]) -> BuiltNetwork {
        let elements = self.template.instantiate(choice);
        build_trace_network(
            &elements,
            self.template.n_wires,
            self.final_map,
            self.options.var_order,
        )
    }

    fn deadline_expired(&self) -> bool {
        self.options.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn worker_count(&self, jobs: usize) -> usize {
        self.options.threads.max(1).min(jobs.max(1))
    }

    /// The run's shared store, when `options.shared_table` resolves on
    /// for this worker count: the session's warm store when one was
    /// supplied (value-transparent — canonical interning makes reuse
    /// bit-identical to a fresh store), else a fresh one.
    fn shared_store(&self, workers: usize) -> Option<Arc<SharedTddStore>> {
        self.options
            .shared_table
            .enabled_for(workers)
            .then(|| match self.warm_store {
                Some(store) => Arc::clone(store),
                None => SharedTddStore::new(),
            })
    }

    /// Runs the full ε-aware accumulation over every Kraus selection of
    /// the template (`options.term_order`, `options.max_terms`,
    /// `options.deadline` and `options.threads` all respected).
    ///
    /// Bounds, verdicts and term counts always follow sequential-prefix
    /// semantics (see the module docs); with the shared store they are
    /// additionally bit-identical across thread counts.
    pub(crate) fn run(
        &self,
        epsilon: Option<f64>,
        total_terms: usize,
    ) -> Result<EngineOutcome, QaecError> {
        let workers = self.worker_count(total_terms);
        let store = self.shared_store(workers);
        // Statistics fence: on a warm (session-reused) store this run
        // reports only its own allocation delta; on a fresh store the
        // epoch is zero and the delta equals the totals.
        let epoch = store.as_ref().map(|s| s.reset_between_runs());
        // Small batches keep the stop signal responsive during ε runs;
        // exact runs amortise queue locking with larger ones.
        let batch_size = if epsilon.is_some() {
            1
        } else {
            (total_terms / (workers * 4)).clamp(1, 32)
        };
        let shared = SharedState {
            queue: Mutex::new(TermQueue {
                enumerator: TermEnumerator::new(self.template, self.options.term_order),
                pulled: 0,
                cap: self.options.max_terms,
            }),
            reducer: Mutex::new(Reducer::new(epsilon)),
            stop: AtomicBool::new(false),
            seed: (self.options.seed_cont_cache && store.is_some()).then(|| {
                Mutex::new(SeedSlot {
                    mass: f64::NEG_INFINITY,
                    entries: Arc::new(FxHashMap::default()),
                })
            }),
        };

        let folded = run_on_workers(workers, |_| {
            self.epsilon_worker(&shared, store.as_ref(), batch_size)
        });

        let reducer = shared
            .reducer
            .into_inner()
            .expect("engine reducer poisoned");
        let mut max_nodes = 0usize;
        let mut stats = TddStats::default();
        let mut error = None;
        for outcome in folded {
            match outcome {
                Ok((nodes, worker_stats)) => {
                    max_nodes = max_nodes.max(nodes);
                    stats.merge(&worker_stats);
                }
                Err(e) => error = Some(e),
            }
        }
        if let Some(store) = &store {
            // Allocation counters are store-owned: merged exactly once
            // here, never per worker (see `SharedTddStore::stats`), and
            // fenced to this run's epoch.
            stats.merge(&store.stats_since(epoch.expect("epoch taken with the store")));
        }
        // A decided verdict outranks a racing deadline in another worker
        // (the sequential loop likewise checks the bounds first).
        if reducer.decision.is_none() {
            if let Some(e) = error {
                return Err(e);
            }
        }

        let (lower, remaining, terms_computed, verdict) = match reducer.decision {
            Some(d) => (d.lower, d.remaining, d.terms, Some(d.verdict)),
            None => {
                let remaining = if reducer.folded == total_terms {
                    0.0
                } else {
                    reducer.remaining()
                };
                (reducer.lower, remaining, reducer.folded, None)
            }
        };
        Ok(EngineOutcome {
            lower,
            remaining,
            terms_computed,
            max_nodes,
            verdict,
            stats,
        })
    }

    /// One worker of [`TermEngine::run`]: steal a batch, contract it,
    /// fold into the shared reducer, stop on the ε-decision.
    fn epsilon_worker(
        &self,
        shared: &SharedState,
        store: Option<&Arc<SharedTddStore>>,
        batch_size: usize,
    ) -> Result<(usize, TddStats), QaecError> {
        let mut ctx = WorkerCtx::new(self, store.cloned());
        let mut batch = Vec::with_capacity(batch_size);
        let mut imported_mass = f64::NEG_INFINITY;
        'steal: loop {
            // ordering: SeqCst — stop is a control-flow flag only (result
            // data travels through the reducer mutex); SeqCst everywhere
            // keeps the flag's reads/writes in one total order at
            // negligible cost off the per-node hot path.
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            // Backpressure: don't race arbitrarily far past a stalled
            // frontier — the worker contracting the frontier term is
            // never the one waiting here, so this cannot deadlock.
            while shared
                .reducer
                .lock()
                .expect("engine reducer poisoned")
                .pending
                .len()
                >= PENDING_LIMIT
            {
                // ordering: SeqCst — control-flow flag (see loop head).
                if shared.stop.load(Ordering::SeqCst) {
                    break 'steal;
                }
                std::thread::yield_now();
            }
            shared
                .queue
                .lock()
                .expect("engine queue poisoned")
                .pull(batch_size, &mut batch);
            if batch.is_empty() {
                break;
            }
            // Seed this batch from the heaviest completed term's cache,
            // if a heavier snapshot appeared since the last import.
            if let Some(slot) = &shared.seed {
                let snapshot = {
                    let slot = slot.lock().expect("seed slot poisoned");
                    (slot.mass > imported_mass && !slot.entries.is_empty()).then(|| {
                        imported_mass = slot.mass;
                        Arc::clone(&slot.entries)
                    })
                };
                if let (Some(entries), Some(m)) = (snapshot, ctx.manager.as_mut()) {
                    m.seed_cont_cache(&entries);
                }
            }
            for (seq, choice, mass) in batch.drain(..) {
                // ordering: SeqCst — control-flow flag (see loop head).
                if shared.stop.load(Ordering::SeqCst) {
                    break 'steal;
                }
                if self.deadline_expired() {
                    // ordering: SeqCst — control-flow flag (see loop head).
                    shared.stop.store(true, Ordering::SeqCst);
                    return Err(QaecError::Timeout);
                }
                let term = match ctx.contract(&choice) {
                    Ok(term) => term,
                    Err(e) => {
                        // A timeout *inside* a contraction must also stop
                        // the siblings, not just the pre-term check above.
                        // ordering: SeqCst — control-flow flag (loop head).
                        shared.stop.store(true, Ordering::SeqCst);
                        return Err(e);
                    }
                };
                // Publish the worker's accumulated cache when this term
                // is the heaviest so far. The O(cache) clone happens
                // *outside* the slot lock (every worker takes it per
                // batch), with a re-check before installing in case a
                // heavier term won the race meanwhile.
                if let (Some(slot), Some(m)) = (&shared.seed, ctx.manager.as_ref()) {
                    let heaviest = mass > slot.lock().expect("seed slot poisoned").mass;
                    if heaviest {
                        let entries = Arc::new(m.snapshot_cont_cache());
                        let mut slot = slot.lock().expect("seed slot poisoned");
                        if mass > slot.mass {
                            slot.mass = mass;
                            slot.entries = entries;
                        }
                    }
                }
                let decided = shared
                    .reducer
                    .lock()
                    .expect("engine reducer poisoned")
                    .submit(seq, term, mass);
                if decided {
                    // ordering: SeqCst — control-flow flag (loop head);
                    // the decision itself came out of the reducer mutex.
                    shared.stop.store(true, Ordering::SeqCst);
                    break 'steal;
                }
            }
        }
        Ok(ctx.into_stats())
    }

    /// Contracts a fixed list of Kraus selections (work-stolen in batches
    /// off a shared cursor), returning each term value in job order. Used
    /// by the Monte-Carlo estimator for parallel trajectory evaluation.
    pub(crate) fn run_fixed(&self, jobs: &[Vec<usize>]) -> Result<FixedOutcome, QaecError> {
        let workers = self.worker_count(jobs.len());
        let store = self.shared_store(workers);
        let epoch = store.as_ref().map(|s| s.reset_between_runs());
        let batch_size = (jobs.len() / (workers * 4)).clamp(1, 32);
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);

        let fold_worker = || -> Result<FixedWorkerHaul, QaecError> {
            let mut ctx = WorkerCtx::new(self, store.clone());
            let mut values = Vec::new();
            loop {
                // ordering: SeqCst — control-flow stop flag, as in
                // `epsilon_worker`; term values travel through each
                // worker's local vec and the join, not this flag.
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // ordering: SeqCst — the RMW's atomicity alone partitions
                // the job range; SeqCst (over Relaxed) keeps every engine
                // control atomic in one total order for free off the hot
                // path.
                let lo = cursor.fetch_add(batch_size, Ordering::SeqCst);
                if lo >= jobs.len() {
                    break;
                }
                let hi = (lo + batch_size).min(jobs.len());
                for (index, choice) in jobs.iter().enumerate().take(hi).skip(lo) {
                    if self.deadline_expired() {
                        // ordering: SeqCst — control-flow flag (loop head).
                        stop.store(true, Ordering::SeqCst);
                        return Err(QaecError::Timeout);
                    }
                    match ctx.contract(choice) {
                        Ok(term) => values.push((index, term)),
                        Err(e) => {
                            // ordering: SeqCst — control-flow flag (above).
                            stop.store(true, Ordering::SeqCst);
                            return Err(e);
                        }
                    }
                }
            }
            let (nodes, stats) = ctx.into_stats();
            Ok((values, nodes, stats))
        };

        let folded = run_on_workers(workers, |_| fold_worker());

        let mut terms = vec![0.0f64; jobs.len()];
        let mut max_nodes = 0usize;
        let mut stats = TddStats::default();
        for outcome in folded {
            let (values, nodes, worker_stats) = outcome?;
            for (index, value) in values {
                terms[index] = value;
            }
            max_nodes = max_nodes.max(nodes);
            stats.merge(&worker_stats);
        }
        if let Some(store) = &store {
            stats.merge(&store.stats_since(epoch.expect("epoch taken with the store")));
        }
        Ok(FixedOutcome {
            terms,
            max_nodes,
            stats,
        })
    }
}

/// Mixed-radix / best-first enumeration of Kraus selections with their
/// probability masses.
pub(crate) struct TermEnumerator {
    counts: Vec<usize>,
    /// Per site, masses sorted descending (positions, not raw indices).
    masses: Vec<Vec<f64>>,
    /// Per site, sorted position → raw Kraus index.
    sorted_maps: Vec<Vec<usize>>,
    mode: TermOrder,
    // Lexicographic state.
    next_lex: Option<Vec<usize>>,
    // Best-first state.
    heap: BinaryHeap<HeapTerm>,
    seen: HashSet<Vec<usize>>,
}

struct HeapTerm {
    mass: f64,
    choice: Vec<usize>,
}

impl PartialEq for HeapTerm {
    fn eq(&self, other: &Self) -> bool {
        self.mass == other.mass && self.choice == other.choice
    }
}
impl Eq for HeapTerm {}
impl PartialOrd for HeapTerm {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapTerm {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mass
            .total_cmp(&other.mass)
            .then_with(|| other.choice.cmp(&self.choice))
    }
}

impl TermEnumerator {
    pub(crate) fn new(template: &Alg1Template, mode: TermOrder) -> Self {
        let counts: Vec<usize> = template.sites.iter().map(|s| s.kraus.len()).collect();
        // Per site: Kraus indices sorted by descending mass, so the
        // all-zero choice over *sorted positions* is the heaviest term.
        let sorted_indices: Vec<Vec<usize>> = template
            .sites
            .iter()
            .map(|s| {
                let mut idx: Vec<usize> = (0..s.masses.len()).collect();
                idx.sort_by(|&a, &b| s.masses[b].total_cmp(&s.masses[a]));
                idx
            })
            .collect();
        let masses: Vec<Vec<f64>> = template
            .sites
            .iter()
            .zip(&sorted_indices)
            .map(|(s, idx)| idx.iter().map(|&i| s.masses[i]).collect())
            .collect();
        let root = vec![0usize; counts.len()];
        let mut e = TermEnumerator {
            counts,
            masses,
            sorted_maps: sorted_indices,
            mode,
            next_lex: Some(root.clone()),
            heap: BinaryHeap::new(),
            seen: HashSet::new(),
        };
        if mode == TermOrder::BestFirst {
            e.heap.push(HeapTerm {
                mass: e.mass_of(&root),
                choice: root.clone(),
            });
            e.seen.insert(root);
        }
        e
    }

    fn mass_of(&self, positions: &[usize]) -> f64 {
        positions
            .iter()
            .enumerate()
            .map(|(site, &p)| self.masses[site][p])
            .product()
    }

    /// Yields `(raw Kraus choice, mass)` or `None` when exhausted.
    pub(crate) fn next_term(&mut self) -> Option<(Vec<usize>, f64)> {
        match self.mode {
            TermOrder::Lexicographic => {
                let current = self.next_lex.take()?;
                // Advance the mixed-radix counter.
                let mut next = current.clone();
                let mut carry = true;
                for (digit, &radix) in next.iter_mut().zip(&self.counts) {
                    if carry {
                        *digit += 1;
                        if *digit == radix {
                            *digit = 0;
                        } else {
                            carry = false;
                        }
                    }
                }
                if !carry && !next.is_empty() {
                    self.next_lex = Some(next);
                }
                let mass = self.mass_of(&current);
                let raw = self.to_raw(&current);
                Some((raw, mass))
            }
            TermOrder::BestFirst => {
                let top = self.heap.pop()?;
                for site in 0..self.counts.len() {
                    if top.choice[site] + 1 < self.counts[site] {
                        let mut succ = top.choice.clone();
                        succ[site] += 1;
                        if self.seen.insert(succ.clone()) {
                            self.heap.push(HeapTerm {
                                mass: self.mass_of(&succ),
                                choice: succ,
                            });
                        }
                    }
                }
                let raw = self.to_raw(&top.choice);
                Some((raw, top.mass))
            }
        }
    }

    fn to_raw(&self, positions: &[usize]) -> Vec<usize> {
        positions
            .iter()
            .enumerate()
            .map(|(site, &p)| self.sorted_maps[site][p])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_circuit::{Circuit, NoiseChannel};
    use std::collections::HashSet;

    fn template_with(channels: &[NoiseChannel]) -> Alg1Template {
        let mut noisy = Circuit::new(1);
        for ch in channels {
            noisy.noise(ch.clone(), &[0]);
        }
        Alg1Template::build(&Circuit::new(1), &noisy)
    }

    #[test]
    fn lexicographic_covers_every_selection_once() {
        let template = template_with(&[
            NoiseChannel::Depolarizing { p: 0.9 },
            NoiseChannel::BitFlip { p: 0.8 },
        ]);
        let mut e = TermEnumerator::new(&template, TermOrder::Lexicographic);
        let mut seen = HashSet::new();
        let mut total_mass = 0.0;
        while let Some((choice, mass)) = e.next_term() {
            assert!(seen.insert(choice.clone()), "duplicate {choice:?}");
            assert!(choice[0] < 4 && choice[1] < 2);
            total_mass += mass;
        }
        assert_eq!(seen.len(), 8);
        assert!((total_mass - 1.0).abs() < 1e-12, "masses must sum to 1");
    }

    #[test]
    fn best_first_is_non_increasing_and_complete() {
        let template = template_with(&[
            NoiseChannel::Depolarizing { p: 0.7 },
            NoiseChannel::Pauli {
                pi: 0.6,
                px: 0.25,
                py: 0.1,
                pz: 0.05,
            },
        ]);
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let mut seen = HashSet::new();
        let mut last = f64::INFINITY;
        while let Some((choice, mass)) = e.next_term() {
            assert!(mass <= last + 1e-12, "mass not descending: {mass} > {last}");
            last = mass;
            assert!(seen.insert(choice));
        }
        assert_eq!(seen.len(), 16);
        // The first term must be the heaviest: 0.7 · 0.6.
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let (_, first_mass) = e.next_term().expect("non-empty");
        assert!((first_mass - 0.42).abs() < 1e-12);
    }

    #[test]
    fn best_first_maps_back_to_raw_indices() {
        // Amplitude damping masses are not sorted by Kraus index for
        // large gamma: K1 (decay) can outweigh K0.
        let template = template_with(&[NoiseChannel::AmplitudeDamping { gamma: 0.9 }]);
        let mut e = TermEnumerator::new(&template, TermOrder::BestFirst);
        let (first, first_mass) = e.next_term().expect("some");
        // masses: K0 = (1 + (1−γ))/2 = 0.55, K1 = γ/2 = 0.45 → K0 first.
        assert_eq!(first, vec![0]);
        assert!((first_mass - 0.55).abs() < 1e-12);
        let (second, second_mass) = e.next_term().expect("some");
        assert_eq!(second, vec![1]);
        assert!((second_mass - 0.45).abs() < 1e-12);
    }

    #[test]
    fn zero_sites_yield_single_unit_term() {
        let template = template_with(&[]);
        for order in [TermOrder::Lexicographic, TermOrder::BestFirst] {
            let mut e = TermEnumerator::new(&template, order);
            let (choice, mass) = e.next_term().expect("one term");
            assert!(choice.is_empty());
            assert!((mass - 1.0).abs() < 1e-12);
            assert!(e.next_term().is_none(), "{order:?} must be exhausted");
        }
    }

    #[test]
    fn term_queue_respects_cap_across_pulls() {
        let template = template_with(&[NoiseChannel::Depolarizing { p: 0.9 }]);
        let mut queue = TermQueue {
            enumerator: TermEnumerator::new(&template, TermOrder::Lexicographic),
            pulled: 0,
            cap: Some(3),
        };
        let mut out = Vec::new();
        queue.pull(2, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].0, out[1].0), (0, 1), "sequence numbers are dense");
        queue.pull(2, &mut out);
        assert_eq!(out.len(), 1, "cap must stop the third pull at one term");
        assert_eq!(out[0].0, 2);
        queue.pull(2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn reducer_folds_out_of_order_terms_in_sequence_order() {
        let mut r = Reducer::new(None);
        // Terms 1 and 2 land before 0: nothing folds until the gap fills.
        assert!(!r.submit(1, 0.25, 0.3));
        assert!(!r.submit(2, 0.125, 0.2));
        assert_eq!(r.folded, 0);
        assert!(!r.submit(0, 0.5, 0.5));
        assert_eq!(r.folded, 3);
        assert!((r.lower - 0.875).abs() < 1e-15);
        assert!((r.remaining() - 0.0).abs() < 1e-12);
        assert!(r.pending.is_empty());
    }

    #[test]
    fn reducer_decides_at_the_sequential_prefix_point() {
        // ε = 0.2: the decision must land exactly when the *prefix* sum
        // crosses 0.8, no matter that a later term arrived first.
        let mut r = Reducer::new(Some(0.2));
        assert!(!r.submit(2, 0.05, 0.06), "gap: nothing folds, no decision");
        assert!(!r.submit(0, 0.5, 0.52));
        let decided = r.submit(1, 0.35, 0.36);
        assert!(decided);
        let d = r.decision.expect("decision");
        assert_eq!(d.verdict, Verdict::Equivalent);
        assert_eq!(d.terms, 2, "term 2 is beyond the deciding prefix");
        assert!((d.lower - 0.85).abs() < 1e-15);
        // The frozen snapshot ignores the already-submitted term 2.
        assert!((d.remaining - (1.0 - 0.52 - 0.36)).abs() < 1e-12);
    }

    #[test]
    fn reducer_rejects_when_upper_bound_collapses() {
        let mut r = Reducer::new(Some(0.05));
        // One heavy term with almost no fidelity: upper bound crashes.
        assert!(r.submit(0, 0.01, 0.9));
        let d = r.decision.expect("decision");
        assert_eq!(d.verdict, Verdict::NotEquivalent);
        assert_eq!(d.terms, 1);
    }
}
