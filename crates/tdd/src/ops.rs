//! Pointwise addition and contraction of TDDs.
//!
//! Both operations factor the operand edge weights out first, so the
//! computed tables key on node identities (plus, for `add`, the interned
//! weight ratio, and for `cont`, the interned remaining elimination
//! suffix). This is what makes memoized results reusable across the many
//! structurally-similar trace networks of Algorithm I — the effect the
//! paper isolates in Table II.

use crate::driver::DriverTimeout;
use crate::manager::{Edge, TddManager};
use crate::weight::WeightId;

/// Pointwise sum of two diagrams over the union of their variables.
///
/// Infallible convenience wrapper over [`try_add`] for managers without
/// an armed deadline (see [`TddManager::set_deadline`]).
///
/// # Panics
///
/// Panics if an armed deadline expires mid-recursion — callers that arm
/// deadlines must use [`try_add`].
///
/// # Example
///
/// ```
/// use qaec_math::C64;
/// use qaec_tdd::{ops, TddManager};
///
/// let mut m = TddManager::new();
/// let a = m.terminal(C64::real(2.0));
/// let b = m.terminal(C64::real(-0.5));
/// let s = ops::add(&mut m, a, b);
/// assert_eq!(m.edge_scalar(s), Some(C64::real(1.5)));
/// ```
pub fn add(m: &mut TddManager, a: Edge, b: Edge) -> Edge {
    try_add(m, a, b).expect("deadline expired mid-add — arm-aware callers use try_add")
}

/// Pointwise sum of two diagrams, aborting with [`DriverTimeout`] if the
/// manager's armed deadline expires (probed every
/// [`crate::manager::DEADLINE_PROBE_INTERVAL`] recursion calls).
///
/// # Errors
///
/// [`DriverTimeout`] once the armed deadline has passed.
// hot-region: begin(try_add) — per-node recursion core; no clocks or
// allocation allowed (deadline probes are amortised in the manager).
pub fn try_add(m: &mut TddManager, a: Edge, b: Edge) -> Result<Edge, DriverTimeout> {
    m.stats.add_calls += 1;
    if m.deadline_exceeded() {
        return Err(DriverTimeout);
    }
    if a.is_zero() {
        return Ok(b);
    }
    if b.is_zero() {
        return Ok(a);
    }
    // Same structure: add the weights.
    if a.node == b.node {
        let w = m.wadd(a.weight, b.weight);
        if w.is_zero() {
            return Ok(Edge::ZERO);
        }
        return Ok(Edge {
            node: a.node,
            weight: w,
        });
    }
    // Canonical operand order (commutative). Ordering by weight *value*
    // — not by handle — keeps the factorization below a pure function of
    // the operands, so shared-store runs compute bit-identical results
    // whatever order the ids were allocated in across threads. Handles
    // only break exact-value ties, where the factor weights coincide and
    // the recursion is numerically symmetric anyway.
    let (a, b) = {
        let va = m.weight_value(a.weight);
        let vb = m.weight_value(b.weight);
        let swap = vb
            .re
            .total_cmp(&va.re)
            .then(vb.im.total_cmp(&va.im))
            .then_with(|| (b.node, b.weight).cmp(&(a.node, a.weight)))
            .is_lt();
        if swap {
            (b, a)
        } else {
            (a, b)
        }
    };
    // Factor out a's weight: add(wa·A, wb·B) = wa · add(A, (wb/wa)·B).
    let ratio = m.wdiv(b.weight, a.weight);
    let na = Edge {
        node: a.node,
        weight: WeightId::ONE,
    };
    let nb = Edge {
        node: b.node,
        weight: ratio,
    };
    let key = (na, nb);
    if let Some(&hit) = m.add_cache.get(&key) {
        m.stats.add_hits += 1;
        return Ok(Edge {
            node: hit.node,
            weight: m.wmul(hit.weight, a.weight),
        });
    }
    let x = m.var(na.node).min(m.var(nb.node));
    let (a0, a1) = m.cofactors(na, x);
    let (b0, b1) = m.cofactors(nb, x);
    let low = try_add(m, a0, b0)?;
    let high = try_add(m, a1, b1)?;
    let result = m.make_node(x, low, high);
    m.add_cache.insert(key, result);
    Ok(Edge {
        node: result.node,
        weight: m.wmul(result.weight, a.weight),
    })
}
// hot-region: end(try_add)

/// Contraction: multiplies two diagrams (matching along shared variables)
/// and sums out the variables of the interned elimination set `set_id`
/// (see [`TddManager::intern_elim_set`]).
///
/// Variables in the elimination set skipped by *both* operands contribute
/// a factor of 2 each (they are summed over a constant), which is exactly
/// the bare-wire-loop semantics of trace tensor networks.
///
/// # Example
///
/// ```
/// use qaec_math::{C64, Matrix};
/// use qaec_tensornet::{IndexId, Tensor, VarOrder};
/// use qaec_tdd::{convert, ops, TddManager};
///
/// // tr(Z·Z) = 2 : contract Z[a,b] with Z[b,a] eliminating both indices.
/// let z = Matrix::from_diagonal(&[C64::ONE, -C64::ONE]);
/// let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
/// let mut m = TddManager::new();
/// let t1 = convert::from_tensor(&mut m, &Tensor::from_matrix(&z, &[IndexId(0)], &[IndexId(1)]), &order);
/// let t2 = convert::from_tensor(&mut m, &Tensor::from_matrix(&z, &[IndexId(1)], &[IndexId(0)]), &order);
/// let set = m.intern_elim_set(vec![0, 1]);
/// let tr = ops::cont(&mut m, t1, t2, set);
/// assert!((m.edge_scalar(tr).unwrap() - C64::real(2.0)).abs() < 1e-9);
/// ```
pub fn cont(m: &mut TddManager, a: Edge, b: Edge, set_id: u32) -> Edge {
    try_cont(m, a, b, set_id).expect("deadline expired mid-cont — arm-aware callers use try_cont")
}

/// Contraction with deadline awareness: like [`cont`], but aborts with
/// [`DriverTimeout`] once the manager's armed deadline (see
/// [`TddManager::set_deadline`]) has passed. The probe is amortised —
/// one clock read every [`crate::manager::DEADLINE_PROBE_INTERVAL`]
/// recursion calls — so the overshoot past the deadline is bounded even
/// inside one huge contraction.
///
/// # Errors
///
/// [`DriverTimeout`] once the armed deadline has passed.
pub fn try_cont(m: &mut TddManager, a: Edge, b: Edge, set_id: u32) -> Result<Edge, DriverTimeout> {
    cont_rec(m, a, b, set_id, 0)
}

// hot-region: begin(cont_rec) — per-node recursion core; no clocks or
// allocation allowed (deadline probes are amortised in the manager).
fn cont_rec(
    m: &mut TddManager,
    a: Edge,
    b: Edge,
    set_id: u32,
    k: usize,
) -> Result<Edge, DriverTimeout> {
    m.stats.cont_calls += 1;
    if m.deadline_exceeded() {
        return Err(DriverTimeout);
    }
    let w = m.wmul(a.weight, b.weight);
    if w.is_zero() {
        return Ok(Edge::ZERO);
    }
    // Both terminal: every remaining eliminated variable is skipped by
    // both operands → factor 2 each.
    if a.node.is_terminal() && b.node.is_terminal() {
        let remaining = m.elim_set(set_id).len() - k;
        let weight = m.wscale_real(w, (remaining as f64).exp2());
        return Ok(Edge {
            node: a.node,
            weight,
        });
    }
    // Canonical operand order (contraction is symmetric, and both
    // operands are reduced to unit weight below, so — unlike `add` —
    // id-based ordering affects only the cache key, never the value).
    let (na, nb) = if b.node < a.node {
        (b.node, a.node)
    } else {
        (a.node, b.node)
    };
    let key = (na, nb, set_id, k as u32);
    if let Some(&hit) = m.cont_cache.get(&key) {
        m.stats.cont_hits += 1;
        if !m.cont_seeded.is_empty() && m.cont_seeded.contains(&key) {
            m.stats.seed_hits += 1;
        }
        return Ok(Edge {
            node: hit.node,
            weight: m.wmul(hit.weight, w),
        });
    }

    let x = m.var(na).min(m.var(nb));
    // Eliminated variables strictly above x are skipped by both operands.
    let mut kk = k;
    {
        let elim = m.elim_set(set_id);
        while kk < elim.len() && elim[kk] < x {
            kk += 1;
        }
    }
    let skips = (kk - k) as f64;
    let ea = Edge {
        node: na,
        weight: WeightId::ONE,
    };
    let eb = Edge {
        node: nb,
        weight: WeightId::ONE,
    };
    let (a0, a1) = m.cofactors(ea, x);
    let (b0, b1) = m.cofactors(eb, x);

    let eliminate_x = {
        let elim = m.elim_set(set_id);
        kk < elim.len() && elim[kk] == x
    };
    let mut result = if eliminate_x {
        let low = cont_rec(m, a0, b0, set_id, kk + 1)?;
        let high = cont_rec(m, a1, b1, set_id, kk + 1)?;
        try_add(m, low, high)?
    } else {
        let low = cont_rec(m, a0, b0, set_id, kk)?;
        let high = cont_rec(m, a1, b1, set_id, kk)?;
        m.make_node(x, low, high)
    };
    if skips > 0.0 {
        result = Edge {
            node: result.node,
            weight: m.wscale_real(result.weight, skips.exp2()),
        };
    }
    m.cont_cache.insert(key, result);
    Ok(Edge {
        node: result.node,
        weight: m.wmul(result.weight, w),
    })
}
// hot-region: end(cont_rec)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{from_tensor, to_tensor};
    use qaec_math::C64;
    use qaec_tensornet::{IndexId, Tensor, VarOrder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(indices: &[IndexId], rng: &mut StdRng) -> Tensor {
        let data: Vec<C64> = (0..1usize << indices.len())
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        Tensor::from_flat(indices.to_vec(), data)
    }

    fn order_upto(n: u32) -> VarOrder {
        VarOrder::from_sequence((0..n).map(IndexId))
    }

    #[test]
    fn add_matches_dense_on_random_tensors() {
        let mut rng = StdRng::seed_from_u64(11);
        let order = order_upto(4);
        for _ in 0..30 {
            let idx: Vec<IndexId> = (0..4).map(IndexId).collect();
            let ta = random_tensor(&idx, &mut rng);
            let tb = random_tensor(&idx, &mut rng);
            let mut m = TddManager::new();
            let ea = from_tensor(&mut m, &ta, &order);
            let eb = from_tensor(&mut m, &tb, &order);
            let sum = add(&mut m, ea, eb);
            let dense: Vec<C64> = ta
                .data()
                .iter()
                .zip(tb.data())
                .map(|(&x, &y)| x + y)
                .collect();
            let expected = Tensor::from_flat(idx.clone(), dense);
            let got = to_tensor(&m, sum, &idx, &order);
            assert!(got.approx_eq(&expected, 1e-8), "dense/TDD add mismatch");
        }
    }

    #[test]
    fn add_with_mismatched_supports() {
        // A over {0}, B over {1}: sum is A[x0] + B[x1] over {0,1}.
        let mut rng = StdRng::seed_from_u64(3);
        let order = order_upto(2);
        let ta = random_tensor(&[IndexId(0)], &mut rng);
        let tb = random_tensor(&[IndexId(1)], &mut rng);
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let eb = from_tensor(&mut m, &tb, &order);
        let sum = add(&mut m, ea, eb);
        for x0 in 0..2usize {
            for x1 in 0..2usize {
                let got = m.eval(sum, &[x0 as u8, x1 as u8]);
                let expected = ta.data()[x0] + tb.data()[x1];
                assert!((got - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn add_is_commutative_and_caches() {
        let mut rng = StdRng::seed_from_u64(5);
        let order = order_upto(3);
        let idx: Vec<IndexId> = (0..3).map(IndexId).collect();
        let ta = random_tensor(&idx, &mut rng);
        let tb = random_tensor(&idx, &mut rng);
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let eb = from_tensor(&mut m, &tb, &order);
        let ab = add(&mut m, ea, eb);
        let ba = add(&mut m, eb, ea);
        assert_eq!(ab, ba, "canonical operand order must make add symmetric");
        assert!(m.stats().add_hits > 0, "second call should hit the cache");
    }

    #[test]
    fn additive_cancellation_gives_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        let order = order_upto(3);
        let idx: Vec<IndexId> = (0..3).map(IndexId).collect();
        let ta = random_tensor(&idx, &mut rng);
        let tneg = ta.scale(C64::real(-1.0));
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let eb = from_tensor(&mut m, &tneg, &order);
        let sum = add(&mut m, ea, eb);
        assert!(sum.is_zero());
    }

    #[test]
    fn cont_matches_dense_random_matrix_products() {
        // A[a,b] · B[b,c] summed over b, for random data.
        let mut rng = StdRng::seed_from_u64(23);
        let order = order_upto(3);
        for _ in 0..30 {
            let ta = random_tensor(&[IndexId(0), IndexId(1)], &mut rng);
            let tb = random_tensor(&[IndexId(1), IndexId(2)], &mut rng);
            let mut m = TddManager::new();
            let ea = from_tensor(&mut m, &ta, &order);
            let eb = from_tensor(&mut m, &tb, &order);
            let set = m.intern_elim_set(vec![1]);
            let prod = cont(&mut m, ea, eb, set);
            let expected = ta.contract(&tb, &[IndexId(1)]);
            let got = to_tensor(&m, prod, &[IndexId(0), IndexId(2)], &order);
            assert!(got.approx_eq(&expected, 1e-8), "cont mismatch");
        }
    }

    #[test]
    fn cont_full_trace_matches_dense() {
        let mut rng = StdRng::seed_from_u64(31);
        let order = order_upto(4);
        for _ in 0..20 {
            let idx: Vec<IndexId> = (0..4).map(IndexId).collect();
            let ta = random_tensor(&idx, &mut rng);
            let tb = random_tensor(&idx, &mut rng);
            let mut m = TddManager::new();
            let ea = from_tensor(&mut m, &ta, &order);
            let eb = from_tensor(&mut m, &tb, &order);
            let set = m.intern_elim_set(vec![0, 1, 2, 3]);
            let scalar = cont(&mut m, ea, eb, set);
            let expected = ta.contract(&tb, &idx).as_scalar().unwrap();
            let got = m.edge_scalar(scalar).expect("scalar result");
            assert!((got - expected).abs() < 1e-8);
        }
    }

    #[test]
    fn eliminating_absent_variables_doubles() {
        // Two scalars contracted while "eliminating" variables neither
        // touches: result ×2 per variable.
        let mut m = TddManager::new();
        let a = m.terminal(C64::real(3.0));
        let b = m.terminal(C64::real(0.5));
        let set = m.intern_elim_set(vec![0, 1, 2]);
        let r = cont(&mut m, a, b, set);
        assert!((m.edge_scalar(r).unwrap() - C64::real(12.0)).abs() < 1e-9);
    }

    #[test]
    fn partially_absent_elimination_variable() {
        // A[x0] contracted with scalar 1, eliminating {x0, x5}: x0 sums
        // A's entries, x5 doubles.
        let ta = Tensor::from_flat(vec![IndexId(0)], vec![C64::real(0.25), C64::real(0.5)]);
        let order = VarOrder::from_sequence([IndexId(0), IndexId(5)]);
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let one = m.terminal(C64::ONE);
        let set = m.intern_elim_set(vec![0, 1]); // levels of IndexId(0), IndexId(5)
        let r = cont(&mut m, ea, one, set);
        assert!((m.edge_scalar(r).unwrap() - C64::real(1.5)).abs() < 1e-9);
    }

    #[test]
    fn pointwise_product_when_nothing_eliminated() {
        let mut rng = StdRng::seed_from_u64(41);
        let order = order_upto(2);
        let idx = [IndexId(0), IndexId(1)];
        let ta = random_tensor(&idx, &mut rng);
        let tb = random_tensor(&idx, &mut rng);
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let eb = from_tensor(&mut m, &tb, &order);
        let set = m.intern_elim_set(vec![]);
        let prod = cont(&mut m, ea, eb, set);
        let expected = ta.contract(&tb, &[]);
        let got = to_tensor(&m, prod, &idx, &order);
        assert!(got.approx_eq(&expected, 1e-8));
    }

    #[test]
    fn expired_deadline_aborts_inside_the_cont_recursion() {
        // Regression: deadlines used to be checked only *between* plan
        // steps, so one huge `cont` overran them unboundedly. The
        // amortised probe must abort mid-recursion: arm an
        // already-expired deadline and contract a pair big enough that
        // the recursion passes the probe interval many times over.
        let mut rng = StdRng::seed_from_u64(97);
        let idx: Vec<IndexId> = (0..12).map(IndexId).collect();
        let order = order_upto(12);
        let ta = random_tensor(&idx, &mut rng);
        let tb = random_tensor(&idx, &mut rng);
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let eb = from_tensor(&mut m, &tb, &order);
        let set = m.intern_elim_set((0..12).collect());

        let started = std::time::Instant::now();
        m.set_deadline(Some(started - std::time::Duration::from_millis(1)));
        let result = try_cont(&mut m, ea, eb, set);
        assert!(result.is_err(), "expired deadline must abort the cont");
        // Bounded overshoot: the abort lands within one probe interval
        // of recursion calls, nowhere near the full contraction.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "probe must fire long before the contraction completes"
        );

        // Disarming restores the infallible path and the full result.
        m.set_deadline(None);
        let ok = try_cont(&mut m, ea, eb, set).expect("no deadline");
        let expected = ta.contract(&tb, &idx).as_scalar().unwrap();
        assert!((m.edge_scalar(ok).unwrap() - expected).abs() < 1e-8);
    }

    #[test]
    fn deadline_probe_is_amortised() {
        // A future deadline must not abort fast operations: the probe
        // reads the clock rarely and the work finishes first.
        let mut rng = StdRng::seed_from_u64(13);
        let order = order_upto(3);
        let idx: Vec<IndexId> = (0..3).map(IndexId).collect();
        let ta = random_tensor(&idx, &mut rng);
        let tb = random_tensor(&idx, &mut rng);
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let eb = from_tensor(&mut m, &tb, &order);
        let set = m.intern_elim_set(vec![0, 1, 2]);
        m.set_deadline(Some(
            std::time::Instant::now() + std::time::Duration::from_secs(3600),
        ));
        let r = try_cont(&mut m, ea, eb, set).expect("far deadline never fires");
        let expected = ta.contract(&tb, &idx).as_scalar().unwrap();
        assert!((m.edge_scalar(r).unwrap() - expected).abs() < 1e-8);
    }

    #[test]
    fn cont_cache_shares_across_identical_calls() {
        let mut rng = StdRng::seed_from_u64(53);
        let order = order_upto(3);
        let ta = random_tensor(&[IndexId(0), IndexId(1)], &mut rng);
        let tb = random_tensor(&[IndexId(1), IndexId(2)], &mut rng);
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let eb = from_tensor(&mut m, &tb, &order);
        let set = m.intern_elim_set(vec![1]);
        let first = cont(&mut m, ea, eb, set);
        let hits_before = m.stats().cont_hits;
        let second = cont(&mut m, ea, eb, set);
        assert_eq!(first, second);
        assert!(m.stats().cont_hits > hits_before);
    }
}
