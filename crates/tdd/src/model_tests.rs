//! Deterministic model checks (`--cfg qaec_model`) for the three
//! cross-thread publication protocols the shared store relies on.
//!
//! Each test re-states a production protocol in the minimal shape the
//! `modelcheck` scheduler can explore exhaustively: the protocol's
//! atomics keep their production orderings, and the data they publish is
//! a [`RaceCell`] — a plain cell that aborts the run if an access is not
//! ordered by happens-before. A missing `Release`/`Acquire` pair in the
//! protocol therefore fails the test (see the canary at the bottom,
//! which proves the harness detects exactly that).
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg qaec_model" cargo test -p qaec-tdd model_
//! ```

use modelcheck::cell::RaceCell;
use modelcheck::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use modelcheck::sync::Mutex;
use modelcheck::{model_result, thread};
use std::sync::Arc;

/// Protocol 1 — probe-table publish/lookup
/// ([`crate::store::SharedTddStore::unique_node`]).
///
/// The publisher fills the arena slot, then `Release`-stores a non-zero
/// generation tag into the probe word. A reader that `Acquire`-loads a
/// non-zero tag must see the completed arena write.
#[test]
fn model_probe_publish_lookup() {
    let stats = model_result(|| {
        let probe = Arc::new(AtomicU64::new(0));
        let arena_slot = Arc::new(RaceCell::new(0u64));

        let publisher = {
            let (probe, arena_slot) = (probe.clone(), arena_slot.clone());
            thread::spawn(move || {
                arena_slot.set(42);
                // Production ordering: Release store publishes the slot.
                probe.store(7, Ordering::Release);
            })
        };
        let reader = {
            let (probe, arena_slot) = (probe.clone(), arena_slot.clone());
            thread::spawn(move || {
                // Production ordering: Acquire pairs with the Release above.
                if probe.load(Ordering::Acquire) != 0 {
                    assert_eq!(arena_slot.get(), 42, "probe hit saw a stale arena slot");
                }
            })
        };
        publisher.join().unwrap();
        reader.join().unwrap();
    })
    .expect("probe publish/lookup protocol has a race or ordering bug");
    assert!(
        stats.complete,
        "exploration did not cover all interleavings"
    );
}

/// Protocol 2 — `AppendArena` length publication
/// ([`crate::store`]'s append-only arena).
///
/// `push` writes the slot, then `Release`-stores the grown length;
/// `get(i)` `Acquire`-loads the length and only then indexes. An index
/// below the observed length must therefore be a fully-written slot.
#[test]
fn model_arena_len_publication() {
    let stats = model_result(|| {
        let len = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(RaceCell::new(0u64));

        let writer = {
            let (len, slot) = (len.clone(), slot.clone());
            thread::spawn(move || {
                slot.set(7);
                // Production ordering: Release publishes the slot write.
                len.store(1, Ordering::Release);
            })
        };
        let reader = {
            let (len, slot) = (len.clone(), slot.clone());
            thread::spawn(move || {
                // Production ordering: Acquire pairs with push's Release.
                if len.load(Ordering::Acquire) >= 1 {
                    assert_eq!(slot.get(), 7, "published len exposed an unwritten slot");
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    })
    .expect("arena len-publication protocol has a race or ordering bug");
    assert!(
        stats.complete,
        "exploration did not cover all interleavings"
    );
}

/// Protocol 3 — `StoreCell` swap vs concurrent sizing reads
/// (`qaec`'s session store cell; reclamation swaps the store while
/// sizing readers grab the current generation).
///
/// The swapper prepares the successor generation's state *before*
/// installing it under the cell mutex; a sizer locks the cell, observes
/// a generation, and reads that generation's state after unlocking. The
/// mutex's release/acquire edge is what orders the preparation before
/// the sizer's read.
#[test]
fn model_store_cell_swap_vs_sizing() {
    let stats = model_result(|| {
        let generations = Arc::new([RaceCell::new(0u64), RaceCell::new(0u64)]);
        generations[0].set(10); // generation 0 exists before any sharing
        let cell = Arc::new(Mutex::new(0usize));

        let swapper = {
            let (cell, generations) = (cell.clone(), generations.clone());
            thread::spawn(move || {
                // Prepare the successor fully before installing it.
                generations[1].set(20);
                *cell.lock().unwrap() = 1;
            })
        };
        let sizer = {
            let (cell, generations) = (cell.clone(), generations.clone());
            thread::spawn(move || {
                // Mirrors StoreCell::get: lock, take an owned handle,
                // unlock, then size the observed generation off-lock.
                let gen = *cell.lock().unwrap();
                let bytes = generations[gen].get();
                assert_eq!(
                    bytes,
                    if gen == 0 { 10 } else { 20 },
                    "sized a half-initialised store generation"
                );
            })
        };
        swapper.join().unwrap();
        sizer.join().unwrap();
    })
    .expect("store-cell swap protocol has a race or ordering bug");
    assert!(
        stats.complete,
        "exploration did not cover all interleavings"
    );
}

/// Canary — protocol 1 with the publish downgraded to `Relaxed`. The
/// harness must flag the unordered arena read as a data race; if this
/// test ever passes the checker has gone blind and the three green
/// tests above prove nothing.
#[test]
fn model_canary_relaxed_publish_is_detected() {
    let err = model_result(|| {
        let probe = Arc::new(AtomicU64::new(0));
        let arena_slot = Arc::new(RaceCell::new(0u64));

        let publisher = {
            let (probe, arena_slot) = (probe.clone(), arena_slot.clone());
            thread::spawn(move || {
                arena_slot.set(42);
                // ordering: BUG (deliberate) — Relaxed publication, no
                // release edge; the checker must flag this.
                probe.store(7, Ordering::Relaxed);
            })
        };
        let reader = {
            let (probe, arena_slot) = (probe.clone(), arena_slot.clone());
            thread::spawn(move || {
                // ordering: Acquire as in production — with nothing to
                // acquire from, the slot read below is unordered.
                if probe.load(Ordering::Acquire) != 0 {
                    let _ = arena_slot.get();
                }
            })
        };
        publisher.join().unwrap();
        reader.join().unwrap();
    })
    .expect_err("model checker failed to detect a Relaxed publication race");
    assert!(
        err.contains("data race"),
        "expected a data-race report, got: {err}"
    );
}
