//! A minimal Fx-style hasher for the decision-diagram hot tables.
//!
//! Every TDD operation funnels through hash-map lookups — the unique
//! table on `make_node`, the `add`/`cont` computed tables on every
//! recursion, weight interning on every arithmetic result. The standard
//! library's SipHash is DoS-resistant but an order of magnitude slower
//! than needed for these tiny fixed-width keys (a handful of `u32`s),
//! and none of them hash attacker-controlled data. This is the rustc
//! "FxHash" multiply-rotate scheme: word-at-a-time, no finalisation,
//! deterministic across runs (bucket placement never affects values —
//! hash-consing and interning are keyed by full equality).

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` on the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` on the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// 64-bit Fx mixing constant (the golden-ratio fraction rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: `state = (state.rotl(5) ^ word) * SEED` per
/// word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// One-shot hash of a value, for stripe selection.
#[inline]
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal_and_deterministically() {
        let a = hash_one(&(1u32, 2u32, 3u32));
        let b = hash_one(&(1u32, 2u32, 3u32));
        assert_eq!(a, b);
        assert_ne!(a, hash_one(&(1u32, 2u32, 4u32)));
    }

    #[test]
    fn maps_work_on_the_fx_hasher() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for k in 0..1000u32 {
            map.insert((k, k ^ 7), k);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(41, 41 ^ 7)), Some(&41));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(3));
        assert!(!set.insert(3));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 4]);
        assert_ne!(a, h.finish());
    }
}
