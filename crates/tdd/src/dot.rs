//! Graphviz DOT export of decision diagrams, for debugging and
//! documentation figures.

use crate::manager::{Edge, NodeId, TddManager};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Renders the diagram rooted at `root` as Graphviz DOT.
///
/// Nodes are labelled with their variable level; solid edges are the
/// high (1) branch, dashed edges the low (0) branch; edge labels show
/// non-unit weights. The root's incoming weight appears on a phantom
/// entry edge.
///
/// # Example
///
/// ```
/// use qaec_math::{C64, Matrix};
/// use qaec_tensornet::{IndexId, Tensor, VarOrder};
/// use qaec_tdd::{convert, dot, TddManager};
///
/// let t = Tensor::from_matrix(&Matrix::identity(2), &[IndexId(0)], &[IndexId(1)]);
/// let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
/// let mut m = TddManager::new();
/// let e = convert::from_tensor(&mut m, &t, &order);
/// let text = dot::to_dot(&m, e, "identity");
/// assert!(text.starts_with("digraph"));
/// assert!(text.contains("x0"));
/// ```
pub fn to_dot(m: &TddManager, root: Edge, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  entry [shape=point];");
    let _ = writeln!(out, "  t [label=\"1\", shape=box];");

    // Stable ids for reachable nodes.
    let mut ids: HashMap<NodeId, usize> = HashMap::new();
    let mut order_visit: Vec<NodeId> = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![root.node];
    while let Some(n) = stack.pop() {
        if n.is_terminal() || !seen.insert(n) {
            continue;
        }
        ids.insert(n, order_visit.len());
        order_visit.push(n);
        let node = m.node(n);
        stack.push(node.low.node);
        stack.push(node.high.node);
    }

    let node_name = |n: NodeId, ids: &HashMap<NodeId, usize>| -> String {
        if n.is_terminal() {
            "t".to_string()
        } else {
            format!("n{}", ids[&n])
        }
    };

    for &n in &order_visit {
        let node = m.node(n);
        let _ = writeln!(
            out,
            "  n{} [label=\"x{}\", shape=circle];",
            ids[&n], node.var
        );
    }

    let weight_label = |m: &TddManager, w: crate::weight::WeightId| -> String {
        if w.is_one() {
            String::new()
        } else {
            format!(" [label=\"{}\"]", m.weight_value(w))
        }
    };

    let _ = writeln!(
        out,
        "  entry -> {}{};",
        node_name(root.node, &ids),
        weight_label(m, root.weight)
    );
    for &n in &order_visit {
        let node = m.node(n);
        let low_attrs = {
            let wl = weight_label(m, node.low.weight);
            if wl.is_empty() {
                " [style=dashed]".to_string()
            } else {
                wl.replace(']', ", style=dashed]")
            }
        };
        if !node.low.weight.is_zero() {
            let _ = writeln!(
                out,
                "  n{} -> {}{};",
                ids[&n],
                node_name(node.low.node, &ids),
                low_attrs
            );
        }
        if !node.high.weight.is_zero() {
            let _ = writeln!(
                out,
                "  n{} -> {}{};",
                ids[&n],
                node_name(node.high.node, &ids),
                weight_label(m, node.high.weight)
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::from_tensor;
    use qaec_math::{Matrix, C64};
    use qaec_tensornet::{IndexId, Tensor, VarOrder};

    #[test]
    fn identity_diagram_renders() {
        let t = Tensor::from_matrix(&Matrix::identity(2), &[IndexId(0)], &[IndexId(1)]);
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let mut m = TddManager::new();
        let e = from_tensor(&mut m, &t, &order);
        let dot = to_dot(&m, e, "id");
        assert!(dot.contains("digraph \"id\""));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
        // 3 internal nodes for δ: root + two x1 nodes.
        assert_eq!(dot.matches("shape=circle").count(), 3);
    }

    #[test]
    fn zero_branches_are_omitted() {
        // T[x] = (0, 2): low branch weight 0 must not be drawn.
        let t = Tensor::from_flat(vec![IndexId(0)], vec![C64::ZERO, C64::real(2.0)]);
        let order = VarOrder::from_sequence([IndexId(0)]);
        let mut m = TddManager::new();
        let e = from_tensor(&mut m, &t, &order);
        let dot = to_dot(&m, e, "sparse");
        // One internal node, one edge to terminal (high), plus entry.
        assert_eq!(dot.matches("-> t").count(), 1);
    }

    #[test]
    fn scalar_diagram() {
        let mut m = TddManager::new();
        let e = m.terminal(C64::real(0.5));
        let dot = to_dot(&m, e, "scalar");
        assert!(dot.contains("entry -> t"));
        assert!(dot.contains("0.5"));
    }
}
