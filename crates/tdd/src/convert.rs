//! Dense tensor ↔ TDD conversion.

use crate::manager::{Edge, TddManager};
use qaec_tensornet::{IndexId, Tensor, VarOrder};
use std::collections::BTreeSet;

/// Builds a TDD for a dense tensor under the given variable order.
///
/// The tensor's indices are first permuted into order; the diagram then
/// branches on them top-down (Boole–Shannon expansion), sharing equal
/// sub-tensors through the unique table.
///
/// # Panics
///
/// Panics if a tensor index is missing from `order`.
///
/// # Example
///
/// ```
/// use qaec_math::{C64, Matrix};
/// use qaec_tensornet::{IndexId, Tensor, VarOrder};
/// use qaec_tdd::{convert, TddManager};
///
/// let z = Matrix::from_diagonal(&[C64::ONE, -C64::ONE]);
/// let t = Tensor::from_matrix(&z, &[IndexId(0)], &[IndexId(1)]);
/// let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
/// let mut m = TddManager::new();
/// let e = convert::from_tensor(&mut m, &t, &order);
/// assert_eq!(m.eval(e, &[1, 1]), -C64::ONE);
/// assert_eq!(m.eval(e, &[0, 1]), C64::ZERO);
/// ```
pub fn from_tensor(m: &mut TddManager, tensor: &Tensor, order: &VarOrder) -> Edge {
    // One tensor = one weight scope: under scoped shared-store interning
    // (see [`TddManager::begin_weight_scope`]) the conversion becomes a
    // pure function of the tensor's entries, whichever worker runs it.
    // A no-op for private and canonical managers.
    m.begin_weight_scope();
    let sorted = tensor.sorted_by(order);
    let levels: Vec<u32> = sorted.indices().iter().map(|&i| order.level(i)).collect();
    build(m, sorted.data(), &levels)
}

fn build(m: &mut TddManager, data: &[qaec_math::C64], levels: &[u32]) -> Edge {
    if levels.is_empty() {
        return m.terminal(data[0]);
    }
    let half = data.len() / 2;
    let low = build(m, &data[..half], &levels[1..]);
    let high = build(m, &data[half..], &levels[1..]);
    m.make_node(levels[0], low, high)
}

/// The set of variable levels the diagram actually branches on.
pub fn support(m: &TddManager, e: Edge) -> BTreeSet<u32> {
    let mut vars = BTreeSet::new();
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![e.node];
    while let Some(n) = stack.pop() {
        if n.is_terminal() || !seen.insert(n) {
            continue;
        }
        let node = m.node(n);
        vars.insert(node.var);
        stack.push(node.low.node);
        stack.push(node.high.node);
    }
    vars
}

/// Expands a TDD back into a dense tensor over `indices` (which must be
/// sorted by `order` and cover the diagram's support).
///
/// # Panics
///
/// Panics if the diagram branches on a variable outside `indices`, or if
/// `indices` are not sorted by `order`.
pub fn to_tensor(m: &TddManager, e: Edge, indices: &[IndexId], order: &VarOrder) -> Tensor {
    let levels: Vec<u32> = indices.iter().map(|&i| order.level(i)).collect();
    assert!(
        levels.windows(2).all(|w| w[0] < w[1]),
        "indices must be sorted by the variable order"
    );
    let sup = support(m, e);
    for v in &sup {
        assert!(
            levels.contains(v),
            "diagram branches on level {v} outside the requested indices"
        );
    }
    let rank = indices.len();
    let n_levels = order.len();
    let mut data = Vec::with_capacity(1usize << rank);
    let mut assignment = vec![0u8; n_levels];
    for flat in 0..(1usize << rank) {
        for (k, &level) in levels.iter().enumerate() {
            assignment[level as usize] = ((flat >> (rank - 1 - k)) & 1) as u8;
        }
        data.push(m.eval(e, &assignment));
    }
    Tensor::from_flat(indices.to_vec(), data)
}

/// Expands a TDD into a `2^m × 2^k` matrix: `outs` become the row bits
/// (most significant first), `ins` the column bits.
///
/// Convenience wrapper over [`to_tensor`] for comparing diagrams against
/// gate matrices in tests and debugging.
///
/// # Panics
///
/// As [`to_tensor`], plus if `outs`/`ins` overlap.
pub fn to_matrix(
    m: &TddManager,
    e: Edge,
    outs: &[IndexId],
    ins: &[IndexId],
    order: &VarOrder,
) -> qaec_math::Matrix {
    for o in outs {
        assert!(!ins.contains(o), "index {o} appears in both outs and ins");
    }
    let mut indices: Vec<IndexId> = outs.iter().chain(ins).copied().collect();
    order.sort(&mut indices);
    let tensor = to_tensor(m, e, &indices, order);
    // Permute into [outs..., ins...] layout, then reshape row-major.
    let layout: Vec<IndexId> = outs.iter().chain(ins).copied().collect();
    let permuted = tensor.permute_to(&layout);
    let rows = 1usize << outs.len();
    let cols = 1usize << ins.len();
    qaec_math::Matrix::from_fn(rows, cols, |r, c| permuted.get(r * cols + c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_math::{Matrix, C64};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_random_tensors() {
        let mut rng = StdRng::seed_from_u64(17);
        for rank in 0..=5usize {
            let indices: Vec<IndexId> = (0..rank as u32).map(IndexId).collect();
            let order = VarOrder::from_sequence(indices.iter().copied());
            let data: Vec<C64> = (0..1usize << rank)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let t = Tensor::from_flat(indices.clone(), data);
            let mut m = TddManager::new();
            let e = from_tensor(&mut m, &t, &order);
            let back = to_tensor(&m, e, &indices, &order);
            assert!(back.approx_eq(&t, 1e-9), "rank {rank} roundtrip failed");
        }
    }

    #[test]
    fn roundtrip_with_permuted_storage() {
        // The tensor stores indices out of order; conversion must sort.
        let order = VarOrder::from_sequence([IndexId(3), IndexId(1)]);
        let t = Tensor::from_flat(
            vec![IndexId(1), IndexId(3)],
            vec![
                C64::real(1.0),
                C64::real(2.0),
                C64::real(3.0),
                C64::real(4.0),
            ],
        );
        let mut m = TddManager::new();
        let e = from_tensor(&mut m, &t, &order);
        // t[i1=1, i3=0] = 3; in order (3,1): assignment level0(=idx3)=0, level1(=idx1)=1.
        assert_eq!(m.eval(e, &[0, 1]), C64::real(3.0));
        let back = to_tensor(&m, e, &[IndexId(3), IndexId(1)], &order);
        let expected = t.permute_to(&[IndexId(3), IndexId(1)]);
        assert!(back.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn identity_matrix_is_compact() {
        // δ[a,b] needs exactly 2 internal nodes + terminal.
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let t = Tensor::from_matrix(&Matrix::identity(2), &[IndexId(0)], &[IndexId(1)]);
        let mut m = TddManager::new();
        let e = from_tensor(&mut m, &t, &order);
        assert_eq!(m.node_count(e), 4); // root + two x1-nodes + terminal
        assert_eq!(support(&m, e), [0u32, 1].into_iter().collect());
    }

    #[test]
    fn constant_tensor_collapses_to_terminal() {
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let t = Tensor::from_flat(vec![IndexId(0), IndexId(1)], vec![C64::real(0.5); 4]);
        let mut m = TddManager::new();
        let e = from_tensor(&mut m, &t, &order);
        assert!(
            e.node.is_terminal(),
            "constant tensor must be a terminal edge"
        );
        assert_eq!(m.edge_scalar(e), Some(C64::real(0.5)));
        assert!(support(&m, e).is_empty());
    }

    #[test]
    fn shared_submatrices_share_nodes() {
        // [[a, b], [a, b]] — rows identical → x0 node collapses.
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let t = Tensor::from_flat(
            vec![IndexId(0), IndexId(1)],
            vec![
                C64::real(0.3),
                C64::real(0.9),
                C64::real(0.3),
                C64::real(0.9),
            ],
        );
        let mut m = TddManager::new();
        let e = from_tensor(&mut m, &t, &order);
        assert_eq!(support(&m, e), [1u32].into_iter().collect());
    }

    #[test]
    fn to_matrix_round_trips_gate_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        // Random 4×4 matrix as a tensor M[o0,o1,i0,i1], back to a matrix.
        let m4 = Matrix::from_fn(4, 4, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let outs = [IndexId(0), IndexId(1)];
        let ins = [IndexId(2), IndexId(3)];
        let t = Tensor::from_matrix(&m4, &outs, &ins);
        let order = VarOrder::from_sequence((0..4).map(IndexId));
        let mut mgr = TddManager::new();
        let e = from_tensor(&mut mgr, &t, &order);
        let back = to_matrix(&mgr, e, &outs, &ins, &order);
        assert!(back.approx_eq(&m4, 1e-9));
        // And with a scrambled variable order (ins above outs).
        let order2 = VarOrder::from_sequence([IndexId(2), IndexId(0), IndexId(3), IndexId(1)]);
        let mut mgr2 = TddManager::new();
        let e2 = from_tensor(&mut mgr2, &t, &order2);
        let back2 = to_matrix(&mgr2, e2, &outs, &ins, &order2);
        assert!(back2.approx_eq(&m4, 1e-9));
    }

    #[test]
    #[should_panic(expected = "appears in both outs and ins")]
    fn to_matrix_rejects_overlap() {
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let mut m = TddManager::new();
        let e = m.terminal(C64::ONE);
        let _ = to_matrix(&m, e, &[IndexId(0)], &[IndexId(0)], &order);
    }

    #[test]
    #[should_panic(expected = "outside the requested indices")]
    fn to_tensor_rejects_missing_support() {
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let t = Tensor::from_flat(vec![IndexId(0)], vec![C64::ONE, C64::real(2.0)]);
        let mut m = TddManager::new();
        let e = from_tensor(&mut m, &t, &order);
        let _ = to_tensor(&m, e, &[IndexId(1)], &order);
    }
}
