//! Mark-compact garbage collection.
//!
//! Long Algorithm I runs create millions of short-lived nodes; this pass
//! keeps the arena bounded. Collection invalidates the computed tables
//! (their keys hold stale node ids), so the driver triggers it only
//! between plan steps and re-registers the live roots.
//!
//! **Shared stores are append-only** (other workers hold live ids into
//! the same arena, so nothing can move or be freed): for a manager
//! attached to a [`crate::SharedTddStore`], [`collect`] is a documented
//! no-op that returns the roots unchanged. Memory under sharing is
//! bounded by cross-thread structure sharing instead of collection;
//! callers can check [`TddManager::supports_gc`] to skip the call
//! entirely.

use crate::fxhash::FxHashMap;
use crate::manager::{Edge, Node, NodeId, TddManager, TERMINAL_VAR};

/// Collects every node unreachable from `roots`, compacting the arena.
///
/// Returns the remapped roots (same order). All previously held [`Edge`]s
/// other than the returned ones become invalid. Weight ids remain valid.
///
/// On a shared-store manager this is a no-op (see the module docs): the
/// roots come back unchanged, still valid, and `gc_runs` does not
/// advance.
///
/// # Example
///
/// ```
/// use qaec_math::C64;
/// use qaec_tdd::{gc, TddManager};
///
/// let mut m = TddManager::new();
/// let keep = {
///     let l = m.terminal(C64::real(1.0));
///     let h = m.terminal(C64::real(2.0));
///     m.make_node(0, l, h)
/// };
/// let _garbage = {
///     let l = m.terminal(C64::real(3.0));
///     let h = m.terminal(C64::real(5.0));
///     m.make_node(1, l, h)
/// };
/// assert_eq!(m.arena_len(), 2);
/// let kept = gc::collect(&mut m, &[keep]);
/// assert_eq!(m.arena_len(), 1);
/// assert_eq!(m.eval(kept[0], &[1]), C64::real(2.0));
/// ```
pub fn collect(m: &mut TddManager, roots: &[Edge]) -> Vec<Edge> {
    if !m.supports_gc() {
        // Shared arenas never move: every root stays valid as-is.
        return roots.to_vec();
    }
    // Collection is the only event that shrinks a private store mid-run:
    // latch the pre-collection footprint into the high-water mark first.
    m.note_store_peak();
    let store = m.private_mut();

    // Mark.
    let mut live: Vec<bool> = vec![false; store.nodes.len()];
    live[0] = true; // terminal
    let mut stack: Vec<NodeId> = roots.iter().map(|e| e.node).collect();
    while let Some(n) = stack.pop() {
        let slot = n.0 as usize;
        if live[slot] {
            continue;
        }
        live[slot] = true;
        let node = store.nodes[slot];
        stack.push(node.low.node);
        stack.push(node.high.node);
    }

    // Compact: children always live at lower ids than parents (the arena
    // grows bottom-up), so a single forward pass can rewrite child ids.
    let mut remap: Vec<u32> = vec![0; store.nodes.len()];
    let mut new_nodes: Vec<Node> = Vec::with_capacity(store.nodes.len());
    new_nodes.push(Node {
        var: TERMINAL_VAR,
        low: Edge::ZERO,
        high: Edge::ZERO,
    });
    for (old_id, node) in store.nodes.iter().enumerate().skip(1) {
        if !live[old_id] {
            continue;
        }
        let mapped = Node {
            var: node.var,
            low: Edge {
                node: NodeId(remap[node.low.node.0 as usize]),
                weight: node.low.weight,
            },
            high: Edge {
                node: NodeId(remap[node.high.node.0 as usize]),
                weight: node.high.weight,
            },
        };
        remap[old_id] = new_nodes.len() as u32;
        new_nodes.push(mapped);
    }

    // Rebuild the unique table over live nodes.
    let mut unique = FxHashMap::with_capacity_and_hasher(new_nodes.len(), Default::default());
    for (id, node) in new_nodes.iter().enumerate().skip(1) {
        unique.insert(*node, NodeId(id as u32));
    }

    store.nodes = new_nodes;
    store.unique = unique;
    m.clear_computed_tables();
    m.stats.gc_runs += 1;

    roots
        .iter()
        .map(|e| Edge {
            node: NodeId(remap[e.node.0 as usize]),
            weight: e.weight,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{from_tensor, to_tensor};
    use crate::ops;
    use qaec_math::C64;
    use qaec_tensornet::{IndexId, Tensor, VarOrder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(indices: &[IndexId], rng: &mut StdRng) -> Tensor {
        let data: Vec<C64> = (0..1usize << indices.len())
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        Tensor::from_flat(indices.to_vec(), data)
    }

    #[test]
    fn collection_preserves_semantics() {
        let mut rng = StdRng::seed_from_u64(71);
        let indices: Vec<IndexId> = (0..5).map(IndexId).collect();
        let order = VarOrder::from_sequence(indices.iter().copied());
        let t = random_tensor(&indices, &mut rng);
        let mut m = TddManager::new();
        let keep = from_tensor(&mut m, &t, &order);
        // Create garbage.
        for _ in 0..20 {
            let g = random_tensor(&indices, &mut rng);
            let _ = from_tensor(&mut m, &g, &order);
        }
        let before = m.arena_len();
        let kept = collect(&mut m, &[keep]);
        assert!(m.arena_len() < before);
        let back = to_tensor(&m, kept[0], &indices, &order);
        assert!(back.approx_eq(&t, 1e-9));
        assert_eq!(m.stats().gc_runs, 1);
    }

    #[test]
    fn operations_work_after_collection() {
        let mut rng = StdRng::seed_from_u64(73);
        let indices: Vec<IndexId> = (0..4).map(IndexId).collect();
        let order = VarOrder::from_sequence(indices.iter().copied());
        let ta = random_tensor(&indices, &mut rng);
        let tb = random_tensor(&indices, &mut rng);
        let mut m = TddManager::new();
        let ea = from_tensor(&mut m, &ta, &order);
        let eb = from_tensor(&mut m, &tb, &order);
        let roots = collect(&mut m, &[ea, eb]);
        let sum = ops::add(&mut m, roots[0], roots[1]);
        let expected: Vec<C64> = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(&x, &y)| x + y)
            .collect();
        let got = to_tensor(&m, sum, &indices, &order);
        assert!(got.approx_eq(&Tensor::from_flat(indices, expected), 1e-8));
    }

    #[test]
    fn unique_table_still_canonical_after_gc() {
        let mut m = TddManager::new();
        let root = {
            let l = m.terminal(C64::real(1.0));
            let h = m.terminal(C64::real(2.0));
            m.make_node(0, l, h)
        };
        let kept = collect(&mut m, &[root]);
        // Rebuilding the same node must hit the rebuilt unique table.
        let l = m.terminal(C64::real(1.0));
        let h = m.terminal(C64::real(2.0));
        let again = m.make_node(0, l, h);
        assert_eq!(again.node, kept[0].node);
        assert_eq!(m.arena_len(), 1);
    }

    #[test]
    fn shared_store_collection_is_a_noop() {
        let store = crate::SharedTddStore::new();
        let mut m = TddManager::new_shared(&store);
        let keep = {
            let l = m.terminal(C64::real(1.0));
            let h = m.terminal(C64::real(2.0));
            m.make_node(0, l, h)
        };
        let _garbage = {
            let l = m.terminal(C64::real(3.0));
            let h = m.terminal(C64::real(5.0));
            m.make_node(1, l, h)
        };
        let before = m.arena_len();
        let kept = collect(&mut m, &[keep]);
        assert_eq!(kept, vec![keep], "shared roots must come back unchanged");
        assert_eq!(m.arena_len(), before, "append-only arena never shrinks");
        assert_eq!(m.stats().gc_runs, 0, "no collection is recorded");
        assert!((m.eval(kept[0], &[1]) - C64::real(2.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_roots_clear_everything() {
        let mut m = TddManager::new();
        for k in 0..10 {
            let l = m.terminal(C64::real(k as f64));
            let h = m.terminal(C64::real(k as f64 + 1.0));
            let _ = m.make_node(0, l, h);
        }
        assert!(m.arena_len() > 0);
        let kept = collect(&mut m, &[]);
        assert!(kept.is_empty());
        assert_eq!(m.arena_len(), 0);
    }
}
