//! The shared concurrent TDD store: a lock-striped unique table plus a
//! sharded, canonically-snapping weight-interning table over per-stripe
//! append-only arenas.
//!
//! A [`SharedTddStore`] lets several [`crate::TddManager`]s — one per
//! worker thread — hash-cons nodes and intern weights into *one* set of
//! tables, so common sub-diagrams built by different workers are stored
//! once and cross-thread `NodeId`/`WeightId` handles stay valid
//! everywhere. Four design rules make this safe and fast:
//!
//! * **Append-only arenas.** Nodes, weights and elimination sets live in
//!   append-only arenas that never move or free entries, so `node(id)` and
//!   `weight_value(id)` are lock-free reads from any thread. *In-place*
//!   compacting garbage collection is therefore impossible while a store
//!   is shared; [`crate::gc::collect`] degrades to a documented no-op.
//!   Long sessions reclaim memory by **epoch-based store swapping**
//!   instead: once every attached manager announces quiescence (a
//!   sweep-point boundary, or a plan-step barrier in a single-worker
//!   run), the session swaps in [`SharedTddStore::successor`] (no live
//!   roots) or [`SharedTddStore::compact`] (live roots migrated
//!   bit-exactly) and drops the retired store, freeing every
//!   unreachable chunk at once.
//! * **Lock striping, with a lock-free hit path.** Find-or-insert goes
//!   through one of [`STRIPES`] mutex-guarded hash-map shards selected
//!   by the key's hash (nodes) or quantised bucket (weights). In front
//!   of each node stripe sits a fixed-size probe table of single-word
//!   atomic slots: the dominant case — a lookup that *hits* — verifies
//!   its candidate against the immutable arena entry and returns
//!   without ever taking the stripe mutex, which only insertions and
//!   probe misses touch. Managers additionally keep a private weight
//!   lookaside keyed on the canonical grid cell, so repeated arithmetic
//!   results skip the weight stripes entirely.
//! * **No global hot lines.** Each stripe owns its *own* arena shard —
//!   an id is `(stripe, index)` packed into a `u32` — so allocation
//!   happens under the stripe lock the inserter already holds, and
//!   sharing statistics live inside the stripe too. There is no global
//!   allocation lock, counter or length for every worker to bounce a
//!   cache line on — reads only check their own shard's length, written
//!   solely by that stripe's insertions; independent sub-contractions
//!   scale because they touch disjoint stripes most of the time.
//! * **Value-pure interning, two families.** The private
//!   [`crate::WeightTable`] merges values *first-come-first-served*
//!   within a tolerance, which makes the stored representative depend on
//!   insertion order — harmless sequentially, but racy across threads.
//!   The shared store offers two schedule-independent families instead:
//!
//!   1. **Canonical grid snapping** (`SharedTddStore::intern_weight`): every
//!      value rounds to the centre of a fine sub-tolerance grid cell, a
//!      pure function of the value alone, *globally* — which is what
//!      lets Algorithm I's term engine share computed-table entries (and
//!      cont-cache seeds) across trace terms and worker threads.
//!   2. **Exact-bits interning** (`SharedTddStore::intern_weight_exact`): the
//!      bit pattern is the key and the stored value. Gluing of
//!      almost-equal values is layered on top by the *managers*, inside
//!      per-operation scopes (see `TddManager::set_scoped_interning`):
//!      the plan drivers use it because grid snapping fragments
//!      cancellation-heavy Algorithm II workloads into several times the
//!      private driver's distinct weights (and nodes), while scope-local
//!      first-seen gluing reproduces the private table's compaction and
//!      is still a pure function of each operation's operand values.
//!
//!   Either way every arithmetic result is identical whatever the thread
//!   interleaving, which is what makes shared-store parallel runs
//!   **bit-identical** to sequential ones. (Ids themselves are
//!   scheduling-dependent — which stripe index a node lands on depends
//!   on who inserts first — but no value ever depends on an id.)

use crate::fxhash::{self, FxHashMap};
use crate::manager::{Edge, Node, NodeId, TddStats, TERMINAL_VAR};
use crate::weight::WeightId;
use qaec_math::C64;
use std::cell::UnsafeCell;
use std::hash::Hash;
use std::mem::MaybeUninit;
use std::sync::{Arc, OnceLock};

use crate::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Mutex;

/// Number of mutex stripes in each concurrent table. A power of two so
/// stripe selection is a mask.
pub const STRIPES: usize = 64;

/// Bits of a packed id holding the in-shard index; the remaining high
/// bits carry the shard. 2^25 ≈ 33.5M entries per shard, far beyond the
/// paper's workloads (the whole Table I set peaks in the low millions).
const INDEX_BITS: u32 = 25;
/// Mask extracting the in-shard index.
const INDEX_MASK: u32 = (1 << INDEX_BITS) - 1;
/// The extra weight shard used for exact-bits "huge" values (guarded by
/// its own map mutex rather than a grid stripe).
const HUGE_SHARD: usize = STRIPES;

/// log2 of the per-stripe probe-table size. 4096 slots × 8 B × 64
/// stripes = 2 MiB per store — a fixed cache overhead, deliberately
/// *excluded* from [`SharedTddStore::bytes_used`] (it neither grows with
/// the workload nor is reclaimed before the store drops).
const PROBE_BITS: u32 = 12;
/// Slots in each stripe's lock-free probe table.
const PROBE_SLOTS: usize = 1 << PROBE_BITS;

/// Packs a `(shard, index)` pair into an id.
#[inline]
fn encode(shard: usize, index: usize) -> u32 {
    debug_assert!(index <= INDEX_MASK as usize, "arena shard full");
    ((shard as u32) << INDEX_BITS) | index as u32
}

/// Unpacks an id into its `(shard, index)` pair.
#[inline]
fn decode(id: u32) -> (usize, usize) {
    ((id >> INDEX_BITS) as usize, (id & INDEX_MASK) as usize)
}

/// log2 of the first arena chunk's capacity.
const FIRST_BITS: u32 = 10;
/// Spine length: chunk sizes double (1024, 1024, 2048, …), so 16 chunks
/// cover the full 2^25 per-shard index space.
const SPINE: usize = 16;

/// One lazily-allocated chunk of arena slots.
type Chunk<T> = Box<[UnsafeCell<MaybeUninit<T>>]>;

/// An append-only, grow-only arena shard with lock-free reads.
///
/// Entries are immutable once pushed. Storage is a spine of
/// doubling-size chunks allocated lazily, so pushing never moves
/// existing entries and readers never observe a reallocation. A small
/// internal mutex serialises appends — uncontended in practice, because
/// each shard is only pushed to under its table stripe's lock. The
/// published length is released *after* the slot is written, so any
/// reader that checks `index < len` (with an acquire load) sees fully
/// initialised data; per-shard lengths keep that check off the globally
/// contended cache lines a single shared counter would create.
struct AppendArena<T> {
    spine: [OnceLock<Chunk<T>>; SPINE],
    len: AtomicUsize,
    push_lock: Mutex<()>,
}

// SAFETY: slots are written exactly once, under the push lock, before
// the id escapes through a synchronising publication (release store of
// `len` plus the stripe mutex release); they are immutable afterwards.
unsafe impl<T: Send + Sync> Sync for AppendArena<T> {}
// SAFETY: moving the arena moves ownership of every initialised slot, so
// sending it between threads only requires the entries themselves to be
// `Send`; the spine, length and push lock are all `Send` already.
unsafe impl<T: Send> Send for AppendArena<T> {}

/// Maps an entry index to its (chunk, offset) coordinates.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    let adjusted = index + (1usize << FIRST_BITS);
    let level = usize::BITS - 1 - adjusted.leading_zeros();
    let chunk = (level - FIRST_BITS) as usize;
    (chunk, adjusted - (1usize << level))
}

impl<T> AppendArena<T> {
    fn new() -> Self {
        AppendArena {
            spine: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            push_lock: Mutex::new(()),
        }
    }

    /// Number of initialised entries.
    #[inline]
    fn len(&self) -> usize {
        // ordering: Acquire pairs with the Release store in `push`; any
        // index below the loaded length has its slot write visible.
        self.len.load(Ordering::Acquire)
    }

    /// Appends `value`, returning its index.
    fn push(&self, value: T) -> usize {
        let _guard = self.push_lock.lock().expect("arena push lock poisoned");
        // ordering: Relaxed is enough — `len` is only stored under the push
        // lock we hold, so this read cannot miss a concurrent append.
        let index = self.len.load(Ordering::Relaxed);
        let (chunk, offset) = locate(index);
        let slots = self.spine[chunk].get_or_init(|| {
            let capacity = 1usize << (FIRST_BITS as usize + chunk);
            (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect()
        });
        // SAFETY: `index` is past the published length, so no reader may
        // hold its id yet, and the push lock excludes other writers.
        unsafe { (*slots[offset].get()).write(value) };
        // ordering: Release publishes the slot write above; readers that
        // acquire-load `len` and see `index < len` see the initialised slot.
        self.len.store(index + 1, Ordering::Release);
        index
    }

    /// Bytes of arena backing storage currently allocated: the capacity
    /// of every lazily-materialised chunk, whether or not its slots are
    /// filled yet. Chunks are never freed while the arena lives, so this
    /// is exactly what dropping the arena returns to the allocator
    /// (excluding per-entry heap owned by `T` itself).
    fn bytes_allocated(&self) -> usize {
        self.spine
            .iter()
            .enumerate()
            .filter(|(_, chunk)| chunk.get().is_some())
            .map(|(level, _)| (1usize << (FIRST_BITS as usize + level)) * std::mem::size_of::<T>())
            .sum()
    }

    /// Reads the entry at `index`.
    ///
    /// The bounds check keeps handle misuse (e.g. an `Edge` minted by a
    /// *different* store) a clean panic rather than an uninitialised
    /// read. It is cheap: each shard's length line is written only on
    /// that stripe's insertions, so readers rarely bounce it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    fn get(&self, index: usize) -> &T {
        assert!(index < self.len(), "arena index {index} out of bounds");
        let (chunk, offset) = locate(index);
        let slots = self.spine[chunk].get().expect("chunk published");
        // SAFETY: `index < len` (acquire) implies the slot was fully
        // written before the length was released, and it never mutates.
        unsafe { (*slots[offset].get()).assume_init_ref() }
    }
}

impl<T> Drop for AppendArena<T> {
    fn drop(&mut self) {
        if !std::mem::needs_drop::<T>() {
            return;
        }
        for index in 0..*self.len.get_mut() {
            let (chunk, offset) = locate(index);
            if let Some(slots) = self.spine[chunk].get_mut() {
                // SAFETY: every index below `len` was initialised once
                // and is dropped exactly once here.
                unsafe { slots[offset].get_mut().assume_init_drop() };
            }
        }
    }
}

/// Computes the stripe for a hashable key (Fx-hashed: these tables see
/// no attacker-controlled data and live on the hot path).
#[inline]
fn stripe_of<K: Hash>(key: &K) -> usize {
    (fxhash::hash_one(key) as usize) & (STRIPES - 1)
}

/// A statistics fence over a [`SharedTddStore`], taken between two runs
/// that share one warm store (see
/// [`SharedTddStore::reset_between_runs`]). Holds the allocation and
/// sharing counters at fence time so [`SharedTddStore::stats_since`] can
/// attribute only the *delta* to the run that follows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreEpoch {
    nodes_created: u64,
    unique_hits: u64,
    cross_unique_hits: u64,
}

/// Which interning family a weight value falls into (see
/// [`SharedTddStore::classify`]): exactly zero, exact-bits "huge", or a
/// canonical tolerance-grid cell carrying its `(re, im)` cell key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum WeightClass {
    Zero,
    Huge,
    Grid(i64, i64),
}

/// One arena entry: the canonical node plus the worker that first
/// interned it (so cross-thread hit attribution is a lock-free arena
/// read instead of a map-entry field behind the stripe mutex).
#[derive(Clone, Copy)]
pub(crate) struct NodeEntry {
    pub(crate) node: Node,
    pub(crate) creator: u32,
}

/// One unique-table stripe.
///
/// The authoritative find-or-insert map sits behind a mutex, but in
/// front of it is a fixed-size, lock-free *probe table*: each slot is a
/// single `AtomicU64` packing `(hash tag << 32) | node id`, published
/// with release ordering after the node is pushed to the arena. The hot
/// path — lookups that hit, which outnumber insertions by an order of
/// magnitude on contraction workloads — loads one slot with acquire
/// ordering, verifies the candidate by reading the (immutable) arena
/// entry and comparing the full node key, and never touches the mutex.
/// A word-sized atomic slot cannot tear, and the full-key verification
/// rejects tag collisions and slots overwritten by a colliding node, so
/// a probe miss or mismatch simply falls back to the mutex-guarded map.
/// Zero means "empty": the terminal sentinel (id 0) is never published,
/// so every real entry is non-zero. Sharing counters are plain atomics
/// so fast-path hits count without taking the stripe lock.
struct NodeStripe {
    /// Authoritative `node → id` map (insertions and probe misses).
    map: Mutex<FxHashMap<Node, NodeId>>,
    /// Lock-free hit cache in front of `map`; see the struct docs.
    probe: Box<[AtomicU64]>,
    hits: AtomicU64,
    cross_hits: AtomicU64,
}

impl NodeStripe {
    fn new() -> Self {
        NodeStripe {
            map: Mutex::new(FxHashMap::default()),
            probe: (0..PROBE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            hits: AtomicU64::new(0),
            cross_hits: AtomicU64::new(0),
        }
    }

    /// The probe slot and tag for a key hash. The slot skips the low
    /// [`STRIPES`] bits (they are constant within a stripe) and the tag
    /// takes the high 32, so slot and tag are nearly independent.
    #[inline]
    fn probe_coords(hash: u64) -> (usize, u32) {
        (
            ((hash >> STRIPES.trailing_zeros()) as usize) & (PROBE_SLOTS - 1),
            (hash >> 32) as u32,
        )
    }

    /// Packs a probe entry; `id` is non-zero for every published node.
    #[inline]
    fn pack(tag: u32, id: NodeId) -> u64 {
        ((tag as u64) << 32) | id.0 as u64
    }
}

/// The concurrent node + weight + elimination-set store shared by the
/// worker managers of one parallel run.
///
/// Create one per run with [`SharedTddStore::new`] (or
/// [`SharedTddStore::with_tolerance`]) and hand clones of the `Arc` to
/// [`crate::TddManager::new_shared`]. All handles minted by any attached
/// manager are valid in every other attached manager.
///
/// # Example
///
/// ```
/// use qaec_math::C64;
/// use qaec_tdd::{SharedTddStore, TddManager};
///
/// let store = SharedTddStore::new();
/// let mut a = TddManager::new_shared(&store);
/// let mut b = TddManager::new_shared(&store);
/// let ea = {
///     let l = a.terminal(C64::real(1.0));
///     let h = a.terminal(C64::real(2.0));
///     a.make_node(0, l, h)
/// };
/// let eb = {
///     let l = b.terminal(C64::real(1.0));
///     let h = b.terminal(C64::real(2.0));
///     b.make_node(0, l, h)
/// };
/// // Hash-consed across managers: same node id, stored exactly once.
/// assert_eq!(ea, eb);
/// assert_eq!(store.stats().nodes_created, 1);
/// assert_eq!(store.stats().cross_unique_hits, 1);
/// ```
pub struct SharedTddStore {
    tol: f64,
    /// Canonical snapping grid width. Deliberately finer than the
    /// private merging radius (`tol`): first-come-first-served merging
    /// only perturbs *colliding* values, while snapping perturbs every
    /// intern, so the cell is shrunk to `tol / 32` to keep cumulative
    /// drift inside even the checker's tightest 1e-10 accuracy targets —
    /// while staying orders of magnitude above f64 round-off (~1e-15),
    /// which is what canonicity actually has to unify.
    grid: f64,
    /// Magnitudes past this fall back to exact-bits interning (the
    /// tolerance grid is meaningless out there and its `i64` key would
    /// saturate).
    huge: f64,
    /// One node arena shard per stripe, pushed under that stripe's lock.
    nodes: Vec<AppendArena<NodeEntry>>,
    node_stripes: Vec<NodeStripe>,
    /// One weight arena shard per stripe plus [`HUGE_SHARD`] for
    /// exact-bits values.
    weights: Vec<AppendArena<C64>>,
    weight_stripes: Vec<Mutex<FxHashMap<(i64, i64), WeightId>>>,
    huge_weights: Mutex<FxHashMap<(u64, u64), WeightId>>,
    /// Exact-bits find-or-insert maps (the scoped-glue family), one per
    /// stripe, sharded by the bit pattern's hash. They intern into the
    /// same per-stripe weight arenas as the grid family — ids stay
    /// disjoint because each entry is pushed exactly once.
    exact_stripes: Vec<Mutex<FxHashMap<(u64, u64), WeightId>>>,
    elim_sets: AppendArena<Box<[u32]>>,
    elim_ids: Mutex<FxHashMap<Vec<u32>, u32>>,
    workers: AtomicU32,
    /// Counter totals inherited from retired predecessors in a
    /// reclamation chain (see [`Self::successor`]): `stats` adds these
    /// so a [`StoreEpoch`] taken before a swap stays a valid fence
    /// against the store that replaced it.
    base: StoreEpoch,
    /// Peak arena occupancy inherited from retired predecessors.
    base_peak_nodes: usize,
    /// High-water mark of [`Self::bytes_used`], seeded with the
    /// predecessor's peak across a reclamation swap.
    peak_bytes: AtomicUsize,
}

impl std::fmt::Debug for SharedTddStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedTddStore(nodes = {}, weights = {}, tol = {})",
            self.arena_len(),
            self.weight_count(),
            self.tol
        )
    }
}

impl SharedTddStore {
    /// A shared store with the default weight tolerance (`1e-10`),
    /// matching [`crate::TddManager::new`].
    pub fn new() -> Arc<Self> {
        Self::with_tolerance(1e-10)
    }

    /// A shared store with a custom weight tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn with_tolerance(tol: f64) -> Arc<Self> {
        assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
        Self::build(tol, StoreEpoch::default(), 0, 0)
    }

    /// The shared constructor: a fresh store carrying `base` counter
    /// offsets from a retired predecessor (all zero for a first store).
    fn build(
        tol: f64,
        base: StoreEpoch,
        base_peak_nodes: usize,
        peak_bytes_seed: usize,
    ) -> Arc<Self> {
        let grid = tol / 32.0;
        let store = SharedTddStore {
            tol,
            grid,
            // Past this the grid key `round(x / grid)` nears `i64`
            // saturation and f64 precision; see `intern_weight`.
            huge: 0.5 * (i64::MAX as f64) * grid,
            nodes: (0..STRIPES).map(|_| AppendArena::new()).collect(),
            node_stripes: (0..STRIPES).map(|_| NodeStripe::new()).collect(),
            weights: (0..=STRIPES).map(|_| AppendArena::new()).collect(),
            weight_stripes: (0..STRIPES)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            huge_weights: Mutex::new(FxHashMap::default()),
            exact_stripes: (0..STRIPES)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            elim_sets: AppendArena::new(),
            elim_ids: Mutex::new(FxHashMap::default()),
            workers: AtomicU32::new(0),
            base,
            base_peak_nodes,
            peak_bytes: AtomicUsize::new(peak_bytes_seed),
        };
        // Shard 0, slot 0: the terminal sentinel — id 0, as in the
        // private arena.
        store.nodes[0].push(NodeEntry {
            node: Node {
                var: TERMINAL_VAR,
                low: Edge::ZERO,
                high: Edge::ZERO,
            },
            creator: u32::MAX,
        });
        // Weight shard 0, slots 0/1: exact 0 and 1, so
        // `WeightId::{ZERO, ONE}` hold exact constants; 1 is also
        // pre-inserted under its grid key and its exact bit pattern so
        // either interning family finds it.
        store.weights[0].push(C64::ZERO);
        store.weights[0].push(C64::ONE);
        let one_key = store.grid_key(C64::ONE);
        store.weight_stripes[stripe_of(&one_key)]
            .lock()
            .expect("weight stripe poisoned")
            .insert(one_key, WeightId::ONE);
        let one_bits = (C64::ONE.re.to_bits(), C64::ONE.im.to_bits());
        store.exact_stripes[stripe_of(&one_bits)]
            .lock()
            .expect("exact weight stripe poisoned")
            .insert(one_bits, WeightId::ONE);
        Arc::new(store)
    }

    /// The weight-interning tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Registers a new worker and returns its id (used to attribute
    /// cross-thread unique-table hits). [`crate::TddManager::new_shared`]
    /// calls this for you.
    pub fn register_worker(&self) -> u32 {
        // ordering: Relaxed — a pure id allocator; the RMW's atomicity
        // guarantees uniqueness and nothing is published through it.
        self.workers.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of arena slots allocated (live nodes, excluding the
    /// terminal sentinel). Monotone within one store; epoch-based
    /// reclamation shrinks a *session's* footprint by swapping in a
    /// [`Self::successor`] or [`Self::compact`] store, never by
    /// compacting in place.
    pub fn arena_len(&self) -> usize {
        self.nodes.iter().map(AppendArena::len).sum::<usize>() - 1
    }

    /// Number of distinct interned weights.
    pub fn weight_count(&self) -> usize {
        self.weights.iter().map(AppendArena::len).sum()
    }

    /// Bytes of backing storage this store holds: every materialised
    /// arena chunk (nodes, weights, elimination sets — allocated
    /// capacity, since chunks never free while the store lives), the
    /// per-entry heap of the interned elimination sets, and the
    /// allocated capacity of the find-or-insert tables. Table capacity
    /// is an estimate (entry size plus one control byte per bucket, the
    /// std hash-table layout); everything else is exact.
    ///
    /// The arenas are append-only, so this number is **monotone** over
    /// a single store's life: within one store, dropping it is the only
    /// reclaim. Under epoch-based reclamation a *session* swaps retired
    /// stores for compact successors (see [`Self::successor`] and
    /// [`Self::compact`]), so the per-store number can step down across
    /// a swap while [`Self::peak_bytes_used`] keeps the high-water mark.
    /// The fixed-size probe tables (2 MiB per store) are deliberately
    /// excluded: they neither grow with the workload nor free before the
    /// store drops, and the service layer's byte budget meters workload
    /// growth.
    pub fn bytes_used(&self) -> usize {
        let map_bytes = |capacity: usize, entry: usize| capacity * (entry + 1);
        let mut bytes = 0usize;
        for shard in &self.nodes {
            bytes += shard.bytes_allocated();
        }
        for shard in &self.weights {
            bytes += shard.bytes_allocated();
        }
        bytes += self.elim_sets.bytes_allocated();
        for index in 0..self.elim_sets.len() {
            bytes += self.elim_sets.get(index).len() * std::mem::size_of::<u32>();
        }
        let node_entry = std::mem::size_of::<Node>() + std::mem::size_of::<NodeId>();
        for stripe in &self.node_stripes {
            let map = stripe.map.lock().expect("node stripe poisoned");
            bytes += map_bytes(map.capacity(), node_entry);
        }
        let weight_entry = std::mem::size_of::<(i64, i64)>() + std::mem::size_of::<WeightId>();
        for stripe in &self.weight_stripes {
            let stripe = stripe.lock().expect("weight stripe poisoned");
            bytes += map_bytes(stripe.capacity(), weight_entry);
        }
        {
            // Scoped so the guard is released before the exact-stripe and
            // elim-set locks below: sizing must never hold two store locks
            // at once (two-guard lint).
            let huge = self.huge_weights.lock().expect("huge weights poisoned");
            bytes += map_bytes(
                huge.capacity(),
                std::mem::size_of::<(u64, u64)>() + std::mem::size_of::<WeightId>(),
            );
        }
        let exact_entry = std::mem::size_of::<(u64, u64)>() + std::mem::size_of::<WeightId>();
        for stripe in &self.exact_stripes {
            let stripe = stripe.lock().expect("exact weight stripe poisoned");
            bytes += map_bytes(stripe.capacity(), exact_entry);
        }
        let elim = self.elim_ids.lock().expect("elim set map poisoned");
        bytes += map_bytes(
            elim.capacity(),
            std::mem::size_of::<Vec<u32>>() + std::mem::size_of::<u32>(),
        );
        bytes += elim
            .keys()
            .map(|levels| levels.len() * std::mem::size_of::<u32>())
            .sum::<usize>();
        // ordering: Relaxed — a monotone statistics high-water mark; the
        // RMW's atomicity keeps the max correct and no data hangs off it.
        self.peak_bytes.fetch_max(bytes, Ordering::Relaxed);
        bytes
    }

    /// High-water mark of [`Self::bytes_used`] across this store's life
    /// *and* every retired predecessor in its reclamation chain — the
    /// number a peak-memory report wants, since per-store `bytes_used`
    /// steps down when a session swaps in a compact successor.
    pub fn peak_bytes_used(&self) -> usize {
        let now = self.bytes_used();
        // ordering: Relaxed — statistics read; `max(now)` already covers
        // any concurrent update this load could miss.
        self.peak_bytes.load(Ordering::Relaxed).max(now)
    }

    /// A cheap lower-bound estimate of payload bytes (node + weight
    /// arena entries) used as the reclamation trigger: unlike
    /// [`Self::bytes_used`] it takes no locks, so a driver can poll it
    /// at every plan-step barrier.
    pub fn approx_data_bytes(&self) -> usize {
        self.arena_len() * std::mem::size_of::<NodeEntry>()
            + self.weight_count() * std::mem::size_of::<C64>()
    }

    /// Store-level statistics: total nodes created across *all* attached
    /// managers, unique-table hits, and how many of those hits resolved
    /// to a node created by a different worker. Merge this **once** into
    /// a report — per-manager [`crate::TddManager::stats`] deliberately
    /// exclude these store-owned counters so they are never
    /// double-counted (each worker would otherwise re-report the same
    /// global allocations).
    pub fn stats(&self) -> TddStats {
        let counters = self.reset_between_runs();
        TddStats {
            nodes_created: counters.nodes_created,
            unique_hits: counters.unique_hits,
            cross_unique_hits: counters.cross_unique_hits,
            peak_nodes: self.base_peak_nodes.max(self.arena_len()),
            store_bytes: self.bytes_used() as u64,
            peak_store_bytes: self.peak_bytes_used() as u64,
            ..TddStats::default()
        }
    }

    /// Fences the store between two runs that *reuse* it warm — the
    /// compile-once session API's noise/ε sweeps, where one store serves
    /// a whole batch of queries so later queries hash-cons against
    /// everything earlier ones interned.
    ///
    /// Nothing is cleared: the arenas are append-only and the interned
    /// diagrams are exactly what the next run wants to find. What the
    /// hook *does* reset is statistics attribution — it snapshots the
    /// allocation and sharing counters, and [`Self::stats_since`] later
    /// reports only the delta, so each query's report counts its own
    /// work rather than the whole session's. (Because canonical
    /// interning makes every stored value a pure function of the value
    /// alone, reuse is value-transparent: a warm-store run is
    /// bit-identical to the same run on a fresh store.)
    ///
    /// The counters are *cumulative across reclamation swaps*: a
    /// successor store inherits its predecessor's totals as base
    /// offsets, so an epoch taken before a swap remains a valid fence
    /// against the store that replaced it.
    pub fn reset_between_runs(&self) -> StoreEpoch {
        let mut hits = self.base.unique_hits;
        let mut cross = self.base.cross_unique_hits;
        for stripe in &self.node_stripes {
            // ordering: Relaxed — statistics counters read between runs;
            // callers sequence this after the workers have joined, and an
            // in-flight bump attributes to whichever side reads it.
            hits += stripe.hits.load(Ordering::Relaxed);
            cross += stripe.cross_hits.load(Ordering::Relaxed);
        }
        StoreEpoch {
            nodes_created: self.base.nodes_created + self.arena_len() as u64,
            unique_hits: hits,
            cross_unique_hits: cross,
        }
    }

    /// Store-level statistics attributed since `epoch` (from
    /// [`Self::reset_between_runs`]): allocation and sharing counter
    /// *deltas*, with `peak_nodes` reporting the store's current total
    /// arena occupancy (the real memory footprint — a warm store never
    /// shrinks). `stats_since(StoreEpoch::default())` equals
    /// [`Self::stats`].
    pub fn stats_since(&self, epoch: StoreEpoch) -> TddStats {
        let total = self.stats();
        TddStats {
            nodes_created: total.nodes_created - epoch.nodes_created,
            unique_hits: total.unique_hits - epoch.unique_hits,
            cross_unique_hits: total.cross_unique_hits - epoch.cross_unique_hits,
            ..total
        }
    }

    #[inline]
    fn grid_key(&self, z: C64) -> (i64, i64) {
        let w = self.grid;
        ((z.re / w).round() as i64, (z.im / w).round() as i64)
    }

    /// Interns a value by snapping it to the centre of its grid cell —
    /// a pure function of the value, so every thread interleaving maps
    /// equal inputs to the same id *and the same stored value*.
    ///
    /// This is the canonical composition of [`Self::classify`] with the
    /// per-family interners; the hot path in `TddManager` inlines it
    /// around a per-manager lookaside, so production code reaches the
    /// pieces directly while tests pin this composition's semantics.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn intern_weight(&self, z: C64) -> WeightId {
        debug_assert!(z.is_finite(), "non-finite weight {z}");
        match self.classify(z) {
            WeightClass::Zero => WeightId::ZERO,
            WeightClass::Huge => self.intern_weight_huge(z),
            WeightClass::Grid(re, im) => self.intern_weight_cell((re, im)),
        }
    }

    /// Classifies a value into its interning family — the same decision
    /// tree, in the same order, as `SharedTddStore::intern_weight`. Exposed so a
    /// manager-side lookaside can key a lock-free weight cache on the
    /// canonical grid cell without ever taking a stripe lock on a hit.
    #[inline]
    pub(crate) fn classify(&self, z: C64) -> WeightClass {
        if z.re.abs() <= self.tol && z.im.abs() <= self.tol {
            WeightClass::Zero
        } else if z.re.abs() >= self.huge || z.im.abs() >= self.huge {
            WeightClass::Huge
        } else {
            let key = self.grid_key(z);
            WeightClass::Grid(key.0, key.1)
        }
    }

    /// Find-or-intern by canonical grid cell. The stored representative
    /// is computed from the *cell key* (`key · grid`), never from the
    /// caller's value, so any two paths that land in one cell — a fresh
    /// arithmetic result, a manager lookaside miss, or an exact
    /// migration during reclamation — produce bit-identical values.
    pub(crate) fn intern_weight_cell(&self, key: (i64, i64)) -> WeightId {
        let shard = stripe_of(&key);
        let mut stripe = self.weight_stripes[shard]
            .lock()
            .expect("weight stripe poisoned");
        if let Some(&id) = stripe.get(&key) {
            return id;
        }
        let w = self.grid;
        let snapped = C64::new(key.0 as f64 * w, key.1 as f64 * w);
        let id = WeightId(encode(shard, self.weights[shard].push(snapped)));
        stripe.insert(key, id);
        id
    }

    /// Exact-bits interning for huge magnitudes: the tolerance grid is
    /// below one ulp out there, so the value itself is the key.
    pub(crate) fn intern_weight_huge(&self, z: C64) -> WeightId {
        let key = (z.re.to_bits(), z.im.to_bits());
        let mut map = self.huge_weights.lock().expect("huge weights poisoned");
        if let Some(&id) = map.get(&key) {
            return id;
        }
        let id = WeightId(encode(HUGE_SHARD, self.weights[HUGE_SHARD].push(z)));
        map.insert(key, id);
        id
    }

    /// Exact-bits interning (the scoped-glue family): the value's bit
    /// pattern is both the key and the stored value, so this is
    /// trivially a pure function of the value — two runs, whatever their
    /// schedules, map equal bits to one id with identical stored bits.
    /// Tolerance gluing happens *above* this, in the interning manager's
    /// per-operation scope, never in the store.
    pub(crate) fn intern_weight_exact(&self, z: C64) -> WeightId {
        let key = (z.re.to_bits(), z.im.to_bits());
        let shard = stripe_of(&key);
        let mut stripe = self.exact_stripes[shard]
            .lock()
            .expect("exact weight stripe poisoned");
        if let Some(&id) = stripe.get(&key) {
            return id;
        }
        let id = WeightId(encode(shard, self.weights[shard].push(z)));
        stripe.insert(key, id);
        id
    }

    /// The value behind a weight handle (lock-free).
    #[inline]
    pub(crate) fn weight_value(&self, w: WeightId) -> C64 {
        let (shard, index) = decode(w.0);
        *self.weights[shard].get(index)
    }

    /// Hash-conses a (pre-normalized) node, returning its id. `worker`
    /// attributes cross-thread hits.
    ///
    /// The overwhelmingly common case — the node already exists — is
    /// lock-free: one acquire load of the stripe's probe slot, one
    /// immutable arena read to verify the candidate against the full
    /// key, and relaxed counter bumps. Only a probe miss (empty slot,
    /// tag mismatch, or a slot evicted by a colliding node) falls back
    /// to the mutex-guarded map, which also publishes the slot for the
    /// next lookup. Publication is release-ordered after the arena push,
    /// so a fast-path reader that observes the slot also observes the
    /// fully-written arena entry.
    pub(crate) fn unique_node(&self, key: Node, worker: u32) -> NodeId {
        let hash = fxhash::hash_one(&key);
        let shard = (hash as usize) & (STRIPES - 1);
        let stripe = &self.node_stripes[shard];
        let (slot, tag) = NodeStripe::probe_coords(hash);
        // ordering: Acquire pairs with the Release publication below — a
        // non-zero slot implies the publisher's arena push (and its release
        // of `len`) happened-before, so `get` below cannot miss the entry.
        let seen = stripe.probe[slot].load(Ordering::Acquire);
        if seen != 0 && (seen >> 32) as u32 == tag {
            let id = NodeId(seen as u32);
            let (s, index) = decode(id.0);
            let entry = self.nodes[s].get(index);
            if entry.node == key {
                // ordering: Relaxed — statistics counters; nothing reads
                // them for synchronisation, totals are summed after joins.
                stripe.hits.fetch_add(1, Ordering::Relaxed);
                if entry.creator != worker {
                    // ordering: Relaxed — statistics counter (see above).
                    stripe.cross_hits.fetch_add(1, Ordering::Relaxed);
                }
                return id;
            }
        }
        let mut map = stripe.map.lock().expect("node stripe poisoned");
        match map.get(&key) {
            Some(&id) => {
                // ordering: Relaxed — statistics counters (see fast path).
                stripe.hits.fetch_add(1, Ordering::Relaxed);
                let (s, index) = decode(id.0);
                if self.nodes[s].get(index).creator != worker {
                    // ordering: Relaxed — statistics counter.
                    stripe.cross_hits.fetch_add(1, Ordering::Relaxed);
                }
                // ordering: Release — republishing an existing id; its arena
                // entry was already published before the id entered the map,
                // and release keeps that visible to future Acquire probes.
                stripe.probe[slot].store(NodeStripe::pack(tag, id), Ordering::Release);
                id
            }
            None => {
                let id = NodeId(encode(
                    shard,
                    self.nodes[shard].push(NodeEntry {
                        node: key,
                        creator: worker,
                    }),
                ));
                map.insert(key, id);
                // ordering: Release publishes the arena push above: a probe
                // that Acquire-loads this slot value observes the fully
                // initialised node entry behind the id.
                stripe.probe[slot].store(NodeStripe::pack(tag, id), Ordering::Release);
                id
            }
        }
    }

    /// The node behind an id (lock-free).
    #[inline]
    pub(crate) fn node(&self, n: NodeId) -> Node {
        let (shard, index) = decode(n.0);
        self.nodes[shard].get(index).node
    }

    /// Interns an elimination set; ids are globally consistent, which is
    /// what lets contraction caches travel between workers.
    pub(crate) fn intern_elim_set(&self, levels: Vec<u32>) -> u32 {
        let mut map = self.elim_ids.lock().expect("elim set map poisoned");
        if let Some(&id) = map.get(&levels) {
            return id;
        }
        let id = self.elim_sets.push(levels.clone().into_boxed_slice()) as u32;
        map.insert(levels, id);
        id
    }

    /// The levels behind an elimination-set id (lock-free).
    #[inline]
    pub(crate) fn elim_set(&self, id: u32) -> &[u32] {
        self.elim_sets.get(id as usize)
    }

    /// An empty successor store for epoch-based reclamation with **no**
    /// live roots — the sweep-point boundary case, where every result
    /// has been extracted as plain numbers and nothing in the arenas is
    /// reachable any more. The successor inherits this store's
    /// cumulative counters, peak occupancy and peak bytes, so epochs,
    /// session statistics and high-water marks remain continuous; the
    /// retired store's arenas free when its last `Arc` drops.
    ///
    /// Callers must only swap a successor in once every attached manager
    /// has quiesced (no in-flight contraction holds ids into the old
    /// store) and must rebuild managers against the new store.
    pub fn successor(&self) -> Arc<SharedTddStore> {
        let totals = self.reset_between_runs();
        Self::build(
            self.tol,
            totals,
            self.base_peak_nodes.max(self.arena_len()),
            self.peak_bytes_used(),
        )
    }

    /// Epoch-based reclamation with live roots: migrates exactly the
    /// sub-diagrams reachable from `roots` into a fresh successor store
    /// and returns the successor plus the remapped roots (in order).
    /// Everything unreachable — dead intermediate nodes, weights only
    /// they referenced, the find-or-insert maps' dead entries — is
    /// retired with the old store once its last `Arc` drops.
    ///
    /// **Bit-exactness.** Migration never re-derives a grid cell from a
    /// stored value: near the `i64` key range the roundtrip
    /// `round((k · grid) / grid)` can land in a neighbouring cell. It
    /// instead reverses the stripe maps (`id → cell key`) and re-interns
    /// by cell, which reproduces the stored `k · grid` bits exactly;
    /// huge weights migrate by exact bits. Node ids are renumbered, but
    /// no value in the engine ever depends on an id, so contraction
    /// results are unchanged to the last bit.
    ///
    /// Callers must hold quiescence (no concurrent mutation, no
    /// in-flight ids outside `roots`) for the whole call and must
    /// rebuild managers — including their memo tables, which cache old
    /// ids — against the successor.
    pub fn compact(&self, roots: &[Edge]) -> (Arc<SharedTddStore>, Vec<Edge>) {
        // Reverse weight maps: id → canonical cell key (grid shards).
        let mut grid_keys: FxHashMap<WeightId, (i64, i64)> = FxHashMap::default();
        for stripe in &self.weight_stripes {
            let map = stripe.lock().expect("weight stripe poisoned");
            for (&key, &id) in map.iter() {
                grid_keys.insert(id, key);
            }
        }
        // Exact-family membership: these ids migrate through the
        // successor's exact maps so a post-swap intern of the same bits
        // finds the migrated id (id-equality fast paths stay sound).
        let mut exact_ids: FxHashMap<WeightId, ()> = FxHashMap::default();
        for stripe in &self.exact_stripes {
            let map = stripe.lock().expect("exact weight stripe poisoned");
            for &id in map.values() {
                exact_ids.insert(id, ());
            }
        }

        // Count the live node set so the successor's inherited
        // `nodes_created` offset can be pre-deducted: migration re-pushes
        // exactly the live set, restoring the cumulative total.
        let mut live = 0u64;
        let mut seen: FxHashMap<NodeId, ()> = FxHashMap::default();
        let mut stack: Vec<NodeId> = roots.iter().map(|r| r.node).collect();
        while let Some(id) = stack.pop() {
            if id == NodeId::TERMINAL || seen.insert(id, ()).is_some() {
                continue;
            }
            live += 1;
            let node = self.node(id);
            stack.push(node.low.node);
            stack.push(node.high.node);
        }

        let totals = self.reset_between_runs();
        let base = StoreEpoch {
            nodes_created: totals.nodes_created - live,
            ..totals
        };
        let next = Self::build(
            self.tol,
            base,
            self.base_peak_nodes.max(self.arena_len()),
            self.peak_bytes_used(),
        );

        let mut weight_map: FxHashMap<WeightId, WeightId> = FxHashMap::default();
        let mut node_map: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        let remapped = roots
            .iter()
            .map(|root| {
                self.migrate_edge(
                    &next,
                    *root,
                    &grid_keys,
                    &exact_ids,
                    &mut weight_map,
                    &mut node_map,
                )
            })
            .collect();
        (next, remapped)
    }

    /// Migrates one edge (weight + reachable sub-diagram) into `next`.
    #[allow(clippy::too_many_arguments)]
    fn migrate_edge(
        &self,
        next: &SharedTddStore,
        edge: Edge,
        grid_keys: &FxHashMap<WeightId, (i64, i64)>,
        exact_ids: &FxHashMap<WeightId, ()>,
        weight_map: &mut FxHashMap<WeightId, WeightId>,
        node_map: &mut FxHashMap<NodeId, NodeId>,
    ) -> Edge {
        let weight = if edge.weight == WeightId::ZERO || edge.weight == WeightId::ONE {
            edge.weight
        } else if let Some(&cached) = weight_map.get(&edge.weight) {
            cached
        } else {
            let migrated = if exact_ids.contains_key(&edge.weight) {
                // Exact family: the bit pattern is the identity.
                next.intern_weight_exact(self.weight_value(edge.weight))
            } else {
                match grid_keys.get(&edge.weight) {
                    Some(&key) => next.intern_weight_cell(key),
                    // Not in a grid stripe ⇒ interned in the huge shard.
                    None => next.intern_weight_huge(self.weight_value(edge.weight)),
                }
            };
            weight_map.insert(edge.weight, migrated);
            migrated
        };
        let node = self.migrate_node(next, edge.node, grid_keys, exact_ids, weight_map, node_map);
        Edge { node, weight }
    }

    /// Migrates one reachable node (recursively, memoised). Stored
    /// nodes are already canonical, so they re-intern through
    /// `unique_node` without re-normalisation.
    #[allow(clippy::too_many_arguments)]
    fn migrate_node(
        &self,
        next: &SharedTddStore,
        id: NodeId,
        grid_keys: &FxHashMap<WeightId, (i64, i64)>,
        exact_ids: &FxHashMap<WeightId, ()>,
        weight_map: &mut FxHashMap<WeightId, WeightId>,
        node_map: &mut FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if id == NodeId::TERMINAL {
            return NodeId::TERMINAL;
        }
        if let Some(&mapped) = node_map.get(&id) {
            return mapped;
        }
        let old = self.node(id);
        let low = self.migrate_edge(next, old.low, grid_keys, exact_ids, weight_map, node_map);
        let high = self.migrate_edge(next, old.high, grid_keys, exact_ids, weight_map, node_map);
        let creator = {
            let (shard, index) = decode(id.0);
            self.nodes[shard].get(index).creator
        };
        let mapped = next.unique_node(
            Node {
                var: old.var,
                low,
                high,
            },
            creator,
        );
        node_map.insert(id, mapped);
        mapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_encoding_round_trips() {
        for (shard, index) in [
            (0usize, 0usize),
            (0, 1),
            (63, 5),
            (HUGE_SHARD, 7),
            (17, 12345),
        ] {
            assert_eq!(decode(encode(shard, index)), (shard, index));
        }
        assert_eq!(encode(0, 0), 0, "terminal/zero must stay id 0");
        assert_eq!(encode(0, 1), 1, "the unit weight must stay id 1");
    }

    #[test]
    fn arena_locate_covers_doubling_chunks() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        assert_eq!(locate(7167), (2, 4095));
        assert_eq!(locate(7168), (3, 0));
        // The spine covers the whole per-shard index space.
        let (chunk, _) = locate(INDEX_MASK as usize);
        assert!(chunk < SPINE);
    }

    #[test]
    fn arena_push_get_across_chunk_boundaries() {
        let arena: AppendArena<usize> = AppendArena::new();
        for value in 0..5000 {
            assert_eq!(arena.push(value), value);
        }
        assert_eq!(arena.len(), 5000);
        for index in [0usize, 1023, 1024, 2047, 2048, 4095, 4096, 4999] {
            assert_eq!(*arena.get(index), index);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn arena_rejects_unpublished_index() {
        let arena: AppendArena<u32> = AppendArena::new();
        arena.push(7);
        let _ = arena.get(1);
    }

    #[test]
    fn arena_drops_owned_entries() {
        // Box<[u32]> entries must be dropped with the arena (miri-style
        // leak check is out of scope; this exercises the Drop path).
        let arena: AppendArena<Box<[u32]>> = AppendArena::new();
        for k in 0..100u32 {
            arena.push(vec![k; 3].into_boxed_slice());
        }
        assert_eq!(&arena.get(42)[..], &[42, 42, 42]);
    }

    #[test]
    fn concurrent_interning_stays_consistent() {
        // Hammer the store from several threads with overlapping values:
        // every thread must resolve each value to one id and one stored
        // representative.
        let store = SharedTddStore::new();
        let ids: Vec<Vec<WeightId>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        (0..2000)
                            .map(|k| store.intern_weight(C64::new(k as f64 * 0.125, -1.0)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("interner"))
                .collect()
        });
        for thread in &ids[1..] {
            assert_eq!(thread, &ids[0], "ids must agree across threads");
        }
        assert_eq!(store.weight_count(), 2000 + 2, "0/1 pre-seeded + 2000");
    }

    #[test]
    fn interning_is_a_pure_function_of_the_value() {
        let store = SharedTddStore::new();
        let a = store.intern_weight(C64::new(0.25, -0.75));
        let b = store.intern_weight(C64::new(0.25 + 1e-12, -0.75 + 1e-12));
        assert_eq!(a, b, "values in one grid cell must merge");
        let va = store.weight_value(a);
        assert!((va - C64::new(0.25, -0.75)).abs() <= 5e-12);

        // A second store built in any other order maps the same inputs
        // to the same *values* (ids may differ, values may not).
        let other = SharedTddStore::new();
        let _noise = other.intern_weight(C64::new(0.5, 0.5));
        let c = other.intern_weight(C64::new(0.25, -0.75));
        assert_eq!(other.weight_value(c), va, "snapping must be canonical");
    }

    #[test]
    fn zero_and_one_stay_exact() {
        let store = SharedTddStore::new();
        assert_eq!(store.intern_weight(C64::ZERO), WeightId::ZERO);
        assert_eq!(store.intern_weight(C64::new(5e-11, -5e-11)), WeightId::ZERO);
        assert_eq!(store.intern_weight(C64::ONE), WeightId::ONE);
        assert_eq!(store.weight_value(WeightId::ONE), C64::ONE);
        assert_eq!(store.weight_value(WeightId::ZERO), C64::ZERO);
    }

    #[test]
    fn huge_weights_intern_exactly() {
        let store = SharedTddStore::new();
        let big = C64::new(3.5e12, -1.0);
        let a = store.intern_weight(big);
        let b = store.intern_weight(big);
        assert_eq!(a, b);
        assert_eq!(store.weight_value(a), big, "huge values are kept exact");
        assert_ne!(store.intern_weight(C64::new(3.5e12 + 1.0, -1.0)), a);
    }

    #[test]
    fn exact_interning_is_pure_and_bit_preserving() {
        let store = SharedTddStore::new();
        let z = C64::new(0.1 + 0.2, -0.3); // bits deliberately inexact
        let a = store.intern_weight_exact(z);
        let b = store.intern_weight_exact(z);
        assert_eq!(a, b, "same bits, same id");
        assert_eq!(store.weight_value(a), z, "bits stored verbatim");
        // One ulp away is a *different* exact weight.
        let z2 = C64::new(f64::from_bits(z.re.to_bits() + 1), z.im);
        assert_ne!(store.intern_weight_exact(z2), a);
        // The multiplicative identity is pre-seeded in the exact maps.
        assert_eq!(store.intern_weight_exact(C64::ONE), WeightId::ONE);
        // The two families may hold bit-equal values under distinct ids;
        // neither ever observes the other's entries.
        let g = store.intern_weight(z);
        assert_eq!(store.intern_weight_exact(z), a);
        assert_ne!(g, a);
    }

    #[test]
    fn compact_migrates_exact_weights_through_the_exact_family() {
        let store = SharedTddStore::new();
        let z = C64::new(0.1 + 0.2, -0.3);
        let root = Edge {
            node: NodeId::TERMINAL,
            weight: store.intern_weight_exact(z),
        };
        let (next, remapped) = store.compact(&[root]);
        assert_eq!(next.weight_value(remapped[0].weight), z);
        // A post-swap exact intern of the same bits must find the
        // migrated id — id-equality fast paths depend on it.
        assert_eq!(next.intern_weight_exact(z), remapped[0].weight);
    }

    #[test]
    fn elim_sets_are_globally_consistent() {
        let store = SharedTddStore::new();
        let a = store.intern_elim_set(vec![1, 4, 9]);
        let b = store.intern_elim_set(vec![1, 4, 9]);
        let c = store.intern_elim_set(vec![1, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.elim_set(a), &[1, 4, 9]);
    }

    #[test]
    fn epochs_fence_statistics_between_runs() {
        let store = SharedTddStore::new();
        let w = store.register_worker();
        let node = |k: u32, low: WeightId| Node {
            var: k,
            low: Edge {
                node: NodeId::TERMINAL,
                weight: low,
            },
            high: Edge {
                node: NodeId::TERMINAL,
                weight: WeightId::ONE,
            },
        };
        let half = store.intern_weight(C64::real(0.5));

        // "Run 1": two fresh nodes plus one re-find.
        let epoch1 = store.reset_between_runs();
        assert_eq!(epoch1, StoreEpoch::default(), "fresh store = zero epoch");
        store.unique_node(node(0, half), w);
        store.unique_node(node(1, half), w);
        store.unique_node(node(0, half), w);
        let run1 = store.stats_since(epoch1);
        assert_eq!(run1.nodes_created, 2);
        assert_eq!(run1.unique_hits, 1);
        assert_eq!(run1, store.stats(), "zero epoch delta equals totals");

        // "Run 2" re-finds run 1's structure warm: zero allocations,
        // only hits — the delta must not re-report run 1's work.
        let epoch2 = store.reset_between_runs();
        store.unique_node(node(0, half), w);
        store.unique_node(node(1, half), w);
        let run2 = store.stats_since(epoch2);
        assert_eq!(run2.nodes_created, 0, "warm reuse allocates nothing");
        assert_eq!(run2.unique_hits, 2);
        // The footprint (peak) stays the cumulative arena size.
        assert_eq!(run2.peak_nodes, 2);
        assert_eq!(store.stats().nodes_created, 2, "totals unaffected");
    }

    #[test]
    fn bytes_used_is_monotone_and_tracks_growth() {
        let store = SharedTddStore::new();
        let baseline = store.bytes_used();
        // A fresh store already holds the sentinel chunks (node shard 0,
        // weight shard 0) — the floor a budget has to stay above.
        assert!(baseline > 0);

        let mut previous = baseline;
        for batch in 0..4 {
            for k in 0..2000 {
                store.intern_weight(C64::new((batch * 2000 + k) as f64 * 0.25, 1.0));
            }
            let now = store.bytes_used();
            assert!(now >= previous, "append-only storage never shrinks");
            previous = now;
        }
        assert!(previous > baseline, "8000 interns must allocate chunks");

        // Elimination sets count both arena slots and per-entry heap.
        let before_elim = store.bytes_used();
        store.intern_elim_set((0..512).collect());
        assert!(store.bytes_used() > before_elim);

        // And the footprint is what stats() reports.
        assert_eq!(store.stats().store_bytes, store.bytes_used() as u64);
    }

    #[test]
    fn cross_worker_hits_are_attributed() {
        let store = SharedTddStore::new();
        let w0 = store.register_worker();
        let w1 = store.register_worker();
        let one = WeightId::ONE;
        let half = store.intern_weight(C64::real(0.5));
        let key = Node {
            var: 3,
            low: Edge {
                node: NodeId::TERMINAL,
                weight: one,
            },
            high: Edge {
                node: NodeId::TERMINAL,
                weight: half,
            },
        };
        let id0 = store.unique_node(key, w0);
        let id_self = store.unique_node(key, w0);
        let id1 = store.unique_node(key, w1);
        assert_eq!(id0, id_self);
        assert_eq!(id0, id1);
        let stats = store.stats();
        assert_eq!(stats.nodes_created, 1);
        assert_eq!(stats.unique_hits, 2);
        assert_eq!(stats.cross_unique_hits, 1, "only w1's hit crosses");
    }

    /// A tiny two-level diagram with a shared interior node, for the
    /// migration tests.
    fn sample_root(store: &SharedTddStore, worker: u32) -> Edge {
        let half = store.intern_weight(C64::new(0.5, -0.25));
        let third = store.intern_weight(C64::real(1.0 / 3.0));
        let leaf = |w: WeightId| Edge {
            node: NodeId::TERMINAL,
            weight: w,
        };
        let inner = store.unique_node(
            Node {
                var: 1,
                low: leaf(half),
                high: leaf(WeightId::ONE),
            },
            worker,
        );
        let top = store.unique_node(
            Node {
                var: 0,
                low: Edge {
                    node: inner,
                    weight: third,
                },
                high: Edge {
                    node: inner,
                    weight: WeightId::ONE,
                },
            },
            worker,
        );
        Edge {
            node: top,
            weight: half,
        }
    }

    /// Reads back every value reachable from a root, depth-first, as a
    /// store-independent fingerprint (values + shape, no ids).
    fn fingerprint(store: &SharedTddStore, root: Edge, out: &mut Vec<(u32, u64, u64)>) {
        let w = store.weight_value(root.weight);
        if root.node == NodeId::TERMINAL {
            out.push((u32::MAX, w.re.to_bits(), w.im.to_bits()));
            return;
        }
        let node = store.node(root.node);
        out.push((node.var, w.re.to_bits(), w.im.to_bits()));
        fingerprint(store, node.low, out);
        fingerprint(store, node.high, out);
    }

    #[test]
    fn probe_fast_path_agrees_with_the_map() {
        // Re-find the same keys many times: every id must be stable and
        // the hit counters exact, whichever path served the lookup.
        let store = SharedTddStore::new();
        let w = store.register_worker();
        let half = store.intern_weight(C64::real(0.5));
        let key = |k: u32| Node {
            var: k,
            low: Edge {
                node: NodeId::TERMINAL,
                weight: half,
            },
            high: Edge {
                node: NodeId::TERMINAL,
                weight: WeightId::ONE,
            },
        };
        let first: Vec<NodeId> = (0..500).map(|k| store.unique_node(key(k), w)).collect();
        for _ in 0..3 {
            let again: Vec<NodeId> = (0..500).map(|k| store.unique_node(key(k), w)).collect();
            assert_eq!(again, first);
        }
        let stats = store.stats();
        assert_eq!(stats.nodes_created, 500);
        assert_eq!(stats.unique_hits, 1500);
        assert_eq!(stats.cross_unique_hits, 0);
    }

    #[test]
    fn interning_by_cell_matches_interning_by_value() {
        let store = SharedTddStore::new();
        let z = C64::new(0.125, -2.5);
        match store.classify(z) {
            WeightClass::Grid(re, im) => {
                let by_cell = store.intern_weight_cell((re, im));
                let by_value = store.intern_weight(z);
                assert_eq!(by_cell, by_value);
                assert_eq!(
                    store.weight_value(by_cell).re.to_bits(),
                    store.weight_value(by_value).re.to_bits()
                );
            }
            other => panic!("expected a grid cell, got {other:?}"),
        }
        assert_eq!(store.classify(C64::new(1e-12, 0.0)), WeightClass::Zero);
        assert_eq!(store.classify(C64::new(9e13, 0.0)), WeightClass::Huge);
    }

    #[test]
    fn successor_keeps_counters_and_peaks_continuous() {
        let store = SharedTddStore::new();
        let w = store.register_worker();
        let root = sample_root(&store, w);
        let _again = sample_root(&store, w); // re-finds: hits
        let _ = root;
        let before = store.stats();
        let epoch = store.reset_between_runs();

        let next = store.successor();
        assert_eq!(next.arena_len(), 0, "successor starts empty");
        let after = next.stats();
        assert_eq!(after.nodes_created, before.nodes_created);
        assert_eq!(after.unique_hits, before.unique_hits);
        assert_eq!(after.peak_nodes, before.peak_nodes);
        assert!(after.peak_store_bytes >= before.store_bytes);
        assert!(
            (next.bytes_used() as u64) < before.store_bytes || store.arena_len() == 0,
            "successor footprint drops the retired arenas"
        );

        // An epoch taken on the predecessor fences the successor too.
        let w2 = next.register_worker();
        let _ = sample_root(&next, w2);
        let delta = next.stats_since(epoch);
        assert_eq!(delta.nodes_created, 2, "only post-swap work attributed");
    }

    #[test]
    fn compact_migrates_live_roots_bit_exactly() {
        let store = SharedTddStore::new();
        let w = store.register_worker();
        let root = sample_root(&store, w);
        // Garbage the compaction must drop: nodes unreachable from root.
        for k in 100..150 {
            let dead = store.intern_weight(C64::real(k as f64 * 0.01));
            store.unique_node(
                Node {
                    var: k,
                    low: Edge {
                        node: NodeId::TERMINAL,
                        weight: dead,
                    },
                    high: Edge {
                        node: NodeId::TERMINAL,
                        weight: WeightId::ONE,
                    },
                },
                w,
            );
        }
        // And a huge weight that *is* live.
        let big = C64::new(4.25e12, 1.0);
        let huge_root = Edge {
            node: NodeId::TERMINAL,
            weight: store.intern_weight(big),
        };
        let before = store.stats();

        let (next, remapped) = store.compact(&[root, huge_root]);
        assert_eq!(remapped.len(), 2);
        assert_eq!(next.arena_len(), 2, "only the two reachable nodes migrate");
        let mut old_print = Vec::new();
        let mut new_print = Vec::new();
        fingerprint(&store, root, &mut old_print);
        fingerprint(&next, remapped[0], &mut new_print);
        assert_eq!(old_print, new_print, "values migrate bit-exactly");
        assert_eq!(next.weight_value(remapped[1].weight), big);

        // Counter continuity: migration must not inflate totals.
        let after = next.stats();
        assert_eq!(after.nodes_created, before.nodes_created);
        assert_eq!(after.unique_hits, before.unique_hits);
        assert_eq!(after.peak_nodes, before.peak_nodes);

        // Re-interning post-swap values still canonicalises identically.
        assert_eq!(
            next.intern_weight(C64::new(0.5, -0.25)),
            remapped[0].weight,
            "the migrated root weight is the canonical cell entry"
        );
    }

    #[test]
    fn peak_bytes_survive_a_swap_chain() {
        let store = SharedTddStore::new();
        for k in 0..4000 {
            store.intern_weight(C64::new(k as f64 * 0.25, 1.0));
        }
        let peak = store.peak_bytes_used();
        assert!(peak >= store.bytes_used());
        let next = store.successor();
        assert!(next.peak_bytes_used() >= peak, "peak is inherited");
        assert!(next.bytes_used() < peak, "current footprint drops");
        assert_eq!(next.stats().peak_store_bytes, next.peak_bytes_used() as u64);
    }
}
