//! The shared concurrent TDD store: a lock-striped unique table plus a
//! sharded, canonically-snapping weight-interning table over per-stripe
//! append-only arenas.
//!
//! A [`SharedTddStore`] lets several [`crate::TddManager`]s — one per
//! worker thread — hash-cons nodes and intern weights into *one* set of
//! tables, so common sub-diagrams built by different workers are stored
//! once and cross-thread `NodeId`/`WeightId` handles stay valid
//! everywhere. Four design rules make this safe and fast:
//!
//! * **Append-only arenas.** Nodes, weights and elimination sets live in
//!   append-only arenas that never move or free entries, so `node(id)` and
//!   `weight_value(id)` are lock-free reads from any thread. Compacting
//!   garbage collection is therefore impossible while a store is shared;
//!   [`crate::gc::collect`] degrades to a documented no-op (memory is
//!   bounded by cross-thread sharing instead of collection).
//! * **Lock striping.** Find-or-insert goes through one of
//!   [`STRIPES`] mutex-guarded hash-map shards selected by the key's
//!   hash (nodes) or quantised bucket (weights), so insertions from
//!   different workers rarely contend and reads of already-interned data
//!   never block on unrelated insertions.
//! * **No global hot lines.** Each stripe owns its *own* arena shard —
//!   an id is `(stripe, index)` packed into a `u32` — so allocation
//!   happens under the stripe lock the inserter already holds, and
//!   sharing statistics live inside the stripe too. There is no global
//!   allocation lock, counter or length for every worker to bounce a
//!   cache line on — reads only check their own shard's length, written
//!   solely by that stripe's insertions; independent sub-contractions
//!   scale because they touch disjoint stripes most of the time.
//! * **Canonical interning.** The private [`crate::WeightTable`] merges
//!   values *first-come-first-served* within a tolerance, which makes
//!   the stored representative depend on insertion order — harmless
//!   sequentially, but racy across threads. The shared table instead
//!   snaps every value to the centre of a fine sub-tolerance grid cell,
//!   a pure function of the value alone. Every arithmetic result is
//!   then identical whatever the thread interleaving, which is what
//!   makes shared-store parallel runs **bit-identical** to sequential
//!   ones. (Ids themselves are scheduling-dependent — which stripe index
//!   a node lands on depends on who inserts first — but no value ever
//!   depends on an id.)

use crate::fxhash::{self, FxHashMap};
use crate::manager::{Edge, Node, NodeId, TddStats, TERMINAL_VAR};
use crate::weight::WeightId;
use qaec_math::C64;
use std::cell::UnsafeCell;
use std::hash::Hash;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of mutex stripes in each concurrent table. A power of two so
/// stripe selection is a mask.
pub const STRIPES: usize = 64;

/// Bits of a packed id holding the in-shard index; the remaining high
/// bits carry the shard. 2^25 ≈ 33.5M entries per shard, far beyond the
/// paper's workloads (the whole Table I set peaks in the low millions).
const INDEX_BITS: u32 = 25;
/// Mask extracting the in-shard index.
const INDEX_MASK: u32 = (1 << INDEX_BITS) - 1;
/// The extra weight shard used for exact-bits "huge" values (guarded by
/// its own map mutex rather than a grid stripe).
const HUGE_SHARD: usize = STRIPES;

/// Packs a `(shard, index)` pair into an id.
#[inline]
fn encode(shard: usize, index: usize) -> u32 {
    debug_assert!(index <= INDEX_MASK as usize, "arena shard full");
    ((shard as u32) << INDEX_BITS) | index as u32
}

/// Unpacks an id into its `(shard, index)` pair.
#[inline]
fn decode(id: u32) -> (usize, usize) {
    ((id >> INDEX_BITS) as usize, (id & INDEX_MASK) as usize)
}

/// log2 of the first arena chunk's capacity.
const FIRST_BITS: u32 = 10;
/// Spine length: chunk sizes double (1024, 1024, 2048, …), so 16 chunks
/// cover the full 2^25 per-shard index space.
const SPINE: usize = 16;

/// One lazily-allocated chunk of arena slots.
type Chunk<T> = Box<[UnsafeCell<MaybeUninit<T>>]>;

/// An append-only, grow-only arena shard with lock-free reads.
///
/// Entries are immutable once pushed. Storage is a spine of
/// doubling-size chunks allocated lazily, so pushing never moves
/// existing entries and readers never observe a reallocation. A small
/// internal mutex serialises appends — uncontended in practice, because
/// each shard is only pushed to under its table stripe's lock. The
/// published length is released *after* the slot is written, so any
/// reader that checks `index < len` (with an acquire load) sees fully
/// initialised data; per-shard lengths keep that check off the globally
/// contended cache lines a single shared counter would create.
struct AppendArena<T> {
    spine: [OnceLock<Chunk<T>>; SPINE],
    len: AtomicUsize,
    push_lock: Mutex<()>,
}

// SAFETY: slots are written exactly once, under the push lock, before
// the id escapes through a synchronising publication (release store of
// `len` plus the stripe mutex release); they are immutable afterwards.
unsafe impl<T: Send + Sync> Sync for AppendArena<T> {}
unsafe impl<T: Send> Send for AppendArena<T> {}

/// Maps an entry index to its (chunk, offset) coordinates.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    let adjusted = index + (1usize << FIRST_BITS);
    let level = usize::BITS - 1 - adjusted.leading_zeros();
    let chunk = (level - FIRST_BITS) as usize;
    (chunk, adjusted - (1usize << level))
}

impl<T> AppendArena<T> {
    fn new() -> Self {
        AppendArena {
            spine: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            push_lock: Mutex::new(()),
        }
    }

    /// Number of initialised entries.
    #[inline]
    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Appends `value`, returning its index.
    fn push(&self, value: T) -> usize {
        let _guard = self.push_lock.lock().expect("arena push lock poisoned");
        let index = self.len.load(Ordering::Relaxed);
        let (chunk, offset) = locate(index);
        let slots = self.spine[chunk].get_or_init(|| {
            let capacity = 1usize << (FIRST_BITS as usize + chunk);
            (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect()
        });
        // SAFETY: `index` is past the published length, so no reader may
        // hold its id yet, and the push lock excludes other writers.
        unsafe { (*slots[offset].get()).write(value) };
        self.len.store(index + 1, Ordering::Release);
        index
    }

    /// Bytes of arena backing storage currently allocated: the capacity
    /// of every lazily-materialised chunk, whether or not its slots are
    /// filled yet. Chunks are never freed while the arena lives, so this
    /// is exactly what dropping the arena returns to the allocator
    /// (excluding per-entry heap owned by `T` itself).
    fn bytes_allocated(&self) -> usize {
        self.spine
            .iter()
            .enumerate()
            .filter(|(_, chunk)| chunk.get().is_some())
            .map(|(level, _)| (1usize << (FIRST_BITS as usize + level)) * std::mem::size_of::<T>())
            .sum()
    }

    /// Reads the entry at `index`.
    ///
    /// The bounds check keeps handle misuse (e.g. an `Edge` minted by a
    /// *different* store) a clean panic rather than an uninitialised
    /// read. It is cheap: each shard's length line is written only on
    /// that stripe's insertions, so readers rarely bounce it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    fn get(&self, index: usize) -> &T {
        assert!(index < self.len(), "arena index {index} out of bounds");
        let (chunk, offset) = locate(index);
        let slots = self.spine[chunk].get().expect("chunk published");
        // SAFETY: `index < len` (acquire) implies the slot was fully
        // written before the length was released, and it never mutates.
        unsafe { (*slots[offset].get()).assume_init_ref() }
    }
}

impl<T> Drop for AppendArena<T> {
    fn drop(&mut self) {
        if !std::mem::needs_drop::<T>() {
            return;
        }
        for index in 0..*self.len.get_mut() {
            let (chunk, offset) = locate(index);
            if let Some(slots) = self.spine[chunk].get_mut() {
                // SAFETY: every index below `len` was initialised once
                // and is dropped exactly once here.
                unsafe { slots[offset].get_mut().assume_init_drop() };
            }
        }
    }
}

/// Computes the stripe for a hashable key (Fx-hashed: these tables see
/// no attacker-controlled data and live on the hot path).
#[inline]
fn stripe_of<K: Hash>(key: &K) -> usize {
    (fxhash::hash_one(key) as usize) & (STRIPES - 1)
}

/// A statistics fence over a [`SharedTddStore`], taken between two runs
/// that share one warm store (see
/// [`SharedTddStore::reset_between_runs`]). Holds the allocation and
/// sharing counters at fence time so [`SharedTddStore::stats_since`] can
/// attribute only the *delta* to the run that follows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreEpoch {
    nodes_created: u64,
    unique_hits: u64,
    cross_unique_hits: u64,
}

/// One unique-table stripe: the find-or-insert map plus the sharing
/// counters it guards (keeping them under the stripe mutex avoids a
/// globally-bounced statistics cache line).
#[derive(Default)]
struct NodeStripe {
    /// `node → (id, creator worker)`.
    map: FxHashMap<Node, (NodeId, u32)>,
    hits: u64,
    cross_hits: u64,
}

/// The concurrent node + weight + elimination-set store shared by the
/// worker managers of one parallel run.
///
/// Create one per run with [`SharedTddStore::new`] (or
/// [`SharedTddStore::with_tolerance`]) and hand clones of the `Arc` to
/// [`crate::TddManager::new_shared`]. All handles minted by any attached
/// manager are valid in every other attached manager.
///
/// # Example
///
/// ```
/// use qaec_math::C64;
/// use qaec_tdd::{SharedTddStore, TddManager};
///
/// let store = SharedTddStore::new();
/// let mut a = TddManager::new_shared(&store);
/// let mut b = TddManager::new_shared(&store);
/// let ea = {
///     let l = a.terminal(C64::real(1.0));
///     let h = a.terminal(C64::real(2.0));
///     a.make_node(0, l, h)
/// };
/// let eb = {
///     let l = b.terminal(C64::real(1.0));
///     let h = b.terminal(C64::real(2.0));
///     b.make_node(0, l, h)
/// };
/// // Hash-consed across managers: same node id, stored exactly once.
/// assert_eq!(ea, eb);
/// assert_eq!(store.stats().nodes_created, 1);
/// assert_eq!(store.stats().cross_unique_hits, 1);
/// ```
pub struct SharedTddStore {
    tol: f64,
    /// Canonical snapping grid width. Deliberately finer than the
    /// private merging radius (`tol`): first-come-first-served merging
    /// only perturbs *colliding* values, while snapping perturbs every
    /// intern, so the cell is shrunk to `tol / 32` to keep cumulative
    /// drift inside even the checker's tightest 1e-10 accuracy targets —
    /// while staying orders of magnitude above f64 round-off (~1e-15),
    /// which is what canonicity actually has to unify.
    grid: f64,
    /// Magnitudes past this fall back to exact-bits interning (the
    /// tolerance grid is meaningless out there and its `i64` key would
    /// saturate).
    huge: f64,
    /// One node arena shard per stripe, pushed under that stripe's lock.
    nodes: Vec<AppendArena<Node>>,
    node_stripes: Vec<Mutex<NodeStripe>>,
    /// One weight arena shard per stripe plus [`HUGE_SHARD`] for
    /// exact-bits values.
    weights: Vec<AppendArena<C64>>,
    weight_stripes: Vec<Mutex<FxHashMap<(i64, i64), WeightId>>>,
    huge_weights: Mutex<FxHashMap<(u64, u64), WeightId>>,
    elim_sets: AppendArena<Box<[u32]>>,
    elim_ids: Mutex<FxHashMap<Vec<u32>, u32>>,
    workers: AtomicU32,
}

impl std::fmt::Debug for SharedTddStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedTddStore(nodes = {}, weights = {}, tol = {})",
            self.arena_len(),
            self.weight_count(),
            self.tol
        )
    }
}

impl SharedTddStore {
    /// A shared store with the default weight tolerance (`1e-10`),
    /// matching [`crate::TddManager::new`].
    pub fn new() -> Arc<Self> {
        Self::with_tolerance(1e-10)
    }

    /// A shared store with a custom weight tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn with_tolerance(tol: f64) -> Arc<Self> {
        assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
        let grid = tol / 32.0;
        let store = SharedTddStore {
            tol,
            grid,
            // Past this the grid key `round(x / grid)` nears `i64`
            // saturation and f64 precision; see `intern_weight`.
            huge: 0.5 * (i64::MAX as f64) * grid,
            nodes: (0..STRIPES).map(|_| AppendArena::new()).collect(),
            node_stripes: (0..STRIPES)
                .map(|_| Mutex::new(NodeStripe::default()))
                .collect(),
            weights: (0..=STRIPES).map(|_| AppendArena::new()).collect(),
            weight_stripes: (0..STRIPES)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            huge_weights: Mutex::new(FxHashMap::default()),
            elim_sets: AppendArena::new(),
            elim_ids: Mutex::new(FxHashMap::default()),
            workers: AtomicU32::new(0),
        };
        // Shard 0, slot 0: the terminal sentinel — id 0, as in the
        // private arena.
        store.nodes[0].push(Node {
            var: TERMINAL_VAR,
            low: Edge::ZERO,
            high: Edge::ZERO,
        });
        // Weight shard 0, slots 0/1: exact 0 and 1, so
        // `WeightId::{ZERO, ONE}` hold exact constants; 1 is also
        // pre-inserted under its grid key so interning finds it.
        store.weights[0].push(C64::ZERO);
        store.weights[0].push(C64::ONE);
        let one_key = store.grid_key(C64::ONE);
        store.weight_stripes[stripe_of(&one_key)]
            .lock()
            .expect("weight stripe poisoned")
            .insert(one_key, WeightId::ONE);
        Arc::new(store)
    }

    /// The weight-interning tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Registers a new worker and returns its id (used to attribute
    /// cross-thread unique-table hits). [`crate::TddManager::new_shared`]
    /// calls this for you.
    pub fn register_worker(&self) -> u32 {
        self.workers.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of arena slots allocated (live nodes, excluding the
    /// terminal sentinel). Monotone: the shared store never compacts.
    pub fn arena_len(&self) -> usize {
        self.nodes.iter().map(AppendArena::len).sum::<usize>() - 1
    }

    /// Number of distinct interned weights.
    pub fn weight_count(&self) -> usize {
        self.weights.iter().map(AppendArena::len).sum()
    }

    /// Bytes of backing storage this store holds: every materialised
    /// arena chunk (nodes, weights, elimination sets — allocated
    /// capacity, since chunks never free while the store lives), the
    /// per-entry heap of the interned elimination sets, and the
    /// allocated capacity of the find-or-insert tables. Table capacity
    /// is an estimate (entry size plus one control byte per bucket, the
    /// std hash-table layout); everything else is exact.
    ///
    /// The arenas are append-only, so this number is **monotone** over
    /// the store's life: dropping the store is the only reclaim, which
    /// is what the service layer's byte-budgeted session eviction is
    /// built on.
    pub fn bytes_used(&self) -> usize {
        let map_bytes = |capacity: usize, entry: usize| capacity * (entry + 1);
        let mut bytes = 0usize;
        for shard in &self.nodes {
            bytes += shard.bytes_allocated();
        }
        for shard in &self.weights {
            bytes += shard.bytes_allocated();
        }
        bytes += self.elim_sets.bytes_allocated();
        for index in 0..self.elim_sets.len() {
            bytes += self.elim_sets.get(index).len() * std::mem::size_of::<u32>();
        }
        let node_entry = std::mem::size_of::<Node>() + std::mem::size_of::<(NodeId, u32)>();
        for stripe in &self.node_stripes {
            let stripe = stripe.lock().expect("node stripe poisoned");
            bytes += map_bytes(stripe.map.capacity(), node_entry);
        }
        let weight_entry = std::mem::size_of::<(i64, i64)>() + std::mem::size_of::<WeightId>();
        for stripe in &self.weight_stripes {
            let stripe = stripe.lock().expect("weight stripe poisoned");
            bytes += map_bytes(stripe.capacity(), weight_entry);
        }
        let huge = self.huge_weights.lock().expect("huge weights poisoned");
        bytes += map_bytes(
            huge.capacity(),
            std::mem::size_of::<(u64, u64)>() + std::mem::size_of::<WeightId>(),
        );
        let elim = self.elim_ids.lock().expect("elim set map poisoned");
        bytes += map_bytes(
            elim.capacity(),
            std::mem::size_of::<Vec<u32>>() + std::mem::size_of::<u32>(),
        );
        bytes += elim
            .keys()
            .map(|levels| levels.len() * std::mem::size_of::<u32>())
            .sum::<usize>();
        bytes
    }

    /// Store-level statistics: total nodes created across *all* attached
    /// managers, unique-table hits, and how many of those hits resolved
    /// to a node created by a different worker. Merge this **once** into
    /// a report — per-manager [`crate::TddManager::stats`] deliberately
    /// exclude these store-owned counters so they are never
    /// double-counted (each worker would otherwise re-report the same
    /// global allocations).
    pub fn stats(&self) -> TddStats {
        let mut hits = 0u64;
        let mut cross = 0u64;
        for stripe in &self.node_stripes {
            let stripe = stripe.lock().expect("node stripe poisoned");
            hits += stripe.hits;
            cross += stripe.cross_hits;
        }
        TddStats {
            nodes_created: self.arena_len() as u64,
            unique_hits: hits,
            cross_unique_hits: cross,
            peak_nodes: self.arena_len(),
            store_bytes: self.bytes_used() as u64,
            ..TddStats::default()
        }
    }

    /// Fences the store between two runs that *reuse* it warm — the
    /// compile-once session API's noise/ε sweeps, where one store serves
    /// a whole batch of queries so later queries hash-cons against
    /// everything earlier ones interned.
    ///
    /// Nothing is cleared: the arenas are append-only and the interned
    /// diagrams are exactly what the next run wants to find. What the
    /// hook *does* reset is statistics attribution — it snapshots the
    /// allocation and sharing counters, and [`Self::stats_since`] later
    /// reports only the delta, so each query's report counts its own
    /// work rather than the whole session's. (Because canonical
    /// interning makes every stored value a pure function of the value
    /// alone, reuse is value-transparent: a warm-store run is
    /// bit-identical to the same run on a fresh store.)
    pub fn reset_between_runs(&self) -> StoreEpoch {
        let mut hits = 0u64;
        let mut cross = 0u64;
        for stripe in &self.node_stripes {
            let stripe = stripe.lock().expect("node stripe poisoned");
            hits += stripe.hits;
            cross += stripe.cross_hits;
        }
        StoreEpoch {
            nodes_created: self.arena_len() as u64,
            unique_hits: hits,
            cross_unique_hits: cross,
        }
    }

    /// Store-level statistics attributed since `epoch` (from
    /// [`Self::reset_between_runs`]): allocation and sharing counter
    /// *deltas*, with `peak_nodes` reporting the store's current total
    /// arena occupancy (the real memory footprint — a warm store never
    /// shrinks). `stats_since(StoreEpoch::default())` equals
    /// [`Self::stats`].
    pub fn stats_since(&self, epoch: StoreEpoch) -> TddStats {
        let total = self.stats();
        TddStats {
            nodes_created: total.nodes_created - epoch.nodes_created,
            unique_hits: total.unique_hits - epoch.unique_hits,
            cross_unique_hits: total.cross_unique_hits - epoch.cross_unique_hits,
            ..total
        }
    }

    #[inline]
    fn grid_key(&self, z: C64) -> (i64, i64) {
        let w = self.grid;
        ((z.re / w).round() as i64, (z.im / w).round() as i64)
    }

    /// Interns a value by snapping it to the centre of its grid cell —
    /// a pure function of the value, so every thread interleaving maps
    /// equal inputs to the same id *and the same stored value*.
    pub(crate) fn intern_weight(&self, z: C64) -> WeightId {
        debug_assert!(z.is_finite(), "non-finite weight {z}");
        if z.re.abs() <= self.tol && z.im.abs() <= self.tol {
            return WeightId::ZERO;
        }
        if z.re.abs() >= self.huge || z.im.abs() >= self.huge {
            // Exact-bits interning: tolerance is below one ulp out here.
            let key = (z.re.to_bits(), z.im.to_bits());
            let mut map = self.huge_weights.lock().expect("huge weights poisoned");
            if let Some(&id) = map.get(&key) {
                return id;
            }
            let id = WeightId(encode(HUGE_SHARD, self.weights[HUGE_SHARD].push(z)));
            map.insert(key, id);
            return id;
        }
        let key = self.grid_key(z);
        let shard = stripe_of(&key);
        let mut stripe = self.weight_stripes[shard]
            .lock()
            .expect("weight stripe poisoned");
        if let Some(&id) = stripe.get(&key) {
            return id;
        }
        let w = self.grid;
        let snapped = C64::new(key.0 as f64 * w, key.1 as f64 * w);
        let id = WeightId(encode(shard, self.weights[shard].push(snapped)));
        stripe.insert(key, id);
        id
    }

    /// The value behind a weight handle (lock-free).
    #[inline]
    pub(crate) fn weight_value(&self, w: WeightId) -> C64 {
        let (shard, index) = decode(w.0);
        *self.weights[shard].get(index)
    }

    /// Hash-conses a (pre-normalized) node, returning its id. `worker`
    /// attributes cross-thread hits.
    pub(crate) fn unique_node(&self, key: Node, worker: u32) -> NodeId {
        let shard = stripe_of(&key);
        let mut stripe = self.node_stripes[shard]
            .lock()
            .expect("node stripe poisoned");
        match stripe.map.get(&key) {
            Some(&(id, creator)) => {
                stripe.hits += 1;
                if creator != worker {
                    stripe.cross_hits += 1;
                }
                id
            }
            None => {
                let id = NodeId(encode(shard, self.nodes[shard].push(key)));
                stripe.map.insert(key, (id, worker));
                id
            }
        }
    }

    /// The node behind an id (lock-free).
    #[inline]
    pub(crate) fn node(&self, n: NodeId) -> Node {
        let (shard, index) = decode(n.0);
        *self.nodes[shard].get(index)
    }

    /// Interns an elimination set; ids are globally consistent, which is
    /// what lets contraction caches travel between workers.
    pub(crate) fn intern_elim_set(&self, levels: Vec<u32>) -> u32 {
        let mut map = self.elim_ids.lock().expect("elim set map poisoned");
        if let Some(&id) = map.get(&levels) {
            return id;
        }
        let id = self.elim_sets.push(levels.clone().into_boxed_slice()) as u32;
        map.insert(levels, id);
        id
    }

    /// The levels behind an elimination-set id (lock-free).
    #[inline]
    pub(crate) fn elim_set(&self, id: u32) -> &[u32] {
        self.elim_sets.get(id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_encoding_round_trips() {
        for (shard, index) in [
            (0usize, 0usize),
            (0, 1),
            (63, 5),
            (HUGE_SHARD, 7),
            (17, 12345),
        ] {
            assert_eq!(decode(encode(shard, index)), (shard, index));
        }
        assert_eq!(encode(0, 0), 0, "terminal/zero must stay id 0");
        assert_eq!(encode(0, 1), 1, "the unit weight must stay id 1");
    }

    #[test]
    fn arena_locate_covers_doubling_chunks() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        assert_eq!(locate(7167), (2, 4095));
        assert_eq!(locate(7168), (3, 0));
        // The spine covers the whole per-shard index space.
        let (chunk, _) = locate(INDEX_MASK as usize);
        assert!(chunk < SPINE);
    }

    #[test]
    fn arena_push_get_across_chunk_boundaries() {
        let arena: AppendArena<usize> = AppendArena::new();
        for value in 0..5000 {
            assert_eq!(arena.push(value), value);
        }
        assert_eq!(arena.len(), 5000);
        for index in [0usize, 1023, 1024, 2047, 2048, 4095, 4096, 4999] {
            assert_eq!(*arena.get(index), index);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn arena_rejects_unpublished_index() {
        let arena: AppendArena<u32> = AppendArena::new();
        arena.push(7);
        let _ = arena.get(1);
    }

    #[test]
    fn arena_drops_owned_entries() {
        // Box<[u32]> entries must be dropped with the arena (miri-style
        // leak check is out of scope; this exercises the Drop path).
        let arena: AppendArena<Box<[u32]>> = AppendArena::new();
        for k in 0..100u32 {
            arena.push(vec![k; 3].into_boxed_slice());
        }
        assert_eq!(&arena.get(42)[..], &[42, 42, 42]);
    }

    #[test]
    fn concurrent_interning_stays_consistent() {
        // Hammer the store from several threads with overlapping values:
        // every thread must resolve each value to one id and one stored
        // representative.
        let store = SharedTddStore::new();
        let ids: Vec<Vec<WeightId>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        (0..2000)
                            .map(|k| store.intern_weight(C64::new(k as f64 * 0.125, -1.0)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("interner"))
                .collect()
        });
        for thread in &ids[1..] {
            assert_eq!(thread, &ids[0], "ids must agree across threads");
        }
        assert_eq!(store.weight_count(), 2000 + 2, "0/1 pre-seeded + 2000");
    }

    #[test]
    fn interning_is_a_pure_function_of_the_value() {
        let store = SharedTddStore::new();
        let a = store.intern_weight(C64::new(0.25, -0.75));
        let b = store.intern_weight(C64::new(0.25 + 1e-12, -0.75 + 1e-12));
        assert_eq!(a, b, "values in one grid cell must merge");
        let va = store.weight_value(a);
        assert!((va - C64::new(0.25, -0.75)).abs() <= 5e-12);

        // A second store built in any other order maps the same inputs
        // to the same *values* (ids may differ, values may not).
        let other = SharedTddStore::new();
        let _noise = other.intern_weight(C64::new(0.5, 0.5));
        let c = other.intern_weight(C64::new(0.25, -0.75));
        assert_eq!(other.weight_value(c), va, "snapping must be canonical");
    }

    #[test]
    fn zero_and_one_stay_exact() {
        let store = SharedTddStore::new();
        assert_eq!(store.intern_weight(C64::ZERO), WeightId::ZERO);
        assert_eq!(store.intern_weight(C64::new(5e-11, -5e-11)), WeightId::ZERO);
        assert_eq!(store.intern_weight(C64::ONE), WeightId::ONE);
        assert_eq!(store.weight_value(WeightId::ONE), C64::ONE);
        assert_eq!(store.weight_value(WeightId::ZERO), C64::ZERO);
    }

    #[test]
    fn huge_weights_intern_exactly() {
        let store = SharedTddStore::new();
        let big = C64::new(3.5e12, -1.0);
        let a = store.intern_weight(big);
        let b = store.intern_weight(big);
        assert_eq!(a, b);
        assert_eq!(store.weight_value(a), big, "huge values are kept exact");
        assert_ne!(store.intern_weight(C64::new(3.5e12 + 1.0, -1.0)), a);
    }

    #[test]
    fn elim_sets_are_globally_consistent() {
        let store = SharedTddStore::new();
        let a = store.intern_elim_set(vec![1, 4, 9]);
        let b = store.intern_elim_set(vec![1, 4, 9]);
        let c = store.intern_elim_set(vec![1, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.elim_set(a), &[1, 4, 9]);
    }

    #[test]
    fn epochs_fence_statistics_between_runs() {
        let store = SharedTddStore::new();
        let w = store.register_worker();
        let node = |k: u32, low: WeightId| Node {
            var: k,
            low: Edge {
                node: NodeId::TERMINAL,
                weight: low,
            },
            high: Edge {
                node: NodeId::TERMINAL,
                weight: WeightId::ONE,
            },
        };
        let half = store.intern_weight(C64::real(0.5));

        // "Run 1": two fresh nodes plus one re-find.
        let epoch1 = store.reset_between_runs();
        assert_eq!(epoch1, StoreEpoch::default(), "fresh store = zero epoch");
        store.unique_node(node(0, half), w);
        store.unique_node(node(1, half), w);
        store.unique_node(node(0, half), w);
        let run1 = store.stats_since(epoch1);
        assert_eq!(run1.nodes_created, 2);
        assert_eq!(run1.unique_hits, 1);
        assert_eq!(run1, store.stats(), "zero epoch delta equals totals");

        // "Run 2" re-finds run 1's structure warm: zero allocations,
        // only hits — the delta must not re-report run 1's work.
        let epoch2 = store.reset_between_runs();
        store.unique_node(node(0, half), w);
        store.unique_node(node(1, half), w);
        let run2 = store.stats_since(epoch2);
        assert_eq!(run2.nodes_created, 0, "warm reuse allocates nothing");
        assert_eq!(run2.unique_hits, 2);
        // The footprint (peak) stays the cumulative arena size.
        assert_eq!(run2.peak_nodes, 2);
        assert_eq!(store.stats().nodes_created, 2, "totals unaffected");
    }

    #[test]
    fn bytes_used_is_monotone_and_tracks_growth() {
        let store = SharedTddStore::new();
        let baseline = store.bytes_used();
        // A fresh store already holds the sentinel chunks (node shard 0,
        // weight shard 0) — the floor a budget has to stay above.
        assert!(baseline > 0);

        let mut previous = baseline;
        for batch in 0..4 {
            for k in 0..2000 {
                store.intern_weight(C64::new((batch * 2000 + k) as f64 * 0.25, 1.0));
            }
            let now = store.bytes_used();
            assert!(now >= previous, "append-only storage never shrinks");
            previous = now;
        }
        assert!(previous > baseline, "8000 interns must allocate chunks");

        // Elimination sets count both arena slots and per-entry heap.
        let before_elim = store.bytes_used();
        store.intern_elim_set((0..512).collect());
        assert!(store.bytes_used() > before_elim);

        // And the footprint is what stats() reports.
        assert_eq!(store.stats().store_bytes, store.bytes_used() as u64);
    }

    #[test]
    fn cross_worker_hits_are_attributed() {
        let store = SharedTddStore::new();
        let w0 = store.register_worker();
        let w1 = store.register_worker();
        let one = WeightId::ONE;
        let half = store.intern_weight(C64::real(0.5));
        let key = Node {
            var: 3,
            low: Edge {
                node: NodeId::TERMINAL,
                weight: one,
            },
            high: Edge {
                node: NodeId::TERMINAL,
                weight: half,
            },
        };
        let id0 = store.unique_node(key, w0);
        let id_self = store.unique_node(key, w0);
        let id1 = store.unique_node(key, w1);
        assert_eq!(id0, id_self);
        assert_eq!(id0, id1);
        let stats = store.stats();
        assert_eq!(stats.nodes_created, 1);
        assert_eq!(stats.unique_hits, 2);
        assert_eq!(stats.cross_unique_hits, 1, "only w1's hit crosses");
    }
}
